//! GUPS — giga-updates per second (paper §3, Table 4: ~180 M updates).
//!
//! A distributed table `A` is incremented at random offsets read from a
//! local index array (HPCC RandomAccess). Under Gravel this is the
//! one-line kernel of Fig. 4b: every work-item issues one `shmem_inc`.
//! With a cyclic partition and uniform random offsets, `(n-1)/n` of
//! updates are remote — 87.5 % at eight nodes (Table 5).

use gravel_cluster::{NodeStep, OpClass, StepTrace, WorkloadTrace};
use gravel_core::{Checkpoint, GravelRuntime};
use gravel_pgas::{Directory, Layout, Partition};
use gravel_simt::{LaneVec, Mask};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// GUPS problem description.
#[derive(Clone, Copy, Debug)]
pub struct GupsInput {
    /// Total updates across the cluster (Table 4: ~180 M; scale down for
    /// tests).
    pub updates: usize,
    /// Global table length.
    pub table_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GupsInput {
    /// A small deterministic instance for tests/examples.
    pub fn small() -> Self {
        GupsInput { updates: 4096, table_len: 512, seed: 42 }
    }
}

/// The random global indices node `node` updates (deterministic in the
/// seed, disjoint streams per node).
pub fn node_updates(input: &GupsInput, nodes: usize, node: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(input.seed ^ (node as u64).wrapping_mul(0x9E37_79B9));
    let count = input.updates / nodes + usize::from(node < input.updates % nodes);
    (0..count).map(|_| rng.gen_range(0..input.table_len)).collect()
}

/// The table partition GUPS uses (cyclic: uniform scatter).
pub fn partition(input: &GupsInput, nodes: usize) -> Partition {
    Partition::new(input.table_len, nodes, Layout::Cyclic)
}

/// The address directory GUPS routes through — the *only* place a
/// global table index becomes a `(dest node, local offset)` pair.
/// Static runs get a fixed view over [`partition`]; an elastic cluster
/// substitutes a live [`Directory::elastic`] with the same call shape.
pub fn directory(input: &GupsInput, nodes: usize) -> Directory {
    Directory::fixed(partition(input, nodes))
}

/// Run GUPS on the live runtime. The runtime must have `heap_len ≥`
/// the local table slice on every node. Returns the number of updates
/// issued.
pub fn run_live(rt: &GravelRuntime, input: &GupsInput) -> u64 {
    let nodes = rt.nodes();
    let part = partition(input, nodes);
    for node in 0..nodes {
        assert!(
            rt.config().heap_len >= part.local_len(node),
            "heap too small for table slice"
        );
    }
    let dir = directory(input, nodes);
    let mut issued = 0u64;
    for node in 0..nodes {
        issued += dispatch_node(rt, &dir, input, node);
    }
    rt.quiesce();
    issued
}

/// Dispatch node `node`'s full update stream (one GUPS superstep).
fn dispatch_node(rt: &GravelRuntime, dir: &Directory, input: &GupsInput, node: usize) -> u64 {
    let _span = rt.tracer().span("gups.dispatch", "app", node as u32);
    let updates = node_updates(input, rt.nodes(), node);
    let issued = updates.len() as u64;
    let wg_size = rt.config().wg_size;
    let wgs = updates.len().div_ceil(wg_size).max(1);
    rt.dispatch(node, wgs, |ctx| {
        let gids = ctx.wg.global_ids();
        let n = ctx.wg.wg_size();
        let in_range = Mask::from_fn(n, |l| gids.get(l) < updates.len());
        ctx.masked(&in_range, |ctx| {
            // Fig. 4b line 15: shmem_inc(A + B[GRID_ID], C[GRID_ID]).
            let dests = LaneVec::from_fn(n, |l| {
                let g = gids.get(l).min(updates.len() - 1);
                dir.route(updates[g]).dest
            });
            let addrs = LaneVec::from_fn(n, |l| {
                let g = gids.get(l).min(updates.len() - 1);
                dir.route(updates[g]).offset
            });
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
    });
    issued
}

/// Application progress of a checkpointed GUPS run: which nodes' update
/// streams are already dispatched *and durable* (covered by an epoch
/// cut). Saved into every epoch snapshot via [`Checkpoint`], so a
/// recovering run resumes at the first un-checkpointed stream instead of
/// re-issuing (and double-counting) updates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GupsProgress {
    /// Number of nodes whose update stream is fully dispatched, quiesced,
    /// and captured by an epoch cut.
    pub nodes_dispatched: u64,
}

impl Checkpoint for GupsProgress {
    fn save(&self) -> Vec<u64> {
        vec![self.nodes_dispatched]
    }

    fn restore(&mut self, words: &[u64]) {
        self.nodes_dispatched = words.first().copied().unwrap_or(0);
    }
}

/// Run GUPS as a sequence of per-node supersteps with an epoch cut after
/// each: dispatch node `k`'s stream, quiesce, snapshot heaps + progress.
/// Requires `cfg.ha.checkpoint = true`. Resumes from
/// `progress.nodes_dispatched` (pass a default-constructed progress for a
/// fresh run); returns the number of updates issued *by this call*.
pub fn run_live_checkpointed(
    rt: &GravelRuntime,
    input: &GupsInput,
    progress: &mut GupsProgress,
) -> u64 {
    let nodes = rt.nodes();
    let part = partition(input, nodes);
    for node in 0..nodes {
        assert!(rt.config().heap_len >= part.local_len(node), "heap too small for table slice");
    }
    let dir = directory(input, nodes);
    let mut issued = 0u64;
    for node in (progress.nodes_dispatched as usize)..nodes {
        issued += dispatch_node(rt, &dir, input, node);
        progress.nodes_dispatched = node as u64 + 1;
        rt.cut_epoch_with(Some(progress));
    }
    issued
}

/// [`run_live`] plus a distilled telemetry summary of the run (message
/// totals, remote fraction, packet sizes, packet-latency quantiles).
/// Span-instrumented: each node's dispatch records a `gups.dispatch`
/// span when the runtime's tracer is enabled.
pub fn run_live_instrumented(
    rt: &GravelRuntime,
    input: &GupsInput,
) -> (u64, crate::AppTelemetry) {
    let issued = run_live(rt, input);
    (issued, crate::AppTelemetry::collect("GUPS", rt))
}

/// Verify a finished live run: the distributed histogram must equal the
/// sequential count of the same update streams.
pub fn verify_live(rt: &GravelRuntime, input: &GupsInput) -> bool {
    let nodes = rt.nodes();
    let dir = directory(input, nodes);
    let mut expect = vec![0u64; input.table_len];
    for node in 0..nodes {
        for g in node_updates(input, nodes, node) {
            expect[g] += 1;
        }
    }
    (0..input.table_len).all(|g| {
        let r = dir.route(g);
        rt.heap(r.dest as usize).load(r.offset) == expect[g]
    })
}

/// Communication trace for the cluster model: one superstep of uniform
/// scatter with exact per-destination counts.
pub fn trace(input: &GupsInput, nodes: usize) -> WorkloadTrace {
    let dir = directory(input, nodes);
    let mut t = WorkloadTrace::new("GUPS", nodes);
    let mut step = StepTrace::default();
    for node in 0..nodes {
        let mut routed = vec![0u64; nodes];
        let updates = node_updates(input, nodes, node);
        for &g in &updates {
            routed[dir.route(g).dest as usize] += 1;
        }
        step.per_node.push(NodeStep {
            gpu_ops: updates.len() as u64, // B/C reads + index math
            routed,
            class: OpClass::Atomic,
            local_pgas: 0, // every update is routed (serialized atomics)
        });
    }
    t.push_step(step);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use gravel_core::GravelConfig;

    #[test]
    fn live_gups_matches_sequential_histogram() {
        let input = GupsInput::small();
        let rt = GravelRuntime::new(GravelConfig::small(2, input.table_len));
        let issued = run_live(&rt, &input);
        assert_eq!(issued, input.updates as u64);
        assert!(verify_live(&rt, &input));
        let stats = rt.shutdown().expect("clean shutdown");
        assert_eq!(stats.total_offloaded(), input.updates as u64);
        // Cyclic partition + uniform updates ⇒ ~half remote at 2 nodes.
        assert!((stats.remote_fraction() - 0.5).abs() < 0.05, "{}", stats.remote_fraction());
    }

    #[test]
    fn instrumented_gups_reports_telemetry_and_spans() {
        let input = GupsInput::small();
        let mut cfg = GravelConfig::small(2, input.table_len);
        cfg.telemetry = gravel_core::TelemetryConfig::CountersAndTrace;
        let rt = GravelRuntime::new(cfg);
        let (issued, telem) = run_live_instrumented(&rt, &input);
        assert_eq!(issued, input.updates as u64);
        assert_eq!(telem.offloaded, issued);
        assert_eq!(telem.applied, issued);
        assert!((telem.remote_fraction - 0.5).abs() < 0.05, "{}", telem.remote_fraction);
        assert!(telem.packet_latency_p50_ns > 0);
        let trace = rt.export_chrome_trace().expect("tracing enabled");
        assert!(trace.contains("gups.dispatch"), "app span recorded");
        rt.shutdown().expect("clean shutdown");
    }

    #[test]
    fn checkpointed_gups_cuts_one_epoch_per_superstep() {
        let input = GupsInput::small();
        let mut cfg = GravelConfig::small(2, input.table_len);
        cfg.ha.checkpoint = true;
        let rt = GravelRuntime::new(cfg);
        let mut progress = GupsProgress::default();
        let issued = run_live_checkpointed(&rt, &input, &mut progress);
        assert_eq!(issued, input.updates as u64);
        assert_eq!(progress.nodes_dispatched, 2);
        assert!(verify_live(&rt, &input));
        // A resumed run (same progress, e.g. after restart) is a no-op.
        assert_eq!(run_live_checkpointed(&rt, &input, &mut progress), 0);
        assert!(verify_live(&rt, &input), "resume issued no duplicate updates");
        let stats = rt.shutdown().expect("clean shutdown");
        assert_eq!(stats.ha.epochs, 2, "one cut per node superstep");
    }

    #[test]
    fn gups_progress_roundtrips_through_checkpoint_words() {
        use gravel_core::Checkpoint;
        let p = GupsProgress { nodes_dispatched: 5 };
        let mut q = GupsProgress::default();
        q.restore(&p.save());
        assert_eq!(p, q);
        q.restore(&[]);
        assert_eq!(q, GupsProgress::default());
    }

    #[test]
    fn update_streams_are_disjoint_and_cover() {
        let input = GupsInput { updates: 1000, table_len: 64, seed: 7 };
        let a: usize = (0..3).map(|n| node_updates(&input, 3, n).len()).sum();
        assert_eq!(a, 1000);
        assert_ne!(node_updates(&input, 3, 0), node_updates(&input, 3, 1));
        // Deterministic.
        assert_eq!(node_updates(&input, 3, 2), node_updates(&input, 3, 2));
    }

    #[test]
    fn trace_remote_fraction_is_seven_eighths_at_8_nodes() {
        let input = GupsInput { updates: 100_000, table_len: 1 << 16, seed: 1 };
        let t = trace(&input, 8);
        // Table 5: 87.5 %. gpu_ops are counted as local ops, so compute
        // the routed-only fraction here.
        let mut remote = 0u64;
        let mut total = 0u64;
        for (src, ns) in t.steps[0].per_node.iter().enumerate() {
            for (dest, &m) in ns.routed.iter().enumerate() {
                total += m;
                if dest != src {
                    remote += m;
                }
            }
        }
        let f = remote as f64 / total as f64;
        assert!((f - 0.875).abs() < 0.01, "remote fraction {f}");
    }

    #[test]
    fn trace_totals_match_input() {
        let input = GupsInput { updates: 999, table_len: 128, seed: 3 };
        let t = trace(&input, 4);
        assert_eq!(t.total_routed(), 999);
        assert_eq!(t.steps.len(), 1);
    }
}
