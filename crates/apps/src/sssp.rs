//! Single-source shortest paths (paper §6: SSSP-1 on hugebubbles,
//! SSSP-2 on cage15).
//!
//! Bellman-Ford by supersteps: vertices whose distance improved last
//! round relax their out-edges with a `relax-min` active message
//! (paper §7.1: SSSP uses atomic operations — active messages — and PUT
//! operations). The mesh input's long diameter gives SSSP-1 *many* sparse
//! supersteps — the reason its packets average only ~1.6 kB (Table 5) and
//! its scaling is the paper's worst; cage15's short diameter gives
//! SSSP-2 few dense supersteps and ~58 kB packets.

use gravel_cluster::{NodeStep, OpClass, StepTrace, WorkloadTrace};
use gravel_core::GravelRuntime;
use gravel_pgas::{Layout, Partition};
use gravel_simt::{LaneVec, Mask};

use crate::graph::Csr;

/// Distance value for unreached vertices (fits the heap's u64 cells).
pub const INF: u64 = u64::MAX;

/// The vertex partition SSSP uses.
pub fn partition(g: &Csr, nodes: usize) -> Partition {
    Partition::new(g.num_vertices(), nodes, Layout::Block)
}

/// Register SSSP's relax handler; returns its id. Must be called in the
/// runtime's handler-registration hook.
pub fn register(reg: &mut gravel_pgas::AmRegistry) -> u32 {
    reg.register(gravel_pgas::relax_min_handler())
}

/// Run SSSP from `source` on the live runtime (whose registry must hold
/// the relax handler at id `relax_id`). Returns the global distance
/// vector.
pub fn run_live(rt: &GravelRuntime, g: &Csr, source: u32, relax_id: u32) -> Vec<u64> {
    let n = g.num_vertices();
    let nodes = rt.nodes();
    let part = partition(g, nodes);
    for node in 0..nodes {
        assert!(rt.config().heap_len >= part.local_len(node), "heap too small");
        rt.heap(node).reset(INF);
    }
    rt.heap(part.owner(source as usize)).store(part.local_offset(source as usize), 0);

    let read_dist = |v: usize| rt.heap(part.owner(v)).load(part.local_offset(v));
    let mut prev = vec![INF; n];
    prev[source as usize] = 0;
    let mut frontier: Vec<u32> = vec![source];

    while !frontier.is_empty() {
        // Group the frontier's edges by owning node.
        let mut node_work: Vec<Vec<(u64, u32, u64, u32)>> = vec![Vec::new(); nodes];
        for &u in &frontier {
            let du = prev[u as usize];
            let owner = part.owner(u as usize);
            for (&v, &w) in g.neighbors(u).iter().zip(g.weights(u)) {
                node_work[owner].push((
                    du + w as u64,
                    part.owner(v as usize) as u32,
                    part.local_offset(v as usize),
                    v,
                ));
            }
        }
        for (node, work) in node_work.iter().enumerate() {
            if work.is_empty() {
                continue;
            }
            let wg_size = rt.config().wg_size;
            let wgs = work.len().div_ceil(wg_size);
            rt.dispatch(node, wgs, |ctx| {
                let gids = ctx.wg.global_ids();
                let w = ctx.wg.wg_size();
                let in_range = Mask::from_fn(w, |l| gids.get(l) < work.len());
                ctx.masked(&in_range, |ctx| {
                    let e = |l: usize| work[gids.get(l).min(work.len() - 1)];
                    let dests = LaneVec::from_fn(w, |l| e(l).1);
                    let addrs = LaneVec::from_fn(w, |l| e(l).2);
                    let vals = LaneVec::from_fn(w, |l| e(l).0);
                    ctx.shmem_am(relax_id, &dests, &addrs, &vals);
                });
            });
        }
        rt.quiesce();
        // New frontier: vertices whose distance improved.
        let mut next = Vec::new();
        for (v, pv) in prev.iter_mut().enumerate() {
            let d = read_dist(v);
            if d < *pv {
                *pv = d;
                next.push(v as u32);
            }
        }
        frontier = next;
    }
    prev
}

/// Communication trace: replay Bellman-Ford rounds sequentially,
/// recording each round's relaxations as one superstep.
///
/// Relaxations apply in place (messages land as they arrive in the real
/// system too) and the next frontier is collected incrementally, so trace
/// generation is `O(total relaxations)` — paper-scale meshes with
/// thousands of rounds stay tractable.
pub fn trace(name: &str, g: &Csr, nodes: usize, source: u32) -> WorkloadTrace {
    // Traversal uses the directed edge set. (The UF matrices are
    // symmetric, but chaotic in-place relaxation on the symmetrized mesh
    // lets improvements cascade backwards for O(V·E) worst-case work;
    // the directed mesh converges in O(diameter) rounds with the same
    // communication shape — many sparse supersteps, edge-cut remote
    // fraction — which is what the model consumes.)
    let n = g.num_vertices();
    let part = partition(g, nodes);
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    // Round stamp per vertex: avoids duplicate frontier entries without a
    // per-round clear.
    let mut stamped = vec![0u32; n];
    let mut round = 0u32;
    let mut t = WorkloadTrace::new(name, nodes);
    while !frontier.is_empty() {
        round += 1;
        let mut routed = vec![vec![0u64; nodes]; nodes];
        let mut gpu_ops = vec![0u64; nodes];
        let mut next = Vec::new();
        for &u in &frontier {
            let su = part.owner(u as usize);
            gpu_ops[su] += 1; // frontier scan + edge fetch
            let du = dist[u as usize];
            for (&v, &w) in g.neighbors(u).iter().zip(g.weights(u)) {
                routed[su][part.owner(v as usize)] += 1;
                let nd = du + w as u64;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    if stamped[v as usize] != round {
                        stamped[v as usize] = round;
                        next.push(v);
                    }
                }
            }
        }
        t.push_step(StepTrace {
            per_node: (0..nodes)
                .map(|s| NodeStep {
                    gpu_ops: gpu_ops[s],
                    routed: routed[s].clone(),
                    class: OpClass::Atomic,
                    local_pgas: 0, // relaxations are routed active messages
                })
                .collect(),
        });
        frontier = next;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{gen, reference};
    use gravel_core::GravelConfig;

    #[test]
    fn live_sssp_matches_dijkstra() {
        let g = gen::hugebubbles_like(144, 11);
        let mut relax_id = 0;
        let rt = GravelRuntime::with_handlers(GravelConfig::small(3, 64), |reg| {
            relax_id = register(reg);
        });
        let live = run_live(&rt, &g, 0, relax_id);
        rt.shutdown().expect("clean shutdown");
        assert_eq!(live, reference::sssp(&g, 0));
    }

    #[test]
    fn live_sssp_on_dense_graph() {
        let g = gen::cage15_like(100, 13);
        let mut relax_id = 0;
        let rt = GravelRuntime::with_handlers(GravelConfig::small(2, 64), |reg| {
            relax_id = register(reg);
        });
        let live = run_live(&rt, &g, 5, relax_id);
        rt.shutdown().expect("clean shutdown");
        assert_eq!(live, reference::sssp(&g, 5));
    }

    #[test]
    fn mesh_needs_many_more_supersteps_than_banded_graph() {
        // The SSSP-1 vs SSSP-2 contrast: diameter drives superstep count.
        let mesh = gen::hugebubbles_like(4_900, 3); // 70×70 grid
        let banded = gen::cage15_like(4_900, 3);
        let t_mesh = trace("SSSP-1", &mesh, 8, 0);
        let t_banded = trace("SSSP-2", &banded, 8, 0);
        assert!(
            t_mesh.steps.len() > 3 * t_banded.steps.len(),
            "mesh {} vs banded {}",
            t_mesh.steps.len(),
            t_banded.steps.len()
        );
    }

    #[test]
    fn trace_relaxation_count_bounds() {
        // Every traced message is a relaxation along an edge out of a
        // frontier vertex; each vertex enters the frontier at least once
        // if reachable, so total messages ≥ reachable edges once and is
        // finite (termination).
        let g = gen::hugebubbles_like(400, 5);
        let t = trace("SSSP", &g, 4, 0);
        assert!(t.total_routed() >= g.num_edges() as u64 / 2);
        assert!(t.steps.len() < 10 * g.num_vertices());
    }
}
