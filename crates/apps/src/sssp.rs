//! Single-source shortest paths (paper §6: SSSP-1 on hugebubbles,
//! SSSP-2 on cage15).
//!
//! Bellman-Ford by supersteps: vertices whose distance improved last
//! round relax their out-edges with a `relax-min` active message
//! (paper §7.1: SSSP uses atomic operations — active messages — and PUT
//! operations). The mesh input's long diameter gives SSSP-1 *many* sparse
//! supersteps — the reason its packets average only ~1.6 kB (Table 5) and
//! its scaling is the paper's worst; cage15's short diameter gives
//! SSSP-2 few dense supersteps and ~58 kB packets.

use gravel_cluster::{NodeStep, OpClass, StepTrace, WorkloadTrace};
use gravel_core::{Checkpoint, GravelRuntime};
use gravel_pgas::{Directory, Layout, Partition};
use gravel_simt::{LaneVec, Mask};

use crate::graph::Csr;

/// Distance value for unreached vertices (fits the heap's u64 cells).
pub const INF: u64 = u64::MAX;

/// The vertex partition SSSP uses.
pub fn partition(g: &Csr, nodes: usize) -> Partition {
    Partition::new(g.num_vertices(), nodes, Layout::Block)
}

/// The address directory SSSP routes through (see
/// [`gups::directory`](crate::gups::directory) for the rationale).
pub fn directory(g: &Csr, nodes: usize) -> Directory {
    Directory::fixed(partition(g, nodes))
}

/// Register SSSP's relax handler; returns its id. Must be called in the
/// runtime's handler-registration hook.
pub fn register(reg: &mut gravel_pgas::AmRegistry) -> u32 {
    reg.register(gravel_pgas::relax_min_handler())
}

/// Run SSSP from `source` on the live runtime (whose registry must hold
/// the relax handler at id `relax_id`). Returns the global distance
/// vector.
pub fn run_live(rt: &GravelRuntime, g: &Csr, source: u32, relax_id: u32) -> Vec<u64> {
    let n = g.num_vertices();
    let nodes = rt.nodes();
    let part = partition(g, nodes);
    for node in 0..nodes {
        assert!(rt.config().heap_len >= part.local_len(node), "heap too small");
        rt.heap(node).reset(INF);
    }
    let dir = directory(g, nodes);
    let src = dir.route(source as usize);
    rt.heap(src.dest as usize).store(src.offset, 0);

    let mut prev = vec![INF; n];
    prev[source as usize] = 0;
    let mut frontier: Vec<u32> = vec![source];

    while !frontier.is_empty() {
        frontier = superstep(rt, g, &dir, relax_id, &mut prev, &frontier);
    }
    prev
}

/// One Bellman-Ford superstep: relax every frontier edge (active
/// messages grouped by issuing node), quiesce, and return the next
/// frontier — the vertices whose distance improved. Updates `prev` in
/// place.
fn superstep(
    rt: &GravelRuntime,
    g: &Csr,
    dir: &Directory,
    relax_id: u32,
    prev: &mut [u64],
    frontier: &[u32],
) -> Vec<u32> {
    let nodes = rt.nodes();
    // Group the frontier's edges by owning node.
    let mut node_work: Vec<Vec<(u64, u32, u64, u32)>> = vec![Vec::new(); nodes];
    for &u in frontier {
        let du = prev[u as usize];
        let owner = dir.route(u as usize).dest as usize;
        for (&v, &w) in g.neighbors(u).iter().zip(g.weights(u)) {
            let rv = dir.route(v as usize);
            node_work[owner].push((du + w as u64, rv.dest, rv.offset, v));
        }
    }
    for (node, work) in node_work.iter().enumerate() {
        if work.is_empty() {
            continue;
        }
        let wg_size = rt.config().wg_size;
        let wgs = work.len().div_ceil(wg_size);
        rt.dispatch(node, wgs, |ctx| {
            let gids = ctx.wg.global_ids();
            let w = ctx.wg.wg_size();
            let in_range = Mask::from_fn(w, |l| gids.get(l) < work.len());
            ctx.masked(&in_range, |ctx| {
                let e = |l: usize| work[gids.get(l).min(work.len() - 1)];
                let dests = LaneVec::from_fn(w, |l| e(l).1);
                let addrs = LaneVec::from_fn(w, |l| e(l).2);
                let vals = LaneVec::from_fn(w, |l| e(l).0);
                ctx.shmem_am(relax_id, &dests, &addrs, &vals);
            });
        });
    }
    rt.quiesce();
    // New frontier: vertices whose distance improved.
    let mut next = Vec::new();
    for (v, pv) in prev.iter_mut().enumerate() {
        let r = dir.route(v);
        let d = rt.heap(r.dest as usize).load(r.offset);
        if d < *pv {
            *pv = d;
            next.push(v as u32);
        }
    }
    next
}

/// Application progress of a checkpointed SSSP run: the superstep
/// counter, the distance vector as of the last cut, and the frontier
/// still to relax. Like [`PageRankProgress`](crate::pagerank::PageRankProgress)
/// this is the *entire* app state — a resumed run re-seeds the heaps
/// from `dist` and continues from `frontier`, so a crash between cuts
/// costs at most one superstep of rework and never a wrong distance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SsspProgress {
    /// Supersteps fully applied (and covered by an epoch cut).
    pub round: u64,
    /// Distance vector after `round` supersteps (empty ⇒ fresh run).
    pub dist: Vec<u64>,
    /// Vertices still to relax next superstep.
    pub frontier: Vec<u32>,
}

impl Checkpoint for SsspProgress {
    fn save(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(3 + self.dist.len() + self.frontier.len());
        words.push(self.round);
        words.push(self.dist.len() as u64);
        words.extend_from_slice(&self.dist);
        words.push(self.frontier.len() as u64);
        words.extend(self.frontier.iter().map(|&v| v as u64));
        words
    }

    fn restore(&mut self, words: &[u64]) {
        if words.len() < 2 {
            *self = Self::default();
            return;
        }
        self.round = words[0];
        let n = (words[1] as usize).min(words.len().saturating_sub(2));
        self.dist = words[2..2 + n].to_vec();
        let at = 2 + n;
        let nf = words
            .get(at)
            .map_or(0, |&f| (f as usize).min(words.len().saturating_sub(at + 1)));
        self.frontier = words
            .get(at + 1..at + 1 + nf)
            .unwrap_or(&[])
            .iter()
            .map(|&v| v as u32)
            .collect();
    }
}

/// Run SSSP with an epoch cut after every superstep. Requires
/// `cfg.ha.checkpoint = true`. Resumes from `progress` (a
/// default-constructed progress starts fresh); returns the distance
/// vector as of the last superstep run. `max_rounds` bounds how many
/// supersteps *this call* runs (None = to convergence) — the
/// crash-resume seam tests cut on.
pub fn run_live_checkpointed(
    rt: &GravelRuntime,
    g: &Csr,
    source: u32,
    relax_id: u32,
    progress: &mut SsspProgress,
    max_rounds: Option<usize>,
) -> Vec<u64> {
    let n = g.num_vertices();
    let nodes = rt.nodes();
    let part = partition(g, nodes);
    for node in 0..nodes {
        assert!(rt.config().heap_len >= part.local_len(node), "heap too small");
    }
    let dir = directory(g, nodes);
    let (mut prev, mut frontier) = if progress.dist.len() == n {
        // Resume: the progress words are the authoritative state; the
        // heaps may be mid-superstep garbage after a crash, so re-seed
        // them from the checkpointed distances.
        for node in 0..nodes {
            rt.heap(node).reset(INF);
        }
        for (v, &d) in progress.dist.iter().enumerate() {
            if d != INF {
                let r = dir.route(v);
                rt.heap(r.dest as usize).store(r.offset, d);
            }
        }
        (progress.dist.clone(), progress.frontier.clone())
    } else {
        for node in 0..nodes {
            rt.heap(node).reset(INF);
        }
        let src = dir.route(source as usize);
        rt.heap(src.dest as usize).store(src.offset, 0);
        let mut prev = vec![INF; n];
        prev[source as usize] = 0;
        *progress = SsspProgress { round: 0, dist: prev.clone(), frontier: vec![source] };
        (prev, vec![source])
    };
    let mut done = 0usize;
    while !frontier.is_empty() && max_rounds.is_none_or(|m| done < m) {
        frontier = superstep(rt, g, &dir, relax_id, &mut prev, &frontier);
        done += 1;
        progress.round += 1;
        progress.dist = prev.clone();
        progress.frontier = frontier.clone();
        rt.cut_epoch_with(Some(progress));
    }
    prev
}

/// Communication trace: replay Bellman-Ford rounds sequentially,
/// recording each round's relaxations as one superstep.
///
/// Relaxations apply in place (messages land as they arrive in the real
/// system too) and the next frontier is collected incrementally, so trace
/// generation is `O(total relaxations)` — paper-scale meshes with
/// thousands of rounds stay tractable.
pub fn trace(name: &str, g: &Csr, nodes: usize, source: u32) -> WorkloadTrace {
    // Traversal uses the directed edge set. (The UF matrices are
    // symmetric, but chaotic in-place relaxation on the symmetrized mesh
    // lets improvements cascade backwards for O(V·E) worst-case work;
    // the directed mesh converges in O(diameter) rounds with the same
    // communication shape — many sparse supersteps, edge-cut remote
    // fraction — which is what the model consumes.)
    let n = g.num_vertices();
    let part = partition(g, nodes);
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    // Round stamp per vertex: avoids duplicate frontier entries without a
    // per-round clear.
    let mut stamped = vec![0u32; n];
    let mut round = 0u32;
    let mut t = WorkloadTrace::new(name, nodes);
    while !frontier.is_empty() {
        round += 1;
        let mut routed = vec![vec![0u64; nodes]; nodes];
        let mut gpu_ops = vec![0u64; nodes];
        let mut next = Vec::new();
        for &u in &frontier {
            let su = part.owner(u as usize);
            gpu_ops[su] += 1; // frontier scan + edge fetch
            let du = dist[u as usize];
            for (&v, &w) in g.neighbors(u).iter().zip(g.weights(u)) {
                routed[su][part.owner(v as usize)] += 1;
                let nd = du + w as u64;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    if stamped[v as usize] != round {
                        stamped[v as usize] = round;
                        next.push(v);
                    }
                }
            }
        }
        t.push_step(StepTrace {
            per_node: (0..nodes)
                .map(|s| NodeStep {
                    gpu_ops: gpu_ops[s],
                    routed: routed[s].clone(),
                    class: OpClass::Atomic,
                    local_pgas: 0, // relaxations are routed active messages
                })
                .collect(),
        });
        frontier = next;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{gen, reference};
    use gravel_core::GravelConfig;

    #[test]
    fn live_sssp_matches_dijkstra() {
        let g = gen::hugebubbles_like(144, 11);
        let mut relax_id = 0;
        let rt = GravelRuntime::with_handlers(GravelConfig::small(3, 64), |reg| {
            relax_id = register(reg);
        });
        let live = run_live(&rt, &g, 0, relax_id);
        rt.shutdown().expect("clean shutdown");
        assert_eq!(live, reference::sssp(&g, 0));
    }

    #[test]
    fn live_sssp_on_dense_graph() {
        let g = gen::cage15_like(100, 13);
        let mut relax_id = 0;
        let rt = GravelRuntime::with_handlers(GravelConfig::small(2, 64), |reg| {
            relax_id = register(reg);
        });
        let live = run_live(&rt, &g, 5, relax_id);
        rt.shutdown().expect("clean shutdown");
        assert_eq!(live, reference::sssp(&g, 5));
    }

    #[test]
    fn checkpointed_sssp_split_run_matches_dijkstra() {
        let g = gen::hugebubbles_like(144, 11);
        let mut relax_id = 0;
        let mut cfg = GravelConfig::small(3, 64);
        cfg.ha.checkpoint = true;
        let rt = GravelRuntime::with_handlers(cfg, |reg| {
            relax_id = register(reg);
        });
        let mut progress = SsspProgress::default();
        run_live_checkpointed(&rt, &g, 0, relax_id, &mut progress, Some(2));
        assert_eq!(progress.round, 2);
        // "Crash": rebuild progress from its checkpoint words and wreck
        // the heaps — resume must re-seed them from the progress state.
        let words = progress.save();
        let mut resumed = SsspProgress::default();
        resumed.restore(&words);
        assert_eq!(resumed, progress);
        for node in 0..3 {
            rt.heap(node).reset(0);
        }
        let live = run_live_checkpointed(&rt, &g, 0, relax_id, &mut resumed, None);
        assert_eq!(live, reference::sssp(&g, 0));
        // A second resume with converged progress is a no-op.
        assert_eq!(run_live_checkpointed(&rt, &g, 0, relax_id, &mut resumed, None), live);
        let stats = rt.shutdown().expect("clean shutdown");
        assert_eq!(stats.ha.epochs, resumed.round, "one cut per superstep");
    }

    #[test]
    fn sssp_progress_roundtrips_and_rejects_garbage() {
        let p = SsspProgress { round: 3, dist: vec![0, 5, INF], frontier: vec![1, 2] };
        let mut q = SsspProgress::default();
        q.restore(&p.save());
        assert_eq!(q, p);
        q.restore(&[]);
        assert_eq!(q, SsspProgress::default());
        // A truncated word stream must not panic.
        q.restore(&[7, 100, 1, 2]);
        assert_eq!(q.round, 7);
        assert_eq!(q.dist, vec![1, 2]);
        assert!(q.frontier.is_empty());
    }

    #[test]
    fn mesh_needs_many_more_supersteps_than_banded_graph() {
        // The SSSP-1 vs SSSP-2 contrast: diameter drives superstep count.
        let mesh = gen::hugebubbles_like(4_900, 3); // 70×70 grid
        let banded = gen::cage15_like(4_900, 3);
        let t_mesh = trace("SSSP-1", &mesh, 8, 0);
        let t_banded = trace("SSSP-2", &banded, 8, 0);
        assert!(
            t_mesh.steps.len() > 3 * t_banded.steps.len(),
            "mesh {} vs banded {}",
            t_mesh.steps.len(),
            t_banded.steps.len()
        );
    }

    #[test]
    fn trace_relaxation_count_bounds() {
        // Every traced message is a relaxation along an edge out of a
        // frontier vertex; each vertex enters the frontier at least once
        // if reachable, so total messages ≥ reachable edges once and is
        // finite (termination).
        let g = gen::hugebubbles_like(400, 5);
        let t = trace("SSSP", &g, 4, 0);
        assert!(t.total_routed() >= g.num_edges() as u64 / 2);
        assert!(t.steps.len() < 10 * g.num_vertices());
    }
}
