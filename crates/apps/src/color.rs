//! Greedy speculative graph coloring (paper §6: color-1 on hugebubbles,
//! color-2 on cage15; derived from GasCL).
//!
//! Rounds of speculate-and-resolve: every uncolored vertex picks the
//! smallest color absent from its (possibly stale) view of its
//! neighbours, publishes the choice to the owners of its neighbours with
//! PUT operations, and on the next round the lower-id endpoint of any
//! conflict retries. Like PageRank, color uses PUTs exclusively, so its
//! remote operations are executed by the destinations' network threads —
//! the paper's explanation for its sub-linear scaling.

use gravel_cluster::{NodeStep, OpClass, StepTrace, WorkloadTrace};
use gravel_core::GravelRuntime;
use gravel_pgas::{Layout, Partition};
use gravel_simt::{LaneVec, Mask};

use crate::graph::Csr;

/// Heap encoding: `0` = uncolored, otherwise `color + 1`.
const UNCOLORED: u64 = 0;

/// The vertex partition coloring uses.
pub fn partition(g: &Csr, nodes: usize) -> Partition {
    Partition::new(g.num_vertices(), nodes, Layout::Block)
}

fn smallest_free_color(taken: &mut Vec<u64>) -> u64 {
    taken.sort_unstable();
    taken.dedup();
    let mut c = 0u64;
    for &t in taken.iter() {
        if t == c {
            c += 1;
        } else if t > c {
            break;
        }
    }
    c
}

/// Run speculative coloring on the live runtime. Every node's heap holds
/// a full replica of the color array (heap_len ≥ |V|); replicas are kept
/// in sync with PUTs. Returns the color vector.
pub fn run_live(rt: &GravelRuntime, g: &Csr) -> Vec<u64> {
    let g = g.symmetrized();
    let n = g.num_vertices();
    let nodes = rt.nodes();
    let part = partition(&g, nodes);
    assert!(rt.config().heap_len >= n, "coloring replicates the color array");
    for node in 0..nodes {
        rt.heap(node).reset(UNCOLORED);
    }

    loop {
        // Speculation: each owner colors its currently-uncolored vertices
        // against its replica, then publishes.
        let mut any = false;
        for node in 0..nodes {
            let heap = rt.heap(node);
            let mine: Vec<(u32, u64)> = (0..n as u32)
                .filter(|&v| part.owner(v as usize) == node && heap.load(v as u64) == UNCOLORED)
                .map(|v| {
                    let mut taken: Vec<u64> = g
                        .neighbors(v)
                        .iter()
                        .filter(|&&u| u != v)
                        .map(|&u| heap.load(u as u64))
                        .filter(|&c| c != UNCOLORED)
                        .map(|c| c - 1)
                        .collect();
                    (v, smallest_free_color(&mut taken))
                })
                .collect();
            if mine.is_empty() {
                continue;
            }
            any = true;
            // Publish to every replica (own store + PUTs to the rest).
            let wg_size = rt.config().wg_size;
            let wgs = mine.len().div_ceil(wg_size);
            for dest in 0..nodes as u32 {
                rt.dispatch(node, wgs, |ctx| {
                    let gids = ctx.wg.global_ids();
                    let w = ctx.wg.wg_size();
                    let in_range = Mask::from_fn(w, |l| gids.get(l) < mine.len());
                    ctx.masked(&in_range, |ctx| {
                        let e = |l: usize| mine[gids.get(l).min(mine.len() - 1)];
                        let dests = LaneVec::splat(w, dest);
                        let addrs = LaneVec::from_fn(w, |l| e(l).0 as u64);
                        let vals = LaneVec::from_fn(w, |l| e(l).1 + 1);
                        ctx.shmem_put(&dests, &addrs, &vals);
                    });
                });
            }
        }
        rt.quiesce();
        if !any {
            break;
        }
        // Conflict resolution: the lower-id endpoint of a same-colored
        // edge retries next round (reset on every replica).
        let heap0 = rt.heap(0);
        let losers: Vec<u32> = g
            .iter_edges()
            .filter(|&(u, v, _)| {
                u < v && heap0.load(u as u64) != UNCOLORED
                    && heap0.load(u as u64) == heap0.load(v as u64)
            })
            .map(|(u, _, _)| u)
            .collect();
        if !losers.is_empty() {
            for node in 0..nodes {
                let heap = rt.heap(node);
                for &u in &losers {
                    heap.store(u as u64, UNCOLORED);
                }
            }
        }
    }
    (0..n as u64).map(|v| rt.heap(0).load(v) - 1).collect()
}

/// Communication trace: Jones–Plassmann priority rounds, the way
/// scalable vertex-centric coloring runs — a vertex colors itself when
/// its (hashed) priority beats every *uncolored* neighbour's, so rounds
/// are conflict-free and the round count is logarithmic. Per colored
/// vertex, one PUT per neighbour ships the color to the neighbour's
/// owner (per-edge ghost updates, matching the paper's PUT-per-edge cost
/// profile; Table 5's 36.7 % tracks the edge cut).
pub fn trace(name: &str, g: &Csr, nodes: usize) -> WorkloadTrace {
    let g = g.symmetrized_multi();
    let n = g.num_vertices();
    let part = partition(&g, nodes);
    let prio = |v: u32| crate::mer::kmer_hash(0x0c01_0c01 ^ v as u64);
    let mut colors = vec![UNCOLORED; n];
    // Scratch for the smallest-free-color search: mark[c] == tag ⇒ color
    // c is taken by a colored neighbour.
    let max_deg = (0..n as u32).map(|v| g.out_degree(v)).max().unwrap_or(0);
    let mut mark = vec![0u64; max_deg + 2];
    let mut tag = 0u64;
    let mut uncolored: Vec<u32> = (0..n as u32).collect();
    let mut t = WorkloadTrace::new(name, nodes);
    while !uncolored.is_empty() {
        let mut routed = vec![vec![0u64; nodes]; nodes];
        let mut gpu_ops = vec![0u64; nodes];
        let mut local_pgas = vec![0u64; nodes];
        let mut rest = Vec::with_capacity(uncolored.len() / 2);
        for &v in &uncolored {
            let owner = part.owner(v as usize);
            gpu_ops[owner] += g.out_degree(v) as u64; // neighbour scan
            let pv = prio(v);
            let is_max = g.neighbors(v).iter().all(|&u| {
                u == v || colors[u as usize] != UNCOLORED || prio(u) < pv
            });
            if !is_max {
                rest.push(v);
                continue;
            }
            // Smallest color free among colored neighbours.
            tag += 1;
            for &u in g.neighbors(v) {
                let cu = colors[u as usize];
                if u != v && cu != UNCOLORED {
                    mark[(cu - 1) as usize] = tag;
                }
            }
            let mut free = 0u64;
            while mark[free as usize] == tag {
                free += 1;
            }
            colors[v as usize] = free + 1;
            // Ghost updates: one PUT per neighbour.
            for &u in g.neighbors(v) {
                let o = part.owner(u as usize);
                if o != owner {
                    routed[owner][o] += 1;
                } else {
                    gpu_ops[owner] += 1; // local ghost store
                    local_pgas[owner] += 1;
                }
            }
        }
        t.push_step(StepTrace {
            per_node: (0..nodes)
                .map(|s| NodeStep {
                    gpu_ops: gpu_ops[s],
                    routed: routed[s].clone(),
                    class: OpClass::Put,
                    local_pgas: local_pgas[s],
                })
                .collect(),
        });
        uncolored = rest;
    }
    debug_assert!(crate::graph::coloring_valid(
        &g,
        &colors.iter().map(|&c| c - 1).collect::<Vec<_>>()
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{gen, reference};
    use gravel_core::GravelConfig;

    #[test]
    fn live_coloring_is_proper() {
        let g = gen::hugebubbles_like(100, 21);
        let rt = GravelRuntime::new(GravelConfig::small(2, g.num_vertices()));
        let colors = run_live(&rt, &g);
        rt.shutdown().expect("clean shutdown");
        assert!(reference::coloring_valid(&g.symmetrized(), &colors));
        // A triangular mesh colors with few colors.
        let max = colors.iter().max().unwrap();
        assert!(*max < 16, "used {} colors", max + 1);
    }

    #[test]
    fn live_coloring_dense_graph() {
        let g = gen::cage15_like(64, 22);
        let rt = GravelRuntime::new(GravelConfig::small(3, g.num_vertices()));
        let colors = run_live(&rt, &g);
        rt.shutdown().expect("clean shutdown");
        assert!(reference::coloring_valid(&g.symmetrized(), &colors));
    }

    #[test]
    fn trace_produces_proper_coloring_and_converges() {
        let g = gen::hugebubbles_like(900, 23);
        let t = trace("color-1", &g, 4);
        assert!(!t.steps.is_empty() && t.steps.len() < 64, "{} rounds", t.steps.len());
        assert!(t.total_routed() > 0);
    }

    #[test]
    fn trace_remote_fraction_reasonable() {
        let g = gen::hugebubbles_like(40_000, 2);
        let t = trace("color-1", &g, 8);
        let f = t.remote_fraction();
        // Table 5: color-1 is 36.7 % remote — per-edge ghost updates track
        // the edge cut (~38 % for the generator).
        assert!(f > 0.28 && f < 0.46, "remote fraction {f}");
    }
}
