//! Application-level telemetry summaries.
//!
//! Each instrumented app (`gups::run_live_instrumented`,
//! `pagerank::run_live_instrumented`) wraps its normal live run with
//! spans on the runtime's tracer and distills the cluster's metric
//! registry into the handful of numbers a benchmark report wants:
//! message totals, Table 5's remote fraction and packet size, and the
//! cluster-wide packet-latency quantiles (per-node histograms merged —
//! the same roll-up a multi-process deployment would do).

use gravel_core::telemetry::HistogramSnapshot;
use gravel_core::{GravelRuntime, NodeStats};

/// Distilled post-run telemetry of one application execution.
#[derive(Clone, Debug, serde::Serialize)]
pub struct AppTelemetry {
    /// Application name.
    pub app: String,
    /// Cluster size.
    pub nodes: u64,
    /// Messages offloaded across the cluster.
    pub offloaded: u64,
    /// Messages applied across the cluster.
    pub applied: u64,
    /// Fraction of PGAS operations that crossed nodes (Table 5).
    pub remote_fraction: f64,
    /// Mean aggregated packet size in bytes (Table 5).
    pub avg_packet_bytes: f64,
    /// Median aggregation-open → apply packet latency, ns (cluster-wide).
    pub packet_latency_p50_ns: u64,
    /// 95th-percentile packet latency, ns.
    pub packet_latency_p95_ns: u64,
    /// 99th-percentile packet latency, ns.
    pub packet_latency_p99_ns: u64,
    /// Worst packet latency, ns.
    pub packet_latency_max_ns: u64,
}

impl AppTelemetry {
    /// Summarise `rt`'s registry after a quiesced run of `app`.
    pub fn collect(app: &str, rt: &GravelRuntime) -> Self {
        let snap = rt.telemetry_snapshot();
        let nodes = rt.nodes();
        let stats: Vec<NodeStats> =
            (0..nodes).map(|i| NodeStats::from_snapshot(i as u32, &snap)).collect();
        let offloaded = stats.iter().map(|s| s.offloaded).sum();
        let applied = stats.iter().map(|s| s.applied).sum();
        let (remote, routed_total) = stats.iter().fold((0u64, 0u64), |(r, t), s| {
            (r + s.remote_routed, t + s.local_direct + s.local_routed + s.remote_routed)
        });
        let (bytes, packets) =
            stats.iter().fold((0u64, 0u64), |(b, p), s| (b + s.agg.bytes, p + s.agg.packets));
        let mut latency = HistogramSnapshot::default();
        for i in 0..nodes {
            if let Some(h) = snap.histogram(&format!("node{i}.net.packet_latency_ns")) {
                latency.merge(h);
            }
        }
        AppTelemetry {
            app: app.to_string(),
            nodes: nodes as u64,
            offloaded,
            applied,
            remote_fraction: if routed_total == 0 {
                0.0
            } else {
                remote as f64 / routed_total as f64
            },
            avg_packet_bytes: if packets == 0 { 0.0 } else { bytes as f64 / packets as f64 },
            packet_latency_p50_ns: latency.p50(),
            packet_latency_p95_ns: latency.p95(),
            packet_latency_p99_ns: latency.p99(),
            packet_latency_max_ns: latency.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gravel_core::GravelConfig;
    use gravel_simt::LaneVec;

    #[test]
    fn collect_summarises_a_quiesced_run() {
        let rt = GravelRuntime::new(GravelConfig::small(2, 8));
        rt.dispatch(0, 2, |ctx| {
            let n = ctx.wg.wg_size();
            let dests = LaneVec::splat(n, 1u32);
            let addrs = LaneVec::splat(n, 0u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
        rt.quiesce();
        let t = AppTelemetry::collect("unit", &rt);
        assert_eq!(t.offloaded, 128);
        assert_eq!(t.applied, 128);
        assert!((t.remote_fraction - 1.0).abs() < 1e-12);
        assert!(t.avg_packet_bytes > 0.0);
        assert!(t.packet_latency_max_ns >= t.packet_latency_p50_ns);
        assert!(t.packet_latency_p50_ns > 0, "packets took nonzero time");
        rt.shutdown().expect("clean shutdown");
    }
}
