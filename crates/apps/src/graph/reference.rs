//! Sequential reference implementations used to verify the distributed
//! applications.

use std::collections::BinaryHeap;

use super::csr::Csr;

/// Fixed-point scale shared by the PageRank implementations: ranks are
/// `u64` multiples of `1 / FIXED_ONE`. Integer arithmetic makes the
/// distributed accumulation *exactly* reproducible (u64 adds commute).
pub const FIXED_ONE: u64 = 1 << 32;

/// One synchronous PageRank iteration in fixed point:
/// `next[v] = base + damping × Σ_{(u,v)∈E} rank[u] / outdeg(u)`.
/// `damping` is in fixed-point (e.g. `0.85 × FIXED_ONE`).
pub fn pagerank_step(g: &Csr, rank: &[u64], damping: u64) -> Vec<u64> {
    let n = g.num_vertices();
    assert_eq!(rank.len(), n);
    let base = (FIXED_ONE - damping) / n as u64;
    let mut acc = vec![0u64; n];
    for u in 0..n as u32 {
        let deg = g.out_degree(u) as u64;
        if deg == 0 {
            continue;
        }
        let share = rank[u as usize] / deg;
        for &v in g.neighbors(u) {
            acc[v as usize] += share;
        }
    }
    acc.iter().map(|&a| base + ((a as u128 * damping as u128) >> 32) as u64).collect()
}

/// Run `iters` PageRank iterations from the uniform distribution.
pub fn pagerank(g: &Csr, iters: usize, damping: u64) -> Vec<u64> {
    let n = g.num_vertices();
    let mut rank = vec![FIXED_ONE / n as u64; n];
    for _ in 0..iters {
        rank = pagerank_step(g, &rank, damping);
    }
    rank
}

/// Dijkstra single-source shortest paths; `u64::MAX` marks unreachable.
pub fn sssp(g: &Csr, source: u32) -> Vec<u64> {
    let n = g.num_vertices();
    let mut dist = vec![u64::MAX; n];
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(std::cmp::Reverse((0u64, source)));
    while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (&v, &w) in g.neighbors(u).iter().zip(g.weights(u)) {
            let nd = d + w as u64;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(std::cmp::Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Count each vertex's in-edges (the paper's §5.1 running example).
pub fn in_degrees(g: &Csr) -> Vec<u64> {
    let mut counts = vec![0u64; g.num_vertices()];
    for (_, v, _) in g.iter_edges() {
        counts[v as usize] += 1;
    }
    counts
}

/// Validate a coloring: no edge may connect two same-colored vertices
/// (self-loops exempt), and every vertex must be colored (`!= u64::MAX`).
pub fn coloring_valid(g: &Csr, colors: &[u64]) -> bool {
    if colors.len() != g.num_vertices() {
        return false;
    }
    if colors.contains(&u64::MAX) {
        return false;
    }
    g.iter_edges().all(|(u, v, _)| u == v || colors[u as usize] != colors[v as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Csr {
        // 0 → 1 → 2 with weights 2, 3.
        Csr::from_edges(3, vec![(0, 1, 2), (1, 2, 3)])
    }

    #[test]
    fn sssp_on_path() {
        let d = sssp(&path3(), 0);
        assert_eq!(d, vec![0, 2, 5]);
        let d1 = sssp(&path3(), 1);
        assert_eq!(d1, vec![u64::MAX, 0, 3]);
    }

    #[test]
    fn sssp_takes_shortcut() {
        // 0→1 (10), 0→2 (1), 2→1 (2): best 0→1 is 3.
        let g = Csr::from_edges(3, vec![(0, 1, 10), (0, 2, 1), (2, 1, 2)]);
        assert_eq!(sssp(&g, 0), vec![0, 3, 1]);
    }

    #[test]
    fn pagerank_mass_is_conserved_approximately() {
        let g = super::super::gen::cage15_like(200, 1);
        let damping = (0.85 * FIXED_ONE as f64) as u64;
        let r = pagerank(&g, 10, damping);
        let total: u64 = r.iter().sum();
        // Fixed-point truncation loses a little mass but stays near 1.0.
        let frac = total as f64 / FIXED_ONE as f64;
        assert!(frac > 0.90 && frac <= 1.001, "mass {frac}");
    }

    #[test]
    fn pagerank_sink_heavy_vertex_ranks_higher() {
        // Star into vertex 0.
        let g = Csr::from_unweighted(4, vec![(1, 0), (2, 0), (3, 0), (0, 1)]);
        let damping = (0.85 * FIXED_ONE as f64) as u64;
        let r = pagerank(&g, 20, damping);
        assert!(r[0] > r[2] && r[0] > r[3], "{r:?}");
    }

    #[test]
    fn in_degrees_matches_paper_example() {
        // Fig. 9a: v0..v3 with in-edge counts [2,3,3,2].
        let g = Csr::from_unweighted(
            4,
            vec![
                (0, 1), (0, 2), // e0, e1 (v0's out-edges)
                (1, 0), (1, 2), (1, 3), // e2, e3, e4
                (2, 1), (2, 3), // e5, e6
                (3, 0), (3, 1), (3, 2), // e7, e8, e9
            ],
        );
        assert_eq!(in_degrees(&g), vec![2, 3, 3, 2]);
    }

    #[test]
    fn coloring_validation() {
        let g = Csr::from_unweighted(3, vec![(0, 1), (1, 2)]);
        assert!(coloring_valid(&g, &[0, 1, 0]));
        assert!(!coloring_valid(&g, &[0, 0, 1]), "adjacent same color");
        assert!(!coloring_valid(&g, &[0, 1, u64::MAX]), "uncolored vertex");
        assert!(!coloring_valid(&g, &[0, 1]), "wrong length");
    }
}
