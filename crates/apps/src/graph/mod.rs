//! Graph substrate: CSR storage, synthetic input generators, and
//! sequential references.

pub mod csr;
pub mod gen;
pub mod reference;

pub use csr::Csr;
pub use gen::{cage15_like, hugebubbles_like, remote_edge_fraction};
pub use reference::{coloring_valid, in_degrees, pagerank, pagerank_step, sssp, FIXED_ONE};
