//! Synthetic graph generators standing in for the paper's inputs
//! (Table 4).
//!
//! The originals are from the UFlorida sparse-matrix collection:
//!
//! * **hugebubbles-00020** — ~21 M vertices, ~64 M edges (avg out-degree
//!   ≈ 3): an adaptively refined 2-D triangular mesh. What matters for
//!   Gravel is its *communication* shape: low degree, long diameter, and
//!   moderate partition locality (PR-1 sees 37.7 % remote at 8 nodes,
//!   Table 5). [`hugebubbles_like`] generates a 2-D triangular mesh and
//!   shuffles a fitted fraction of vertex labels to match that remote
//!   rate without shortening the diameter.
//! * **cage15** — ~5.2 M vertices, ~99 M edges (avg degree ≈ 19): a DNA
//!   electrophoresis transition matrix with strong banding. PR-2 sees
//!   only 16.5 % remote at 8 nodes. [`cage15_like`] generates a banded
//!   graph whose neighbour-offset window is fitted to that locality.
//!
//! Both generators are deterministic in their seed and scale freely, so
//! tests use thousands of vertices where the benches use hundreds of
//! thousands.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::csr::Csr;

/// Fraction of mesh vertices whose labels are shuffled, fitted so
/// block-partitioned PR at 8 nodes sees ≈ 37.7 % remote traffic
/// (Table 5, PR-1). Label shuffling — unlike edge rewiring — leaves graph
/// distances intact, so the mesh keeps the long diameter that makes
/// SSSP-1 superstep-bound.
pub const HUGEBUBBLES_SHUFFLE: f64 = 0.25;

/// Neighbour-window half-width as a fraction of the vertex count, fitted
/// so block-partitioned PR at 8 nodes sees ≈ 16.5 % remote traffic
/// (Table 5, PR-2).
pub const CAGE_BAND_FRACTION: f64 = 0.045;

/// Fraction of cage edges with uniform-random targets. cage15 is banded
/// but not a pure ring: its BFS levels spread across the whole matrix
/// within a few hops, which is what load-balances SSSP-2's frontier.
pub const CAGE_LONG_RANGE: f64 = 0.02;

/// A hugebubbles-like mesh over ~`n` vertices (rounded to a square grid).
/// Each vertex links right, down, and diagonally (a triangular mesh,
/// avg out-degree ≈ 3). A [`HUGEBUBBLES_SHUFFLE`] fraction of vertex
/// labels is permuted to reproduce the original ordering's imperfect
/// partition locality. Edge weights are uniform in `1..=15` (SSSP).
pub fn hugebubbles_like(n: usize, seed: u64) -> Csr {
    let side = (n as f64).sqrt().ceil() as usize;
    let n = side * side;
    let mut rng = StdRng::seed_from_u64(seed);
    // Partial label shuffle: pick ~HUGEBUBBLES_SHUFFLE of the vertices and
    // permute their labels among themselves (Fisher-Yates on the subset).
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let subset: Vec<usize> = (0..n).filter(|_| rng.gen_bool(HUGEBUBBLES_SHUFFLE)).collect();
    for i in (1..subset.len()).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(subset[i], subset[j]);
    }
    let mut edges = Vec::with_capacity(3 * n);
    let idx = |r: usize, c: usize| perm[r * side + c];
    for r in 0..side {
        for c in 0..side {
            let u = idx(r, c);
            if c + 1 < side {
                edges.push((u, idx(r, c + 1), rng.gen_range(1..=15u32)));
            }
            if r + 1 < side {
                edges.push((u, idx(r + 1, c), rng.gen_range(1..=15u32)));
            }
            if r + 1 < side && c + 1 < side {
                edges.push((u, idx(r + 1, c + 1), rng.gen_range(1..=15u32)));
            }
        }
    }
    Csr::from_edges(n, edges)
}

/// A cage15-like banded graph: `n` vertices, ~19 out-edges each, targets
/// within ± [`CAGE_BAND_FRACTION`]·n of the source (wrapping) plus a
/// [`CAGE_LONG_RANGE`] sprinkle of uniform edges, weights in `1..=15`.
pub fn cage15_like(n: usize, seed: u64) -> Csr {
    assert!(n >= 32, "cage generator needs a non-trivial vertex count");
    let mut rng = StdRng::seed_from_u64(seed);
    let band = ((n as f64 * CAGE_BAND_FRACTION) as usize).max(2) as i64;
    let degree = 19usize;
    let mut edges = Vec::with_capacity(degree * n);
    for u in 0..n as i64 {
        for _ in 0..degree {
            let v = if rng.gen_bool(CAGE_LONG_RANGE) {
                rng.gen_range(0..n as u32)
            } else {
                let off = rng.gen_range(-band..=band);
                (u + off).rem_euclid(n as i64) as u32
            };
            let w = rng.gen_range(1..=15u32);
            edges.push((u as u32, v, w));
        }
    }
    Csr::from_edges(n, edges)
}

/// Remote-edge fraction of `g` under a block partition over `nodes`
/// nodes — the quantity the generator constants are fitted against.
pub fn remote_edge_fraction(g: &Csr, nodes: usize) -> f64 {
    let part = gravel_pgas::Partition::new(g.num_vertices(), nodes, gravel_pgas::Layout::Block);
    let mut remote = 0usize;
    let mut total = 0usize;
    for (u, v, _) in g.iter_edges() {
        total += 1;
        if part.owner(u as usize) != part.owner(v as usize) {
            remote += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        remote as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hugebubbles_shape() {
        let g = hugebubbles_like(10_000, 1);
        assert_eq!(g.num_vertices(), 10_000);
        // Avg out-degree ≈ 3 (boundary vertices slightly lower).
        assert!(g.avg_degree() > 2.7 && g.avg_degree() < 3.0, "{}", g.avg_degree());
    }

    #[test]
    fn hugebubbles_remote_fraction_matches_table5() {
        let g = hugebubbles_like(40_000, 2);
        let r = remote_edge_fraction(&g, 8);
        // Table 5: PR-1 is 37.7 % remote. Allow a band.
        assert!(r > 0.30 && r < 0.45, "remote fraction {r}");
    }

    #[test]
    fn cage_shape() {
        let g = cage15_like(5_000, 3);
        assert_eq!(g.num_vertices(), 5_000);
        assert!((g.avg_degree() - 19.0).abs() < 0.01, "{}", g.avg_degree());
    }

    #[test]
    fn cage_remote_fraction_matches_table5() {
        let g = cage15_like(40_000, 4);
        let r = remote_edge_fraction(&g, 8);
        // Table 5: PR-2 is 16.5 % remote. Allow a band.
        assert!(r > 0.10 && r < 0.24, "remote fraction {r}");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(hugebubbles_like(900, 7), hugebubbles_like(900, 7));
        assert_eq!(cage15_like(900, 7), cage15_like(900, 7));
        assert_ne!(cage15_like(900, 7), cage15_like(900, 8));
    }

    #[test]
    fn weights_in_range() {
        let g = cage15_like(500, 5);
        for (_, _, w) in g.iter_edges() {
            assert!((1..=15).contains(&w));
        }
    }
}
