//! Compressed-sparse-row graphs.
//!
//! The graph applications (PageRank, SSSP, coloring — all derived from
//! GasCL, paper §6) traverse directed graphs in CSR form: a vertex's
//! out-edges are a contiguous slice of the edge array.

/// A directed graph in CSR form, with optional per-edge weights.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    edges: Vec<u32>,
    weights: Vec<u32>,
}

impl Csr {
    /// Build from an edge list. Edges are sorted by source; parallel
    /// edges and self-loops are kept (real inputs contain them).
    pub fn from_edges(n: usize, mut list: Vec<(u32, u32, u32)>) -> Self {
        for &(u, v, _) in &list {
            assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of range {n}");
        }
        list.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let mut offsets = vec![0usize; n + 1];
        for &(u, _, _) in &list {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let edges = list.iter().map(|&(_, v, _)| v).collect();
        let weights = list.iter().map(|&(_, _, w)| w).collect();
        Csr { offsets, edges, weights }
    }

    /// Build an unweighted graph (all weights 1).
    pub fn from_unweighted(n: usize, list: Vec<(u32, u32)>) -> Self {
        Self::from_edges(n, list.into_iter().map(|(u, v)| (u, v, 1)).collect())
    }

    /// Vertex count.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Directed edge count.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Out-neighbours of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.edges[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Out-edge weights of `v`, parallel to [`neighbors`](Self::neighbors).
    pub fn weights(&self, v: u32) -> &[u32] {
        &self.weights[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// The symmetric closure: every edge `(u, v)` gains `(v, u)` (weights
    /// preserved), then duplicates are dropped. Graph coloring treats the
    /// input as undirected and needs both directions for neighbour scans.
    pub fn symmetrized(&self) -> Csr {
        let mut list: Vec<(u32, u32, u32)> = Vec::with_capacity(2 * self.num_edges());
        for (u, v, w) in self.iter_edges() {
            list.push((u, v, w));
            list.push((v, u, w));
        }
        list.sort_unstable();
        list.dedup_by_key(|&mut (u, v, _)| (u, v));
        Csr::from_edges(self.num_vertices(), list)
    }

    /// The symmetric closure *without* duplicate elimination: every edge
    /// contributes both directions; parallel edges are kept. Built with a
    /// counting pass (no comparison sort), so it handles paper-scale
    /// graphs in `O(E)` — use this when duplicates are harmless (e.g.
    /// coloring's neighbour scans).
    pub fn symmetrized_multi(&self) -> Csr {
        let n = self.num_vertices();
        let mut deg = vec![0usize; n + 1];
        for (u, v, _) in self.iter_edges() {
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let offsets = deg.clone();
        let total = offsets[n];
        let mut edges = vec![0u32; total];
        let mut weights = vec![0u32; total];
        let mut cursor = offsets.clone();
        for (u, v, w) in self.iter_edges() {
            let cu = cursor[u as usize];
            edges[cu] = v;
            weights[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize];
            edges[cv] = u;
            weights[cv] = w;
            cursor[v as usize] += 1;
        }
        Csr { offsets, edges, weights }
    }

    /// Iterate all edges as `(u, v, w)`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        (0..self.num_vertices() as u32).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .zip(self.weights(u))
                .map(move |(&v, &w)| (u, v, w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3
        Csr::from_unweighted(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn structure() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert!((g.avg_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let g = Csr::from_unweighted(3, vec![(2, 0), (0, 2), (0, 1), (1, 0)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn weights_parallel_to_edges() {
        let g = Csr::from_edges(2, vec![(0, 1, 7), (0, 0, 3)]);
        assert_eq!(g.neighbors(0), &[0, 1]);
        assert_eq!(g.weights(0), &[3, 7]);
    }

    #[test]
    fn iter_edges_roundtrip() {
        let g = diamond();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        Csr::from_unweighted(2, vec![(0, 5)]);
    }

    #[test]
    fn symmetrized_multi_keeps_duplicates_and_both_directions() {
        let g = Csr::from_unweighted(3, vec![(0, 1), (1, 0), (1, 2)]);
        let s = g.symmetrized_multi();
        assert_eq!(s.num_edges(), 6); // every directed edge mirrored
        assert_eq!(s.neighbors(0), &[1, 1]); // duplicate kept
        assert_eq!(s.neighbors(2), &[1]);
        // Weights travel with both directions.
        let w = Csr::from_edges(2, vec![(0, 1, 9)]).symmetrized_multi();
        assert_eq!(w.weights(1), &[9]);
    }

    #[test]
    fn symmetrized_adds_reverse_edges_once() {
        let g = Csr::from_unweighted(3, vec![(0, 1), (1, 0), (1, 2)]);
        let s = g.symmetrized();
        assert_eq!(s.neighbors(0), &[1]);
        assert_eq!(s.neighbors(1), &[0, 2]);
        assert_eq!(s.neighbors(2), &[1]);
        assert_eq!(s.num_edges(), 4);
    }
}
