//! K-means clustering (paper §6, Table 4: 8 clusters, 16 M points).
//!
//! Lloyd's algorithm with distributed accumulators: every point computes
//! its nearest center locally (pure data-parallel work), then ships
//! `(Σx, Σy, count)` contributions to the owner of its cluster's
//! accumulator cells with atomic increments. All arithmetic is integer
//! (points live on a grid), so the distributed result matches the
//! sequential reference exactly.

use gravel_cluster::{NodeStep, OpClass, StepTrace, WorkloadTrace};
use gravel_core::GravelRuntime;
use gravel_pgas::{Layout, Partition};
use gravel_simt::{LaneVec, Mask};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// K-means problem description.
#[derive(Clone, Copy, Debug)]
pub struct KmeansInput {
    /// Total points across the cluster (Table 4: 16 M).
    pub points: usize,
    /// Clusters (Table 4: 8).
    pub clusters: usize,
    /// Lloyd iterations.
    pub iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl KmeansInput {
    /// A small deterministic instance for tests/examples.
    pub fn small() -> Self {
        KmeansInput { points: 2000, clusters: 4, iters: 4, seed: 17 }
    }
}

/// Coordinate range (points on a `[0, RANGE)²` integer grid).
pub const RANGE: u64 = 1 << 20;

/// Generate node `node`'s points: clustered blobs, deterministic.
pub fn node_points(input: &KmeansInput, nodes: usize, node: usize) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(input.seed ^ (node as u64).wrapping_mul(0x517c_c1b7));
    let count = input.points / nodes + usize::from(node < input.points % nodes);
    // Blob centers shared across nodes (same seed derivation).
    let mut crng = StdRng::seed_from_u64(input.seed);
    let blobs: Vec<(u64, u64)> =
        (0..input.clusters).map(|_| (crng.gen_range(0..RANGE), crng.gen_range(0..RANGE))).collect();
    (0..count)
        .map(|_| {
            let (bx, by) = blobs[rng.gen_range(0..blobs.len())];
            let spread = RANGE / 16;
            let x = bx.saturating_add(rng.gen_range(0..spread)).min(RANGE - 1);
            let y = by.saturating_add(rng.gen_range(0..spread)).min(RANGE - 1);
            (x, y)
        })
        .collect()
}

/// Initial centers: the first `clusters` blob positions.
pub fn initial_centers(input: &KmeansInput) -> Vec<(u64, u64)> {
    let mut crng = StdRng::seed_from_u64(input.seed);
    (0..input.clusters).map(|_| (crng.gen_range(0..RANGE), crng.gen_range(0..RANGE))).collect()
}

fn nearest(centers: &[(u64, u64)], p: (u64, u64)) -> usize {
    let mut best = 0usize;
    let mut best_d = u64::MAX;
    for (c, &(cx, cy)) in centers.iter().enumerate() {
        let dx = p.0.abs_diff(cx);
        let dy = p.1.abs_diff(cy);
        let d = dx * dx + dy * dy;
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// The accumulator partition: `3 × clusters` cells (Σx, Σy, count per
/// cluster), scattered cyclically so accumulator ownership spreads across
/// nodes.
pub fn partition(input: &KmeansInput, nodes: usize) -> Partition {
    Partition::new(3 * input.clusters, nodes, Layout::Cyclic)
}

/// Run k-means on the live runtime; returns the final centers.
pub fn run_live(rt: &GravelRuntime, input: &KmeansInput) -> Vec<(u64, u64)> {
    let nodes = rt.nodes();
    let part = partition(input, nodes);
    let mut centers = initial_centers(input);
    let all_points: Vec<Vec<(u64, u64)>> =
        (0..nodes).map(|n| node_points(input, nodes, n)).collect();
    for _ in 0..input.iters {
        for node in 0..nodes {
            rt.heap(node).reset(0);
        }
        for (node, points) in all_points.iter().enumerate() {
            let centers = centers.clone();
            let wg_size = rt.config().wg_size;
            let wgs = points.len().div_ceil(wg_size).max(1);
            rt.dispatch(node, wgs, |ctx| {
                let gids = ctx.wg.global_ids();
                let w = ctx.wg.wg_size();
                let in_range = Mask::from_fn(w, |l| gids.get(l) < points.len());
                ctx.masked(&in_range, |ctx| {
                    let assign = |l: usize| {
                        let p = points[gids.get(l).min(points.len() - 1)];
                        (nearest(&centers, p), p)
                    };
                    // Three increments per point: Σx, Σy, count.
                    for component in 0..3usize {
                        let dests = LaneVec::from_fn(w, |l| {
                            let (c, _) = assign(l);
                            part.owner(3 * c + component) as u32
                        });
                        let addrs = LaneVec::from_fn(w, |l| {
                            let (c, _) = assign(l);
                            part.local_offset(3 * c + component)
                        });
                        let vals = LaneVec::from_fn(w, |l| {
                            let (_, p) = assign(l);
                            match component {
                                0 => p.0,
                                1 => p.1,
                                _ => 1,
                            }
                        });
                        ctx.shmem_inc(&dests, &addrs, &vals);
                    }
                });
            });
        }
        rt.quiesce();
        // New centers from the distributed accumulators.
        for (c, center) in centers.iter_mut().enumerate() {
            let read = |cell: usize| {
                let g = 3 * c + cell;
                rt.heap(part.owner(g)).load(part.local_offset(g))
            };
            let (sx, sy, cnt) = (read(0), read(1), read(2));
            if let (Some(x), Some(y)) = (sx.checked_div(cnt), sy.checked_div(cnt)) {
                *center = (x, y);
            }
        }
    }
    centers
}

/// Sequential reference with identical arithmetic and tie-breaking.
pub fn reference(input: &KmeansInput, nodes: usize) -> Vec<(u64, u64)> {
    let mut centers = initial_centers(input);
    let all: Vec<(u64, u64)> =
        (0..nodes).flat_map(|n| node_points(input, nodes, n)).collect();
    for _ in 0..input.iters {
        let mut acc = vec![(0u64, 0u64, 0u64); input.clusters];
        for &p in &all {
            let c = nearest(&centers, p);
            acc[c].0 += p.0;
            acc[c].1 += p.1;
            acc[c].2 += 1;
        }
        for (c, &(sx, sy, cnt)) in acc.iter().enumerate() {
            if let (Some(x), Some(y)) = (sx.checked_div(cnt), sy.checked_div(cnt)) {
                centers[c] = (x, y);
            }
        }
    }
    centers
}

/// Communication trace: per iteration, one scatter step (3 atomic
/// increments per point, destinations weighted by actual cluster
/// assignment evolution) and one small center-broadcast step.
pub fn trace(input: &KmeansInput, nodes: usize) -> WorkloadTrace {
    let part = partition(input, nodes);
    let mut centers = initial_centers(input);
    let all_points: Vec<Vec<(u64, u64)>> =
        (0..nodes).map(|n| node_points(input, nodes, n)).collect();
    let mut t = WorkloadTrace::new("kmeans", nodes);
    for _ in 0..input.iters {
        let mut routed = vec![vec![0u64; nodes]; nodes];
        let mut gpu_ops = vec![0u64; nodes];
        let mut acc = vec![(0u64, 0u64, 0u64); input.clusters];
        for (node, points) in all_points.iter().enumerate() {
            // Distance evaluation: clusters × points local compute.
            gpu_ops[node] += (points.len() * input.clusters) as u64;
            for &p in points {
                let c = nearest(&centers, p);
                acc[c].0 += p.0;
                acc[c].1 += p.1;
                acc[c].2 += 1;
                for cell in 0..3 {
                    routed[node][part.owner(3 * c + cell)] += 1;
                }
            }
        }
        for (c, &(sx, sy, cnt)) in acc.iter().enumerate() {
            if let (Some(x), Some(y)) = (sx.checked_div(cnt), sy.checked_div(cnt)) {
                centers[c] = (x, y);
            }
        }
        t.push_step(StepTrace {
            per_node: (0..nodes)
                .map(|s| NodeStep {
                    gpu_ops: gpu_ops[s],
                    routed: routed[s].clone(),
                    class: OpClass::Atomic,
                    local_pgas: 0,
                })
                .collect(),
        });
        // Center broadcast: each accumulator owner PUTs the new center to
        // every other node (tiny step).
        let mut broadcast = vec![vec![0u64; nodes]; nodes];
        for c in 0..input.clusters {
            let owner = part.owner(3 * c);
            for (d, b) in broadcast[owner].iter_mut().enumerate() {
                if d != owner {
                    *b += 1;
                }
            }
        }
        t.push_step(StepTrace {
            per_node: (0..nodes)
                .map(|s| NodeStep {
                    gpu_ops: 1,
                    routed: broadcast[s].clone(),
                    class: OpClass::Put,
                    local_pgas: 1, // the owner's local replica store
                })
                .collect(),
        });
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use gravel_core::GravelConfig;

    #[test]
    fn live_kmeans_matches_reference_exactly() {
        let input = KmeansInput::small();
        let rt = GravelRuntime::new(GravelConfig::small(2, 3 * input.clusters));
        let live = run_live(&rt, &input);
        rt.shutdown().expect("clean shutdown");
        assert_eq!(live, reference(&input, 2));
    }

    #[test]
    fn centers_move_toward_blobs() {
        let input = KmeansInput { points: 4000, clusters: 4, iters: 6, seed: 5 };
        let start = initial_centers(&input);
        let end = reference(&input, 1);
        assert_ne!(start, end, "iterations must move the centers");
        // Every final center stays on the grid.
        for &(x, y) in &end {
            assert!(x < RANGE && y < RANGE);
        }
    }

    #[test]
    fn nearest_breaks_ties_by_lowest_index() {
        let centers = [(0u64, 0u64), (2, 0)];
        assert_eq!(nearest(&centers, (1, 0)), 0);
    }

    #[test]
    fn trace_has_scatter_and_broadcast_steps() {
        let input = KmeansInput::small();
        let t = trace(&input, 4);
        assert_eq!(t.steps.len(), 2 * input.iters);
        // Scatter routes 3 messages per point per iteration.
        let scatter: u64 = t.steps[0].per_node.iter().map(|n| n.routed_total()).sum();
        assert_eq!(scatter, 3 * input.points as u64);
    }

    #[test]
    fn trace_remote_fraction_high_like_table5() {
        let input = KmeansInput { points: 20_000, clusters: 8, iters: 1, seed: 9 };
        let t = trace(&input, 8);
        // Table 5: 87.5 %. Our accumulators are cyclic over 24 cells on 8
        // nodes; distance compute counts as local ops, so measure routed
        // messages only.
        let step = &t.steps[0];
        let mut remote = 0u64;
        let mut total = 0u64;
        for (src, ns) in step.per_node.iter().enumerate() {
            for (dest, &m) in ns.routed.iter().enumerate() {
                total += m;
                if dest != src {
                    remote += m;
                }
            }
        }
        let f = remote as f64 / total as f64;
        assert!(f > 0.8 && f <= 1.0, "remote fraction {f}");
    }
}
