//! Meraculous phase 2 — distributed hash-table *traversal* (paper §6:
//! "We evaluate phase 1 and leave phase 2, which has significant branch
//! divergence, for future work").
//!
//! This module implements that future work on the reproduction's
//! substrates. Phase 1 is extended to record each k-mer's forward
//! extension (the base that follows it in the reads); phase 2 walks the
//! resulting de Bruijn chains: every active walk looks up its current
//! k-mer at the owner node and advances by the returned base. Remote
//! lookups are *request/response active messages* — the lookup handler
//! probes its local table slice and replies with a PUT into the
//! requester's mailbox, riding the normal Gravel path (queue → aggregator
//! → wire) in both directions. Walks finish at different times, which is
//! precisely the branch divergence the paper warned about; the kernel
//! masks finished walks off lane by lane.
//!
//! Heap layout per node (`heap_len = 2 × t_local + mailbox`):
//! `[0, t_local)` k-mer cells (`kmer + 1`, 0 = empty);
//! `[t_local, 2·t_local)` extension cells (`base + 1`);
//! `[2·t_local, …)` reply mailbox (0 = pending, 1 = miss, `2+base` = hit).

use std::collections::HashMap;

use gravel_core::GravelRuntime;
use gravel_pgas::{Layout, Partition};
use gravel_simt::{LaneVec, Mask};

use crate::mer::{kmer_hash, synthetic_reads, MerInput};

/// Reply encodings in the mailbox.
const PENDING: u64 = 0;
const MISS: u64 = 1;

/// Pack the lookup request's routing info into the AM `addr` word:
/// local probe offset (32 bits) | reply node (8 bits) | mailbox slot
/// (24 bits).
fn pack_addr(probe: u64, reply_node: u32, slot: u64) -> u64 {
    debug_assert!(probe < (1 << 32) && slot < (1 << 24) && reply_node < 256);
    probe | ((reply_node as u64) << 32) | (slot << 40)
}

/// Register phase-2's two handlers. `t_local` is each node's table-slice
/// length; `mailbox_base = 2 × t_local`. Returns `(insert_id, lookup_id)`.
pub fn register(reg: &mut gravel_pgas::AmRegistry, t_local: u64) -> (u32, u32) {
    // Insert: `addr` = probe start, `value` = (kmer << 2) | base.
    let insert = reg.register(Box::new(move |heap, addr, value| {
        let kmer = value >> 2;
        let base = value & 3;
        let mut i = addr % t_local;
        for _ in 0..t_local {
            let cur = heap.load(i);
            if cur == kmer + 1 {
                return; // present; first extension wins
            }
            if cur == 0 {
                heap.store(i, kmer + 1);
                heap.store(t_local + i, base + 1);
                return;
            }
            i = (i + 1) % t_local;
        }
    }));
    // Lookup: `addr` packs (probe, reply node, slot); `value` = kmer.
    let lookup = reg.register_replying(Box::new(move |heap, addr, value, reply| {
        let probe = addr & 0xffff_ffff;
        let reply_node = ((addr >> 32) & 0xff) as u32;
        let slot = addr >> 40;
        let mailbox = 2 * t_local + slot;
        let mut i = probe % t_local;
        for _ in 0..t_local {
            let cur = heap.load(i);
            if cur == value + 1 {
                let base = heap.load(t_local + i) - 1;
                reply(gravel_gq::Message::put(reply_node, mailbox, 2 + base));
                return;
            }
            if cur == 0 {
                break;
            }
            i = (i + 1) % t_local;
        }
        reply(gravel_gq::Message::put(reply_node, mailbox, MISS));
    }));
    (insert, lookup)
}

/// Phase 1 with extensions: insert every `(k+1)`-mer of every read as
/// `kmer → next base`.
pub fn build_table(rt: &GravelRuntime, input: &MerInput, table_len: usize, insert_id: u32) {
    let nodes = rt.nodes();
    let part = Partition::new(table_len, nodes, Layout::Block);
    for node in 0..nodes {
        // (kmer, next base) pairs from (k+1)-mers.
        let work: Vec<(u64, u64)> = synthetic_reads(input, nodes, node)
            .iter()
            .flat_map(|read| {
                read.windows(input.k + 1)
                    .map(|w| (crate::mer::pack_kmer(&w[..input.k]), w[input.k] as u64))
                    .collect::<Vec<_>>()
            })
            .collect();
        if work.is_empty() {
            continue;
        }
        let wgs = work.len().div_ceil(rt.config().wg_size);
        rt.dispatch(node, wgs, |ctx| {
            let gids = ctx.wg.global_ids();
            let w = ctx.wg.wg_size();
            let in_range = Mask::from_fn(w, |l| gids.get(l) < work.len());
            ctx.masked(&in_range, |ctx| {
                let e = |l: usize| work[gids.get(l).min(work.len() - 1)];
                let dests = LaneVec::from_fn(w, |l| {
                    part.owner((kmer_hash(e(l).0) % table_len as u64) as usize) as u32
                });
                let addrs = LaneVec::from_fn(w, |l| {
                    part.local_offset((kmer_hash(e(l).0) % table_len as u64) as usize)
                });
                let vals = LaneVec::from_fn(w, |l| (e(l).0 << 2) | e(l).1);
                ctx.shmem_am(insert_id, &dests, &addrs, &vals);
            });
        });
    }
    rt.quiesce();
}

/// One in-flight traversal.
#[derive(Clone, Debug)]
pub struct Walk {
    /// Current k-mer.
    pub cur: u64,
    /// Bases appended so far.
    pub contig: Vec<u8>,
    /// Finished (lookup missed or length cap hit).
    pub done: bool,
}

/// Phase 2: walk the de Bruijn chains from `seeds` (one walk per seed,
/// all owned by node 0 for simplicity — walks look up k-mers cluster-wide
/// regardless). Returns the contigs.
pub fn traverse(
    rt: &GravelRuntime,
    seeds: &[u64],
    k: usize,
    table_len: usize,
    max_len: usize,
    lookup_id: u32,
) -> Vec<Walk> {
    let nodes = rt.nodes();
    let part = Partition::new(table_len, nodes, Layout::Block);
    let t_local = (table_len / nodes) as u64;
    let mailbox_base = 2 * t_local;
    let kmask = (1u64 << (2 * k)) - 1;
    let mut walks: Vec<Walk> =
        seeds.iter().map(|&s| Walk { cur: s, contig: Vec::new(), done: false }).collect();
    assert!(walks.len() <= rt.config().heap_len - mailbox_base as usize, "mailbox too small");

    while walks.iter().any(|w| !w.done) {
        // Reset mailbox slots for the active walks.
        for (slot, w) in walks.iter().enumerate() {
            if !w.done {
                rt.heap(0).store(mailbox_base + slot as u64, PENDING);
            }
        }
        // One superstep: every active walk sends its lookup (divergent —
        // finished walks are masked off).
        let snapshot: Vec<(u64, bool)> = walks.iter().map(|w| (w.cur, w.done)).collect();
        let wgs = walks.len().div_ceil(rt.config().wg_size).max(1);
        rt.dispatch(0, wgs, |ctx| {
            let gids = ctx.wg.global_ids();
            let w = ctx.wg.wg_size();
            let active =
                Mask::from_fn(w, |l| gids.get(l) < snapshot.len() && !snapshot[gids.get(l)].1);
            ctx.masked(&active, |ctx| {
                let walk = |l: usize| snapshot[gids.get(l).min(snapshot.len() - 1)].0;
                let global = |l: usize| (kmer_hash(walk(l)) % table_len as u64) as usize;
                let dests = LaneVec::from_fn(w, |l| part.owner(global(l)) as u32);
                let addrs = LaneVec::from_fn(w, |l| {
                    pack_addr(part.local_offset(global(l)), 0, gids.get(l) as u64)
                });
                let vals = LaneVec::from_fn(w, walk);
                ctx.shmem_am(lookup_id, &dests, &addrs, &vals);
            });
        });
        // Quiesce covers the lookups *and* their replies (replies are
        // offloaded before the lookup counts as applied).
        rt.quiesce();
        // Advance walks from the mailbox.
        for (slot, w) in walks.iter_mut().enumerate() {
            if w.done {
                continue;
            }
            let r = rt.heap(0).load(mailbox_base + slot as u64);
            assert_ne!(r, PENDING, "quiesce returned with a reply in flight");
            if r == MISS || w.contig.len() >= max_len {
                w.done = true;
            } else {
                let base = (r - 2) as u8;
                w.contig.push(base);
                w.cur = ((w.cur << 2) | base as u64) & kmask;
                if w.contig.len() >= max_len {
                    w.done = true;
                }
            }
        }
    }
    walks
}

/// Sequential reference: the same chains walked over a `HashMap`.
pub fn reference_contigs(
    input: &MerInput,
    nodes: usize,
    seeds: &[u64],
    max_len: usize,
) -> Vec<Vec<u8>> {
    let mut next: HashMap<u64, u8> = HashMap::new();
    for node in 0..nodes {
        for read in synthetic_reads(input, nodes, node) {
            for w in read.windows(input.k + 1) {
                next.entry(crate::mer::pack_kmer(&w[..input.k])).or_insert(w[input.k]);
            }
        }
    }
    let kmask = (1u64 << (2 * input.k)) - 1;
    seeds
        .iter()
        .map(|&seed| {
            let mut cur = seed;
            let mut contig = Vec::new();
            while contig.len() < max_len {
                match next.get(&cur) {
                    Some(&b) => {
                        contig.push(b);
                        cur = ((cur << 2) | b as u64) & kmask;
                    }
                    None => break,
                }
            }
            contig
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mer::kmers;
    use gravel_core::GravelConfig;

    fn setup(input: &MerInput, nodes: usize, mailbox: usize) -> (GravelRuntime, usize) {
        // Table sized at 4× the k-mer volume, divisible by node count.
        let volume: usize = (0..nodes)
            .map(|n| {
                synthetic_reads(input, nodes, n)
                    .iter()
                    .map(|r| kmers(r, input.k).len())
                    .sum::<usize>()
            })
            .sum();
        let table_len = (volume * 4).next_multiple_of(nodes).max(nodes * 8);
        let t_local = table_len / nodes;
        let rt = GravelRuntime::with_handlers(
            GravelConfig::small(nodes, 2 * t_local + mailbox),
            |reg| {
                register(reg, t_local as u64);
            },
        );
        (rt, table_len)
    }

    #[test]
    fn phase2_contigs_match_reference() {
        let input = MerInput { genome_len: 1_500, reads: 150, read_len: 60, k: 21, seed: 44 };
        let nodes = 3;
        let (rt, table_len) = setup(&input, nodes, 64);
        build_table(&rt, &input, table_len, 0); // handler ids: 0 insert, 1 lookup
        // Seeds: the first k-mer of a few reads.
        let seeds: Vec<u64> = (0..nodes)
            .flat_map(|n| synthetic_reads(&input, nodes, n).into_iter().take(2))
            .map(|read| crate::mer::pack_kmer(&read[..input.k]))
            .take(8)
            .collect();
        let walks = traverse(&rt, &seeds, input.k, table_len, 200, 1);
        rt.shutdown().expect("clean shutdown");
        let expect = reference_contigs(&input, nodes, &seeds, 200);
        let got: Vec<Vec<u8>> = walks.into_iter().map(|w| w.contig).collect();
        assert_eq!(got, expect);
        // The walks actually went somewhere.
        assert!(got.iter().any(|c| c.len() > 10), "{got:?}");
    }

    #[test]
    fn walks_have_divergent_lengths() {
        // The paper's reason for deferring phase 2: walks finish at very
        // different times. Check the divergence is real on our input.
        let input = MerInput { genome_len: 800, reads: 80, read_len: 50, k: 15, seed: 9 };
        let nodes = 2;
        let (rt, table_len) = setup(&input, nodes, 64);
        build_table(&rt, &input, table_len, 0);
        let seeds: Vec<u64> = synthetic_reads(&input, nodes, 0)
            .into_iter()
            .take(6)
            .map(|r| crate::mer::pack_kmer(&r[..input.k]))
            .collect();
        let walks = traverse(&rt, &seeds, input.k, table_len, 300, 1);
        rt.shutdown().expect("clean shutdown");
        let lens: Vec<usize> = walks.iter().map(|w| w.contig.len()).collect();
        let min = lens.iter().min().unwrap();
        let max = lens.iter().max().unwrap();
        assert!(max > min, "walk lengths should diverge: {lens:?}");
    }

    #[test]
    fn miss_reply_ends_a_walk_immediately() {
        let input = MerInput { genome_len: 500, reads: 40, read_len: 40, k: 15, seed: 5 };
        let (rt, table_len) = setup(&input, 2, 16);
        build_table(&rt, &input, table_len, 0);
        // A seed that is certainly absent: all-A k-mer is possible but an
        // arbitrary high pattern is effectively impossible in 500 bases.
        let seeds = [0x2AAA_AAAA_u64 & ((1 << 30) - 1)];
        let walks = traverse(&rt, &seeds, input.k, table_len, 50, 1);
        rt.shutdown().expect("clean shutdown");
        assert!(walks[0].done);
        assert!(walks[0].contig.is_empty(), "{:?}", walks[0]);
    }
}
