//! GUPS in the **Gravel** model (paper Fig. 4b).
//!
//! The kernel is one PGAS call per work-item; everything else — queue
//! reservation, aggregation, sending, receiving, applying — is the
//! runtime's job. Table 2 counts this file's code lines: the `host` and
//! `gpu` sections are delimited by the `// ---` markers that
//! [`super::loc`] parses.

use gravel_core::{GravelConfig, GravelRuntime};
use gravel_pgas::{Layout, Partition};
use gravel_simt::{LaneVec, Mask};

/// This file's source, for Table 2's line counting.
pub const SOURCE: &str = include_str!("gravel_style.rs");

/// Run GUPS and return the global histogram.
pub fn run(nodes: usize, updates: &[Vec<usize>], table_len: usize) -> Vec<u64> {
    run_counted(nodes, updates, table_len).0
}

/// Run GUPS, also returning the dispatch counters (Table 1's measured
/// SIMT-utilization criterion).
pub fn run_counted(
    nodes: usize,
    updates: &[Vec<usize>],
    table_len: usize,
) -> (Vec<u64>, gravel_simt::Counters) {
    // --- host code ---
    let part = Partition::new(table_len, nodes, Layout::Cyclic);
    let rt = GravelRuntime::new(GravelConfig::small(nodes, table_len));
    let mut counters = gravel_simt::Counters::default();
    for (node, b) in updates.iter().enumerate() {
        let wgs = b.len().div_ceil(rt.config().wg_size).max(1);
        let r = rt.dispatch(node, wgs, |ctx| gups_kernel(ctx, b, &part));
        counters.merge(&r.counters);
    }
    rt.quiesce();
    let out = (0..table_len)
        .map(|g| rt.heap(part.owner(g)).load(part.local_offset(g)))
        .collect();
    rt.shutdown().expect("clean shutdown");
    (out, counters)
    // --- end host code ---
}

// --- GPU kernel ---
fn gups_kernel(ctx: &mut gravel_core::GravelCtx, b: &[usize], part: &Partition) {
    let gids = ctx.wg.global_ids();
    let n = ctx.wg.wg_size();
    let in_range = Mask::from_fn(n, |l| gids.get(l) < b.len());
    ctx.masked(&in_range, |ctx| {
        let upd = |l: usize| b[gids.get(l).min(b.len() - 1)];
        let dests = LaneVec::from_fn(n, |l| part.owner(upd(l)) as u32);
        let addrs = LaneVec::from_fn(n, |l| part.local_offset(upd(l)));
        let ones = LaneVec::splat(n, 1u64);
        ctx.shmem_inc(&dests, &addrs, &ones);
    });
}
// --- end GPU kernel ---
