//! GUPS in the **message-per-lane** model (paper §3.2, Fig. 4b).
//!
//! Work-items access the network independently: every update becomes its
//! own network message, sent unaggregated to its destination. The GPU
//! code is as simple as Gravel's (that is the model's selling point), but
//! every message pays full per-message overhead on the wire — the
//! performance collapse of Fig. 15's third bar. Here each message is
//! delivered as its own single-message "packet" through a per-node
//! mailbox, with the per-work-item queue providing the SIMT-safe exit
//! from the GPU.

use std::sync::Arc;

use gravel_gq::{Consumed, GravelQueue, Message, QueueConfig};
use gravel_pgas::{Layout, Partition, SymmetricHeap};
use gravel_simt::{Grid, Mask, SimtEngine};

/// This file's source, for Table 2's line counting.
pub const SOURCE: &str = include_str!("msg_per_lane.rs");

/// Run GUPS and return the global histogram.
pub fn run(nodes: usize, updates: &[Vec<usize>], table_len: usize) -> Vec<u64> {
    run_counted(nodes, updates, table_len).0
}

/// Run GUPS, also returning the dispatch counters.
pub fn run_counted(
    nodes: usize,
    updates: &[Vec<usize>],
    table_len: usize,
) -> (Vec<u64>, gravel_simt::Counters) {
    let mut counters = gravel_simt::Counters::default();
    // --- host code ---
    let part = Partition::new(table_len, nodes, Layout::Cyclic);
    let heaps: Vec<Arc<SymmetricHeap>> =
        (0..nodes).map(|n| Arc::new(SymmetricHeap::new(part.local_len(n)))).collect();
    let engine = SimtEngine::with_cus(2);
    for b in updates.iter() {
        // One single-message-slot queue: the message-per-lane exit path.
        let q = Arc::new(GravelQueue::new(QueueConfig { slots: 256, lane_width: 1, rows: 4 }));
        let deliver = {
            let q = q.clone();
            let heaps = heaps.clone();
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut delivered = 0u64;
                loop {
                    buf.clear();
                    match q.try_consume_into(&mut buf) {
                        Consumed::Batch(_) => {
                            // Each message is its own network send.
                            let m = Message::decode([buf[0], buf[1], buf[2], buf[3]]).unwrap();
                            heaps[m.dest as usize].fetch_add(m.addr, m.value);
                            delivered += 1;
                        }
                        Consumed::Empty => std::thread::yield_now(),
                        Consumed::Closed => return delivered,
                    }
                }
            })
        };
        let grid = Grid::cover(b.len(), 64);
        let r = engine.dispatch(grid, |ctx| gups_kernel(ctx, &q, b, &part));
        counters.merge(&r.counters);
        q.close();
        deliver.join().unwrap();
    }
    let mut out = Vec::with_capacity(table_len);
    for g in 0..table_len {
        out.push(heaps[part.owner(g)].load(part.local_offset(g)));
    }
    (out, counters)
    // --- end host code ---
}

// --- GPU kernel ---
fn gups_kernel(
    ctx: &mut gravel_simt::WgCtx,
    q: &GravelQueue,
    b: &[usize],
    part: &Partition,
) {
    let base = ctx.wg_id() * ctx.wg_size();
    let n = ctx.wg_size();
    let in_range = Mask::from_fn(n, |l| base + l < b.len());
    ctx.with_mask(in_range, |ctx| {
        let upd = |l: usize| b[(base + l).min(b.len() - 1)];
        q.wi_produce(ctx, |lane, row| {
            Message::inc(part.owner(upd(lane)) as u32, part.local_offset(upd(lane)), 1)
                .encode()[row]
        });
    });
}
// --- end GPU kernel ---
