//! GUPS in the **coprocessor** model (paper §3.1, Fig. 4a).
//!
//! The GPU may not touch the network: the host chunks the update stream
//! so the worst case (every work-item targeting one node) cannot
//! overflow a per-node queue, launches a kernel per chunk in which
//! work-groups reserve queue space with WG-level synchronization, then
//! sends each per-node queue, receives the peers' queues, and applies
//! them — all by hand, every iteration. This is the model's
//! programmability cost that Table 2 quantifies: compare the amount of
//! host orchestration below with `gravel_style.rs`.

use std::sync::atomic::{AtomicU64, Ordering};

use gravel_pgas::{Layout, Partition, SymmetricHeap};
use gravel_simt::{Grid, LaneVec, Mask, SimtEngine};

/// This file's source, for Table 2's line counting.
pub const SOURCE: &str = include_str!("coprocessor.rs");

/// Per-node queue capacity in updates (the chunk size; Fig. 4a line 6's
/// `Q_SZ`).
const Q_SZ: usize = 256;

struct PerNodeQueues {
    /// `queues[dest][slot]` holds an encoded update (offset + 1; 0 empty).
    queues: Vec<Vec<AtomicU64>>,
    /// Fill levels, advanced by the GPU with WG-level reservations.
    fill: Vec<AtomicU64>,
}

impl PerNodeQueues {
    fn new(nodes: usize) -> Self {
        PerNodeQueues {
            queues: (0..nodes)
                .map(|_| (0..Q_SZ).map(|_| AtomicU64::new(0)).collect())
                .collect(),
            fill: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn reset(&self) {
        for q in &self.queues {
            for c in q {
                c.store(0, Ordering::Relaxed);
            }
        }
        for f in &self.fill {
            f.store(0, Ordering::Relaxed);
        }
    }
}

/// Run GUPS and return the global histogram.
pub fn run(nodes: usize, updates: &[Vec<usize>], table_len: usize) -> Vec<u64> {
    run_counted(nodes, updates, table_len).0
}

/// Run GUPS, also returning the dispatch counters.
pub fn run_counted(
    nodes: usize,
    updates: &[Vec<usize>],
    table_len: usize,
) -> (Vec<u64>, gravel_simt::Counters) {
    let mut counters = gravel_simt::Counters::default();
    // --- host code ---
    let part = Partition::new(table_len, nodes, Layout::Cyclic);
    let heaps: Vec<SymmetricHeap> =
        (0..nodes).map(|n| SymmetricHeap::new(part.local_len(n))).collect();
    let engine = SimtEngine::with_cus(2);
    let queues: Vec<PerNodeQueues> = (0..nodes).map(|_| PerNodeQueues::new(nodes)).collect();
    // Every node advances through its update stream in Q_SZ-sized chunks
    // (the worst case sends a whole chunk to one destination queue).
    let chunks = updates.iter().map(|b| b.len().div_ceil(Q_SZ)).max().unwrap_or(0);
    for chunk in 0..chunks {
        // Launch the chunk's kernel on each node's GPU.
        for (node, b) in updates.iter().enumerate() {
            let lo = (chunk * Q_SZ).min(b.len());
            let hi = ((chunk + 1) * Q_SZ).min(b.len());
            if lo == hi {
                continue;
            }
            queues[node].reset();
            let slice = &b[lo..hi];
            let grid = Grid::cover(slice.len(), 64);
            let r = engine.dispatch(grid, |ctx| gups_kernel(ctx, slice, &part, &queues[node]));
            counters.merge(&r.counters);
        }
        // "Send" every per-node queue and apply it at the destination
        // (lines 8-13 of Fig. 4a; the memcpy is the wire).
        for q in &queues {
            for (dest, heap) in heaps.iter().enumerate() {
                let count = q.fill[dest].load(Ordering::Acquire) as usize;
                for slot in 0..count.min(Q_SZ) {
                    let enc = q.queues[dest][slot].load(Ordering::Acquire);
                    assert!(enc != 0, "reserved slot left unwritten");
                    heap.fetch_add(enc - 1, 1);
                }
            }
        }
    }
    let mut out = Vec::with_capacity(table_len);
    for g in 0..table_len {
        out.push(heaps[part.owner(g)].load(part.local_offset(g)));
    }
    (out, counters)
    // --- end host code ---
}

// --- GPU kernel ---
fn gups_kernel(
    ctx: &mut gravel_simt::WgCtx,
    b: &[usize],
    part: &Partition,
    queues: &PerNodeQueues,
) {
    let base = ctx.wg_id() * ctx.wg_size();
    let n = ctx.wg_size();
    let in_range = Mask::from_fn(n, |l| base + l < b.len());
    // Fig. 4a lines 2-4: loop over the destinations this work-group
    // targets; each visit costs a WG-level reservation (and causes the
    // branch/memory divergence the paper calls out).
    for dest in 0..queues.queues.len() {
        let to_dest = in_range.and(&Mask::from_fn(n, |l| {
            part.owner(b[(base + l).min(b.len() - 1)]) == dest
        }));
        if to_dest.is_empty() {
            continue;
        }
        ctx.with_mask(to_dest, |ctx| {
            let ones = LaneVec::splat(n, 1u64);
            let my_off = ctx.prefix_sum(&ones);
            let leader = ctx.elect_leader().unwrap();
            let count = ctx.reduce_sum(&ones);
            let qoff = ctx.atomic_fetch_add(&queues.fill[dest], count);
            let qoff_reg = LaneVec::from_fn(n, |l| if l == leader { qoff } else { 0 });
            let qbase = ctx.reduce_sum(&qoff_reg);
            for lane in ctx.active().clone().iter() {
                let slot = (qbase + my_off.get(lane)) as usize;
                let offset = part.local_offset(b[base + lane]);
                queues.queues[dest][slot].store(offset + 1, Ordering::Release);
            }
            ctx.charge(1, gravel_simt::ExecScope::ActiveWavefronts);
        });
    }
}
// --- end GPU kernel ---
