//! GUPS written in each GPU networking model (paper §3, Table 2).
//!
//! Four *real, runnable* implementations of the same benchmark, one per
//! model, over this repository's substrates. They all produce identical
//! histograms (tested); what differs is how much code the programmer
//! writes and where it lives — which is exactly what Table 2 measures.
//! [`loc`] counts each implementation's host and GPU code lines from the
//! embedded sources.

pub mod coalesced;
pub mod coprocessor;
pub mod gravel_style;
pub mod msg_per_lane;

/// Line counts for one implementation (Table 2's rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Loc {
    /// Host-side code lines.
    pub host: usize,
    /// GPU-kernel code lines.
    pub gpu: usize,
}

impl Loc {
    /// Total lines.
    pub fn total(&self) -> usize {
        self.host + self.gpu
    }
}

/// Count code lines (non-blank, non-comment) of an implementation's
/// source, split at the `// --- GPU kernel ---` marker. Everything
/// outside the GPU section (minus doc headers and imports' attribute
/// noise) counts as host code.
pub fn loc(source: &str) -> Loc {
    let mut host = 0;
    let mut gpu = 0;
    let mut in_gpu = false;
    for line in source.lines() {
        let t = line.trim();
        if t.contains("--- GPU kernel ---") {
            in_gpu = true;
            continue;
        }
        if t.contains("--- end GPU kernel ---") {
            in_gpu = false;
            continue;
        }
        if t.is_empty() || t.starts_with("//") || t.starts_with("//!") {
            continue;
        }
        if in_gpu {
            gpu += 1;
        } else {
            host += 1;
        }
    }
    Loc { host, gpu }
}

/// Table 2's rows for our implementations:
/// `(model name, host LoC, gpu LoC)`.
pub fn table2() -> Vec<(&'static str, Loc)> {
    vec![
        ("coprocessor", loc(coprocessor::SOURCE)),
        ("msg-per-lane", loc(msg_per_lane::SOURCE)),
        ("Gravel", loc(gravel_style::SOURCE)),
        ("coalesced APIs", loc(coalesced::SOURCE)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(nodes: usize) -> (Vec<Vec<usize>>, usize) {
        let table_len = 128;
        let updates: Vec<Vec<usize>> = (0..nodes)
            .map(|n| (0..600).map(|i| (i * 37 + n * 411) % table_len).collect())
            .collect();
        (updates, table_len)
    }

    fn expected(updates: &[Vec<usize>], table_len: usize) -> Vec<u64> {
        let mut h = vec![0u64; table_len];
        for b in updates {
            for &g in b {
                h[g] += 1;
            }
        }
        h
    }

    #[test]
    fn all_four_models_compute_the_same_histogram() {
        let nodes = 3;
        let (updates, table_len) = inputs(nodes);
        let want = expected(&updates, table_len);
        assert_eq!(gravel_style::run(nodes, &updates, table_len), want, "gravel");
        assert_eq!(msg_per_lane::run(nodes, &updates, table_len), want, "msg-per-lane");
        assert_eq!(coprocessor::run(nodes, &updates, table_len), want, "coprocessor");
        assert_eq!(coalesced::run(nodes, &updates, table_len), want, "coalesced");
    }

    #[test]
    fn loc_ordering_matches_table2() {
        // Table 2: coprocessor (342) > coalesced (318) > msg-per-lane ≈
        // Gravel (193). Our absolute counts differ (Rust vs OpenCL+C) but
        // the ordering is the claim.
        let rows = table2();
        let get = |name: &str| rows.iter().find(|(n, _)| *n == name).unwrap().1;
        let coproc = get("coprocessor");
        let coalesced = get("coalesced APIs");
        let gravel = get("Gravel");
        let mpl = get("msg-per-lane");
        assert!(coproc.total() > coalesced.total(), "{coproc:?} vs {coalesced:?}");
        assert!(coalesced.total() > gravel.total(), "{coalesced:?} vs {gravel:?}");
        assert!(mpl.total() >= gravel.total(), "{mpl:?} vs {gravel:?}");
        // GPU-side code: coalesced has the most GPU code relative to
        // Gravel (the in-kernel sort), coprocessor the most host code.
        assert!(coalesced.gpu > gravel.gpu);
        assert!(coproc.host > gravel.host);
    }

    #[test]
    fn loc_counter_skips_comments_and_blanks() {
        let src = "// comment\n\nlet x = 1;\n// --- GPU kernel ---\nfn k() {}\n// --- end GPU kernel ---\n";
        let l = loc(src);
        assert_eq!(l, Loc { host: 1, gpu: 1 });
    }
}
