//! GUPS with **coalesced APIs** (paper §3.3, Fig. 4c).
//!
//! All work-items of a work-group invoke the network API together with
//! identical arguments, so the kernel must first sort the work-group's
//! messages by destination in scratchpad (a counting sort, 4 kB for a
//! 256-WI work-group) and then call the synchronous send once per
//! destination — the per-destination loop that degrades SIMT utilization
//! and the extra GPU code that makes this the longest kernel in Table 2.

use std::sync::atomic::Ordering;

use gravel_pgas::{Layout, Partition, SymmetricHeap};
use gravel_simt::{Grid, LaneVec, Mask, SimtEngine};

/// This file's source, for Table 2's line counting.
pub const SOURCE: &str = include_str!("coalesced.rs");

/// A synchronous coalesced send: the whole work-group ships one list of
/// updates to one destination (GPUnet/GPUrdma-style `sync_inc_list`).
fn sync_inc_list(heap: &SymmetricHeap, offsets: &[u64]) {
    for &off in offsets {
        heap.fetch_add(off, 1);
    }
}

/// Run GUPS and return the global histogram.
pub fn run(nodes: usize, updates: &[Vec<usize>], table_len: usize) -> Vec<u64> {
    run_counted(nodes, updates, table_len).0
}

/// Run GUPS, also returning the dispatch counters.
pub fn run_counted(
    nodes: usize,
    updates: &[Vec<usize>],
    table_len: usize,
) -> (Vec<u64>, gravel_simt::Counters) {
    let mut counters = gravel_simt::Counters::default();
    // --- host code ---
    let part = Partition::new(table_len, nodes, Layout::Cyclic);
    let heaps: Vec<SymmetricHeap> =
        (0..nodes).map(|n| SymmetricHeap::new(part.local_len(n))).collect();
    let engine = SimtEngine::with_cus(2);
    for b in updates.iter() {
        let grid = Grid::cover(b.len(), 256);
        let r = engine.dispatch(grid, |ctx| gups_kernel(ctx, b, &part, &heaps));
        counters.merge(&r.counters);
    }
    let mut out = Vec::with_capacity(table_len);
    for g in 0..table_len {
        out.push(heaps[part.owner(g)].load(part.local_offset(g)));
    }
    (out, counters)
    // --- end host code ---
}

// --- GPU kernel ---
fn gups_kernel(
    ctx: &mut gravel_simt::WgCtx,
    b: &[usize],
    part: &Partition,
    heaps: &[SymmetricHeap],
) {
    let base = ctx.wg_id() * ctx.wg_size();
    let n = ctx.wg_size();
    let in_range = Mask::from_fn(n, |l| base + l < b.len());
    if in_range.is_empty() {
        return;
    }
    ctx.with_mask(in_range, |ctx| {
        // Fig. 4c lines 18-25: allocate scratchpad and counting-sort the
        // work-group's messages by destination id.
        let upd = |l: usize| b[(base + l).min(b.len() - 1)];
        let dests = LaneVec::from_fn(n, |l| part.owner(upd(l)));
        let sorted = ctx
            .counting_sort(&dests, heaps.len())
            .expect("4 kB of scratchpad for a 256-WI work-group");
        // Fig. 4c lines 26-29: one synchronous coalesced send per
        // destination the work-group targets.
        let mut off = 0usize;
        for (d, &cnt) in sorted.dests.iter().zip(&sorted.cnts) {
            let offsets: Vec<u64> = sorted.order[off..off + cnt]
                .iter()
                .map(|&lane| part.local_offset(upd(lane)))
                .collect();
            // The API is invoked by every active work-item together; the
            // engine charges a full-WG instruction per call.
            ctx.charge(1, gravel_simt::ExecScope::WholeWorkGroup);
            ctx.counters.messages += cnt as u64;
            sync_inc_list(&heaps[*d], &offsets);
            off += cnt;
        }
    });
    // Keep the atomics ordering with the host's final gather.
    std::sync::atomic::fence(Ordering::Release);
}
// --- end GPU kernel ---
