//! # gravel-apps — the paper's application suite
//!
//! The six irregular applications the Gravel paper evaluates (§6,
//! Table 4), each in three forms:
//!
//! 1. **Live** (`run_live`) — a real distributed execution on the
//!    [`gravel_core::GravelRuntime`], verified against a sequential
//!    reference (exactly, thanks to integer arithmetic).
//! 2. **Trace** (`trace`) — a per-superstep communication
//!    characterisation consumed by the `gravel-cluster` performance
//!    models for the multi-node figures.
//! 3. **Reference** — sequential ground truth.
//!
//! Inputs are synthetic stand-ins for Table 4's datasets, with generator
//! constants fitted to the communication statistics the paper reports
//! (see [`graph::gen`] and module docs).
//!
//! | Module | Paper workload | Operations |
//! |---|---|---|
//! | [`gups`] | GUPS (~180 M updates) | atomic increments |
//! | [`pagerank`] | PR-1 / PR-2 | PUTs |
//! | [`sssp`] | SSSP-1 / SSSP-2 | active messages |
//! | [`color`] | color-1 / color-2 | PUTs |
//! | [`kmeans`] | k-means (8 × 16 M) | atomic increments |
//! | [`mer`] | Meraculous phase 1 | active messages |
//! | [`mer2`] | Meraculous phase 2 (paper's future work) | replying AMs |
//! | [`gas`] | GasCL-style vertex programs (the apps' base system) | mixed |
//! | [`gups_mod`] | GUPS-mod (§8.2) | diverged offload |

pub mod color;
pub mod gas;
pub mod graph;
pub mod gups;
pub mod gups_mod;
pub mod gups_styles;
pub mod inputs;
pub mod kmeans;
pub mod mer;
pub mod mer2;
pub mod pagerank;
pub mod sssp;
pub mod telem;

pub use inputs::{GraphInputs, Scale, WORKLOADS};
pub use telem::AppTelemetry;
