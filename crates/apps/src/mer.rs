//! Meraculous k-mer hash-table construction — phase 1 (paper §6,
//! Table 4: human-chr14, 3.6 GB).
//!
//! The paper evaluates the first phase of the Meraculous genome pipeline:
//! building a distributed hash table of k-mers. Each read is cut into
//! k-mers; each k-mer hashes to a uniformly random owner, where an active
//! message inserts it by linear probing (insert-if-absent). At eight
//! nodes that scatter is 87.5 % remote, and the bulk all-to-all produces
//! full 64 kB packets (Table 5).
//!
//! The 3.6 GB chr14 read set is proprietary-scale, not proprietary — but
//! far beyond this environment, so [`synthetic_reads`] generates a random
//! ACGT genome and overlapping reads with the same k-mer statistics
//! (uniform hash scatter; duplicate k-mers from overlapping reads).

use gravel_cluster::{NodeStep, OpClass, StepTrace, WorkloadTrace};
use gravel_core::GravelRuntime;
use gravel_pgas::{Layout, Partition};
use gravel_simt::{LaneVec, Mask};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mer problem description.
#[derive(Clone, Copy, Debug)]
pub struct MerInput {
    /// Genome length in bases.
    pub genome_len: usize,
    /// Number of reads sampled from the genome.
    pub reads: usize,
    /// Bases per read.
    pub read_len: usize,
    /// k-mer length (≤ 31 so a k-mer packs into a u64 at 2 bits/base).
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MerInput {
    /// A small deterministic instance for tests/examples.
    pub fn small() -> Self {
        MerInput { genome_len: 2_000, reads: 200, read_len: 50, k: 21, seed: 33 }
    }
}

/// Generate the synthetic genome (2-bit base codes).
pub fn synthetic_genome(input: &MerInput) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(input.seed);
    (0..input.genome_len).map(|_| rng.gen_range(0..4u8)).collect()
}

/// Sample `reads` overlapping reads from the genome; node `node` of
/// `nodes` receives an interleaved share.
pub fn synthetic_reads(input: &MerInput, nodes: usize, node: usize) -> Vec<Vec<u8>> {
    let genome = synthetic_genome(input);
    let mut rng = StdRng::seed_from_u64(input.seed ^ 0x5bd1_e995);
    let mut all = Vec::with_capacity(input.reads);
    for _ in 0..input.reads {
        let start = rng.gen_range(0..=input.genome_len.saturating_sub(input.read_len));
        all.push(genome[start..start + input.read_len].to_vec());
    }
    all.into_iter().skip(node).step_by(nodes).collect()
}

/// Pack a k-mer (2-bit codes) into a u64.
pub fn pack_kmer(bases: &[u8]) -> u64 {
    assert!(bases.len() <= 31, "k-mer too long for u64 packing");
    bases.iter().fold(0u64, |acc, &b| (acc << 2) | b as u64)
}

/// All k-mers of a read, packed.
pub fn kmers(read: &[u8], k: usize) -> Vec<u64> {
    if read.len() < k {
        return Vec::new();
    }
    (0..=read.len() - k).map(|i| pack_kmer(&read[i..i + k])).collect()
}

/// The stable hash used to place k-mers (splitmix64 finalizer).
pub fn kmer_hash(kmer: u64) -> u64 {
    let mut z = kmer.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Table partition: `table_len` slots spread in blocks.
pub fn partition(table_len: usize, nodes: usize) -> Partition {
    Partition::new(table_len, nodes, Layout::Block)
}

/// Register the insert-if-absent handler. The handler linear-probes
/// within the destination's heap (wrapping locally); cells hold
/// `kmer + 1` (0 = empty).
pub fn register(reg: &mut gravel_pgas::AmRegistry) -> u32 {
    reg.register(Box::new(|heap, addr, value| {
        let len = heap.len() as u64;
        let mut i = addr % len;
        for _ in 0..len {
            let cur = heap.load(i);
            if cur == value {
                return; // already present
            }
            if cur == 0 {
                heap.store(i, value);
                return;
            }
            i = (i + 1) % len;
        }
        // Table full: drop (tests size the table generously).
    }))
}

/// Run phase-1 construction on the live runtime. `table_len` is the
/// global slot count (each node's heap holds `table_len / nodes` — use
/// heaps of exactly that size). Returns the number of k-mers issued.
pub fn run_live(rt: &GravelRuntime, input: &MerInput, table_len: usize, insert_id: u32) -> u64 {
    let nodes = rt.nodes();
    let part = partition(table_len, nodes);
    let mut issued = 0u64;
    for node in 0..nodes {
        let reads = synthetic_reads(input, nodes, node);
        let work: Vec<u64> = reads.iter().flat_map(|r| kmers(r, input.k)).collect();
        issued += work.len() as u64;
        if work.is_empty() {
            continue;
        }
        let wg_size = rt.config().wg_size;
        let wgs = work.len().div_ceil(wg_size);
        rt.dispatch(node, wgs, |ctx| {
            let gids = ctx.wg.global_ids();
            let w = ctx.wg.wg_size();
            let in_range = Mask::from_fn(w, |l| gids.get(l) < work.len());
            ctx.masked(&in_range, |ctx| {
                let km = |l: usize| work[gids.get(l).min(work.len() - 1)];
                let dests = LaneVec::from_fn(w, |l| {
                    part.owner((kmer_hash(km(l)) % table_len as u64) as usize) as u32
                });
                let addrs = LaneVec::from_fn(w, |l| {
                    part.local_offset((kmer_hash(km(l)) % table_len as u64) as usize)
                });
                let vals = LaneVec::from_fn(w, |l| km(l) + 1);
                ctx.shmem_am(insert_id, &dests, &addrs, &vals);
            });
        });
    }
    rt.quiesce();
    issued
}

/// Gather the distinct k-mers stored in the distributed table.
pub fn collect_table(rt: &GravelRuntime) -> std::collections::BTreeSet<u64> {
    let mut set = std::collections::BTreeSet::new();
    for node in 0..rt.nodes() {
        let heap = rt.heap(node);
        for i in 0..heap.len() as u64 {
            let v = heap.load(i);
            if v != 0 {
                set.insert(v - 1);
            }
        }
    }
    set
}

/// The reference distinct-k-mer set.
pub fn reference_kmers(input: &MerInput, nodes: usize) -> std::collections::BTreeSet<u64> {
    let mut set = std::collections::BTreeSet::new();
    for node in 0..nodes {
        for read in synthetic_reads(input, nodes, node) {
            set.extend(kmers(&read, input.k));
        }
    }
    set
}

/// Communication trace: one bulk scatter step of all k-mer insertions.
pub fn trace(input: &MerInput, nodes: usize, table_len: usize) -> WorkloadTrace {
    let part = partition(table_len, nodes);
    let mut t = WorkloadTrace::new("mer", nodes);
    let mut step = StepTrace::default();
    for node in 0..nodes {
        let mut routed = vec![0u64; nodes];
        let mut ops = 0u64;
        for read in synthetic_reads(input, nodes, node) {
            for km in kmers(&read, input.k) {
                ops += 1; // k-mer extraction + hash
                routed[part.owner((kmer_hash(km) % table_len as u64) as usize)] += 1;
            }
        }
        step.per_node.push(NodeStep { gpu_ops: ops, routed, class: OpClass::Atomic, local_pgas: 0 });
    }
    t.push_step(step);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use gravel_core::GravelConfig;

    #[test]
    fn live_table_contains_exactly_the_reference_kmers() {
        let input = MerInput::small();
        let nodes = 2;
        let expected = reference_kmers(&input, nodes);
        let table_len = (expected.len() * 4 / nodes) * nodes; // 4× load headroom
        let mut insert_id = 0;
        let rt = GravelRuntime::with_handlers(
            GravelConfig::small(nodes, table_len / nodes),
            |reg| insert_id = register(reg),
        );
        let issued = run_live(&rt, &input, table_len, insert_id);
        assert!(issued as usize >= expected.len(), "duplicates expected from overlaps");
        let got = collect_table(&rt);
        rt.shutdown().expect("clean shutdown");
        assert_eq!(got, expected);
    }

    #[test]
    fn kmer_packing_is_injective_for_fixed_k() {
        let a = pack_kmer(&[0, 1, 2, 3]);
        let b = pack_kmer(&[3, 2, 1, 0]);
        assert_ne!(a, b);
        assert_eq!(pack_kmer(&[0, 1, 2, 3]), a);
    }

    #[test]
    fn reads_cover_and_interleave() {
        let input = MerInput::small();
        let a = synthetic_reads(&input, 2, 0);
        let b = synthetic_reads(&input, 2, 1);
        assert_eq!(a.len() + b.len(), input.reads);
        assert!(a.iter().all(|r| r.len() == input.read_len));
    }

    #[test]
    fn trace_is_uniform_scatter() {
        let input = MerInput { genome_len: 20_000, reads: 2_000, read_len: 60, k: 21, seed: 2 };
        let t = trace(&input, 8, 1 << 16);
        let step = &t.steps[0];
        let mut remote = 0u64;
        let mut total = 0u64;
        for (src, ns) in step.per_node.iter().enumerate() {
            for (dest, &m) in ns.routed.iter().enumerate() {
                total += m;
                if dest != src {
                    remote += m;
                }
            }
        }
        let f = remote as f64 / total as f64;
        // Table 5: 87.5 % remote.
        assert!((f - 0.875).abs() < 0.02, "remote fraction {f}");
    }

    #[test]
    fn hash_spreads_uniformly() {
        let mut counts = [0u64; 8];
        for i in 0..80_000u64 {
            counts[(kmer_hash(i) % 8) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "{counts:?}");
        }
    }
}
