//! A GasCL-style vertex-centric layer over the Gravel runtime.
//!
//! The paper's graph applications "are derived from GasCL, which is a
//! single-node graph processing system for GPUs" (§6). This module
//! supplies that missing substrate as a *distributed* vertex-program
//! framework: a program defines how a vertex scatters values along its
//! out-edges and how a vertex folds incoming values into its state, and
//! the engine turns each superstep into Gravel traffic — local
//! contributions as direct GPU work, remote ones as fine-grain messages
//! through the aggregator.
//!
//! The accumulator heap uses atomic increments (exact for the u64
//! monoids programs use), so distributed execution equals sequential
//! execution bit-for-bit; `PageRankProgram` below demonstrates parity
//! with `graph::reference::pagerank`.

use gravel_core::GravelRuntime;
use gravel_pgas::{Layout, Partition};
use gravel_simt::{LaneVec, Mask};

use crate::graph::Csr;

/// A vertex program in the gather-apply-scatter mold, specialised to the
/// commutative-u64-accumulator form every GasCL-derived app in the paper
/// uses.
pub trait VertexProgram: Sync {
    /// Initial per-vertex state.
    fn init(&self, vertex: u32, graph: &Csr) -> u64;

    /// The value vertex `u` (with state `state`) scatters along each
    /// out-edge this superstep. `None` scatters nothing.
    fn scatter(&self, u: u32, state: u64, graph: &Csr) -> Option<u64>;

    /// Fold the accumulated sum of incoming scatter values into the next
    /// state. Returning the old state unchanged marks the vertex
    /// converged for halting purposes.
    fn apply(&self, u: u32, state: u64, acc_sum: u64, graph: &Csr) -> u64;

    /// Maximum supersteps (safety bound).
    fn max_steps(&self) -> usize {
        usize::MAX
    }
}

/// Run `program` over `graph` on the live runtime. Returns the final
/// per-vertex states. Each node's heap holds accumulators for its block
/// of vertices.
pub fn run<P: VertexProgram>(rt: &GravelRuntime, graph: &Csr, program: &P) -> Vec<u64> {
    let n = graph.num_vertices();
    let nodes = rt.nodes();
    let part = Partition::new(n, nodes, Layout::Block);
    for node in 0..nodes {
        assert!(rt.config().heap_len >= part.local_len(node), "heap too small");
        rt.heap(node).reset(0);
    }
    let mut state: Vec<u64> = (0..n as u32).map(|v| program.init(v, graph)).collect();

    // Flat per-node edge lists: (src vertex, dest owner, dest offset).
    let mut node_edges: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); nodes];
    for (u, v, _) in graph.iter_edges() {
        node_edges[part.owner(u as usize)].push((
            u,
            part.owner(v as usize) as u32,
            part.local_offset(v as usize),
        ));
    }

    for _step in 0..program.max_steps() {
        // Scatter phase: one message per out-edge of a scattering vertex.
        let shares: Vec<Option<u64>> =
            (0..n as u32).map(|u| program.scatter(u, state[u as usize], graph)).collect();
        for (node, edges) in node_edges.iter().enumerate() {
            if edges.is_empty() {
                continue;
            }
            let wg_size = rt.config().wg_size;
            let wgs = edges.len().div_ceil(wg_size);
            rt.dispatch(node, wgs, |ctx| {
                let gids = ctx.wg.global_ids();
                let w = ctx.wg.wg_size();
                let live = Mask::from_fn(w, |l| {
                    gids.get(l) < edges.len() && shares[edges[gids.get(l)].0 as usize].is_some()
                });
                ctx.masked(&live, |ctx| {
                    let e = |l: usize| edges[gids.get(l).min(edges.len() - 1)];
                    let dests = LaneVec::from_fn(w, |l| e(l).1);
                    let addrs = LaneVec::from_fn(w, |l| e(l).2);
                    let vals =
                        LaneVec::from_fn(w, |l| shares[e(l).0 as usize].unwrap_or(0));
                    ctx.shmem_inc(&dests, &addrs, &vals);
                });
            });
        }
        rt.quiesce();
        // Apply phase: fold accumulators, detect global convergence.
        let mut changed = false;
        for (v, s) in state.iter_mut().enumerate() {
            let owner = part.owner(v);
            let acc = rt.heap(owner).load(part.local_offset(v));
            let next = program.apply(v as u32, *s, acc, graph);
            if next != *s {
                changed = true;
                *s = next;
            }
        }
        for node in 0..nodes {
            rt.heap(node).reset(0);
        }
        if !changed {
            break;
        }
    }
    state
}

/// PageRank as a [`VertexProgram`], in the same fixed-point arithmetic as
/// [`crate::graph::reference::pagerank`]. Runs a fixed iteration count
/// (classic power iteration).
pub struct PageRankProgram {
    /// Damping factor in fixed point.
    pub damping: u64,
    /// Iterations to run.
    pub iters: usize,
}

impl VertexProgram for PageRankProgram {
    fn init(&self, _v: u32, g: &Csr) -> u64 {
        crate::graph::reference::FIXED_ONE / g.num_vertices() as u64
    }

    fn scatter(&self, u: u32, state: u64, g: &Csr) -> Option<u64> {
        state.checked_div(g.out_degree(u) as u64)
    }

    fn apply(&self, _u: u32, _state: u64, acc: u64, g: &Csr) -> u64 {
        let base =
            (crate::graph::reference::FIXED_ONE - self.damping) / g.num_vertices() as u64;
        base + ((acc as u128 * self.damping as u128) >> 32) as u64
    }

    fn max_steps(&self) -> usize {
        self.iters
    }
}

/// In-degree counting as a [`VertexProgram`] — the paper's §5.1 running
/// example (Fig. 9): every vertex scatters 1 along its out-edges once.
pub struct InDegreeProgram;

impl VertexProgram for InDegreeProgram {
    fn init(&self, _v: u32, _g: &Csr) -> u64 {
        0
    }

    fn scatter(&self, _u: u32, state: u64, _g: &Csr) -> Option<u64> {
        // Scatter only on the first step (state becomes nonzero after
        // apply and we halt via max_steps).
        if state == 0 {
            Some(1)
        } else {
            None
        }
    }

    fn apply(&self, _u: u32, state: u64, acc: u64, _g: &Csr) -> u64 {
        state + acc
    }

    fn max_steps(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{gen, reference};
    use gravel_core::GravelConfig;

    #[test]
    fn pagerank_program_matches_reference_exactly() {
        let g = gen::cage15_like(90, 8);
        let damping = crate::pagerank::default_damping();
        let rt = GravelRuntime::new(GravelConfig::small(3, 64));
        let got = run(&rt, &g, &PageRankProgram { damping, iters: 3 });
        rt.shutdown().expect("clean shutdown");
        assert_eq!(got, reference::pagerank(&g, 3, damping));
    }

    #[test]
    fn in_degree_program_matches_paper_fig9() {
        // Fig. 9a's graph: counts must be [2, 3, 3, 2].
        let g = crate::graph::Csr::from_unweighted(
            4,
            vec![
                (0, 1), (0, 2),
                (1, 0), (1, 2), (1, 3),
                (2, 1), (2, 3),
                (3, 0), (3, 1), (3, 2),
            ],
        );
        let rt = GravelRuntime::new(GravelConfig::small(2, 4));
        let got = run(&rt, &g, &InDegreeProgram);
        rt.shutdown().expect("clean shutdown");
        assert_eq!(got, vec![2, 3, 3, 2]);
        assert_eq!(got, reference::in_degrees(&g));
    }

    #[test]
    fn empty_graph_converges_immediately() {
        let g = crate::graph::Csr::from_unweighted(3, vec![]);
        let rt = GravelRuntime::new(GravelConfig::small(2, 4));
        let got = run(&rt, &g, &InDegreeProgram);
        rt.shutdown().expect("clean shutdown");
        assert_eq!(got, vec![0, 0, 0]);
    }
}
