//! GUPS-mod — the diverged work-group-level operation study (paper §8.2).
//!
//! A modified GUPS where each work-item performs a *random* number of
//! updates and 95 % of work-items perform none, so the offloading
//! `shmem_inc` executes from heavily divergent control flow. The paper
//! compares software predication (current hardware) against two
//! future-GPU alternatives — work-group-granularity control flow (1.28×)
//! and fine-grain barriers (1.06× when emulated in software) — and this
//! module reproduces the experiment on the SIMT engine: the same kernel
//! runs under each [`DivergedMode`], produces identical results, and the
//! engine's issue-slot counters provide the cycle proxy for the speedups.

use std::sync::Arc;

use gravel_gq::{Consumed, GravelQueue, Message, QueueConfig};
use gravel_pgas::SymmetricHeap;
use gravel_simt::{
    diverged_for, Counters, DivergedCosts, DivergedMode, Grid, LaneVec, SimtEngine,
};

/// GUPS-mod problem description.
#[derive(Clone, Copy, Debug)]
pub struct GupsModInput {
    /// Work-items launched.
    pub wis: usize,
    /// Fraction of work-items that perform at least one update (paper:
    /// 5 %).
    pub active_fraction: f64,
    /// Maximum updates per active work-item.
    pub max_updates: u64,
    /// Table length (local; the experiment is single-node).
    pub table_len: usize,
    /// Seed for the per-work-item trip counts and addresses.
    pub seed: u64,
}

impl GupsModInput {
    /// The paper's shape at test scale.
    pub fn small() -> Self {
        GupsModInput { wis: 4096, active_fraction: 0.05, max_updates: 8, table_len: 256, seed: 3 }
    }
}

/// Deterministic per-work-item trip count (95 % zero by default).
pub fn trips(input: &GupsModInput, gid: usize) -> u64 {
    let h = crate::mer::kmer_hash(input.seed ^ gid as u64);
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    if unit < input.active_fraction {
        1 + (h % input.max_updates)
    } else {
        0
    }
}

/// Deterministic update address for work-item `gid`, iteration `i`.
pub fn update_addr(input: &GupsModInput, gid: usize, i: u64) -> u64 {
    crate::mer::kmer_hash(input.seed ^ (gid as u64) << 8 ^ i) % input.table_len as u64
}

/// Result of one GUPS-mod run.
#[derive(Clone, Debug)]
pub struct GupsModResult {
    /// Final table histogram.
    pub table: Vec<u64>,
    /// Messages offloaded.
    pub updates: u64,
    /// Engine counters (issue slots are the cycle proxy of §8.2).
    pub counters: Counters,
}

/// Run GUPS-mod under `mode`; all modes must produce identical tables.
pub fn run(input: &GupsModInput, mode: DivergedMode, costs: DivergedCosts) -> GupsModResult {
    let wg_size = 256usize;
    let grid = Grid { wg_count: input.wis.div_ceil(wg_size).max(1), wg_size, wf_width: 64 };
    let queue = Arc::new(GravelQueue::new(QueueConfig {
        slots: 64,
        lane_width: wg_size,
        rows: gravel_gq::MSG_ROWS,
    }));
    let heap = Arc::new(SymmetricHeap::new(input.table_len));

    // Consumer thread: drains slots and applies increments (the
    // aggregator + network-thread pair collapsed to one hop — §8.2 is a
    // single-node experiment about GPU-side divergence).
    let consumer = {
        let queue = queue.clone();
        let heap = heap.clone();
        std::thread::spawn(move || {
            let mut buf = Vec::new();
            let mut applied = 0u64;
            loop {
                buf.clear();
                match queue.try_consume_into(&mut buf) {
                    Consumed::Batch(_) => {
                        for m in buf.chunks_exact(gravel_gq::MSG_ROWS) {
                            let msg = Message::decode([m[0], m[1], m[2], m[3]])
                                .expect("well-formed message");
                            heap.fetch_add(msg.addr, msg.value);
                            applied += 1;
                        }
                    }
                    Consumed::Empty => std::thread::yield_now(),
                    Consumed::Closed => return applied,
                }
            }
        })
    };

    let engine = SimtEngine::with_cus(2);
    let input_copy = *input;
    let result = engine.dispatch(grid, |ctx| {
        let base = ctx.wg_id() * ctx.wg_size();
        let n = ctx.wg_size();
        let trip_counts =
            LaneVec::from_fn(n, |l| if base + l < input_copy.wis { trips(&input_copy, base + l) } else { 0 });
        diverged_for(ctx, &trip_counts, mode, costs, |ctx, i| {
            queue.wg_produce(ctx, |lane, row| {
                Message::inc(0, update_addr(&input_copy, base + lane, i), 1).encode()[row]
            });
        });
    });
    queue.close();
    let applied = consumer.join().expect("consumer thread");

    GupsModResult { table: heap.snapshot(), updates: applied, counters: result.counters }
}

/// Expected table computed sequentially.
pub fn reference(input: &GupsModInput) -> Vec<u64> {
    let mut table = vec![0u64; input.table_len];
    for gid in 0..input.wis {
        for i in 0..trips(input, gid) {
            table[update_addr(input, gid, i) as usize] += 1;
        }
    }
    table
}

/// §8.2's headline numbers: issue-slot speedups of the two future-GPU
/// modes over software predication.
pub fn speedups(input: &GupsModInput, costs: DivergedCosts) -> (f64, f64) {
    let pred = run(input, DivergedMode::SoftwarePredication, costs);
    let wg = run(input, DivergedMode::WgReconvergence, costs);
    let fbar = run(input, DivergedMode::FineGrainBarrier, costs);
    assert_eq!(pred.table, wg.table, "modes must agree");
    assert_eq!(pred.table, fbar.table, "modes must agree");
    (
        pred.counters.wf_issue_slots as f64 / wg.counters.wf_issue_slots as f64,
        pred.counters.wf_issue_slots as f64 / fbar.counters.wf_issue_slots as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_match_the_reference_table() {
        let input = GupsModInput::small();
        let expect = reference(&input);
        for mode in [
            DivergedMode::SoftwarePredication,
            DivergedMode::WgReconvergence,
            DivergedMode::FineGrainBarrier,
        ] {
            let r = run(&input, mode, DivergedCosts::default());
            assert_eq!(r.table, expect, "{mode:?}");
            assert_eq!(r.updates, expect.iter().sum::<u64>(), "{mode:?}");
        }
    }

    #[test]
    fn about_five_percent_of_work_items_are_active() {
        let input = GupsModInput { wis: 100_000, ..GupsModInput::small() };
        let active = (0..input.wis).filter(|&g| trips(&input, g) > 0).count();
        let f = active as f64 / input.wis as f64;
        assert!((f - 0.05).abs() < 0.01, "active fraction {f}");
    }

    #[test]
    fn speedup_ordering_matches_paper() {
        // §8.2: WG-granularity > fbar-emulated > 1 (software predication).
        let input = GupsModInput::small();
        let (wg, fbar) = speedups(&input, DivergedCosts::default());
        assert!(wg > 1.0, "WG reconvergence speedup {wg}");
        assert!(fbar >= 1.0, "fbar speedup {fbar}");
        assert!(wg > fbar, "WG {wg} should beat emulated fbar {fbar}");
    }

    #[test]
    fn hardware_fbar_beats_emulated_fbar() {
        let input = GupsModInput::small();
        let emu = run(&input, DivergedMode::FineGrainBarrier, DivergedCosts::fbar_emulated());
        let hw = run(&input, DivergedMode::FineGrainBarrier, DivergedCosts::fbar_hardware());
        assert!(
            hw.counters.wf_issue_slots < emu.counters.wf_issue_slots,
            "hw {} vs emu {}",
            hw.counters.wf_issue_slots,
            emu.counters.wf_issue_slots
        );
    }
}
