//! PageRank (paper §6: PR-1 on hugebubbles-00020, PR-2 on cage15).
//!
//! Vertex-centric, derived from GasCL: each iteration scatters every
//! vertex's rank share along its out-edges into the destination vertices'
//! accumulators, then a local apply step computes the next rank. In the
//! paper PR uses PUT operations exclusively (per-edge slots); our live
//! implementation accumulates with atomic increments in fixed-point
//! arithmetic — same communication volume, and exact (u64 adds commute),
//! so the distributed result equals the sequential reference bit-for-bit.
//! The *trace* classifies the scatter as [`OpClass::Put`] to match the
//! paper's cost characteristics.

use gravel_cluster::{NodeStep, OpClass, StepTrace, WorkloadTrace};
use gravel_core::{Checkpoint, GravelRuntime};
use gravel_pgas::{Directory, Layout, Partition};
use gravel_simt::{LaneVec, Mask};

use crate::graph::{reference, Csr};

/// Default damping factor in fixed point (0.85).
pub fn default_damping() -> u64 {
    (0.85 * reference::FIXED_ONE as f64) as u64
}

/// The vertex partition PageRank uses (block: generator locality).
pub fn partition(g: &Csr, nodes: usize) -> Partition {
    Partition::new(g.num_vertices(), nodes, Layout::Block)
}

/// The address directory PageRank routes through (see
/// [`gups::directory`](crate::gups::directory) for the rationale).
pub fn directory(g: &Csr, nodes: usize) -> Directory {
    Directory::fixed(partition(g, nodes))
}

/// Run `iters` PageRank iterations on the live runtime. Each node's heap
/// holds its local vertices' accumulators. Returns the final global rank
/// vector (gathered).
pub fn run_live(rt: &GravelRuntime, g: &Csr, iters: usize, damping: u64) -> Vec<u64> {
    let n = g.num_vertices();
    let nodes = rt.nodes();
    let part = partition(g, nodes);
    for node in 0..nodes {
        assert!(rt.config().heap_len >= part.local_len(node), "heap too small");
    }
    let base = (reference::FIXED_ONE - damping) / n as u64;
    let dir = directory(g, nodes);
    let mut rank = vec![reference::FIXED_ONE / n as u64; n];
    for _ in 0..iters {
        iterate_once(rt, g, &dir, base, damping, &mut rank);
    }
    rank
}

/// Application progress of a checkpointed PageRank run: the iteration
/// counter plus the full fixed-point rank vector (the accumulator heaps
/// are zero between iterations, so this is the *entire* app state).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PageRankProgress {
    /// Iterations fully applied (and covered by an epoch cut).
    pub iteration: u64,
    /// Rank vector after `iteration` iterations (empty ⇒ fresh run).
    pub rank: Vec<u64>,
}

impl Checkpoint for PageRankProgress {
    fn save(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(self.rank.len() + 2);
        words.push(self.iteration);
        words.push(self.rank.len() as u64);
        words.extend_from_slice(&self.rank);
        words
    }

    fn restore(&mut self, words: &[u64]) {
        if words.len() < 2 {
            *self = Self::default();
            return;
        }
        self.iteration = words[0];
        let n = (words[1] as usize).min(words.len() - 2);
        self.rank = words[2..2 + n].to_vec();
    }
}

/// Run PageRank with an epoch cut after every iteration's apply step.
/// Requires `cfg.ha.checkpoint = true`. Resumes from
/// `progress.iteration`/`progress.rank` (a default-constructed progress
/// starts fresh); returns the rank vector after `iters` total iterations.
pub fn run_live_checkpointed(
    rt: &GravelRuntime,
    g: &Csr,
    iters: usize,
    damping: u64,
    progress: &mut PageRankProgress,
) -> Vec<u64> {
    let n = g.num_vertices();
    let nodes = rt.nodes();
    let dir = directory(g, nodes);
    let base = (reference::FIXED_ONE - damping) / n as u64;
    let mut rank = if progress.rank.len() == n {
        progress.rank.clone()
    } else {
        vec![reference::FIXED_ONE / n as u64; n]
    };
    for _ in (progress.iteration as usize)..iters {
        iterate_once(rt, g, &dir, base, damping, &mut rank);
        progress.iteration += 1;
        progress.rank = rank.clone();
        rt.cut_epoch_with(Some(progress));
    }
    rank
}

/// One scatter + apply iteration over `rank`, in place.
fn iterate_once(
    rt: &GravelRuntime,
    g: &Csr,
    dir: &Directory,
    base: u64,
    damping: u64,
    rank: &mut [u64],
) {
    let n = g.num_vertices();
    let nodes = rt.nodes();
    let mut node_edges: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); nodes];
    for (u, v, _) in g.iter_edges() {
        let rv = dir.route(v as usize);
        node_edges[dir.route(u as usize).dest as usize].push((u, rv.dest, rv.offset));
    }
    let _span = rt.tracer().span("pagerank.iter", "app", 0);
    let shares: Vec<u64> = (0..n as u32)
        .map(|u| rank[u as usize].checked_div(g.out_degree(u) as u64).unwrap_or(0))
        .collect();
    for (node, edges) in node_edges.iter().enumerate() {
        if edges.is_empty() {
            continue;
        }
        let wg_size = rt.config().wg_size;
        let wgs = edges.len().div_ceil(wg_size);
        rt.dispatch(node, wgs, |ctx| {
            let gids = ctx.wg.global_ids();
            let w = ctx.wg.wg_size();
            let in_range = Mask::from_fn(w, |l| gids.get(l) < edges.len());
            ctx.masked(&in_range, |ctx| {
                let e = |l: usize| edges[gids.get(l).min(edges.len() - 1)];
                let dests = LaneVec::from_fn(w, |l| e(l).1);
                let addrs = LaneVec::from_fn(w, |l| e(l).2);
                let vals = LaneVec::from_fn(w, |l| shares[e(l).0 as usize]);
                ctx.shmem_inc(&dests, &addrs, &vals);
            });
        });
    }
    rt.quiesce();
    for (v, r) in rank.iter_mut().enumerate() {
        let rv = dir.route(v);
        let acc = rt.heap(rv.dest as usize).load(rv.offset);
        *r = base + ((acc as u128 * damping as u128) >> 32) as u64;
    }
    for node in 0..nodes {
        rt.heap(node).reset(0);
    }
}

/// [`run_live`] plus a distilled telemetry summary of the run.
/// Span-instrumented: every iteration records a `pagerank.iter` span
/// when the runtime's tracer is enabled.
pub fn run_live_instrumented(
    rt: &GravelRuntime,
    g: &Csr,
    iters: usize,
    damping: u64,
) -> (Vec<u64>, crate::AppTelemetry) {
    let ranks = run_live(rt, g, iters, damping);
    (ranks, crate::AppTelemetry::collect("PageRank", rt))
}

/// Communication trace: `iters` iterations, each a scatter step (remote
/// contributions as PUT-class messages, local edges as GPU ops) followed
/// by a local apply step.
pub fn trace(name: &str, g: &Csr, nodes: usize, iters: usize) -> WorkloadTrace {
    let part = partition(g, nodes);
    // The edge cut is iteration-invariant: count once.
    let mut cut = vec![vec![0u64; nodes]; nodes];
    let mut local_edges = vec![0u64; nodes];
    for (u, v, _) in g.iter_edges() {
        let su = part.owner(u as usize);
        let sv = part.owner(v as usize);
        if su == sv {
            local_edges[su] += 1;
        } else {
            cut[su][sv] += 1;
        }
    }
    let mut t = WorkloadTrace::new(name, nodes);
    for _ in 0..iters {
        // Scatter.
        t.push_step(StepTrace {
            per_node: (0..nodes)
                .map(|s| NodeStep {
                    gpu_ops: local_edges[s],
                    routed: cut[s].clone(),
                    class: OpClass::Put,
                    local_pgas: local_edges[s], // GPU-direct local PUTs
                })
                .collect(),
        });
        // Apply (compute-only): ~4 ops per local vertex.
        t.push_step(StepTrace {
            per_node: (0..nodes)
                .map(|s| NodeStep::compute_only(4 * part.local_len(s) as u64, nodes))
                .collect(),
        });
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::gen;
    use gravel_core::GravelConfig;

    #[test]
    fn live_pagerank_equals_sequential_reference_exactly() {
        let g = gen::cage15_like(96, 5);
        let damping = default_damping();
        let rt = GravelRuntime::new(GravelConfig::small(3, 64));
        let live = run_live(&rt, &g, 3, damping);
        rt.shutdown().expect("clean shutdown");
        let seq = reference::pagerank(&g, 3, damping);
        assert_eq!(live, seq, "fixed-point PageRank must match bit-for-bit");
    }

    #[test]
    fn instrumented_pagerank_reports_telemetry_and_spans() {
        let g = gen::cage15_like(96, 5);
        let damping = default_damping();
        let mut cfg = GravelConfig::small(3, 64);
        cfg.telemetry = gravel_core::TelemetryConfig::CountersAndTrace;
        let rt = GravelRuntime::new(cfg);
        let (live, telem) = run_live_instrumented(&rt, &g, 3, damping);
        assert_eq!(live, reference::pagerank(&g, 3, damping));
        assert_eq!(telem.offloaded, telem.applied, "quiesced run");
        assert!(telem.offloaded > 0);
        assert!(telem.avg_packet_bytes > 0.0);
        let trace = rt.export_chrome_trace().expect("tracing enabled");
        assert!(trace.contains("pagerank.iter"), "app span recorded");
        rt.shutdown().expect("clean shutdown");
    }

    #[test]
    fn checkpointed_pagerank_split_run_matches_reference() {
        let g = gen::cage15_like(96, 5);
        let damping = default_damping();
        let mut cfg = GravelConfig::small(3, 64);
        cfg.ha.checkpoint = true;
        let rt = GravelRuntime::new(cfg);
        // Run one iteration, "crash", rebuild progress from its saved
        // words, then finish — the result must equal an uninterrupted run.
        let mut progress = PageRankProgress::default();
        run_live_checkpointed(&rt, &g, 1, damping, &mut progress);
        assert_eq!(progress.iteration, 1);
        let words = progress.save();
        let mut resumed = PageRankProgress::default();
        resumed.restore(&words);
        assert_eq!(resumed, progress);
        let live = run_live_checkpointed(&rt, &g, 3, damping, &mut resumed);
        assert_eq!(live, reference::pagerank(&g, 3, damping));
        let stats = rt.shutdown().expect("clean shutdown");
        assert_eq!(stats.ha.epochs, 3, "one cut per iteration");
    }

    #[test]
    fn pagerank_progress_roundtrips_and_rejects_garbage() {
        let p = PageRankProgress { iteration: 7, rank: vec![3, 1, 4, 1, 5] };
        let mut q = PageRankProgress::default();
        q.restore(&p.save());
        assert_eq!(q, p);
        q.restore(&[]);
        assert_eq!(q, PageRankProgress::default());
        // A truncated word stream must not panic.
        q.restore(&[9, 100, 1, 2]);
        assert_eq!(q.iteration, 9);
        assert_eq!(q.rank, vec![1, 2]);
    }

    #[test]
    fn trace_volume_matches_edge_cut_per_iteration() {
        let g = gen::hugebubbles_like(2_500, 9);
        let iters = 4;
        let t = trace("PR-1", &g, 4, iters);
        assert_eq!(t.steps.len(), 2 * iters);
        let per_iter = t.total_routed() / iters as u64;
        let cut: u64 = {
            let part = partition(&g, 4);
            g.iter_edges()
                .filter(|&(u, v, _)| part.owner(u as usize) != part.owner(v as usize))
                .count() as u64
        };
        assert_eq!(per_iter, cut);
    }

    #[test]
    fn pr1_remote_fraction_near_table5() {
        let g = gen::hugebubbles_like(40_000, 2);
        let t = trace("PR-1", &g, 8, 1);
        let f = t.remote_fraction();
        // Table 5: 37.7 % — our trace counts apply-step gpu_ops as local
        // ops too, diluting slightly; accept a band.
        assert!(f > 0.25 && f < 0.45, "remote fraction {f}");
    }

    #[test]
    fn pr2_remote_fraction_near_table5() {
        let g = gen::cage15_like(40_000, 2);
        let t = trace("PR-2", &g, 8, 1);
        let f = t.remote_fraction();
        // Table 5: 16.5 %.
        assert!(f > 0.08 && f < 0.25, "remote fraction {f}");
    }
}
