//! PageRank (paper §6: PR-1 on hugebubbles-00020, PR-2 on cage15).
//!
//! Vertex-centric, derived from GasCL: each iteration scatters every
//! vertex's rank share along its out-edges into the destination vertices'
//! accumulators, then a local apply step computes the next rank. In the
//! paper PR uses PUT operations exclusively (per-edge slots); our live
//! implementation accumulates with atomic increments in fixed-point
//! arithmetic — same communication volume, and exact (u64 adds commute),
//! so the distributed result equals the sequential reference bit-for-bit.
//! The *trace* classifies the scatter as [`OpClass::Put`] to match the
//! paper's cost characteristics.

use gravel_cluster::{NodeStep, OpClass, StepTrace, WorkloadTrace};
use gravel_core::GravelRuntime;
use gravel_pgas::{Layout, Partition};
use gravel_simt::{LaneVec, Mask};

use crate::graph::{reference, Csr};

/// Default damping factor in fixed point (0.85).
pub fn default_damping() -> u64 {
    (0.85 * reference::FIXED_ONE as f64) as u64
}

/// The vertex partition PageRank uses (block: generator locality).
pub fn partition(g: &Csr, nodes: usize) -> Partition {
    Partition::new(g.num_vertices(), nodes, Layout::Block)
}

/// Run `iters` PageRank iterations on the live runtime. Each node's heap
/// holds its local vertices' accumulators. Returns the final global rank
/// vector (gathered).
pub fn run_live(rt: &GravelRuntime, g: &Csr, iters: usize, damping: u64) -> Vec<u64> {
    let n = g.num_vertices();
    let nodes = rt.nodes();
    let part = partition(g, nodes);
    for node in 0..nodes {
        assert!(rt.config().heap_len >= part.local_len(node), "heap too small");
    }
    let base = (reference::FIXED_ONE - damping) / n as u64;
    let mut rank = vec![reference::FIXED_ONE / n as u64; n];

    // Per-node flat edge lists: (src vertex, dest owner, dest offset).
    let mut node_edges: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); nodes];
    for (u, v, _) in g.iter_edges() {
        node_edges[part.owner(u as usize)].push((
            u,
            part.owner(v as usize) as u32,
            part.local_offset(v as usize),
        ));
    }

    for _ in 0..iters {
        let _span = rt.tracer().span("pagerank.iter", "app", 0);
        // Scatter: every edge ships rank[u]/outdeg(u) to v's accumulator.
        let shares: Vec<u64> =
            (0..n as u32).map(|u| {
                rank[u as usize].checked_div(g.out_degree(u) as u64).unwrap_or(0)
            }).collect();
        for (node, edges) in node_edges.iter().enumerate() {
            if edges.is_empty() {
                continue;
            }
            let wg_size = rt.config().wg_size;
            let wgs = edges.len().div_ceil(wg_size);
            rt.dispatch(node, wgs, |ctx| {
                let gids = ctx.wg.global_ids();
                let w = ctx.wg.wg_size();
                let in_range = Mask::from_fn(w, |l| gids.get(l) < edges.len());
                ctx.masked(&in_range, |ctx| {
                    let e = |l: usize| edges[gids.get(l).min(edges.len() - 1)];
                    let dests = LaneVec::from_fn(w, |l| e(l).1);
                    let addrs = LaneVec::from_fn(w, |l| e(l).2);
                    let vals = LaneVec::from_fn(w, |l| shares[e(l).0 as usize]);
                    ctx.shmem_inc(&dests, &addrs, &vals);
                });
            });
        }
        rt.quiesce();
        // Apply: next[v] = base + damping·acc[v]; reset accumulators.
        for (v, r) in rank.iter_mut().enumerate() {
            let owner = part.owner(v);
            let acc = rt.heap(owner).load(part.local_offset(v));
            *r = base + ((acc as u128 * damping as u128) >> 32) as u64;
        }
        for node in 0..nodes {
            rt.heap(node).reset(0);
        }
    }
    rank
}

/// [`run_live`] plus a distilled telemetry summary of the run.
/// Span-instrumented: every iteration records a `pagerank.iter` span
/// when the runtime's tracer is enabled.
pub fn run_live_instrumented(
    rt: &GravelRuntime,
    g: &Csr,
    iters: usize,
    damping: u64,
) -> (Vec<u64>, crate::AppTelemetry) {
    let ranks = run_live(rt, g, iters, damping);
    (ranks, crate::AppTelemetry::collect("PageRank", rt))
}

/// Communication trace: `iters` iterations, each a scatter step (remote
/// contributions as PUT-class messages, local edges as GPU ops) followed
/// by a local apply step.
pub fn trace(name: &str, g: &Csr, nodes: usize, iters: usize) -> WorkloadTrace {
    let part = partition(g, nodes);
    // The edge cut is iteration-invariant: count once.
    let mut cut = vec![vec![0u64; nodes]; nodes];
    let mut local_edges = vec![0u64; nodes];
    for (u, v, _) in g.iter_edges() {
        let su = part.owner(u as usize);
        let sv = part.owner(v as usize);
        if su == sv {
            local_edges[su] += 1;
        } else {
            cut[su][sv] += 1;
        }
    }
    let mut t = WorkloadTrace::new(name, nodes);
    for _ in 0..iters {
        // Scatter.
        t.push_step(StepTrace {
            per_node: (0..nodes)
                .map(|s| NodeStep {
                    gpu_ops: local_edges[s],
                    routed: cut[s].clone(),
                    class: OpClass::Put,
                    local_pgas: local_edges[s], // GPU-direct local PUTs
                })
                .collect(),
        });
        // Apply (compute-only): ~4 ops per local vertex.
        t.push_step(StepTrace {
            per_node: (0..nodes)
                .map(|s| NodeStep::compute_only(4 * part.local_len(s) as u64, nodes))
                .collect(),
        });
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::gen;
    use gravel_core::GravelConfig;

    #[test]
    fn live_pagerank_equals_sequential_reference_exactly() {
        let g = gen::cage15_like(96, 5);
        let damping = default_damping();
        let rt = GravelRuntime::new(GravelConfig::small(3, 64));
        let live = run_live(&rt, &g, 3, damping);
        rt.shutdown().expect("clean shutdown");
        let seq = reference::pagerank(&g, 3, damping);
        assert_eq!(live, seq, "fixed-point PageRank must match bit-for-bit");
    }

    #[test]
    fn instrumented_pagerank_reports_telemetry_and_spans() {
        let g = gen::cage15_like(96, 5);
        let damping = default_damping();
        let mut cfg = GravelConfig::small(3, 64);
        cfg.telemetry = gravel_core::TelemetryConfig::CountersAndTrace;
        let rt = GravelRuntime::new(cfg);
        let (live, telem) = run_live_instrumented(&rt, &g, 3, damping);
        assert_eq!(live, reference::pagerank(&g, 3, damping));
        assert_eq!(telem.offloaded, telem.applied, "quiesced run");
        assert!(telem.offloaded > 0);
        assert!(telem.avg_packet_bytes > 0.0);
        let trace = rt.export_chrome_trace().expect("tracing enabled");
        assert!(trace.contains("pagerank.iter"), "app span recorded");
        rt.shutdown().expect("clean shutdown");
    }

    #[test]
    fn trace_volume_matches_edge_cut_per_iteration() {
        let g = gen::hugebubbles_like(2_500, 9);
        let iters = 4;
        let t = trace("PR-1", &g, 4, iters);
        assert_eq!(t.steps.len(), 2 * iters);
        let per_iter = t.total_routed() / iters as u64;
        let cut: u64 = {
            let part = partition(&g, 4);
            g.iter_edges()
                .filter(|&(u, v, _)| part.owner(u as usize) != part.owner(v as usize))
                .count() as u64
        };
        assert_eq!(per_iter, cut);
    }

    #[test]
    fn pr1_remote_fraction_near_table5() {
        let g = gen::hugebubbles_like(40_000, 2);
        let t = trace("PR-1", &g, 8, 1);
        let f = t.remote_fraction();
        // Table 5: 37.7 % — our trace counts apply-step gpu_ops as local
        // ops too, diluting slightly; accept a band.
        assert!(f > 0.25 && f < 0.45, "remote fraction {f}");
    }

    #[test]
    fn pr2_remote_fraction_near_table5() {
        let g = gen::cage15_like(40_000, 2);
        let t = trace("PR-2", &g, 8, 1);
        let f = t.remote_fraction();
        // Table 5: 16.5 %.
        assert!(f > 0.08 && f < 0.25, "remote fraction {f}");
    }
}
