//! The paper's workload suite (Table 4), scaled for this environment.
//!
//! Table 4's inputs are orders of magnitude beyond a single-core CI box
//! (180 M updates, 21 M-vertex graphs, 3.6 GB of reads). The suite here
//! preserves every input's *communication-relevant shape* — remote-access
//! frequency, superstep structure, message class mix — at a configurable
//! scale. `Scale::Bench` sizes (used by the figure generators) are large
//! enough that aggregation reaches steady state; `Scale::Test` keeps CI
//! fast.

use gravel_cluster::WorkloadTrace;

use crate::graph::{cage15_like, hugebubbles_like, Csr};
use crate::{color, gups, kmeans, mer, pagerank, sssp};

/// Input scale selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny instances for unit/integration tests.
    Test,
    /// Instances for figure generation (seconds of wall time).
    Bench,
}

impl Scale {
    /// hugebubbles-like mesh size (Table 4: ~21 M vertices; bench uses
    /// 16 M — large enough that per-superstep fixed costs are amortized
    /// the way they are at paper scale).
    fn hugebubbles_vertices(self) -> usize {
        match self {
            Scale::Test => 2_500,
            Scale::Bench => 16_000_000,
        }
    }

    /// cage15-like graph size (Table 4: ~5.2 M vertices / 99 M edges;
    /// bench uses 4 M / 76 M).
    fn cage_vertices(self) -> usize {
        match self {
            Scale::Test => 2_500,
            Scale::Bench => 4_000_000,
        }
    }

    /// GUPS update count (Table 4: ~180 M).
    fn gups_updates(self) -> usize {
        match self {
            Scale::Test => 20_000,
            Scale::Bench => 180_000_000,
        }
    }

    /// K-means point count (Table 4: 16 M; bench uses 4 M).
    fn kmeans_points(self) -> usize {
        match self {
            Scale::Test => 5_000,
            Scale::Bench => 4_000_000,
        }
    }

    /// Meraculous read count (bench: 1 M × 100 bp ⇒ 80 M k-mers,
    /// ~1/40 of chr14's k-mer volume).
    fn mer_reads(self) -> usize {
        match self {
            Scale::Test => 1_250,
            Scale::Bench => 1_000_000,
        }
    }
}

/// The nine workload identifiers of Figures 12/15 and Table 5, in the
/// paper's order.
pub const WORKLOADS: [&str; 9] =
    ["GUPS", "PR-1", "PR-2", "SSSP-1", "SSSP-2", "color-1", "color-2", "kmeans", "mer"];

/// The two graphs (generated once per scale/seed).
pub struct GraphInputs {
    /// hugebubbles-00020 stand-in.
    pub hugebubbles: Csr,
    /// cage15 stand-in.
    pub cage: Csr,
}

impl GraphInputs {
    /// Generate both graphs.
    pub fn generate(scale: Scale, seed: u64) -> Self {
        GraphInputs {
            hugebubbles: hugebubbles_like(scale.hugebubbles_vertices(), seed),
            cage: cage15_like(scale.cage_vertices(), seed ^ 1),
        }
    }
}

/// PageRank iterations used by the trace suite.
pub const PR_ITERS: usize = 10;
/// K-means iterations used by the trace suite.
pub const KMEANS_ITERS: usize = 10;

/// Build the trace for workload `name` at `nodes` nodes. `graphs` must
/// come from [`GraphInputs::generate`] with the same scale.
pub fn workload_trace(name: &str, scale: Scale, graphs: &GraphInputs, nodes: usize) -> WorkloadTrace {
    match name {
        "GUPS" => {
            let input = gups::GupsInput {
                updates: scale.gups_updates(),
                table_len: scale.gups_updates() / 2,
                seed: 11,
            };
            gups::trace(&input, nodes)
        }
        "PR-1" => pagerank::trace("PR-1", &graphs.hugebubbles, nodes, PR_ITERS),
        "PR-2" => pagerank::trace("PR-2", &graphs.cage, nodes, PR_ITERS),
        "SSSP-1" => sssp::trace("SSSP-1", &graphs.hugebubbles, nodes, 0),
        "SSSP-2" => sssp::trace("SSSP-2", &graphs.cage, nodes, 0),
        "color-1" => color::trace("color-1", &graphs.hugebubbles, nodes),
        "color-2" => color::trace("color-2", &graphs.cage, nodes),
        "kmeans" => {
            let input = kmeans::KmeansInput {
                points: scale.kmeans_points(),
                clusters: 8,
                iters: KMEANS_ITERS,
                seed: 13,
            };
            kmeans::trace(&input, nodes)
        }
        "mer" => {
            let input = mer::MerInput {
                genome_len: scale.mer_reads() * 10,
                reads: scale.mer_reads(),
                read_len: 100,
                k: 21,
                seed: 15,
            };
            // Table sized at 2× the expected distinct-k-mer count.
            mer::trace(&input, nodes, scale.mer_reads() * 160)
        }
        other => panic!("unknown workload {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_builds_a_test_scale_trace() {
        let graphs = GraphInputs::generate(Scale::Test, 1);
        for name in WORKLOADS {
            let t = workload_trace(name, Scale::Test, &graphs, 4);
            assert_eq!(t.nodes, 4, "{name}");
            assert!(t.total_routed() > 0, "{name} routes no messages");
            assert!(!t.steps.is_empty(), "{name} has no steps");
        }
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let graphs = GraphInputs::generate(Scale::Test, 1);
        workload_trace("nope", Scale::Test, &graphs, 2);
    }
}
