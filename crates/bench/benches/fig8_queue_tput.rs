//! Criterion bench for Figure 8: queue throughput vs message size,
//! Gravel's work-group-slot queue against the padded CPU SPSC and MPMC
//! baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gravel_gq::{GravelQueue, MpmcQueue, QueueConfig, SpscQueue};
use std::sync::Arc;

const SIZES: [usize; 4] = [8, 32, 512, 4096];

fn gravel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_gravel");
    for &size in &SIZES {
        let rows = size / 8;
        let batch = (256 * 1024 / size).clamp(1, 256);
        group.throughput(Throughput::Bytes((batch * size) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            let q = Arc::new(GravelQueue::new(QueueConfig::for_bytes(1 << 20, batch, rows)));
            let consumer = {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    while q.consume_blocking(&mut out).is_some() {
                        out.clear();
                    }
                })
            };
            let words: Vec<u64> = (0..batch * rows).map(|i| i as u64).collect();
            b.iter(|| q.produce_batch(&words, batch));
            q.close();
            consumer.join().unwrap();
        });
    }
    group.finish();
}

fn cpu_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_cpu");
    for &size in &SIZES {
        let rows = size / 8;
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("spsc", size), &size, |b, _| {
            let q = Arc::new(SpscQueue::new(4096, rows));
            let consumer = {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    while q.consume_blocking(&mut out).is_some() {
                        out.clear();
                    }
                })
            };
            let words: Vec<u64> = (0..rows).map(|i| i as u64).collect();
            b.iter(|| q.produce(&words));
            q.close();
            consumer.join().unwrap();
        });
        group.bench_with_input(BenchmarkId::new("mpmc", size), &size, |b, _| {
            let q = Arc::new(MpmcQueue::new(4096, rows));
            let consumer = {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    while q.consume_blocking(&mut out).is_some() {
                        out.clear();
                    }
                })
            };
            let words: Vec<u64> = (0..rows).map(|i| i as u64).collect();
            b.iter(|| q.produce(&words));
            q.close();
            consumer.join().unwrap();
        });
    }
    group.finish();
}

criterion_group!(benches, gravel, cpu_baselines);
criterion_main!(benches);
