//! Ablation (DESIGN.md §5.5): serializing atomics through the network
//! thread vs concurrent GPU read-modify-writes on local data.
//!
//! The paper routes *all* atomics — local included — through the network
//! thread ("this approach is faster than using concurrent read-modify-
//! write operations", §6). This bench runs an all-local GUPS under both
//! policies on the live runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gravel_core::{GravelConfig, GravelRuntime};
use gravel_simt::LaneVec;

fn local_gups(rt: &GravelRuntime, wgs: usize) {
    rt.dispatch(0, wgs, |ctx| {
        let n = ctx.wg.wg_size();
        let gids = ctx.wg.global_ids();
        let dests = LaneVec::splat(n, 0u32);
        let addrs = LaneVec::from_fn(n, |l| (gids.get(l) % 64) as u64);
        let ones = LaneVec::splat(n, 1u64);
        ctx.shmem_inc(&dests, &addrs, &ones);
    });
    rt.quiesce();
}

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_atomics");
    group.sample_size(20);
    for (name, serialize) in [("serialized", true), ("concurrent_rmw", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &serialize, |b, &serialize| {
            let mut cfg = GravelConfig::small(1, 64);
            cfg.serialize_atomics = serialize;
            let rt = GravelRuntime::new(cfg);
            b.iter(|| local_gups(&rt, 4));
            rt.shutdown().expect("clean shutdown");
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
