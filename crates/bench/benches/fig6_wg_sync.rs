//! Criterion bench for Figure 6: queue offload cost vs work-group size
//! (32-byte messages). Complements `--bin fig6`, which prints the
//! figure's series; this measures the same operations under criterion's
//! statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gravel_gq::{GravelQueue, QueueConfig};
use std::sync::Arc;

fn wg_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_wg_sync");
    for &batch in &[64usize, 128, 256] {
        group.throughput(Throughput::Bytes((batch * 32) as u64));
        group.bench_with_input(BenchmarkId::new("wg_batch", batch), &batch, |b, &batch| {
            // Fresh queue per measurement set; a consumer thread drains.
            let q = Arc::new(GravelQueue::new(QueueConfig::for_bytes(1 << 20, batch, 4)));
            let consumer = {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    while q.consume_blocking(&mut out).is_some() {
                        out.clear();
                    }
                })
            };
            let words: Vec<u64> = (0..batch * 4).map(|i| i as u64).collect();
            b.iter(|| q.produce_batch(&words, batch));
            q.close();
            consumer.join().unwrap();
        });
    }
    // The work-item-granularity strawman (one reservation per message).
    group.throughput(Throughput::Bytes(32));
    group.bench_function("wi_level", |b| {
        let q = Arc::new(GravelQueue::new(QueueConfig { slots: 4096, lane_width: 1, rows: 4 }));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut out = Vec::new();
                while q.consume_blocking(&mut out).is_some() {
                    out.clear();
                }
            })
        };
        let words = [1u64, 2, 3, 4];
        b.iter(|| q.produce_batch(&words, 1));
        q.close();
        consumer.join().unwrap();
    });
    group.finish();
}

criterion_group!(benches, wg_sync);
criterion_main!(benches);
