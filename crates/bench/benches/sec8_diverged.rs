//! Criterion bench for §8.2: the GUPS-mod kernel (95 % inactive
//! work-items) under each diverged work-group-level execution mode.
//! Wall time tracks issued work; the canonical issue-slot speedups come
//! from `--bin sec8`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gravel_apps::gups_mod::{run, GupsModInput};
use gravel_simt::{DivergedCosts, DivergedMode};

fn diverged(c: &mut Criterion) {
    let input =
        GupsModInput { wis: 8192, active_fraction: 0.05, max_updates: 8, table_len: 512, seed: 7 };
    let mut group = c.benchmark_group("sec8_diverged");
    group.sample_size(10);
    for (name, mode) in [
        ("software_predication", DivergedMode::SoftwarePredication),
        ("wg_reconvergence", DivergedMode::WgReconvergence),
        ("fbar_emulated", DivergedMode::FineGrainBarrier),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter(|| run(&input, mode, DivergedCosts::fbar_emulated()));
        });
    }
    group.finish();
}

criterion_group!(benches, diverged);
criterion_main!(benches);
