//! Telemetry overhead measurement: live-runtime GUPS at each
//! [`TelemetryConfig`] level.
//!
//! Counters are designed to be nearly free (one never-taken branch when
//! off, one relaxed add to a thread-sharded cell when on); tracing pays
//! for `Instant::now()` pairs and ring-buffer writes on every span.
//! This module measures all three levels the same way the fault sweep
//! measures loss: real GUPS runs, best-of-N wall time so scheduler noise
//! cancels, trials interleaved across levels so thermal/load drift
//! cannot bias one level.

use std::time::{Duration, Instant};

use gravel_apps::gups::{self, GupsInput};
use gravel_core::{GravelConfig, GravelRuntime, TelemetryConfig};

/// Wall time of one GUPS run plus derived throughput, per level.
#[derive(Clone, Debug, serde::Serialize)]
pub struct LevelResult {
    /// Telemetry level, e.g. `"off"`.
    pub level: String,
    /// Best (minimum) wall time across trials, seconds.
    pub best_secs: f64,
    /// Updates per second at the best trial.
    pub updates_per_sec: f64,
    /// Wall-time overhead relative to `off`, e.g. `0.03` = 3 % slower.
    pub overhead: f64,
}

/// The full comparison: one row per telemetry level.
#[derive(Clone, Debug, serde::Serialize)]
pub struct OverheadReport {
    /// Updates per trial.
    pub updates: u64,
    /// Trials per level (best-of).
    pub trials: u32,
    /// Per-level results, `off` first.
    pub levels: Vec<LevelResult>,
}

impl OverheadReport {
    /// Overhead of a level by name (`"counters"`, `"counters+trace"`).
    pub fn overhead_of(&self, level: &str) -> f64 {
        self.levels
            .iter()
            .find(|l| l.level == level)
            .map(|l| l.overhead)
            .unwrap_or(f64::NAN)
    }
}

const LEVELS: [(TelemetryConfig, &str); 3] = [
    (TelemetryConfig::Off, "off"),
    (TelemetryConfig::Counters, "counters"),
    (TelemetryConfig::CountersAndTrace, "counters+trace"),
];

fn one_trial(input: &GupsInput, nodes: usize, telemetry: TelemetryConfig) -> Duration {
    let mut cfg = GravelConfig::small(nodes, input.table_len);
    cfg.telemetry = telemetry;
    let rt = GravelRuntime::new(cfg);
    let start = Instant::now();
    gups::run_live(&rt, input);
    rt.quiesce();
    let wall = start.elapsed();
    rt.shutdown().expect("telemetry overhead run must be clean");
    wall
}

/// Run `trials` GUPS rounds per telemetry level, interleaved
/// (off, counters, counters+trace, off, …), and report best-of-`trials`
/// wall times with overheads relative to `off`.
pub fn measure(input: &GupsInput, nodes: usize, trials: u32) -> OverheadReport {
    assert!(trials > 0, "need at least one trial");
    let mut best = [Duration::MAX; LEVELS.len()];
    for _ in 0..trials {
        for (i, (level, _)) in LEVELS.iter().enumerate() {
            best[i] = best[i].min(one_trial(input, nodes, *level));
        }
    }
    let off = best[0].as_secs_f64();
    let levels = LEVELS
        .iter()
        .zip(best)
        .map(|((_, name), b)| {
            let secs = b.as_secs_f64();
            LevelResult {
                level: name.to_string(),
                best_secs: secs,
                updates_per_sec: input.updates as f64 / secs,
                overhead: secs / off - 1.0,
            }
        })
        .collect();
    OverheadReport { updates: input.updates as u64, trials, levels }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite requirement: counters must cost < 5 % of GUPS wall
    /// time. Best-of-N interleaved trials suppress scheduler noise; the
    /// loop re-measures a couple of times because CI machines can
    /// still hiccup — the claim is "counters *can* run this close to
    /// free", not "every sample is clean".
    #[test]
    fn counters_overhead_below_five_percent() {
        let input = GupsInput { updates: 40_000, table_len: 2048, seed: 11 };
        let mut last = f64::NAN;
        for round in 0..3 {
            let report = measure(&input, 2, 5);
            last = report.overhead_of("counters");
            if last < 0.05 {
                return;
            }
            eprintln!("round {round}: counters overhead {last:.3}, re-measuring");
        }
        panic!("counters overhead stayed ≥ 5 %: {last:.3}");
    }

    #[test]
    fn report_covers_all_levels_and_off_is_baseline() {
        let input = GupsInput { updates: 2_000, table_len: 512, seed: 3 };
        let report = measure(&input, 2, 1);
        let names: Vec<&str> = report.levels.iter().map(|l| l.level.as_str()).collect();
        assert_eq!(names, vec!["off", "counters", "counters+trace"]);
        assert_eq!(report.levels[0].overhead, 0.0, "off is its own baseline");
        assert!(report.levels.iter().all(|l| l.best_secs > 0.0));
    }
}
