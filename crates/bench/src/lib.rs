//! # gravel-bench — the experiment harness
//!
//! One binary per table/figure of the paper, plus criterion
//! microbenchmarks for the queue and divergence studies:
//!
//! | Target | Reproduces | Kind |
//! |---|---|---|
//! | `--bin fig6` | Fig. 6 — queue throughput vs work-group size | live queues |
//! | `--bin fig8` | Fig. 8 — queue throughput vs message size | live queues |
//! | `--bin fig12` | Fig. 12 — Gravel scalability, 9 workloads | trace + model |
//! | `--bin fig13` | Fig. 13 — Gravel vs CPU systems | trace + model |
//! | `--bin fig14` | Fig. 14 — aggregation-size sensitivity | trace + model |
//! | `--bin fig15` | Fig. 15 — style comparison at 8 nodes | trace + model |
//! | `--bin table1` | Table 1 — model criteria (measured) | live + model |
//! | `--bin table2` | Table 2 — GUPS lines of code | source count |
//! | `--bin table5` | Table 5 — network statistics at 8 nodes | trace + model |
//! | `--bin sec8` | §8.2 — diverged WG-level operations | live SIMT |
//! | `--bin extensions` | §10 hierarchy + §8.1 hw aggregator (future work) | model |
//! | `--bin telemetry_overhead` | telemetry cost: GUPS at off / counters / counters+trace | live runtime |
//! | `--bin all_experiments` | everything above | — |
//! | `--bench fig6_wg_sync` | Fig. 6 under criterion | live queues |
//! | `--bench fig8_queue_tput` | Fig. 8 under criterion | live queues |
//! | `--bench sec8_diverged` | §8.2 under criterion | live SIMT |
//!
//! Each binary prints an aligned table and saves JSON under `results/`
//! (or `$GRAVEL_RESULTS_DIR`). Binaries accept `--quick` to run at test
//! scale.

pub mod experiments;
pub mod queue_bench;
pub mod report;
pub mod telemetry_overhead;
pub mod throughput;

pub use report::Table;
