//! Report rendering shared by the figure/table generator binaries.
//!
//! Every experiment binary prints a human-readable table to stdout and,
//! when `GRAVEL_RESULTS_DIR` is set (or `results/` exists), writes the
//! same data as JSON for downstream plotting.

use std::io::Write;
use std::path::PathBuf;

/// A rectangular report: header row + data rows.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table {
    /// Experiment identifier, e.g. `"fig12"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout in aligned columns.
    pub fn print(&self) {
        println!("\n== {} — {} ==", self.id, self.title);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |cells: &[String]| {
            let line: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
            println!("  {}", line.join("  "));
        };
        print_row(&self.columns);
        println!("  {}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            print_row(row);
        }
    }

    /// Write JSON next to the other results if a results dir is available.
    pub fn save_json(&self) {
        let dir = std::env::var("GRAVEL_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = dir.join(format!("{}.json", self.id));
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(serde_json::to_string_pretty(self).unwrap().as_bytes());
            eprintln!("[saved {}]", path.display());
        }
    }

    /// Print and save.
    pub fn emit(&self) {
        self.print();
        self.save_json();
    }
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format bytes with unit suffix.
pub fn bytes_h(b: f64) -> String {
    if b >= 1024.0 * 1024.0 {
        format!("{:.1} MB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.1} kB", b / 1024.0)
    } else {
        format!("{b:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_must_match_columns() {
        let mut t = Table::new("x", "t", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn bad_row_rejected() {
        let mut t = Table::new("x", "t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.3777), "0.378");
        assert_eq!(bytes_h(64.0 * 1024.0), "64.0 kB");
        assert_eq!(bytes_h(100.0), "100 B");
        assert_eq!(bytes_h(2.5 * 1024.0 * 1024.0), "2.5 MB");
    }
}
