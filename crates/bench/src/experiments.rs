//! Shared setup for the model-driven figures (12-15, Table 5).

use gravel_apps::{GraphInputs, Scale};
use gravel_cluster::{Calibration, WorkloadTrace};

/// Cluster sizes evaluated in the paper.
pub const SIZES: [usize; 4] = [1, 2, 4, 8];

/// Scale selection from argv (`--quick` → test scale).
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--quick") {
        Scale::Test
    } else {
        Scale::Bench
    }
}

/// Cached workload traces for a set of cluster sizes.
///
/// Traces are deterministic in (workload, scale, nodes), so they are
/// memoized on disk under `results/trace_cache/` — the expensive ones
/// (SSSP on the 16 M-vertex mesh) take a minute to generate and seconds
/// to reload, and every figure binary shares the cache. Delete the
/// directory to force regeneration.
pub struct TraceSet {
    scale: Scale,
    graphs: std::cell::OnceCell<GraphInputs>,
}

impl TraceSet {
    /// Prepare a trace set; graphs are generated lazily on the first
    /// cache miss.
    pub fn new(scale: Scale) -> Self {
        TraceSet { scale, graphs: std::cell::OnceCell::new() }
    }

    fn cache_path(&self, workload: &str, nodes: usize) -> std::path::PathBuf {
        let dir = std::env::var("GRAVEL_RESULTS_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|_| std::path::PathBuf::from("results"));
        dir.join("trace_cache").join(format!("{:?}-{workload}-{nodes}.json", self.scale))
    }

    /// The trace for `workload` at `nodes` nodes (disk-cached).
    pub fn trace(&self, workload: &str, nodes: usize) -> WorkloadTrace {
        let path = self.cache_path(workload, nodes);
        if let Ok(bytes) = std::fs::read(&path) {
            if let Ok(trace) = serde_json::from_slice::<WorkloadTrace>(&bytes) {
                return trace;
            }
        }
        let graphs = self.graphs.get_or_init(|| {
            eprintln!("[generating inputs at {:?} scale]", self.scale);
            GraphInputs::generate(self.scale, 1)
        });
        let trace = gravel_apps::inputs::workload_trace(workload, self.scale, graphs, nodes);
        if let Some(parent) = path.parent() {
            if std::fs::create_dir_all(parent).is_ok() {
                if let Ok(json) = serde_json::to_vec(&trace) {
                    let _ = std::fs::write(&path, json);
                }
            }
        }
        trace
    }

    /// The calibration used by every figure.
    pub fn calibration(&self) -> Calibration {
        Calibration::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_set_builds_all_workloads_at_test_scale() {
        let ts = TraceSet::new(Scale::Test);
        for w in gravel_apps::WORKLOADS {
            let t = ts.trace(w, 2);
            assert_eq!(t.nodes, 2, "{w}");
        }
    }
}
