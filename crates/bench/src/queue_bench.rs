//! Live queue throughput measurement (Figures 6 and 8).
//!
//! One producer thread (standing in for the GPU, whose work-group-slot
//! batches `produce_batch` replicates exactly: one reservation RMW per
//! batch, column-layout payload) and one consumer thread, on real shared
//! memory. The evaluation host has a single hardware thread, so absolute
//! GB/s are far below the paper's APU and the paper's multi-consumer
//! large-message regime is not reproducible; what carries over — and what
//! the figures assert — is the *relative* shape: synchronization
//! amortization vs batch size, and Gravel vs the padded CPU queues at
//! small sizes.

use std::sync::Arc;
use std::time::Instant;

use gravel_gq::{GravelQueue, MpmcQueue, QueueConfig, SpscQueue};

/// Result of one throughput measurement.
#[derive(Clone, Copy, Debug)]
pub struct Throughput {
    /// Payload bytes moved through the queue.
    pub bytes: u64,
    /// Wall time, seconds.
    pub secs: f64,
    /// Producer reservation RMWs per message.
    pub rmws_per_msg: f64,
}

impl Throughput {
    /// GB/s (decimal).
    pub fn gbps(&self) -> f64 {
        self.bytes as f64 / self.secs / 1e9
    }
}

/// Gravel-queue throughput: `batches` batches of `batch` messages of
/// `rows × 8` bytes.
pub fn gravel_queue(batch: usize, rows: usize, batches: usize) -> Throughput {
    let cfg = QueueConfig::for_bytes(1 << 20, batch, rows);
    let q = Arc::new(GravelQueue::new(cfg));
    let consumer = {
        let q = q.clone();
        std::thread::spawn(move || {
            let mut out = Vec::new();
            while q.consume_blocking(&mut out).is_some() {
                out.clear();
            }
        })
    };
    let words: Vec<u64> = (0..batch * rows).map(|i| i as u64).collect();
    let start = Instant::now();
    for _ in 0..batches {
        q.produce_batch(&words, batch);
    }
    q.close();
    consumer.join().expect("consumer");
    let secs = start.elapsed().as_secs_f64();
    let snap = q.stats.snapshot();
    Throughput {
        bytes: (batches * batch * rows * 8) as u64,
        secs,
        rmws_per_msg: snap.rmws_per_message(),
    }
}

/// Work-item-granularity variant: every message is its own reservation
/// (the §4.1 strawman measured at 0.06 GB/s).
pub fn wi_queue(rows: usize, messages: usize) -> Throughput {
    gravel_queue(1, rows, messages)
}

/// SPSC CPU-queue throughput for `messages` messages of `rows × 8` bytes.
pub fn spsc_queue(rows: usize, messages: usize) -> Throughput {
    let q = Arc::new(SpscQueue::new(4096, rows));
    let consumer = {
        let q = q.clone();
        std::thread::spawn(move || {
            let mut out = Vec::new();
            while q.consume_blocking(&mut out).is_some() {
                out.clear();
            }
        })
    };
    let words: Vec<u64> = (0..rows).map(|i| i as u64).collect();
    let start = Instant::now();
    for _ in 0..messages {
        q.produce(&words);
    }
    q.close();
    consumer.join().expect("consumer");
    Throughput {
        bytes: (messages * rows * 8) as u64,
        secs: start.elapsed().as_secs_f64(),
        rmws_per_msg: 0.0, // SPSC synchronizes with plain loads/stores
    }
}

/// MPMC CPU-queue throughput (same ticket algorithm as Gravel, one
/// message per padded cell).
pub fn mpmc_queue(rows: usize, messages: usize) -> Throughput {
    let q = Arc::new(MpmcQueue::new(4096, rows));
    let consumer = {
        let q = q.clone();
        std::thread::spawn(move || {
            let mut out = Vec::new();
            while q.consume_blocking(&mut out).is_some() {
                out.clear();
            }
        })
    };
    let words: Vec<u64> = (0..rows).map(|i| i as u64).collect();
    let start = Instant::now();
    for _ in 0..messages {
        q.produce(&words);
    }
    q.close();
    consumer.join().expect("consumer");
    let snap = q.stats.snapshot();
    Throughput {
        bytes: (messages * rows * 8) as u64,
        secs: start.elapsed().as_secs_f64(),
        rmws_per_msg: snap.rmws_per_message(),
    }
}

/// Gravel slot width used for a given message size in the Fig. 8 sweep:
/// full 256-lane work-groups for small messages, narrowing so a slot
/// never exceeds 256 kB.
pub fn fig8_lane_width(msg_bytes: usize) -> usize {
    (256 * 1024 / msg_bytes).clamp(1, 256)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gravel_queue_moves_all_bytes() {
        let t = gravel_queue(64, 4, 50);
        assert_eq!(t.bytes, 50 * 64 * 4 * 8);
        assert!(t.secs > 0.0);
        assert!(t.gbps() > 0.0);
        // One reservation per batch of 64.
        assert!((t.rmws_per_msg - 1.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn wg_batching_amortizes_rmws() {
        let small = gravel_queue(64, 4, 40);
        let large = gravel_queue(256, 4, 10);
        assert!(large.rmws_per_msg < small.rmws_per_msg);
    }

    #[test]
    fn baselines_run() {
        assert!(spsc_queue(4, 2000).gbps() > 0.0);
        let m = mpmc_queue(4, 2000);
        assert!(m.gbps() > 0.0);
        assert!((m.rmws_per_msg - 1.0).abs() < 0.01, "one RMW per message");
    }

    #[test]
    fn fig8_lane_widths() {
        assert_eq!(fig8_lane_width(8), 256);
        assert_eq!(fig8_lane_width(1024), 256);
        assert_eq!(fig8_lane_width(4096), 64);
        assert_eq!(fig8_lane_width(65536), 4);
    }
}
