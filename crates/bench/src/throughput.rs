//! Hot-path throughput measurement: messages/second through the
//! aggregate → deliver → apply pipeline, per aggregator lane count.
//!
//! Two workloads, both at fixed sizes so successive runs are comparable
//! (`BENCH_throughput.json` is the repo's persistent perf trajectory):
//!
//! * **GUPS (pipeline-injected)** — the gated metric. Each node's update
//!   stream is precomputed and injected from a host producer thread in
//!   slot-sized batches, so the measured interval is dominated by the
//!   CPU-side hot path this bench exists to track (ring drain →
//!   aggregation → go-back-N delivery → zero-copy apply), not by the
//!   interpreted SIMT frontend.
//! * **PageRank (end-to-end)** — `run_live` over a fixed generated
//!   graph, gated like GUPS since the lane governor landed: it includes
//!   kernel dispatch and per-iteration barriers, the way applications
//!   actually experience the runtime. Runs twice per lane count — with
//!   the adaptive lane governor (the default) and with a static
//!   destination→lane mask (`"pagerank_nogov"`) — so the report prices
//!   what adaptive collapse buys on a workload whose per-lane fill
//!   never justifies the full mask.
//!
//! Each workload runs at every requested lane count. The report carries
//! messages/sec plus the p50/p99 aggregate→apply latency from the
//! per-node `net.packet_latency_ns` histograms, so a throughput win that
//! costs tail latency is visible in the same file.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use gravel_apps::graph::gen;
use gravel_apps::{gups, pagerank};
use gravel_core::{GravelConfig, GravelRuntime, WireIntegrity};
use gravel_gq::Message;
use gravel_telemetry::HistogramSnapshot;

/// One measured configuration cell.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ThroughputCell {
    /// Workload name (`"gups"`, `"gups_nocrc"`, `"pagerank"`,
    /// `"pagerank_nogov"`, `"get_rpc"`, or `"get_rpc_nobands"`).
    pub workload: String,
    /// Wire-integrity mode the cell ran under (`"crc32c"` or `"off"`).
    pub wire_integrity: String,
    /// Aggregator lanes per node.
    pub lanes: usize,
    /// Cluster size.
    pub nodes: usize,
    /// Messages offloaded through the pipeline.
    pub messages: u64,
    /// Wall seconds from first injection to quiescence.
    pub elapsed_s: f64,
    /// `messages / elapsed_s`.
    pub msgs_per_sec: f64,
    /// Median aggregate→apply latency (ns) over all applied packets.
    pub p50_agg_apply_ns: u64,
    /// Tail aggregate→apply latency (ns).
    pub p99_agg_apply_ns: u64,
    /// Average flushed packet size in bytes.
    pub avg_packet_bytes: f64,
    /// Packets retransmitted (should stay 0 on the reliable fabric).
    pub retransmits: u64,
    /// Median foreground GET round-trip latency (ns). Zero for
    /// workloads that issue no GETs.
    pub p50_get_ns: u64,
    /// Tail foreground GET round-trip latency (ns). Zero for workloads
    /// that issue no GETs.
    pub p99_get_ns: u64,
}

/// The full report written to `BENCH_throughput.json`.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ThroughputReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// True when run with `--quick` (CI smoke scale — not comparable to
    /// full-size runs).
    pub quick: bool,
    /// GUPS updates per run.
    pub gups_updates: usize,
    /// PageRank graph vertices.
    pub pagerank_vertices: usize,
    /// All measured cells.
    pub cells: Vec<ThroughputCell>,
    /// GUPS messages/sec at the highest lane count divided by the
    /// lanes=1 rate — the headline scaling number.
    pub gups_speedup: f64,
    /// Fractional throughput cost of wire integrity at lanes=1: the
    /// median over trial pairs of `1 - gups_rate / gups_nocrc_rate`,
    /// where each pair ran back to back (paired so machine drift
    /// cancels). The acceptance bar is < 0.03 at full scale; negative
    /// values mean the CRC was free in this run (within noise).
    pub integrity_tax: f64,
}

impl ThroughputReport {
    /// The GUPS cell at `lanes`, if measured.
    pub fn gups_cell(&self, lanes: usize) -> Option<&ThroughputCell> {
        self.cells
            .iter()
            .find(|c| c.workload == "gups" && c.lanes == lanes)
    }

    /// The governed PageRank cell at `lanes`, if measured.
    pub fn pagerank_cell(&self, lanes: usize) -> Option<&ThroughputCell> {
        self.cells
            .iter()
            .find(|c| c.workload == "pagerank" && c.lanes == lanes)
    }
}

/// Benchmark scale.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Total GUPS updates.
    pub gups_updates: usize,
    /// GUPS table length.
    pub gups_table: usize,
    /// PageRank vertex count.
    pub pr_vertices: usize,
    /// PageRank iterations.
    pub pr_iters: usize,
    /// Foreground GET probes per request-reply latency cell.
    pub get_probes: usize,
    /// Best-of trials per cell.
    pub trials: u32,
}

impl Scale {
    /// Full scale: long enough that the pipeline reaches steady state.
    pub fn full() -> Self {
        Scale {
            gups_updates: 1_500_000,
            gups_table: 1 << 14,
            pr_vertices: 4_000,
            pr_iters: 3,
            get_probes: 1_500,
            trials: 3,
        }
    }

    /// CI smoke scale. PageRank is kept big enough (milliseconds, not
    /// microseconds, per run) that the lane governor reaches steady
    /// state — the smoke lane-curve assertion needs the collapsed
    /// regime, not the start-up transient — while still a rounding
    /// error next to the GUPS cells.
    pub fn quick() -> Self {
        Scale {
            gups_updates: 40_000,
            gups_table: 1 << 10,
            pr_vertices: 1_600,
            pr_iters: 3,
            get_probes: 150,
            trials: 1,
        }
    }
}

fn bench_config(nodes: usize, heap_len: usize, lanes: usize) -> GravelConfig {
    let mut cfg = GravelConfig::paper(nodes, heap_len);
    cfg.aggregator_threads = lanes;
    cfg
}

/// Merge every node's aggregate→apply latency histogram.
fn merged_latency(rt: &GravelRuntime) -> HistogramSnapshot {
    let snap = rt.telemetry_snapshot();
    let mut merged = HistogramSnapshot::default();
    for n in 0..rt.nodes() {
        if let Some(h) = snap.histogram(&format!("node{n}.net.packet_latency_ns")) {
            merged.merge(h);
        }
    }
    merged
}

fn cell_from_run(
    workload: &str,
    integrity: WireIntegrity,
    lanes: usize,
    nodes: usize,
    messages: u64,
    elapsed_s: f64,
    rt: &GravelRuntime,
) -> ThroughputCell {
    let lat = merged_latency(rt);
    let stats = rt.stats();
    ThroughputCell {
        workload: workload.to_string(),
        wire_integrity: match integrity {
            WireIntegrity::Crc32c => "crc32c".to_string(),
            WireIntegrity::Off => "off".to_string(),
        },
        lanes,
        nodes,
        messages,
        elapsed_s,
        msgs_per_sec: messages as f64 / elapsed_s,
        p50_agg_apply_ns: lat.p50(),
        p99_agg_apply_ns: lat.p99(),
        avg_packet_bytes: stats.avg_packet_bytes(),
        retransmits: stats.total_retransmits(),
        p50_get_ns: 0,
        p99_get_ns: 0,
    }
}

/// One GUPS trial: inject every node's precomputed update stream from a
/// host producer thread, then time to quiescence. `integrity` selects
/// the wire-integrity mode — the `Off` ablation prices the CRC32C
/// seal/verify work against an otherwise identical run.
fn gups_trial(
    scale: &Scale,
    nodes: usize,
    lanes: usize,
    integrity: WireIntegrity,
) -> ThroughputCell {
    let input = gups::GupsInput {
        updates: scale.gups_updates,
        table_len: scale.gups_table,
        seed: 7,
    };
    let part = gups::partition(&input, nodes);
    // Precompute each node's message stream outside the timed region.
    let streams: Vec<Vec<Message>> = (0..nodes)
        .map(|node| {
            gups::node_updates(&input, nodes, node)
                .into_iter()
                .map(|g| Message::inc(part.owner(g) as u32, part.local_offset(g), 1))
                .collect()
        })
        .collect();
    let heap_len = (0..nodes).map(|n| part.local_len(n)).max().unwrap();
    let messages: u64 = streams.iter().map(|s| s.len() as u64).sum();

    let mut cfg = bench_config(nodes, heap_len, lanes);
    cfg.wire_integrity = integrity;
    let workload = match integrity {
        WireIntegrity::Crc32c => "gups",
        WireIntegrity::Off => "gups_nocrc",
    };
    let rt = GravelRuntime::new(cfg);
    let start = Instant::now();
    std::thread::scope(|s| {
        for (node, stream) in streams.iter().enumerate() {
            let node = rt.node(node).clone();
            s.spawn(move || node.host_send_batch(stream));
        }
    });
    rt.quiesce();
    let elapsed = start.elapsed().as_secs_f64();
    let cell = cell_from_run(workload, integrity, lanes, nodes, messages, elapsed, &rt);
    rt.shutdown().expect("throughput GUPS run must be clean");
    cell
}

/// One PageRank trial: `run_live` end to end. `governed` selects the
/// lane-governor ablation: `false` pins the static destination→lane
/// mask (`lane_governor = None`), which is what PageRank ran under
/// before adaptive collapse — sparse per-lane fill, timeout-dominated
/// flushes, and a lane curve that bent *down* past lanes=1.
fn pagerank_trial(scale: &Scale, nodes: usize, lanes: usize, governed: bool) -> ThroughputCell {
    let g = gen::hugebubbles_like(scale.pr_vertices, 11);
    let part = pagerank::partition(&g, nodes);
    let heap_len = (0..nodes).map(|n| part.local_len(n)).max().unwrap();
    let mut cfg = bench_config(nodes, heap_len, lanes);
    if !governed {
        cfg.lane_governor = None;
    }
    let rt = GravelRuntime::new(cfg);
    let start = Instant::now();
    pagerank::run_live(&rt, &g, scale.pr_iters, pagerank::default_damping());
    rt.quiesce();
    let elapsed = start.elapsed().as_secs_f64();
    let messages = rt.stats().total_offloaded();
    let cell = cell_from_run(
        if governed { "pagerank" } else { "pagerank_nogov" },
        WireIntegrity::Crc32c,
        lanes,
        nodes,
        messages,
        elapsed,
        &rt,
    );
    rt.shutdown()
        .expect("throughput PageRank run must be clean");
    cell
}

/// `p`-th percentile of an ascending-sorted latency sample.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    match sorted.len() {
        0 => 0,
        n => sorted[((n - 1) as f64 * p).round() as usize],
    }
}

/// One request-reply latency trial: a continuous background PUT storm
/// keeps every node's bulk class saturated while the foreground issues
/// sequential GET probes from node 0 and times each round trip. With
/// `qos_bands` on, the LATENCY band drains GETs and their replies ahead
/// of queued bulk runs; the `_nobands` ablation funnels everything
/// through one class queue, so the same probes wait behind the storm.
/// `msgs_per_sec` is the foreground GET op rate; the headline fields
/// are `p50_get_ns`/`p99_get_ns`.
fn get_rpc_trial(scale: &Scale, nodes: usize, qos_bands: bool) -> ThroughputCell {
    let heap_len: usize = 1 << 10;
    let mut cfg = bench_config(nodes, heap_len, 1);
    cfg.rpc.qos_bands = qos_bands;
    // Probes must complete, not race the deadline: the cell measures
    // scheduling latency, and a timeout would poison the percentiles.
    cfg.rpc.timeout = Duration::from_secs(10);
    // 4 kB bulk packets (the fault-sweep size): each in-flight bulk
    // packet is ~128 messages of receiver work, so head-of-line wait in
    // the per-node inbound FIFO stays small and the measured latency is
    // dominated by *sender-side* queueing — the part the band scheduler
    // arbitrates. 64 kB packets would bury the scheduling signal under
    // megabytes of already-shipped bulk ahead of the reply.
    cfg.node_queue_bytes = 4096;
    let rt = GravelRuntime::new(cfg);
    for node in 0..nodes {
        for addr in 0..heap_len as u64 {
            rt.heap(node).store(addr, addr ^ ((node as u64) << 32));
        }
    }
    // Per-node background chunk: bulk INCs at the right neighbour,
    // resent in a loop until the foreground probes finish.
    let chunks: Vec<Vec<Message>> = (0..nodes)
        .map(|node| {
            let dest = ((node + 1) % nodes) as u32;
            (0..2048u64)
                .map(|i| Message::inc(dest, i % heap_len as u64, 1))
                .collect()
        })
        .collect();
    let stop = AtomicBool::new(false);
    let mut lat: Vec<u64> = Vec::with_capacity(scale.get_probes);
    // Keep ~64k bulk messages in flight cluster-wide: enough beyond the
    // go-back-N windows that every sender holds a queued bulk backlog
    // (the state the band scheduler arbitrates), bounded so the run
    // measures scheduling rather than unbounded-overload queueing.
    const BULK_IN_FLIGHT: u64 = 64 * 1024;
    let shared: Vec<_> = (0..nodes).map(|n| rt.node(n).clone()).collect();
    let start = Instant::now();
    let fg_elapsed = std::thread::scope(|s| {
        for (id, chunk) in chunks.iter().enumerate() {
            let node = rt.node(id).clone();
            let stop = &stop;
            let shared = &shared;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let applied: u64 = shared.iter().map(|n| n.applied.get()).sum();
                    let offloaded: u64 = shared.iter().map(|n| n.offloaded.get()).sum();
                    if offloaded.saturating_sub(applied) < BULK_IN_FLIGHT {
                        node.host_send_batch(chunk);
                    } else {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
            });
        }
        for i in 0..scale.get_probes {
            let dest = if nodes > 1 { (1 + i % (nodes - 1)) as u32 } else { 0 };
            let addr = (i % heap_len) as u64;
            let t0 = Instant::now();
            let got = rt.host_get(0, dest, addr);
            assert!(got.is_ok(), "GET probe failed mid-bench: {got:?}");
            lat.push(t0.elapsed().as_nanos() as u64);
        }
        let fg = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        fg
    });
    rt.quiesce();
    lat.sort_unstable();
    let mut cell = cell_from_run(
        if qos_bands { "get_rpc" } else { "get_rpc_nobands" },
        WireIntegrity::Crc32c,
        1,
        nodes,
        scale.get_probes as u64,
        fg_elapsed,
        &rt,
    );
    cell.p50_get_ns = percentile(&lat, 0.50);
    cell.p99_get_ns = percentile(&lat, 0.99);
    rt.shutdown().expect("throughput GET run must be clean");
    cell
}

/// Keep whichever of `best`/`c` has the higher messages/sec.
fn faster_of(best: Option<ThroughputCell>, c: ThroughputCell) -> Option<ThroughputCell> {
    match best {
        Some(b) if b.msgs_per_sec >= c.msgs_per_sec => Some(b),
        _ => Some(c),
    }
}

/// Best-of-`trials` (highest messages/sec) for one cell.
fn best_of(trials: u32, mut run: impl FnMut() -> ThroughputCell) -> ThroughputCell {
    let mut best = run();
    for _ in 1..trials {
        let c = run();
        if c.msgs_per_sec > best.msgs_per_sec {
            best = c;
        }
    }
    best
}

/// Run the full matrix: both workloads at every lane count.
pub fn measure(
    scale: &Scale,
    nodes: usize,
    lane_counts: &[usize],
    quick: bool,
) -> ThroughputReport {
    let mut cells = Vec::new();
    // Integrity ablation: the same GUPS run at lanes=1 with framing CRCs
    // disabled, pricing the per-frame seal/verify work. The two sides'
    // trials are interleaved so warmup and clock drift cancel instead of
    // systematically favoring whichever cell runs later.
    eprintln!("[throughput] gups nodes={nodes} lanes=1 (+ interleaved wire_integrity=off ablation)");
    let mut on1: Option<ThroughputCell> = None;
    let mut off1: Option<ThroughputCell> = None;
    let mut pair_ratios = Vec::new();
    // At least nine pairs (when not a smoke run): the tax is a small
    // difference between noisy rates, so it needs more samples than the
    // headline cells. Order alternates within pairs so short-scale
    // drift biases half the ratios each way and the median discards it;
    // one discarded warmup trial keeps process start-up cost (page
    // faults, lazy init) out of the first pair.
    let pairs = if scale.trials > 1 { scale.trials.max(9) } else { 1 };
    if scale.trials > 1 {
        let _ = gups_trial(scale, nodes, 1, WireIntegrity::Crc32c);
    }
    for p in 0..pairs {
        let (first, second) = if p % 2 == 0 {
            (WireIntegrity::Crc32c, WireIntegrity::Off)
        } else {
            (WireIntegrity::Off, WireIntegrity::Crc32c)
        };
        let a = gups_trial(scale, nodes, 1, first);
        let b = gups_trial(scale, nodes, 1, second);
        let (on, off) = if p % 2 == 0 { (a, b) } else { (b, a) };
        pair_ratios.push(on.msgs_per_sec / off.msgs_per_sec);
        on1 = faster_of(on1, on);
        off1 = faster_of(off1, off);
    }
    cells.push(on1.expect("trials >= 1"));
    for &lanes in lane_counts {
        if lanes == 1 {
            continue; // measured in the ablation pair above
        }
        eprintln!("[throughput] gups nodes={nodes} lanes={lanes}");
        cells.push(best_of(scale.trials, || {
            gups_trial(scale, nodes, lanes, WireIntegrity::Crc32c)
        }));
    }
    cells.push(off1.expect("trials >= 1"));
    // PageRank runs both lane-governor ablations back to back at each
    // lane count: the governed curve is the gated one (lanes must never
    // be a loss), the static-mask curve documents what the governor is
    // buying. Always at least best-of-5: a PageRank cell is single-digit
    // milliseconds, so one scheduler hiccup on a small CI box swings a
    // single trial by tens of percent — and the smoke lane-curve gate
    // compares two of these cells against each other.
    let pr_trials = scale.trials.max(5);
    for &lanes in lane_counts {
        eprintln!("[throughput] pagerank nodes={nodes} lanes={lanes} (+ lane_governor=off ablation)");
        cells.push(best_of(pr_trials, || {
            pagerank_trial(scale, nodes, lanes, true)
        }));
        cells.push(best_of(pr_trials, || {
            pagerank_trial(scale, nodes, lanes, false)
        }));
    }
    // Request-reply latency under bulk pressure, with the QoS-band
    // ablation. At full scale the LATENCY band's p99 must undercut the
    // bands-off cell; at smoke scale the pair is informational only.
    eprintln!("[throughput] get_rpc nodes={nodes} (foreground GETs vs PUT storm, qos on/off)");
    let bands = best_of(scale.trials, || get_rpc_trial(scale, nodes, true));
    let nobands = best_of(scale.trials, || get_rpc_trial(scale, nodes, false));
    eprintln!(
        "[throughput] GET p99 with QoS bands: {} ns; without: {} ns",
        bands.p99_get_ns, nobands.p99_get_ns
    );
    cells.push(bands);
    cells.push(nobands);
    let base = cells.iter().find(|c| c.workload == "gups" && c.lanes == 1);
    let top = cells
        .iter()
        .filter(|c| c.workload == "gups")
        .max_by_key(|c| c.lanes);
    let gups_speedup = match (base, top) {
        (Some(b), Some(t)) if b.msgs_per_sec > 0.0 => t.msgs_per_sec / b.msgs_per_sec,
        _ => f64::NAN,
    };
    // Median of the per-pair on/off rate ratios: each ratio compares
    // two back-to-back runs, so slow machine drift (noisy neighbors,
    // frequency changes) cancels where a best-vs-best comparison would
    // absorb it.
    pair_ratios.sort_by(f64::total_cmp);
    let integrity_tax = match pair_ratios.get(pair_ratios.len() / 2) {
        Some(r) => 1.0 - r,
        None => f64::NAN,
    };
    ThroughputReport {
        schema: "gravel.throughput.v3".to_string(),
        quick,
        gups_updates: scale.gups_updates,
        pagerank_vertices: scale.pr_vertices,
        cells,
        gups_speedup,
        integrity_tax,
    }
}

/// Write the report to `path` (pretty JSON), appending to the per-commit
/// history instead of overwriting it.
///
/// The document keeps the latest report's fields at the top level (the
/// CI smoke assert and ad-hoc readers consume those) and accumulates a
/// `history` array with one entry per commit, keyed by `git_sha`.
/// Re-running on the same commit replaces that commit's entry, so the
/// file tracks the perf trajectory across PRs without duplicate points.
pub fn save(report: &ThroughputReport, path: &str) -> std::io::Result<()> {
    use serde::{Serialize as _, Value};

    let sha = git_head_sha();
    let mut history: Vec<Value> = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| serde_json::from_str::<Value>(&t).ok())
        .and_then(|old| match old.get("history") {
            Some(Value::Array(h)) => Some(h.clone()),
            _ => None,
        })
        .unwrap_or_default();
    history.retain(|e| e.get("git_sha").and_then(Value::as_str) != Some(sha.as_str()));
    let mut entry = match report.serialize() {
        Value::Object(fields) => fields,
        _ => unreachable!("a struct serializes to an object"),
    };
    entry.retain(|(k, _)| k != "schema"); // entry shape is the document's
    entry.insert(0, ("git_sha".to_string(), Value::Str(sha.clone())));
    history.push(Value::Object(entry));
    let mut doc = match report.serialize() {
        Value::Object(fields) => fields,
        _ => unreachable!("a struct serializes to an object"),
    };
    doc.push(("git_sha".to_string(), Value::Str(sha)));
    doc.push(("history".to_string(), Value::Array(history)));
    let mut f = std::fs::File::create(path)?;
    f.write_all(
        serde_json::to_string_pretty(&Value::Object(doc))
            .map_err(|e| std::io::Error::other(e.to_string()))?
            .as_bytes(),
    )?;
    eprintln!("[saved {path}]");
    Ok(())
}

/// The current commit's SHA, or `"unknown"` outside a git checkout.
fn git_head_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod save_tests {
    use super::*;
    use serde::Value;

    fn tiny_report() -> ThroughputReport {
        ThroughputReport {
            schema: "gravel.throughput.v3".to_string(),
            quick: true,
            gups_updates: 1,
            pagerank_vertices: 1,
            cells: Vec::new(),
            gups_speedup: 1.0,
            integrity_tax: 0.0,
        }
    }

    fn read_doc(path: &str) -> Value {
        serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap()
    }

    fn history(doc: &Value) -> Vec<Value> {
        match doc.get("history") {
            Some(Value::Array(h)) => h.clone(),
            other => panic!("history missing: {other:?}"),
        }
    }

    #[test]
    fn save_appends_history_and_replaces_same_commit() {
        let path = std::env::temp_dir()
            .join(format!("gravel_bench_hist_{}.json", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        std::fs::remove_file(&path).ok();
        save(&tiny_report(), &path).unwrap();
        // Same commit again: the history entry is replaced, not duplicated.
        save(&tiny_report(), &path).unwrap();
        let doc = read_doc(&path);
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some("gravel.throughput.v3"));
        assert!(
            matches!(doc.get("cells"), Some(Value::Array(_))),
            "latest cells stay at the top level"
        );
        let hist = history(&doc);
        assert_eq!(hist.len(), 1, "same-SHA entries are replaced");
        assert!(hist[0].get("git_sha").and_then(Value::as_str).is_some());
        // An entry for a *different* commit survives the next save.
        let mut other_fields = match &hist[0] {
            Value::Object(f) => f.clone(),
            other => panic!("entry not an object: {other:?}"),
        };
        for (k, v) in &mut other_fields {
            if k == "git_sha" {
                *v = Value::Str("0".repeat(40));
            }
        }
        let mut doc_fields = match doc {
            Value::Object(f) => f,
            _ => unreachable!(),
        };
        for (k, v) in &mut doc_fields {
            if k == "history" {
                if let Value::Array(h) = v {
                    h.push(Value::Object(other_fields.clone()));
                }
            }
        }
        std::fs::write(&path, serde_json::to_string(&Value::Object(doc_fields)).unwrap())
            .unwrap();
        save(&tiny_report(), &path).unwrap();
        assert_eq!(history(&read_doc(&path)).len(), 2, "other commits kept");
        std::fs::remove_file(&path).ok();
    }
}
