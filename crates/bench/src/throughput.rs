//! Hot-path throughput measurement: messages/second through the
//! aggregate → deliver → apply pipeline, per aggregator lane count.
//!
//! Two workloads, both at fixed sizes so successive runs are comparable
//! (`BENCH_throughput.json` is the repo's persistent perf trajectory):
//!
//! * **GUPS (pipeline-injected)** — the gated metric. Each node's update
//!   stream is precomputed and injected from a host producer thread in
//!   slot-sized batches, so the measured interval is dominated by the
//!   CPU-side hot path this bench exists to track (ring drain →
//!   aggregation → go-back-N delivery → zero-copy apply), not by the
//!   interpreted SIMT frontend.
//! * **PageRank (end-to-end)** — `run_live` over a fixed generated
//!   graph, informational: it includes kernel dispatch and per-iteration
//!   barriers, the way applications actually experience the runtime.
//!
//! Each workload runs at every requested lane count. The report carries
//! messages/sec plus the p50/p99 aggregate→apply latency from the
//! per-node `net.packet_latency_ns` histograms, so a throughput win that
//! costs tail latency is visible in the same file.

use std::io::Write as _;
use std::time::Instant;

use gravel_apps::graph::gen;
use gravel_apps::{gups, pagerank};
use gravel_core::{GravelConfig, GravelRuntime};
use gravel_gq::Message;
use gravel_telemetry::HistogramSnapshot;

/// One measured configuration cell.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ThroughputCell {
    /// Workload name (`"gups"` or `"pagerank"`).
    pub workload: String,
    /// Aggregator lanes per node.
    pub lanes: usize,
    /// Cluster size.
    pub nodes: usize,
    /// Messages offloaded through the pipeline.
    pub messages: u64,
    /// Wall seconds from first injection to quiescence.
    pub elapsed_s: f64,
    /// `messages / elapsed_s`.
    pub msgs_per_sec: f64,
    /// Median aggregate→apply latency (ns) over all applied packets.
    pub p50_agg_apply_ns: u64,
    /// Tail aggregate→apply latency (ns).
    pub p99_agg_apply_ns: u64,
    /// Average flushed packet size in bytes.
    pub avg_packet_bytes: f64,
    /// Packets retransmitted (should stay 0 on the reliable fabric).
    pub retransmits: u64,
}

/// The full report written to `BENCH_throughput.json`.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ThroughputReport {
    /// Schema tag for downstream tooling.
    pub schema: String,
    /// True when run with `--quick` (CI smoke scale — not comparable to
    /// full-size runs).
    pub quick: bool,
    /// GUPS updates per run.
    pub gups_updates: usize,
    /// PageRank graph vertices.
    pub pagerank_vertices: usize,
    /// All measured cells.
    pub cells: Vec<ThroughputCell>,
    /// GUPS messages/sec at the highest lane count divided by the
    /// lanes=1 rate — the headline scaling number.
    pub gups_speedup: f64,
}

impl ThroughputReport {
    /// The GUPS cell at `lanes`, if measured.
    pub fn gups_cell(&self, lanes: usize) -> Option<&ThroughputCell> {
        self.cells
            .iter()
            .find(|c| c.workload == "gups" && c.lanes == lanes)
    }
}

/// Benchmark scale.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Total GUPS updates.
    pub gups_updates: usize,
    /// GUPS table length.
    pub gups_table: usize,
    /// PageRank vertex count.
    pub pr_vertices: usize,
    /// PageRank iterations.
    pub pr_iters: usize,
    /// Best-of trials per cell.
    pub trials: u32,
}

impl Scale {
    /// Full scale: long enough that the pipeline reaches steady state.
    pub fn full() -> Self {
        Scale {
            gups_updates: 1_500_000,
            gups_table: 1 << 14,
            pr_vertices: 4_000,
            pr_iters: 3,
            trials: 3,
        }
    }

    /// CI smoke scale.
    pub fn quick() -> Self {
        Scale {
            gups_updates: 40_000,
            gups_table: 1 << 10,
            pr_vertices: 400,
            pr_iters: 2,
            trials: 1,
        }
    }
}

fn bench_config(nodes: usize, heap_len: usize, lanes: usize) -> GravelConfig {
    let mut cfg = GravelConfig::paper(nodes, heap_len);
    cfg.aggregator_threads = lanes;
    cfg
}

/// Merge every node's aggregate→apply latency histogram.
fn merged_latency(rt: &GravelRuntime) -> HistogramSnapshot {
    let snap = rt.telemetry_snapshot();
    let mut merged = HistogramSnapshot::default();
    for n in 0..rt.nodes() {
        if let Some(h) = snap.histogram(&format!("node{n}.net.packet_latency_ns")) {
            merged.merge(h);
        }
    }
    merged
}

fn cell_from_run(
    workload: &str,
    lanes: usize,
    nodes: usize,
    messages: u64,
    elapsed_s: f64,
    rt: &GravelRuntime,
) -> ThroughputCell {
    let lat = merged_latency(rt);
    let stats = rt.stats();
    ThroughputCell {
        workload: workload.to_string(),
        lanes,
        nodes,
        messages,
        elapsed_s,
        msgs_per_sec: messages as f64 / elapsed_s,
        p50_agg_apply_ns: lat.p50(),
        p99_agg_apply_ns: lat.p99(),
        avg_packet_bytes: stats.avg_packet_bytes(),
        retransmits: stats.total_retransmits(),
    }
}

/// One GUPS trial: inject every node's precomputed update stream from a
/// host producer thread, then time to quiescence.
fn gups_trial(scale: &Scale, nodes: usize, lanes: usize) -> ThroughputCell {
    let input = gups::GupsInput {
        updates: scale.gups_updates,
        table_len: scale.gups_table,
        seed: 7,
    };
    let part = gups::partition(&input, nodes);
    // Precompute each node's message stream outside the timed region.
    let streams: Vec<Vec<Message>> = (0..nodes)
        .map(|node| {
            gups::node_updates(&input, nodes, node)
                .into_iter()
                .map(|g| Message::inc(part.owner(g) as u32, part.local_offset(g), 1))
                .collect()
        })
        .collect();
    let heap_len = (0..nodes).map(|n| part.local_len(n)).max().unwrap();
    let messages: u64 = streams.iter().map(|s| s.len() as u64).sum();

    let rt = GravelRuntime::new(bench_config(nodes, heap_len, lanes));
    let start = Instant::now();
    std::thread::scope(|s| {
        for (node, stream) in streams.iter().enumerate() {
            let node = rt.node(node).clone();
            s.spawn(move || node.host_send_batch(stream));
        }
    });
    rt.quiesce();
    let elapsed = start.elapsed().as_secs_f64();
    let cell = cell_from_run("gups", lanes, nodes, messages, elapsed, &rt);
    rt.shutdown().expect("throughput GUPS run must be clean");
    cell
}

/// One PageRank trial: `run_live` end to end.
fn pagerank_trial(scale: &Scale, nodes: usize, lanes: usize) -> ThroughputCell {
    let g = gen::hugebubbles_like(scale.pr_vertices, 11);
    let part = pagerank::partition(&g, nodes);
    let heap_len = (0..nodes).map(|n| part.local_len(n)).max().unwrap();
    let rt = GravelRuntime::new(bench_config(nodes, heap_len, lanes));
    let start = Instant::now();
    pagerank::run_live(&rt, &g, scale.pr_iters, pagerank::default_damping());
    rt.quiesce();
    let elapsed = start.elapsed().as_secs_f64();
    let messages = rt.stats().total_offloaded();
    let cell = cell_from_run("pagerank", lanes, nodes, messages, elapsed, &rt);
    rt.shutdown()
        .expect("throughput PageRank run must be clean");
    cell
}

/// Best-of-`trials` (highest messages/sec) for one cell.
fn best_of(trials: u32, mut run: impl FnMut() -> ThroughputCell) -> ThroughputCell {
    let mut best = run();
    for _ in 1..trials {
        let c = run();
        if c.msgs_per_sec > best.msgs_per_sec {
            best = c;
        }
    }
    best
}

/// Run the full matrix: both workloads at every lane count.
pub fn measure(
    scale: &Scale,
    nodes: usize,
    lane_counts: &[usize],
    quick: bool,
) -> ThroughputReport {
    let mut cells = Vec::new();
    for &lanes in lane_counts {
        eprintln!("[throughput] gups nodes={nodes} lanes={lanes}");
        cells.push(best_of(scale.trials, || gups_trial(scale, nodes, lanes)));
    }
    for &lanes in lane_counts {
        eprintln!("[throughput] pagerank nodes={nodes} lanes={lanes}");
        cells.push(best_of(scale.trials, || {
            pagerank_trial(scale, nodes, lanes)
        }));
    }
    let base = cells.iter().find(|c| c.workload == "gups" && c.lanes == 1);
    let top = cells
        .iter()
        .filter(|c| c.workload == "gups")
        .max_by_key(|c| c.lanes);
    let gups_speedup = match (base, top) {
        (Some(b), Some(t)) if b.msgs_per_sec > 0.0 => t.msgs_per_sec / b.msgs_per_sec,
        _ => f64::NAN,
    };
    ThroughputReport {
        schema: "gravel.throughput.v1".to_string(),
        quick,
        gups_updates: scale.gups_updates,
        pagerank_vertices: scale.pr_vertices,
        cells,
        gups_speedup,
    }
}

/// Write the report to `path` (pretty JSON).
pub fn save(report: &ThroughputReport, path: &str) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(serde_json::to_string_pretty(report).unwrap().as_bytes())?;
    eprintln!("[saved {path}]");
    Ok(())
}
