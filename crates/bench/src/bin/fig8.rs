//! Figure 8 — producer/consumer queue throughput vs message size.
//!
//! Sweeps 8 B – 64 kB messages through the live Gravel queue and the
//! CPU-only SPSC and MPMC baselines; the 7 GB/s line is the paper's
//! network bandwidth reference.

use gravel_bench::queue_bench::{self, fig8_lane_width};
use gravel_bench::report::{bytes_h, f2, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: Vec<usize> = if quick {
        vec![8, 32, 256, 4096, 65536]
    } else {
        (3..=16).map(|p| 1usize << p).collect() // 8 B .. 64 kB
    };
    let budget_bytes: usize = if quick { 4 << 20 } else { 64 << 20 };

    let mut t = Table::new(
        "fig8",
        "Queue throughput vs message size (GB/s; network reference 7.0)",
        &["msg size", "Gravel", "CPU SPSC", "CPU MPMC", "Gravel batch"],
    );
    for &size in &sizes {
        let rows = size / 8;
        let batch = fig8_lane_width(size);
        let messages = (budget_bytes / size).max(1024);
        let g = queue_bench::gravel_queue(batch, rows, (messages / batch).max(4));
        let s = queue_bench::spsc_queue(rows, messages.min(1 << 20));
        let m = queue_bench::mpmc_queue(rows, messages.min(1 << 20));
        t.row(vec![
            bytes_h(size as f64),
            f2(g.gbps()),
            f2(s.gbps()),
            f2(m.gbps()),
            format!("{batch}"),
        ]);
    }
    t.emit();

    println!(
        "\npaper: Gravel dominates for small messages (32 B at ~7 GB/s on the \
         APU); padded SPSC/MPMC queues pay whole cache lines per message. \
         This host has one hardware thread, so absolute numbers are lower \
         and the multi-consumer large-message regime is not reproducible; \
         the small-message ordering is the reproduced claim."
    );
}
