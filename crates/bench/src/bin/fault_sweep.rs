//! Fault sweep — live-runtime GUPS update rate as a function of injected
//! packet-drop probability and byte-level corruption.
//!
//! The paper evaluates Gravel on a reliable fabric; this sweep measures
//! what the delivery protocol (go-back-N retransmission with cumulative
//! acks, added for unreliable transports) costs as the network degrades.
//! At drop = 0 on the reliable transport the protocol is pure overhead
//! (sequence stamping + ack traffic); each further column pays for the
//! retransmissions that repair real loss. The corruption cells (bit
//! flips, truncation, wholesale garbage — DESIGN.md §13) exercise the
//! other failure plane: a mangled frame fails verification at the
//! receiver and is healed exactly like a lost one, so those columns
//! price CRC verification plus the same retransmission repair. Results
//! are exact at every point — the sweep asserts delivery, not just
//! throughput.
//!
//! Emits `fault_sweep.json` via the shared report machinery, plus
//! `fault_sweep_telemetry.json`: the full metric-registry snapshot of
//! every sweep cell (per-node counters and packet-latency histograms)
//! with the integrity ledger (`net.corrupt_dropped`, `net.truncated`,
//! `net.misrouted`, `net.quarantined`) lifted out per cell.
//!
//! A second axis — `reshard_sweep.json` — prices elastic membership
//! churn (DESIGN.md §16) instead of link faults: the same update
//! stream is replayed through the real shard directory while
//! join/leave plans commit at epoch boundaries, recording shard moves,
//! stale-routed bounces, and migration-copy latency (p50/p99).

use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gravel_apps::gups::{self, GupsInput};
use gravel_bench::report::{f2, Table};
use gravel_core::ha::{successor, Rebalancer, TopologyChange};
use gravel_core::{
    FailureDetector, FaultConfig, GravelConfig, GravelRuntime, HeartbeatConfig, LeaseState,
    PeerStatus, Registry, RegistrySnapshot, RpcFailure, TransportKind, VoteLedger,
};
use gravel_pgas::{Directory, ShardMap, DEFAULT_SHARDS};

/// One sweep cell's telemetry: the injected fault kind/probability, the
/// fault-tolerance and wire-integrity headline counters, and the
/// cluster's complete metric snapshot at quiescence. `restarts`/
/// `recoveries` stay zero unless a chaos plan is wired in — they are
/// lifted out of the snapshot so the cell schema lines up with
/// `chaos_sweep`'s and downstream plots can treat both sweeps uniformly.
#[derive(serde::Serialize)]
struct TelemetryCell {
    fault_kind: String,
    fault_prob: f64,
    restarts: u64,
    recoveries: u64,
    corrupt_dropped: u64,
    truncated: u64,
    misrouted: u64,
    quarantined: u64,
    /// Request-reply ledger for the cell's GET probe stream (DESIGN.md
    /// §15): every probe ends as a completion or a deterministic
    /// timeout — `rpc_issued == rpc_completed + rpc_timeouts` is
    /// asserted before the cell is recorded.
    rpc_issued: u64,
    rpc_completed: u64,
    rpc_timeouts: u64,
    rpc_replies_sent: u64,
    rpc_credits_stalled: u64,
    /// Present only on the reshard cells: the directory-churn axis and
    /// its exactly-once ledger (DESIGN.md §16).
    #[serde(skip_serializing_if = "Option::is_none")]
    reshard: Option<ReshardStats>,
    /// Present only on the failover cells: the coordinator-failover /
    /// partition axis (DESIGN.md §18).
    #[serde(skip_serializing_if = "Option::is_none")]
    failover: Option<FailoverStats>,
    telemetry: RegistrySnapshot,
}

/// One failover cell's outcome: how fast (virtual time) the successor
/// won the lease after the holder died, and how the quorum gate held
/// under partitions and one-way drops.
#[derive(Clone, serde::Serialize)]
struct FailoverStats {
    scenario: String,
    members: u64,
    trials: u64,
    /// Lease takeovers asserted (coordinator-kill trials: one each).
    takeovers: u64,
    /// Eviction rounds denied by a majority that still heard the
    /// suspect (one-way cells: at least one per trial).
    evictions_vetoed: u64,
    /// Distinct map versions observed across the membership at the end
    /// of the cell — must be 1 (nobody forked the map).
    forked_maps: u64,
    /// Virtual kill → takeover latency (detector latch + quorum).
    takeover_p50_ns: u64,
    takeover_p99_ns: u64,
}

/// One reshard cell's outcome: how much the directory churned, what the
/// churn moved, and what it cost the senders that raced it.
#[derive(serde::Serialize)]
struct ReshardStats {
    /// Topology changes committed (map flips) — the cell's sweep axis.
    flips: u64,
    /// Final installed `ShardMap` version (`1 + flips`).
    map_version: u64,
    /// Shard migrations executed across all committed plans.
    moves: u64,
    /// Heap words copied by those migrations.
    words_moved: u64,
    /// Updates routed on a stale map and refused by the ownership gate.
    stale_routed: u64,
    /// Refused updates re-delivered under the bounced-back map. Must
    /// equal `stale_routed` — the exactly-once ledger.
    redelivered: u64,
    /// Per-shard migration latency (timed copy of the strided words).
    migration_p50_ns: u64,
    migration_p99_ns: u64,
}

/// Write the per-cell snapshots next to the tabular report.
fn save_telemetry(cells: Vec<TelemetryCell>) {
    let dir = std::env::var("GRAVEL_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join("fault_sweep_telemetry.json");
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(serde_json::to_string_pretty(&cells).unwrap().as_bytes());
        eprintln!("[saved {}]", path.display());
    }
}

/// The sweep's fault axis: probability-`p` loss, or one corruption
/// mechanism at probability `p` with everything else quiet.
fn cell_config(kind: &str, p: f64, seed: u64) -> Option<FaultConfig> {
    let quiet = FaultConfig::quiet(seed);
    match (kind, p) {
        (_, 0.0) => None,
        ("drop", p) => Some(FaultConfig { drop: p, ..quiet }),
        ("flip", p) => Some(FaultConfig { corrupt: p, ..quiet }),
        ("truncate", p) => Some(FaultConfig { truncate: p, ..quiet }),
        ("garbage", p) => Some(FaultConfig { garbage: p, ..quiet }),
        other => unreachable!("unknown sweep cell {other:?}"),
    }
}

/// One reshard cell: replay the elastic membership protocol (DESIGN.md
/// §16) in-process over the real `Directory`/`ShardMap`/`Rebalancer`
/// machinery while four senders stream the deterministic GUPS updates.
/// `flips` join/leave proposals commit one per epoch boundary; every
/// committed plan pays a timed copy of each moving shard's strided
/// words (the `migration_ns` histogram behind the p99 column). Senders
/// route on a snapshot of the map that is refreshed only when the
/// ownership gate refuses them — exactly the stale-routing NACK path
/// the socket cluster takes — so the cell prices directory churn
/// itself: lookups, bounces, re-delivery, and migration copies, with
/// no socket I/O in the way. The cell asserts bit-exact delivery
/// against a sequential replay and a balanced stale/redelivered ledger
/// before it is recorded.
fn run_reshard_cell(input: &GupsInput, flips: u64) -> (ReshardStats, RegistrySnapshot, u64, Duration) {
    let senders = 4usize;
    let capacity = 6usize;
    let nshards = DEFAULT_SHARDS.min(input.table_len.max(1));
    let members: Vec<u32> = (0..senders as u32).collect();
    let dir = Directory::elastic(input.table_len, ShardMap::initial(&members, nshards));
    let mut heaps: Vec<Vec<u64>> = vec![vec![0u64; input.table_len]; capacity];
    let mut reb = Rebalancer::new();
    let registry = Registry::enabled();
    let migration_ns = registry.histogram("bench.reshard.migration_ns");

    // The same per-node update streams the live sweep issues, drained
    // round-robin so every flip lands mid-traffic for all senders.
    let mut streams: Vec<VecDeque<usize>> =
        (0..senders).map(|s| gups::node_updates(input, senders, s).into()).collect();
    let total: u64 = streams.iter().map(|q| q.len() as u64).sum();
    let boundary_every = (total / (flips + 1)).max(1);
    // Joins and leaves of the two spare slots, interleaved so every
    // proposal is non-moot under FIFO commit order.
    let mut schedule: VecDeque<TopologyChange> = (0..flips)
        .map(|i| match i % 4 {
            0 => TopologyChange::Join(4),
            1 => TopologyChange::Join(5),
            2 => TopologyChange::Leave(4),
            _ => TopologyChange::Leave(5),
        })
        .collect();

    let mut stats = ReshardStats {
        flips: 0,
        map_version: 0,
        moves: 0,
        words_moved: 0,
        stale_routed: 0,
        redelivered: 0,
        migration_p50_ns: 0,
        migration_p99_ns: 0,
    };

    // Commit the next queued change and migrate its shards: a timed
    // strided copy per move, donor → new owner, then cut the map.
    let boundary = |reb: &mut Rebalancer,
                        schedule: &mut VecDeque<TopologyChange>,
                        heaps: &mut [Vec<u64>],
                        stats: &mut ReshardStats| {
        if reb.is_quiescent() {
            if let Some(change) = schedule.pop_front() {
                reb.propose(change);
            }
        }
        let current = dir.current_map().expect("elastic directory");
        if let Some(plan) = reb.boundary_tick(&current) {
            for m in &plan.moves {
                let t0 = Instant::now();
                let mut g = m.shard as usize;
                let mut words = 0u64;
                while g < input.table_len {
                    heaps[m.to as usize][g] = heaps[m.from as usize][g];
                    g += nshards;
                    words += 1;
                }
                migration_ns.record(t0.elapsed().as_nanos() as u64);
                stats.words_moved += words;
                stats.moves += 1;
                reb.note_shard_ready(m.shard);
            }
            assert!(dir.install(plan.map), "map install must be monotonic");
            stats.flips += 1;
        }
    };

    let mut snaps: Vec<Arc<ShardMap>> =
        (0..senders).map(|_| dir.current_map().expect("elastic directory")).collect();
    let mut issued = 0u64;
    let start = Instant::now();
    loop {
        let mut any = false;
        for s in 0..senders {
            let Some(g) = streams[s].pop_front() else { continue };
            any = true;
            // Route on the sender's snapshot; the gate refuses the
            // update if the installed map owns the word elsewhere, and
            // the bounce hands the sender the new map to retry under.
            let mut dest = snaps[s].owner_of(g as u64);
            let live = dir.current_map().expect("elastic directory");
            if live.owner_of(g as u64) != dest {
                stats.stale_routed += 1;
                snaps[s] = live;
                dest = snaps[s].owner_of(g as u64);
                stats.redelivered += 1;
            }
            heaps[dest as usize][g] = heaps[dest as usize][g].wrapping_add(1);
            issued += 1;
            if issued.is_multiple_of(boundary_every) {
                boundary(&mut reb, &mut schedule, &mut heaps, &mut stats);
            }
        }
        if !any {
            break;
        }
    }
    // Flips the stream was too short to reach commit after the drain —
    // the cell's axis stays exact even when traffic can't race them.
    while !schedule.is_empty() || !reb.is_quiescent() {
        boundary(&mut reb, &mut schedule, &mut heaps, &mut stats);
    }
    let wall = start.elapsed();

    // Bit-exact vs the sequential replay, under the final ownership.
    let final_map = dir.current_map().expect("elastic directory");
    let mut expected = vec![0u64; input.table_len];
    for s in 0..senders {
        for g in gups::node_updates(input, senders, s) {
            expected[g] += 1;
        }
    }
    for (g, want) in expected.iter().enumerate() {
        let owner = final_map.owner_of(g as u64) as usize;
        assert_eq!(heaps[owner][g], *want, "reshard cell diverged at index {g} (flips={flips})");
    }
    assert_eq!(
        stats.stale_routed, stats.redelivered,
        "reshard ledger out of balance at flips={flips}"
    );
    assert_eq!(stats.flips, flips, "a scheduled topology change went moot at flips={flips}");
    stats.map_version = final_map.version;
    assert_eq!(stats.map_version, 1 + flips, "map version must count every commit");

    let telemetry = registry.snapshot();
    if let Some(h) = telemetry.histogram("bench.reshard.migration_ns") {
        stats.migration_p50_ns = h.p50();
        stats.migration_p99_ns = h.p99();
    }
    (stats, telemetry, issued, wall)
}

/// One failover cell: replay the coordinator-failover protocol
/// (DESIGN.md §18) over the real `FailureDetector`/`LeaseState`/
/// `VoteLedger` machinery in *virtual* time — explicit `Instant`s, no
/// sleeping — so the measured takeover latency is the protocol's
/// (detector latch + quorum round), not the harness's.
///
/// Scenarios:
/// * `coordinator-kill` — the term-1 holder goes silent; every
///   survivor's detector must latch it, the successor collects a
///   corroborating quorum and asserts term 2. Per-trial latency feeds
///   the takeover histogram; seeded beat jitter spreads the trials.
/// * `partition` — a symmetric 3/3 split: each side latches the far
///   side dead, but 3 corroborating votes can never reach quorum(6)=4,
///   so no eviction and no takeover on either side; after the heal the
///   resumed beats clear every latch.
/// * `one-way` — one node stops hearing the holder; the majority still
///   does, so its eviction round is *denied* (vetoed) and the lease
///   never moves.
fn run_failover_cell(scenario: &str, trials: u64) -> (FailoverStats, RegistrySnapshot) {
    let cfg = HeartbeatConfig {
        interval: Duration::from_millis(5),
        suspect_phi: 3.0,
        dead_phi: 8.0,
        min_samples: 3,
    };
    let beat = cfg.interval;
    let registry = Registry::enabled();
    let takeover_ns = registry.histogram("bench.failover.takeover_ns");
    let vetoed_ctr = registry.counter("bench.failover.evictions_vetoed");

    let n: usize = match scenario {
        "partition" => 6,
        "one-way" => 4,
        _ => 5,
    };
    let members: Vec<u32> = (0..n as u32).collect();
    let mut stats = FailoverStats {
        scenario: scenario.to_string(),
        members: n as u64,
        trials,
        takeovers: 0,
        evictions_vetoed: 0,
        forked_maps: 1,
        takeover_p50_ns: 0,
        takeover_p99_ns: 0,
    };

    // SplitMix64: seeded per-trial beat jitter so the latency histogram
    // sees a spread, not one deterministic point.
    let mut rng_state = 0xFA11_0E4A_F417_0BADu64;
    let mut rng = move || {
        rng_state = rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    for _ in 0..trials {
        let base = Instant::now();
        let detectors: Vec<FailureDetector> =
            (0..n).map(|_| FailureDetector::new(cfg.clone())).collect();
        // `hears(i, peer, t_ms)`: does observer i receive peer's beat at
        // virtual time t? Warmup (all links up) runs 0..500ms; the
        // scenario's fault window opens at 500ms and heals at 2500ms.
        let fault = |i: usize, peer: usize, t_ms: u64| -> bool {
            if !(500..2500).contains(&t_ms) {
                return false;
            }
            match scenario {
                "coordinator-kill" => peer == 0, // the holder is dead
                "partition" => (i < 3) != (peer < 3),
                "one-way" => i == n - 1 && peer == 0,
                other => unreachable!("unknown failover scenario {other:?}"),
            }
        };
        let lease = LeaseState::new(1, 0); // the successor's view
        let votes = VoteLedger::new();
        let mut vetoed_this_trial = false;
        let mut took_over_at: Option<u64> = None;
        let mut t_ms = 0u64;
        while t_ms < 3500 {
            t_ms += beat.as_millis() as u64;
            let jitter = Duration::from_micros(rng() % 1500);
            let now = base + Duration::from_millis(t_ms) + jitter;
            for (i, det) in detectors.iter().enumerate() {
                for peer in 0..n {
                    if i != peer && !fault(i, peer, t_ms) {
                        det.note_beat(peer as u32, now);
                    }
                }
            }
            // The HA tick (every 25ms of virtual time): vote rounds at
            // every live member, then the successor's takeover check.
            if !t_ms.is_multiple_of(25) {
                continue;
            }
            for (i, det) in detectors.iter().enumerate().skip(1) {
                for &suspect in &members {
                    if suspect == i as u32 {
                        continue;
                    }
                    let verdict = det.status(suspect, now) == PeerStatus::Dead;
                    votes.record(suspect, i as u32, verdict);
                }
            }
            for &suspect in &members {
                if votes.denied(suspect, &members)
                    && votes.yes_count(suspect) > 0
                    && votes.note_veto(suspect)
                {
                    stats.evictions_vetoed += 1;
                    vetoed_this_trial = true;
                    vetoed_ctr.inc();
                }
            }
            // Node 1 steps up only once the quorum-confirmed dead set
            // makes it the lowest live member — exactly `run_ha`'s rule.
            let confirmed: Vec<u32> = members
                .iter()
                .copied()
                .filter(|&p| votes.confirmed(p, &members))
                .collect();
            if took_over_at.is_none()
                && confirmed.contains(&lease.holder())
                && successor(&members, &confirmed) == Some(1)
            {
                lease.assert_takeover();
                took_over_at = Some(t_ms);
                stats.takeovers += 1;
                takeover_ns.record((t_ms - 500) * 1_000_000);
                break;
            }
        }
        match scenario {
            "coordinator-kill" => assert!(
                took_over_at.is_some(),
                "successor never took over after the holder died"
            ),
            "partition" | "one-way" => {
                assert!(
                    took_over_at.is_none(),
                    "{scenario}: a minority view moved the lease"
                );
                assert_eq!(lease.term(), 1, "{scenario}: term moved");
            }
            _ => unreachable!(),
        }
        if scenario == "one-way" {
            assert!(vetoed_this_trial, "one-way suspicion was never vetoed");
        }
        // Heal check (non-takeover scenarios): beats resumed after
        // 2500ms, so every latched verdict clears via the revive rule
        // (small silence on a latched-dead peer).
        if took_over_at.is_none() {
            let now = base + Duration::from_millis(3600);
            for (i, d) in detectors.iter().enumerate() {
                for peer in 0..n {
                    if i == peer {
                        continue;
                    }
                    if d.status(peer as u32, now) == PeerStatus::Dead {
                        let silence = d
                            .silence(peer as u32, now)
                            .expect("tracked peer has a silence");
                        assert!(
                            silence < cfg.interval * 40,
                            "{scenario}: peer {peer} never resumed at observer {i}"
                        );
                        d.reset_peer(peer as u32, now);
                    }
                }
                for &suspect in &members {
                    votes.clear(suspect);
                }
            }
        }
    }

    let telemetry = registry.snapshot();
    if let Some(h) = telemetry.histogram("bench.failover.takeover_ns") {
        stats.takeover_p50_ns = h.p50();
        stats.takeover_p99_ns = h.p99();
    }
    (stats, telemetry)
}

fn main() {
    let scale = std::env::args().any(|a| a == "--full");
    let input = if scale {
        GupsInput { updates: 500_000, table_len: 1 << 14, seed: 7 }
    } else {
        GupsInput { updates: 50_000, table_len: 4096, seed: 7 }
    };
    let nodes = 4;
    let sweep: Vec<(&str, f64)> = [0.0, 0.001, 0.01, 0.05, 0.10]
        .iter()
        .map(|&p| ("drop", p))
        .chain(
            ["flip", "truncate", "garbage"]
                .iter()
                .flat_map(|&k| [0.001, 0.01].map(|p| (k, p))),
        )
        .collect();

    let mut t = Table::new(
        "fault_sweep",
        "GUPS under injected loss and corruption (4 nodes, live runtime)",
        &[
            "fault",
            "prob",
            "updates",
            "wall ms",
            "Mupdates/s",
            "retransmits",
            "dups suppressed",
            "stalls",
            "packets lost",
            "corrupt refused",
            "quarantined",
            "GETs ok",
            "GETs t/o",
        ],
    );

    let mut cells: Vec<TelemetryCell> = Vec::new();
    for (kind, prob) in sweep {
        let mut cfg = GravelConfig::small(nodes, input.table_len);
        cfg.node_queue_bytes = 4096;
        if let Some(faults) = cell_config(kind, prob, 0xFA57) {
            cfg.transport = TransportKind::Unreliable(faults);
        }
        let rt = GravelRuntime::new(cfg);
        let start = Instant::now();
        let issued = gups::run_live(&rt, &input);
        rt.quiesce();
        let wall = start.elapsed();
        // GET probes under the same fault model: request-reply frames
        // ride the degraded links, so drops and corruption hit them the
        // way they hit bulk traffic. Every probe must end bit-exact
        // (the GUPS table is quiescent) or as a deterministic timeout.
        let mut gets_ok = 0u64;
        let mut gets_timed_out = 0u64;
        for i in 0..32usize {
            let src = i % nodes;
            let dest = ((src + 1 + i / nodes) % nodes) as u32;
            let addr = (i % 16) as u64;
            match rt.host_get(src, dest, addr) {
                Ok(v) => {
                    assert_eq!(
                        v,
                        rt.heap(dest as usize).load(addr),
                        "GET returned a wrong value at {kind}={prob}"
                    );
                    gets_ok += 1;
                }
                Err(RpcFailure::TimedOut) => gets_timed_out += 1,
                Err(other) => panic!("non-deterministic GET failure at {kind}={prob}: {other}"),
            }
        }
        rt.quiesce();
        // Reconcile the probe outcomes against the rpc ledger before
        // recording the cell: the counters must balance, every Ok the
        // caller saw must be a counted completion, and nothing may
        // linger in a pending-reply table.
        let node_stats: Vec<_> = (0..nodes).map(|n| rt.node(n).stats()).collect();
        let rpc_issued: u64 = node_stats.iter().map(|s| s.rpc.issued).sum();
        let rpc_completed: u64 = node_stats.iter().map(|s| s.rpc.completed).sum();
        let rpc_timeouts: u64 = node_stats.iter().map(|s| s.rpc.timeouts).sum();
        assert_eq!(rpc_issued, 32, "probe count off at {kind}={prob}");
        assert_eq!(
            rpc_issued,
            rpc_completed + rpc_timeouts,
            "rpc ledger out of balance at {kind}={prob}"
        );
        assert_eq!(rpc_completed, gets_ok, "completions != observed Oks at {kind}={prob}");
        for n in 0..nodes {
            assert_eq!(rt.node(n).rpc.len(), 0, "node {n} pending table leaked at {kind}={prob}");
        }
        let telemetry = rt.telemetry_snapshot();
        let restarts = telemetry.counter("ha.restarts");
        let recoveries = telemetry.counter("ha.recoveries");
        let stats = rt.shutdown().expect("GUPS must survive the fault sweep");
        assert_eq!(
            stats.total_offloaded(),
            stats.total_applied(),
            "lost updates at {kind}={prob}"
        );
        let truncated: u64 = stats.nodes.iter().map(|n| n.net.truncated).sum();
        let misrouted: u64 = stats.nodes.iter().map(|n| n.net.misrouted).sum();
        cells.push(TelemetryCell {
            fault_kind: kind.to_string(),
            fault_prob: prob,
            restarts,
            recoveries,
            corrupt_dropped: stats.total_corrupt_dropped(),
            truncated,
            misrouted,
            quarantined: stats.total_quarantined(),
            rpc_issued,
            rpc_completed,
            rpc_timeouts,
            rpc_replies_sent: stats.nodes.iter().map(|n| n.rpc.replies_sent).sum(),
            rpc_credits_stalled: stats.nodes.iter().map(|n| n.rpc.credits_stalled).sum(),
            reshard: None,
            failover: None,
            telemetry,
        });
        let rate = issued as f64 / wall.as_secs_f64() / 1e6;
        t.row(vec![
            kind.to_string(),
            format!("{prob:.3}"),
            issued.to_string(),
            f2(wall.as_secs_f64() * 1e3),
            f2(rate),
            stats.total_retransmits().to_string(),
            stats.total_dups_suppressed().to_string(),
            stats.total_backpressure_stalls().to_string(),
            stats.faults.total_losses().to_string(),
            stats.total_integrity_drops().to_string(),
            stats.total_quarantined().to_string(),
            gets_ok.to_string(),
            gets_timed_out.to_string(),
        ]);
    }
    t.emit();

    // ---- Reshard cells: the same GUPS stream under directory churn
    // instead of link faults. The axis is committed topology flips;
    // the measured planes are migration cost (moves, words, p50/p99
    // copy latency) and what stale routing cost the senders.
    let mut rt = Table::new(
        "reshard_sweep",
        "GUPS under elastic membership churn (model-level reshard replay)",
        &[
            "flips",
            "updates",
            "wall ms",
            "Mupdates/s",
            "map ver",
            "moves",
            "words moved",
            "stale routed",
            "redelivered",
            "mig p50 ns",
            "mig p99 ns",
        ],
    );
    for flips in [0u64, 4, 16, 64] {
        let (rs, telemetry, issued, wall) = run_reshard_cell(&input, flips);
        let rate = issued as f64 / wall.as_secs_f64() / 1e6;
        rt.row(vec![
            flips.to_string(),
            issued.to_string(),
            f2(wall.as_secs_f64() * 1e3),
            f2(rate),
            rs.map_version.to_string(),
            rs.moves.to_string(),
            rs.words_moved.to_string(),
            rs.stale_routed.to_string(),
            rs.redelivered.to_string(),
            rs.migration_p50_ns.to_string(),
            rs.migration_p99_ns.to_string(),
        ]);
        cells.push(TelemetryCell {
            fault_kind: "reshard".to_string(),
            fault_prob: flips as f64,
            restarts: 0,
            recoveries: 0,
            corrupt_dropped: 0,
            truncated: 0,
            misrouted: 0,
            quarantined: 0,
            rpc_issued: 0,
            rpc_completed: 0,
            rpc_timeouts: 0,
            rpc_replies_sent: 0,
            rpc_credits_stalled: 0,
            reshard: Some(rs),
            failover: None,
            telemetry,
        });
    }
    rt.emit();

    // ---- Failover cells: the coordinator-failover protocol replayed
    // in virtual time (DESIGN.md §18). The headline numbers are the
    // kill → takeover latency distribution and the quorum gate holding
    // under partitions and one-way drops.
    let mut ft = Table::new(
        "failover_sweep",
        "Coordinator failover and partition tolerance (model-level, virtual time)",
        &[
            "scenario",
            "members",
            "trials",
            "takeovers",
            "vetoed",
            "forked maps",
            "takeover p50 ms",
            "takeover p99 ms",
        ],
    );
    let trials = if scale { 200 } else { 50 };
    for scenario in ["coordinator-kill", "partition", "one-way"] {
        let (fs, telemetry) = run_failover_cell(scenario, trials);
        ft.row(vec![
            fs.scenario.clone(),
            fs.members.to_string(),
            fs.trials.to_string(),
            fs.takeovers.to_string(),
            fs.evictions_vetoed.to_string(),
            fs.forked_maps.to_string(),
            f2(fs.takeover_p50_ns as f64 / 1e6),
            f2(fs.takeover_p99_ns as f64 / 1e6),
        ]);
        cells.push(TelemetryCell {
            fault_kind: "failover".to_string(),
            fault_prob: 0.0,
            restarts: 0,
            recoveries: 0,
            corrupt_dropped: 0,
            truncated: 0,
            misrouted: 0,
            quarantined: 0,
            rpc_issued: 0,
            rpc_completed: 0,
            rpc_timeouts: 0,
            rpc_replies_sent: 0,
            rpc_credits_stalled: 0,
            reshard: None,
            failover: Some(fs),
            telemetry,
        });
    }
    ft.emit();
    save_telemetry(cells);
}
