//! Fault sweep — live-runtime GUPS update rate as a function of injected
//! packet-drop probability.
//!
//! The paper evaluates Gravel on a reliable fabric; this sweep measures
//! what the delivery protocol (go-back-N retransmission with cumulative
//! acks, added for unreliable transports) costs as the network degrades.
//! At drop = 0 on the reliable transport the protocol is pure overhead
//! (sequence stamping + ack traffic); each further column pays for the
//! retransmissions that repair real loss. Results are exact at every
//! point — the sweep asserts delivery, not just throughput.
//!
//! Emits `fault_sweep.json` via the shared report machinery, plus
//! `fault_sweep_telemetry.json`: the full metric-registry snapshot of
//! every sweep cell (per-node counters and packet-latency histograms),
//! for post-mortem inspection of *where* the degradation shows up.

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

use gravel_apps::gups::{self, GupsInput};
use gravel_bench::report::{f2, Table};
use gravel_core::{FaultConfig, GravelConfig, GravelRuntime, RegistrySnapshot, TransportKind};

/// One sweep cell's telemetry: the injected drop probability, the
/// fault-tolerance headline counters, and the cluster's complete metric
/// snapshot at quiescence. `restarts`/`recoveries` stay zero unless a
/// chaos plan is wired in — they are lifted out of the snapshot so the
/// cell schema lines up with `chaos_sweep`'s and downstream plots can
/// treat both sweeps uniformly.
#[derive(serde::Serialize)]
struct TelemetryCell {
    drop_prob: f64,
    restarts: u64,
    recoveries: u64,
    telemetry: RegistrySnapshot,
}

/// Write the per-cell snapshots next to the tabular report.
fn save_telemetry(cells: Vec<TelemetryCell>) {
    let dir = std::env::var("GRAVEL_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join("fault_sweep_telemetry.json");
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(serde_json::to_string_pretty(&cells).unwrap().as_bytes());
        eprintln!("[saved {}]", path.display());
    }
}

fn main() {
    let scale = std::env::args().any(|a| a == "--full");
    let input = if scale {
        GupsInput { updates: 500_000, table_len: 1 << 14, seed: 7 }
    } else {
        GupsInput { updates: 50_000, table_len: 4096, seed: 7 }
    };
    let nodes = 4;
    let drops = [0.0, 0.001, 0.01, 0.05, 0.10];

    let mut t = Table::new(
        "fault_sweep",
        "GUPS under injected packet loss (4 nodes, live runtime)",
        &[
            "drop prob",
            "updates",
            "wall ms",
            "Mupdates/s",
            "retransmits",
            "dups suppressed",
            "stalls",
            "packets lost",
        ],
    );

    let mut cells: Vec<TelemetryCell> = Vec::new();
    for &drop in &drops {
        let mut cfg = GravelConfig::small(nodes, input.table_len);
        cfg.node_queue_bytes = 4096;
        if drop > 0.0 {
            cfg.transport = TransportKind::Unreliable(FaultConfig::drop_only(0xFA57, drop));
        }
        let rt = GravelRuntime::new(cfg);
        let start = Instant::now();
        let issued = gups::run_live(&rt, &input);
        rt.quiesce();
        let wall = start.elapsed();
        let telemetry = rt.telemetry_snapshot();
        cells.push(TelemetryCell {
            drop_prob: drop,
            restarts: telemetry.counter("ha.restarts"),
            recoveries: telemetry.counter("ha.recoveries"),
            telemetry,
        });
        let stats = rt.shutdown().expect("GUPS must survive the fault sweep");
        assert_eq!(stats.total_offloaded(), stats.total_applied(), "lost updates at drop={drop}");
        let rate = issued as f64 / wall.as_secs_f64() / 1e6;
        t.row(vec![
            format!("{drop:.3}"),
            issued.to_string(),
            f2(wall.as_secs_f64() * 1e3),
            f2(rate),
            stats.total_retransmits().to_string(),
            stats.total_dups_suppressed().to_string(),
            stats.total_backpressure_stalls().to_string(),
            stats.faults.total_losses().to_string(),
        ]);
    }
    t.emit();
    save_telemetry(cells);
}
