//! Fault sweep — live-runtime GUPS update rate as a function of injected
//! packet-drop probability and byte-level corruption.
//!
//! The paper evaluates Gravel on a reliable fabric; this sweep measures
//! what the delivery protocol (go-back-N retransmission with cumulative
//! acks, added for unreliable transports) costs as the network degrades.
//! At drop = 0 on the reliable transport the protocol is pure overhead
//! (sequence stamping + ack traffic); each further column pays for the
//! retransmissions that repair real loss. The corruption cells (bit
//! flips, truncation, wholesale garbage — DESIGN.md §13) exercise the
//! other failure plane: a mangled frame fails verification at the
//! receiver and is healed exactly like a lost one, so those columns
//! price CRC verification plus the same retransmission repair. Results
//! are exact at every point — the sweep asserts delivery, not just
//! throughput.
//!
//! Emits `fault_sweep.json` via the shared report machinery, plus
//! `fault_sweep_telemetry.json`: the full metric-registry snapshot of
//! every sweep cell (per-node counters and packet-latency histograms)
//! with the integrity ledger (`net.corrupt_dropped`, `net.truncated`,
//! `net.misrouted`, `net.quarantined`) lifted out per cell.

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

use gravel_apps::gups::{self, GupsInput};
use gravel_bench::report::{f2, Table};
use gravel_core::{
    FaultConfig, GravelConfig, GravelRuntime, RegistrySnapshot, RpcFailure, TransportKind,
};

/// One sweep cell's telemetry: the injected fault kind/probability, the
/// fault-tolerance and wire-integrity headline counters, and the
/// cluster's complete metric snapshot at quiescence. `restarts`/
/// `recoveries` stay zero unless a chaos plan is wired in — they are
/// lifted out of the snapshot so the cell schema lines up with
/// `chaos_sweep`'s and downstream plots can treat both sweeps uniformly.
#[derive(serde::Serialize)]
struct TelemetryCell {
    fault_kind: String,
    fault_prob: f64,
    restarts: u64,
    recoveries: u64,
    corrupt_dropped: u64,
    truncated: u64,
    misrouted: u64,
    quarantined: u64,
    /// Request-reply ledger for the cell's GET probe stream (DESIGN.md
    /// §15): every probe ends as a completion or a deterministic
    /// timeout — `rpc_issued == rpc_completed + rpc_timeouts` is
    /// asserted before the cell is recorded.
    rpc_issued: u64,
    rpc_completed: u64,
    rpc_timeouts: u64,
    rpc_replies_sent: u64,
    rpc_credits_stalled: u64,
    telemetry: RegistrySnapshot,
}

/// Write the per-cell snapshots next to the tabular report.
fn save_telemetry(cells: Vec<TelemetryCell>) {
    let dir = std::env::var("GRAVEL_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join("fault_sweep_telemetry.json");
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(serde_json::to_string_pretty(&cells).unwrap().as_bytes());
        eprintln!("[saved {}]", path.display());
    }
}

/// The sweep's fault axis: probability-`p` loss, or one corruption
/// mechanism at probability `p` with everything else quiet.
fn cell_config(kind: &str, p: f64, seed: u64) -> Option<FaultConfig> {
    let quiet = FaultConfig::quiet(seed);
    match (kind, p) {
        (_, 0.0) => None,
        ("drop", p) => Some(FaultConfig { drop: p, ..quiet }),
        ("flip", p) => Some(FaultConfig { corrupt: p, ..quiet }),
        ("truncate", p) => Some(FaultConfig { truncate: p, ..quiet }),
        ("garbage", p) => Some(FaultConfig { garbage: p, ..quiet }),
        other => unreachable!("unknown sweep cell {other:?}"),
    }
}

fn main() {
    let scale = std::env::args().any(|a| a == "--full");
    let input = if scale {
        GupsInput { updates: 500_000, table_len: 1 << 14, seed: 7 }
    } else {
        GupsInput { updates: 50_000, table_len: 4096, seed: 7 }
    };
    let nodes = 4;
    let sweep: Vec<(&str, f64)> = [0.0, 0.001, 0.01, 0.05, 0.10]
        .iter()
        .map(|&p| ("drop", p))
        .chain(
            ["flip", "truncate", "garbage"]
                .iter()
                .flat_map(|&k| [0.001, 0.01].map(|p| (k, p))),
        )
        .collect();

    let mut t = Table::new(
        "fault_sweep",
        "GUPS under injected loss and corruption (4 nodes, live runtime)",
        &[
            "fault",
            "prob",
            "updates",
            "wall ms",
            "Mupdates/s",
            "retransmits",
            "dups suppressed",
            "stalls",
            "packets lost",
            "corrupt refused",
            "quarantined",
            "GETs ok",
            "GETs t/o",
        ],
    );

    let mut cells: Vec<TelemetryCell> = Vec::new();
    for (kind, prob) in sweep {
        let mut cfg = GravelConfig::small(nodes, input.table_len);
        cfg.node_queue_bytes = 4096;
        if let Some(faults) = cell_config(kind, prob, 0xFA57) {
            cfg.transport = TransportKind::Unreliable(faults);
        }
        let rt = GravelRuntime::new(cfg);
        let start = Instant::now();
        let issued = gups::run_live(&rt, &input);
        rt.quiesce();
        let wall = start.elapsed();
        // GET probes under the same fault model: request-reply frames
        // ride the degraded links, so drops and corruption hit them the
        // way they hit bulk traffic. Every probe must end bit-exact
        // (the GUPS table is quiescent) or as a deterministic timeout.
        let mut gets_ok = 0u64;
        let mut gets_timed_out = 0u64;
        for i in 0..32usize {
            let src = i % nodes;
            let dest = ((src + 1 + i / nodes) % nodes) as u32;
            let addr = (i % 16) as u64;
            match rt.host_get(src, dest, addr) {
                Ok(v) => {
                    assert_eq!(
                        v,
                        rt.heap(dest as usize).load(addr),
                        "GET returned a wrong value at {kind}={prob}"
                    );
                    gets_ok += 1;
                }
                Err(RpcFailure::TimedOut) => gets_timed_out += 1,
                Err(other) => panic!("non-deterministic GET failure at {kind}={prob}: {other}"),
            }
        }
        rt.quiesce();
        // Reconcile the probe outcomes against the rpc ledger before
        // recording the cell: the counters must balance, every Ok the
        // caller saw must be a counted completion, and nothing may
        // linger in a pending-reply table.
        let node_stats: Vec<_> = (0..nodes).map(|n| rt.node(n).stats()).collect();
        let rpc_issued: u64 = node_stats.iter().map(|s| s.rpc.issued).sum();
        let rpc_completed: u64 = node_stats.iter().map(|s| s.rpc.completed).sum();
        let rpc_timeouts: u64 = node_stats.iter().map(|s| s.rpc.timeouts).sum();
        assert_eq!(rpc_issued, 32, "probe count off at {kind}={prob}");
        assert_eq!(
            rpc_issued,
            rpc_completed + rpc_timeouts,
            "rpc ledger out of balance at {kind}={prob}"
        );
        assert_eq!(rpc_completed, gets_ok, "completions != observed Oks at {kind}={prob}");
        for n in 0..nodes {
            assert_eq!(rt.node(n).rpc.len(), 0, "node {n} pending table leaked at {kind}={prob}");
        }
        let telemetry = rt.telemetry_snapshot();
        let restarts = telemetry.counter("ha.restarts");
        let recoveries = telemetry.counter("ha.recoveries");
        let stats = rt.shutdown().expect("GUPS must survive the fault sweep");
        assert_eq!(
            stats.total_offloaded(),
            stats.total_applied(),
            "lost updates at {kind}={prob}"
        );
        let truncated: u64 = stats.nodes.iter().map(|n| n.net.truncated).sum();
        let misrouted: u64 = stats.nodes.iter().map(|n| n.net.misrouted).sum();
        cells.push(TelemetryCell {
            fault_kind: kind.to_string(),
            fault_prob: prob,
            restarts,
            recoveries,
            corrupt_dropped: stats.total_corrupt_dropped(),
            truncated,
            misrouted,
            quarantined: stats.total_quarantined(),
            rpc_issued,
            rpc_completed,
            rpc_timeouts,
            rpc_replies_sent: stats.nodes.iter().map(|n| n.rpc.replies_sent).sum(),
            rpc_credits_stalled: stats.nodes.iter().map(|n| n.rpc.credits_stalled).sum(),
            telemetry,
        });
        let rate = issued as f64 / wall.as_secs_f64() / 1e6;
        t.row(vec![
            kind.to_string(),
            format!("{prob:.3}"),
            issued.to_string(),
            f2(wall.as_secs_f64() * 1e3),
            f2(rate),
            stats.total_retransmits().to_string(),
            stats.total_dups_suppressed().to_string(),
            stats.total_backpressure_stalls().to_string(),
            stats.faults.total_losses().to_string(),
            stats.total_integrity_drops().to_string(),
            stats.total_quarantined().to_string(),
            gets_ok.to_string(),
            gets_timed_out.to_string(),
        ]);
    }
    t.emit();
    save_telemetry(cells);
}
