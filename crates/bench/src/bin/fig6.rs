//! Figure 6 — producer/consumer throughput vs work-group size.
//!
//! 32-byte messages through the live Gravel queue with work-groups of
//! 1, 2 and 4 wavefronts (64/128/256 messages per slot), plus the
//! work-item-granularity strawman the paper reports at 0.06 GB/s.

use gravel_bench::queue_bench;
use gravel_bench::report::{f2, f3, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows = 4; // 32-byte messages
    let total_msgs: usize = if quick { 1 << 15 } else { 1 << 20 };

    let mut t = Table::new(
        "fig6",
        "Producer/consumer throughput vs work-group size (32 B messages)",
        &["work-group", "messages", "GB/s", "RMWs/work-item"],
    );
    for (label, batch) in
        [("1 wavefront", 64usize), ("2 wavefronts", 128), ("4 wavefronts", 256)]
    {
        let r = queue_bench::gravel_queue(batch, rows, total_msgs / batch);
        t.row(vec![
            label.to_string(),
            format!("{}", total_msgs),
            f2(r.gbps()),
            f3(r.rmws_per_msg),
        ]);
    }
    // §4.1: the work-item-level queue is two orders of magnitude slower.
    let wi = queue_bench::wi_queue(rows, total_msgs / 16);
    t.row(vec![
        "work-item level".to_string(),
        format!("{}", total_msgs / 16),
        f2(wi.gbps()),
        f3(wi.rmws_per_msg),
    ]);
    t.emit();

    println!(
        "\npaper: throughput grows ~3x from 1 to 4 wavefronts; atomics per \
         work-item drop ~80%; WI-level sync lands two orders of magnitude low."
    );
}
