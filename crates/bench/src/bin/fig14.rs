//! Figure 14 — aggregation sensitivity: GUPS rate vs per-node queue
//! size (64 B – 256 kB) at 1/2/4/8 nodes. Also sweeps the flush timeout
//! as the ablation DESIGN.md calls out.

use gravel_bench::experiments::{scale_from_args, TraceSet, SIZES};
use gravel_bench::report::{bytes_h, Table};
use gravel_cluster::{simulate, Style};

fn main() {
    let ts = TraceSet::new(scale_from_args());

    let queue_sizes = [64usize, 512, 4096, 32 * 1024, 256 * 1024];
    let mut t = Table::new(
        "fig14",
        "GUPS rate (updates/s, millions) vs per-node queue size",
        &["queue size", "1 node", "2 nodes", "4 nodes", "8 nodes"],
    );
    // Traces are queue-size independent: generate once per cluster size.
    let traces: Vec<_> = SIZES
        .iter()
        .map(|&n| {
            eprintln!("[fig14: trace at {n} nodes]");
            ts.trace("GUPS", n)
        })
        .collect();
    // Total updates in the trace = total routed messages (every update is
    // routed under serialized atomics).
    for &qb in &queue_sizes {
        let mut row = vec![bytes_h(qb as f64)];
        for trace in &traces {
            let updates = trace.total_routed();
            let mut cal = ts.calibration();
            cal.node_queue_bytes = qb;
            let r = simulate(trace, &cal, &Style::Gravel.params(&cal));
            row.push(format!("{:.1}", r.ops_per_sec(updates) / 1e6));
        }
        t.row(row);
    }
    t.emit();

    // Ablation: flush-timeout sweep at 8 nodes, 64 kB queues.
    let mut t2 = Table::new(
        "fig14_timeout_ablation",
        "GUPS rate (updates/s, millions) vs flush timeout at 8 nodes",
        &["timeout (µs)", "rate"],
    );
    let trace = ts.trace("GUPS", 8);
    let updates = trace.total_routed();
    for to_us in [25u64, 125, 625, 3125] {
        let mut cal = ts.calibration();
        cal.flush_timeout_ns = to_us * 1000;
        let r = simulate(&trace, &cal, &Style::Gravel.params(&cal));
        t2.row(vec![format!("{to_us}"), format!("{:.1}", r.ops_per_sec(updates) / 1e6)]);
    }
    t2.emit();

    println!(
        "\npaper: larger queues help multi-node performance with diminishing \
         returns past 32 kB; 64 kB is the sweet spot."
    );
}
