//! Chaos sweep — live-runtime GUPS under seeded process kills.
//!
//! Each cell derives a single-kill schedule from a seed
//! ([`ChaosPlan::seeded`]): one aggregator or network thread of a random
//! node panics at a random early drain/apply step, and the supervisor
//! restarts it (DESIGN.md §11). The sweep measures what a kill + restart
//! costs in wall clock and shows the recovery-latency histogram, while
//! asserting the run stays *exact* — every cell verifies the full GUPS
//! histogram against the sequential reference.
//!
//! Emits `chaos_sweep.json` via the shared report machinery, plus
//! `chaos_sweep_telemetry.json` with each cell's complete metric
//! snapshot (per-node restart counters included).

use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use gravel_apps::gups::{self, GupsInput};
use gravel_bench::report::{f2, Table};
use gravel_core::{ChaosPlan, GravelConfig, GravelRuntime, ProcessFault, RegistrySnapshot};

/// One sweep cell: the seed, the derived fault, the headline
/// fault-tolerance counters, and the full metric snapshot.
#[derive(serde::Serialize)]
struct TelemetryCell {
    seed: u64,
    fault: String,
    restarts: u64,
    recoveries: u64,
    telemetry: RegistrySnapshot,
}

fn save_telemetry(cells: Vec<TelemetryCell>) {
    let dir = std::env::var("GRAVEL_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join("chaos_sweep_telemetry.json");
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(serde_json::to_string_pretty(&cells).unwrap().as_bytes());
        eprintln!("[saved {}]", path.display());
    }
}

fn fault_label(f: &ProcessFault) -> String {
    match f {
        ProcessFault::PanicAggregator { node, slot, at_step } => {
            format!("agg {node}/{slot} @{at_step}")
        }
        ProcessFault::PanicNet { node, at_step } => format!("net {node} @{at_step}"),
        ProcessFault::HeartbeatBlackhole { node, from_beat, beats } => {
            format!("hb-hole {node} @{from_beat}+{beats}")
        }
        ProcessFault::KillProcess { node, at_step } => format!("kill -9 {node} @{at_step}"),
    }
}

fn main() {
    let scale = std::env::args().any(|a| a == "--full");
    let input = if scale {
        GupsInput { updates: 500_000, table_len: 1 << 14, seed: 7 }
    } else {
        GupsInput { updates: 50_000, table_len: 4096, seed: 7 }
    };
    let nodes = 4;
    let seeds: Vec<u64> = if scale { (0..16).collect() } else { (0..6).collect() };
    // Keep every kill inside the first 256 steps so it always fires.
    let horizon = 256;

    let mut t = Table::new(
        "chaos_sweep",
        "GUPS under seeded process kills (4 nodes, live runtime, supervised restart)",
        &[
            "seed",
            "fault",
            "updates",
            "wall ms",
            "Mupdates/s",
            "restarts",
            "recoveries",
            "recovery ms (mean)",
            "retransmits",
        ],
    );

    // Fault-free baseline for the wall-clock comparison.
    let baseline_ms = {
        let rt = GravelRuntime::new(cfg_for(&input, nodes, None));
        let start = Instant::now();
        gups::run_live(&rt, &input);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        rt.shutdown().expect("baseline clean");
        ms
    };
    eprintln!("[fault-free baseline: {baseline_ms:.2} ms]");

    let mut cells: Vec<TelemetryCell> = Vec::new();
    for &seed in &seeds {
        let plan = Arc::new(ChaosPlan::seeded(seed, nodes, 1, horizon));
        let fault = fault_label(&plan.faults()[0]);
        let rt = GravelRuntime::new(cfg_for(&input, nodes, Some(plan.clone())));
        let start = Instant::now();
        let issued = gups::run_live(&rt, &input);
        let wall = start.elapsed();
        assert!(gups::verify_live(&rt, &input), "seed {seed}: inexact after kill");

        let telemetry = rt.telemetry_snapshot();
        let restarts = telemetry.counter("ha.restarts");
        let recoveries = telemetry.counter("ha.recoveries");
        let recovery_ms = telemetry
            .histogram("ha.recovery_ns")
            .filter(|h| h.count > 0)
            .map(|h| h.sum as f64 / h.count as f64 / 1e6)
            .unwrap_or(0.0);
        let stats = rt.shutdown().expect("supervised restart must absorb the kill");
        assert_eq!(stats.total_offloaded(), stats.total_applied(), "seed {seed}: lost updates");
        assert_eq!(restarts, plan.kills_planned() as u64, "seed {seed}: kill never fired");

        t.row(vec![
            seed.to_string(),
            fault.clone(),
            issued.to_string(),
            f2(wall.as_secs_f64() * 1e3),
            f2(issued as f64 / wall.as_secs_f64() / 1e6),
            restarts.to_string(),
            recoveries.to_string(),
            f2(recovery_ms),
            stats.total_retransmits().to_string(),
        ]);
        cells.push(TelemetryCell { seed, fault, restarts, recoveries, telemetry });
    }
    t.emit();
    save_telemetry(cells);
}

fn cfg_for(input: &GupsInput, nodes: usize, chaos: Option<Arc<ChaosPlan>>) -> GravelConfig {
    let mut cfg = GravelConfig::small(nodes, input.table_len);
    cfg.node_queue_bytes = 4096;
    cfg.chaos = chaos;
    cfg
}
