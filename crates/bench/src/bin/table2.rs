//! Table 2 — lines of code for GUPS under each GPU networking model.
//!
//! Counts the code lines (non-blank, non-comment, host/GPU split) of the
//! four *real, runnable* GUPS implementations in
//! `gravel_apps::gups_styles`, which all compute the same histogram
//! (verified by their tests). Absolute counts differ from the paper's
//! OpenCL/C++ (Rust is denser and our runtime hides more), but the
//! *ordering* — coprocessor most code, coalesced most GPU code,
//! Gravel/message-per-lane least — is the reproduced claim.

use gravel_apps::gups_styles;
use gravel_bench::report::Table;

fn main() {
    let mut t = Table::new(
        "table2",
        "Lines of code for GUPS per model (this repo's implementations)",
        &["model", "host", "GPU", "total", "paper total"],
    );
    let paper = [("coprocessor", 342), ("msg-per-lane", 193), ("Gravel", 193), ("coalesced APIs", 318)];
    for (name, loc) in gups_styles::table2() {
        let p = paper.iter().find(|(n, _)| *n == name).map(|(_, v)| *v).unwrap_or(0);
        t.row(vec![
            name.to_string(),
            loc.host.to_string(),
            loc.gpu.to_string(),
            loc.total().to_string(),
            p.to_string(),
        ]);
    }
    t.emit();

    println!(
        "\npaper: coprocessor 342 > coalesced 318 > msg-per-lane = Gravel 193. \
         The ordering and the host/GPU split directions are the claim."
    );
}
