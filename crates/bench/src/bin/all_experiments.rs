//! Run every table and figure generator in sequence (passes `--quick`
//! through to each one).

use std::process::Command;

fn main() {
    let quick: Vec<String> =
        std::env::args().skip(1).filter(|a| a == "--quick").collect();
    let bins =
        [
        "table1",
        "table2",
        "table3_table4",
        "fig6",
        "fig8",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "table5",
        "sec8",
        "extensions",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        eprintln!("\n########## {bin} ##########");
        let status = Command::new(dir.join(bin))
            .args(&quick)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    eprintln!("\nall experiments complete");
}
