//! Tables 3 and 4 — the evaluated configuration and the workload inputs,
//! paper vs. this reproduction. These tables are descriptive (no
//! measurement), but printing them side by side makes every substitution
//! and scale factor explicit and machine-readable.

use gravel_bench::report::Table;
use gravel_cluster::Calibration;
use gravel_core::GravelConfig;

fn main() {
    let cal = Calibration::paper();
    let cfg = GravelConfig::paper(8, 1);

    let mut t3 = Table::new(
        "table3",
        "Node architecture: paper (AMD A10-7850K cluster) vs this reproduction",
        &["component", "paper", "this repo"],
    );
    t3.row(vec![
        "GPU".into(),
        "8 CUs, 720 MHz, 64-wide wavefronts".into(),
        format!("software SIMT engine: {} CUs, {}-wide wavefronts", cfg.num_cus, cfg.wf_width),
    ]);
    t3.row(vec![
        "CPU".into(),
        "2 cores / 4 threads, 3.7 GHz".into(),
        "host threads; modelled as one saturated CPU per node".into(),
    ]);
    t3.row(vec![
        "NIC".into(),
        "56 Gb/s InfiniBand".into(),
        format!(
            "modelled link: {} GB/s, {} µs wire + 2×{} µs CPU per packet",
            cal.link_bw / 1_000_000_000,
            cal.msg_overhead_ns / 1000,
            cal.cpu_per_packet_ns / 1000
        ),
    ]);
    t3.row(vec![
        "per-node queues".into(),
        "24 × 64 kB, 125 µs timeout".into(),
        format!(
            "{} kB, {} µs timeout (live runtime + model)",
            cfg.node_queue_bytes / 1024,
            cfg.flush_timeout.as_micros()
        ),
    ]);
    t3.row(vec![
        "producer/consumer queue".into(),
        "1 MB".into(),
        format!("{} MB ({} slots × {} lanes × 32 B)", cfg.queue.capacity_bytes() / (1 << 20), cfg.queue.slots, cfg.queue.lane_width),
    ]);
    t3.row(vec![
        "aggregator".into(),
        "1 CPU thread".into(),
        format!("{} thread(s) per node", cfg.aggregator_threads),
    ]);
    t3.emit();

    let mut t4 = Table::new(
        "table4",
        "Application inputs: paper vs bench scale",
        &["benchmark", "paper input", "this repo (bench scale)"],
    );
    t4.row(vec![
        "GUPS".into(),
        "~180 M updates".into(),
        "180 M updates (full scale)".into(),
    ]);
    t4.row(vec![
        "PR-1 / SSSP-1 / color-1".into(),
        "hugebubbles-00020: 21 M v, 64 M e".into(),
        "synthetic mesh: 16 M v, 48 M e (label-shuffle fitted to 37.7% remote)".into(),
    ]);
    t4.row(vec![
        "PR-2 / SSSP-2 / color-2".into(),
        "cage15: 5.2 M v, 99 M e".into(),
        "synthetic banded: 4 M v, 76 M e (band fitted to 16.5% remote)".into(),
    ]);
    t4.row(vec![
        "kmeans".into(),
        "8 clusters, 16 M points".into(),
        "8 clusters, 4 M points".into(),
    ]);
    t4.row(vec![
        "mer".into(),
        "human-chr14, 3.6 GB reads".into(),
        "synthetic genome: 1 M reads × 100 bp → 80 M k-mers".into(),
    ]);
    t4.emit();
}
