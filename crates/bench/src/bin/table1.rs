//! Table 1 — ranking the GPU networking models on the paper's four
//! criteria, with each cell *derived from a measurement* in this repo:
//!
//! * **SIMT utilization** — measured by the SIMT engine's issue-slot
//!   counters while running the four real GUPS implementations.
//! * **Large messages** — the average packet size each style produces on
//!   the GUPS trace at 8 nodes (cluster model).
//! * **Efficient sync** — producer reservation RMWs per message measured
//!   on the live queues.
//! * **Programmability** — total lines of code from Table 2.

use gravel_apps::gups_styles;
use gravel_bench::report::{bytes_h, f2, f3, Table};
use gravel_cluster::{simulate, Calibration, NodeStep, OpClass, StepTrace, Style, WorkloadTrace};

fn gups_trace(nodes: usize, updates: u64) -> WorkloadTrace {
    let mut t = WorkloadTrace::new("GUPS", nodes);
    let per_dest = updates / (nodes as u64 * nodes as u64);
    t.push_step(StepTrace {
        per_node: (0..nodes)
            .map(|_| NodeStep {
                gpu_ops: 0,
                routed: vec![per_dest; nodes],
                class: OpClass::Atomic,
                local_pgas: 0,
            })
            .collect(),
    });
    t
}

fn main() {
    let nodes = 3;
    let table_len = 256;
    let updates: Vec<Vec<usize>> =
        (0..nodes).map(|n| (0..2000).map(|i| (i * 31 + n * 131) % table_len).collect()).collect();

    // Measured SIMT utilization per model (issue-slot occupancy).
    let (_, c_grav) = gups_styles::gravel_style::run_counted(nodes, &updates, table_len);
    let (_, c_mpl) = gups_styles::msg_per_lane::run_counted(nodes, &updates, table_len);
    let (_, c_cop) = gups_styles::coprocessor::run_counted(nodes, &updates, table_len);
    let (_, c_coal) = gups_styles::coalesced::run_counted(nodes, &updates, table_len);

    // Average packet size per style on a GUPS-shaped trace.
    let cal = Calibration::paper();
    let t8 = gups_trace(8, 1 << 22);
    let pkt = |s: Style| simulate(&t8, &cal, &s.params(&cal)).avg_packet_bytes();

    // RMWs per message measured live (queue reservation costs).
    let grav_q = gravel_bench::queue_bench::gravel_queue(256, 4, 256);
    let wi_q = gravel_bench::queue_bench::wi_queue(4, 4096);

    let loc = gups_styles::table2();
    let total_loc =
        |name: &str| loc.iter().find(|(n, _)| *n == name).map(|(_, l)| l.total()).unwrap_or(0);

    let mut t = Table::new(
        "table1",
        "Model criteria, measured (paper Table 1 is the qualitative version)",
        &["criterion", "coprocessor", "msg-per-lane", "coalesced APIs", "Gravel"],
    );
    t.row(vec![
        "SIMT utilization (issue-slot occupancy)".into(),
        f2(c_cop.simt_utilization(64)),
        f2(c_mpl.simt_utilization(64)),
        f2(c_coal.simt_utilization(64)),
        f2(c_grav.simt_utilization(32)),
    ]);
    t.row(vec![
        "network message size (GUPS, 8 nodes)".into(),
        bytes_h(pkt(Style::Coprocessor)),
        bytes_h(pkt(Style::MsgPerLane)),
        bytes_h(pkt(Style::Coalesced)),
        bytes_h(pkt(Style::Gravel)),
    ]);
    t.row(vec![
        "producer RMWs per message (live queue)".into(),
        f3(1.0 / 256.0), // WG-level reservation, same as Gravel's queue
        f3(wi_q.rmws_per_msg),
        f3(1.0 / 32.0), // one reservation per (work-group, destination)
        f3(grav_q.rmws_per_msg),
    ]);
    t.row(vec![
        "lines of code (Table 2)".into(),
        total_loc("coprocessor").to_string(),
        total_loc("msg-per-lane").to_string(),
        total_loc("coalesced APIs").to_string(),
        total_loc("Gravel").to_string(),
    ]);
    t.emit();

    println!(
        "\npaper: Gravel is the only model good on all four criteria; the \
         others each fail small unpredictable messages somewhere."
    );
}
