//! `throughput` — the repo's persistent hot-path benchmark.
//!
//! Runs GUPS (pipeline-injected) and PageRank (end-to-end) at fixed
//! sizes across aggregator lane counts and writes
//! `BENCH_throughput.json` in the working directory, so the perf
//! trajectory of the aggregate→apply path survives between PRs.
//! `--quick` shrinks everything to CI smoke scale.

use gravel_bench::report::{f2, Table};
use gravel_bench::throughput::{self, Scale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let nodes = 4;
    let lane_counts = [1usize, 2, 4];

    let report = throughput::measure(&scale, nodes, &lane_counts, quick);

    let mut t = Table::new(
        "throughput",
        "hot-path throughput by aggregator lane count",
        &[
            "workload",
            "lanes",
            "messages",
            "Mmsg/s",
            "p50 µs",
            "p99 µs",
            "avg pkt B",
            "rtx",
            "p50 GET µs",
            "p99 GET µs",
        ],
    );
    for c in &report.cells {
        t.row(vec![
            c.workload.clone(),
            c.lanes.to_string(),
            c.messages.to_string(),
            f2(c.msgs_per_sec / 1e6),
            f2(c.p50_agg_apply_ns as f64 / 1e3),
            f2(c.p99_agg_apply_ns as f64 / 1e3),
            f2(c.avg_packet_bytes),
            c.retransmits.to_string(),
            f2(c.p50_get_ns as f64 / 1e3),
            f2(c.p99_get_ns as f64 / 1e3),
        ]);
    }
    t.emit();
    println!(
        "\nGUPS speedup (lanes={} vs lanes=1): {:.2}x",
        lane_counts.iter().max().unwrap(),
        report.gups_speedup
    );
    println!(
        "Wire-integrity tax (lanes=1, crc32c vs off): {:.2}%",
        report.integrity_tax * 100.0
    );
    let top_lanes = *lane_counts.iter().max().unwrap();
    if let (Some(one), Some(top)) = (report.pagerank_cell(1), report.pagerank_cell(top_lanes)) {
        let nogov = report
            .cells
            .iter()
            .find(|c| c.workload == "pagerank_nogov" && c.lanes == top_lanes);
        println!(
            "PageRank lane curve (governed, lanes={top_lanes} vs 1): {:.2}x{}",
            top.msgs_per_sec / one.msgs_per_sec,
            nogov
                .map(|n| format!(
                    "  [static mask at lanes={top_lanes}: {:.2}x]",
                    n.msgs_per_sec / one.msgs_per_sec
                ))
                .unwrap_or_default()
        );
    }
    let get = |w: &str| report.cells.iter().find(|c| c.workload == w);
    if let (Some(on), Some(off)) = (get("get_rpc"), get("get_rpc_nobands")) {
        println!(
            "GET p99 under PUT storm: {:.1} µs with QoS bands vs {:.1} µs without",
            on.p99_get_ns as f64 / 1e3,
            off.p99_get_ns as f64 / 1e3
        );
    }

    throughput::save(&report, "BENCH_throughput.json").expect("write BENCH_throughput.json");
}
