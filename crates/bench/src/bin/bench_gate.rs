//! `bench_gate` — fail CI when the throughput trajectory regresses.
//!
//! Reads `BENCH_throughput.json` (or the path given as the first
//! argument), takes the newest per-commit history entry as "current"
//! and the most recent *earlier* entry at the same scale (`quick` flag)
//! as the baseline, and compares every cell's `msgs_per_sec` keyed by
//! `(workload, wire_integrity, lanes, nodes)`. Any cell more than the
//! tolerance (default 10 %, override with `GRAVEL_GATE_TOLERANCE`)
//! below its baseline fails the gate with exit code 1.
//!
//! Zero is not a rate: a cell whose `msgs_per_sec` is 0 on either side
//! is a measurement that didn't happen, so both-zero pairs are skipped
//! and a 0 ↔ nonzero flip is reported as a schema change (the cell's
//! meaning moved between commits) instead of being fed into a division.
//!
//! Independent of any baseline, the gate also checks the governed
//! PageRank lane curve of the *current* entry: the adaptive lane
//! governor exists so extra lanes are never a loss, so the rate at the
//! highest measured lane count must hold the lanes=1 rate (within 1.5x
//! the tolerance — both sides of the ratio come from the same noisy
//! run). This is what promotes the PageRank cells from informational to
//! gated.
//!
//! With no comparable baseline (first run, or a scale change) the
//! trajectory half of the gate passes vacuously — it polices the
//! trajectory, it cannot invent one. The lane-curve check still runs.

use serde::Value;

/// Per-cell identity within one report.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct CellKey {
    workload: String,
    wire_integrity: String,
    lanes: u64,
    nodes: u64,
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(n) => Some(*n),
        _ => None,
    }
}

fn cells(entry: &Value) -> Vec<(CellKey, f64)> {
    let Some(Value::Array(cells)) = entry.get("cells") else {
        return Vec::new();
    };
    cells
        .iter()
        .filter_map(|c| {
            Some((
                CellKey {
                    workload: c.get("workload")?.as_str()?.to_string(),
                    wire_integrity: c.get("wire_integrity")?.as_str()?.to_string(),
                    lanes: num(c.get("lanes")?)? as u64,
                    nodes: num(c.get("nodes")?)? as u64,
                },
                num(c.get("msgs_per_sec")?)?,
            ))
        })
        .collect()
}

fn is_quick(entry: &Value) -> bool {
    matches!(entry.get("quick"), Some(Value::Bool(true)))
}

fn sha(entry: &Value) -> &str {
    entry.get("git_sha").and_then(Value::as_str).unwrap_or("?")
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let tolerance: f64 = std::env::var("GRAVEL_GATE_TOLERANCE")
        .ok()
        .and_then(|t| t.parse().ok())
        .unwrap_or(0.10);

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc: Value = match serde_json::from_str(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_gate: {path} is not valid JSON: {e:?}");
            std::process::exit(1);
        }
    };
    let history = match doc.get("history") {
        Some(Value::Array(h)) if !h.is_empty() => h,
        _ => {
            println!("bench_gate: no history in {path}; gate passes vacuously");
            return;
        }
    };
    let current = history.last().expect("nonempty");
    let cur_cells = cells(current);
    let mut failures = Vec::new();

    // --- Lane-curve gate (current entry alone) -------------------------
    // The governed PageRank cells must show a monotone-flat-or-up lane
    // curve: rate at the highest measured lane count >= the lanes=1
    // rate. Both sides of the ratio are cells measured in the same run,
    // so the noise is doubled relative to a trajectory comparison — the
    // curve check gets 1.5x the tolerance. The static-mask ablation
    // ("pagerank_nogov") is deliberately exempt — documenting the loss
    // the governor removes is its whole job.
    let curve_tolerance = 1.5 * tolerance;
    let pr: Vec<&(CellKey, f64)> = cur_cells
        .iter()
        .filter(|(k, r)| k.workload == "pagerank" && *r > 0.0)
        .collect();
    let pr_base = pr.iter().find(|(k, _)| k.lanes == 1);
    let pr_top = pr.iter().max_by_key(|(k, _)| k.lanes);
    if let (Some((_, base)), Some((top_key, top))) = (pr_base, pr_top) {
        if top_key.lanes > 1 {
            if *top < base * (1.0 - curve_tolerance) {
                failures.push(format!(
                    "pagerank lane curve bends down: lanes={} {:.0} msgs/s < lanes=1 {:.0} msgs/s \
                     ({:+.1}%, tolerance {:.0}%)",
                    top_key.lanes,
                    top,
                    base,
                    (top / base - 1.0) * 100.0,
                    curve_tolerance * 100.0,
                ));
            } else {
                println!(
                    "bench_gate: pagerank lane curve holds (lanes={} at {:.2}x of lanes=1)",
                    top_key.lanes,
                    top / base,
                );
            }
        }
    }

    // --- Trajectory gate (vs the most recent comparable baseline) ------
    let baseline = history
        .iter()
        .rev()
        .skip(1)
        .find(|e| sha(e) != sha(current) && is_quick(e) == is_quick(current));
    match baseline {
        None => println!(
            "bench_gate: no earlier {} entry to compare {} against; trajectory gate passes vacuously",
            if is_quick(current) { "quick-scale" } else { "full-scale" },
            sha(current),
        ),
        Some(baseline) => {
            let base_cells = cells(baseline);
            let mut schema_changes = Vec::new();
            let mut compared = 0usize;
            for (key, rate) in &cur_cells {
                let Some((_, base_rate)) = base_cells.iter().find(|(k, _)| k == key) else {
                    continue; // new cell this commit: nothing to regress against
                };
                match (*base_rate > 0.0, *rate > 0.0) {
                    (false, false) => continue, // never measured on either side
                    (false, true) | (true, false) => {
                        schema_changes.push(format!(
                            "{}/{} lanes={} nodes={}: {:.0} -> {:.0} msgs/s (cell changed meaning)",
                            key.workload,
                            key.wire_integrity,
                            key.lanes,
                            key.nodes,
                            base_rate,
                            rate,
                        ));
                        continue;
                    }
                    (true, true) => {}
                }
                compared += 1;
                let delta = rate / base_rate - 1.0;
                if delta < -tolerance {
                    failures.push(format!(
                        "{}/{} lanes={} nodes={}: {:.0} -> {:.0} msgs/s ({:+.1}%)",
                        key.workload,
                        key.wire_integrity,
                        key.lanes,
                        key.nodes,
                        base_rate,
                        rate,
                        delta * 100.0
                    ));
                }
            }
            if !schema_changes.is_empty() {
                println!(
                    "bench_gate: {} cell(s) flipped between zero and nonzero vs {} \
                     (schema change, not compared):",
                    schema_changes.len(),
                    sha(baseline),
                );
                for s in &schema_changes {
                    println!("  {s}");
                }
            }
            println!(
                "bench_gate: {compared} cells compared against baseline {} (current {})",
                sha(baseline),
                sha(current),
            );
        }
    }

    if failures.is_empty() {
        println!("bench_gate: pass (tolerance {:.0}%)", tolerance * 100.0);
    } else {
        eprintln!("bench_gate: {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
