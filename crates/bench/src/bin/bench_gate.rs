//! `bench_gate` — fail CI when the throughput trajectory regresses.
//!
//! Reads `BENCH_throughput.json` (or the path given as the first
//! argument), takes the newest per-commit history entry as "current"
//! and the most recent *earlier* entry at the same scale (`quick` flag)
//! as the baseline, and compares every cell's `msgs_per_sec` keyed by
//! `(workload, wire_integrity, lanes, nodes)`. Any cell more than the
//! tolerance (default 10 %, override with `GRAVEL_GATE_TOLERANCE`)
//! below its baseline fails the gate with exit code 1.
//!
//! With no comparable baseline (first run, or a scale change) the gate
//! passes vacuously — it polices the trajectory, it cannot invent one.

use serde::Value;

/// Per-cell identity within one report.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct CellKey {
    workload: String,
    wire_integrity: String,
    lanes: u64,
    nodes: u64,
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(n) => Some(*n),
        _ => None,
    }
}

fn cells(entry: &Value) -> Vec<(CellKey, f64)> {
    let Some(Value::Array(cells)) = entry.get("cells") else {
        return Vec::new();
    };
    cells
        .iter()
        .filter_map(|c| {
            Some((
                CellKey {
                    workload: c.get("workload")?.as_str()?.to_string(),
                    wire_integrity: c.get("wire_integrity")?.as_str()?.to_string(),
                    lanes: num(c.get("lanes")?)? as u64,
                    nodes: num(c.get("nodes")?)? as u64,
                },
                num(c.get("msgs_per_sec")?)?,
            ))
        })
        .collect()
}

fn is_quick(entry: &Value) -> bool {
    matches!(entry.get("quick"), Some(Value::Bool(true)))
}

fn sha(entry: &Value) -> &str {
    entry.get("git_sha").and_then(Value::as_str).unwrap_or("?")
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let tolerance: f64 = std::env::var("GRAVEL_GATE_TOLERANCE")
        .ok()
        .and_then(|t| t.parse().ok())
        .unwrap_or(0.10);

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc: Value = match serde_json::from_str(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_gate: {path} is not valid JSON: {e:?}");
            std::process::exit(1);
        }
    };
    let history = match doc.get("history") {
        Some(Value::Array(h)) if !h.is_empty() => h,
        _ => {
            println!("bench_gate: no history in {path}; gate passes vacuously");
            return;
        }
    };
    let current = history.last().expect("nonempty");
    let baseline = history
        .iter()
        .rev()
        .skip(1)
        .find(|e| sha(e) != sha(current) && is_quick(e) == is_quick(current));
    let Some(baseline) = baseline else {
        println!(
            "bench_gate: no earlier {} entry to compare {} against; gate passes vacuously",
            if is_quick(current) { "quick-scale" } else { "full-scale" },
            sha(current),
        );
        return;
    };

    let base_cells = cells(baseline);
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for (key, rate) in cells(current) {
        let Some((_, base_rate)) = base_cells.iter().find(|(k, _)| *k == key) else {
            continue; // new cell this commit: nothing to regress against
        };
        if *base_rate <= 0.0 {
            continue;
        }
        compared += 1;
        let delta = rate / base_rate - 1.0;
        if delta < -tolerance {
            regressions.push(format!(
                "{}/{} lanes={} nodes={}: {:.0} -> {:.0} msgs/s ({:+.1}%)",
                key.workload,
                key.wire_integrity,
                key.lanes,
                key.nodes,
                base_rate,
                rate,
                delta * 100.0
            ));
        }
    }

    if regressions.is_empty() {
        println!(
            "bench_gate: {compared} cells within {:.0}% of baseline {} (current {})",
            tolerance * 100.0,
            sha(baseline),
            sha(current),
        );
    } else {
        eprintln!(
            "bench_gate: {} of {compared} cells regressed more than {:.0}% vs {}:",
            regressions.len(),
            tolerance * 100.0,
            sha(baseline),
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}
