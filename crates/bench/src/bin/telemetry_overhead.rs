//! Telemetry overhead — live-runtime GUPS at each telemetry level.
//!
//! Compares wall time and update rate of identical GUPS runs with
//! telemetry off, with counters, and with counters + span tracing,
//! interleaving trials and keeping the best of N per level. Emits
//! `telemetry_overhead.json` via the shared report machinery.

use gravel_apps::gups::GupsInput;
use gravel_bench::report::{f2, f3, Table};
use gravel_bench::telemetry_overhead::measure;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (input, trials) = if full {
        (GupsInput { updates: 500_000, table_len: 1 << 14, seed: 11 }, 7)
    } else {
        (GupsInput { updates: 50_000, table_len: 4096, seed: 11 }, 5)
    };
    let nodes = 2;
    let report = measure(&input, nodes, trials);

    let mut t = Table::new(
        "telemetry_overhead",
        "GUPS wall time by telemetry level (2 nodes, best of N interleaved trials)",
        &["level", "best ms", "Mupdates/s", "overhead %"],
    );
    for l in &report.levels {
        t.row(vec![
            l.level.clone(),
            f2(l.best_secs * 1e3),
            f2(l.updates_per_sec / 1e6),
            f3(l.overhead * 100.0),
        ]);
    }
    t.emit();
}
