//! §8.2 — diverged work-group-level operation analysis on GUPS-mod.
//!
//! Runs the same divergent-offload kernel (95 % of work-items idle,
//! random trip counts) under software predication, work-group-granularity
//! reconvergence, and fine-grain barriers (software-emulated and
//! hardware-cost variants), and reports issue-slot speedups over
//! predication — the paper's 1.28× (WG granularity) and 1.06×
//! (emulated fbar).

use gravel_apps::gups_mod::{run, GupsModInput};
use gravel_bench::report::{f2, Table};
use gravel_simt::{DivergedCosts, DivergedMode};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let input = GupsModInput {
        wis: if quick { 1 << 14 } else { 1 << 17 },
        active_fraction: 0.05,
        max_updates: 8,
        table_len: 4096,
        seed: 7,
    };

    let costs = DivergedCosts::fbar_emulated();
    let pred = run(&input, DivergedMode::SoftwarePredication, costs);
    let wg = run(&input, DivergedMode::WgReconvergence, costs);
    let fbar_emu = run(&input, DivergedMode::FineGrainBarrier, costs);
    let fbar_hw = run(&input, DivergedMode::FineGrainBarrier, DivergedCosts::fbar_hardware());
    assert_eq!(pred.table, wg.table, "results must agree across modes");
    assert_eq!(pred.table, fbar_emu.table, "results must agree across modes");

    let base = pred.counters.wf_issue_slots as f64;
    let mut t = Table::new(
        "sec8",
        "Diverged WG-level operations on GUPS-mod (issue-slot speedup vs software predication)",
        &["mode", "issue slots", "speedup", "paper"],
    );
    t.row(vec!["software predication".into(), pred.counters.wf_issue_slots.to_string(), f2(1.0), "1.00".into()]);
    t.row(vec![
        "WG-granularity control flow".into(),
        wg.counters.wf_issue_slots.to_string(),
        f2(base / wg.counters.wf_issue_slots as f64),
        "1.28".into(),
    ]);
    t.row(vec![
        "fine-grain barrier (sw-emulated)".into(),
        fbar_emu.counters.wf_issue_slots.to_string(),
        f2(base / fbar_emu.counters.wf_issue_slots as f64),
        "1.06".into(),
    ]);
    t.row(vec![
        "fine-grain barrier (hw cost)".into(),
        fbar_hw.counters.wf_issue_slots.to_string(),
        f2(base / fbar_hw.counters.wf_issue_slots as f64),
        "> 1.28 (projected)".into(),
    ]);
    t.emit();

    println!(
        "\npaper: WG-granularity reconvergence 1.28x over predication; \
         software-emulated fbar only 1.06x (a lower bound — management \
         overhead would fold into hardware)."
    );
}
