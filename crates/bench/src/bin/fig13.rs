//! Figure 13 — Gravel vs CPU-based distributed systems (Grappa for GUPS
//! and PageRank, UPC for mer). Bars are speedups normalized to one CPU
//! node.

use gravel_bench::experiments::{scale_from_args, TraceSet};
use gravel_bench::report::{f2, Table};
use gravel_cluster::{simulate, Style};

fn main() {
    let ts = TraceSet::new(scale_from_args());
    let cal = ts.calibration();

    let mut t = Table::new(
        "fig13",
        "Speedup vs one CPU node",
        &["workload", "1 CPU node", "8 CPU nodes", "1 Gravel node", "8 Gravel nodes"],
    );
    for w in ["GUPS", "PR-1", "PR-2", "mer"] {
        eprintln!("[fig13: {w}]");
        let t1 = ts.trace(w, 1);
        let t8 = ts.trace(w, 8);
        let cpu1 = simulate(&t1, &cal, &Style::CpuSystem.params(&cal)).total_ns;
        let cpu8 = simulate(&t8, &cal, &Style::CpuSystem.params(&cal)).total_ns;
        let g1 = simulate(&t1, &cal, &Style::Gravel.params(&cal)).total_ns;
        let g8 = simulate(&t8, &cal, &Style::Gravel.params(&cal)).total_ns;
        let s = |x: u64| f2(cpu1 as f64 / x as f64);
        t.row(vec![w.to_string(), s(cpu1), s(cpu8), s(g1), s(g8)]);
    }
    t.emit();

    println!(
        "\npaper: Gravel is significantly faster at one node (the GPU suits \
         the data-parallel work) and keeps the advantage at eight."
    );
}
