//! Future-work extensions from the paper, evaluated with the calibrated
//! model:
//!
//! * **§10 — hierarchical aggregation beyond 8 nodes.** Flat per-node
//!   aggregation starves as the destination count grows; a two-level
//!   hierarchy (16-node groups) keeps packets large at 128-256 nodes for
//!   one extra hop.
//! * **§8.1 — a hardware aggregator.** The CPU spends 65 % of its time
//!   polling and the repack + MPI software path eats the rest; dedicated
//!   hardware (a control processor on the GPU or NIC) removes that load
//!   from the node's CPU.

use gravel_bench::report::{bytes_h, f2, Table};
use gravel_cluster::{
    hierarchical_trace, simulate, Calibration, NodeStep, OpClass, StepTrace, Style, WorkloadTrace,
};

/// A GUPS-shaped uniform scatter over `nodes` nodes.
fn uniform(nodes: usize, total: u64) -> WorkloadTrace {
    let per = total / (nodes as u64 * nodes as u64);
    let mut t = WorkloadTrace::new("GUPS", nodes);
    t.push_step(StepTrace {
        per_node: (0..nodes)
            .map(|_| NodeStep {
                gpu_ops: 0,
                routed: vec![per; nodes],
                class: OpClass::Atomic,
                local_pgas: 0,
            })
            .collect(),
    });
    t
}

fn main() {
    let cal = Calibration::paper();
    let params = Style::Gravel.params(&cal);
    let total: u64 = 1 << 26; // ~67 M updates, constant across sizes

    // --- §10: flat vs two-level aggregation, 8..256 nodes --------------
    let mut t = Table::new(
        "ext_hierarchy",
        "Flat vs two-level (16-node groups) aggregation — GUPS updates/s (M) and avg packet",
        &["nodes", "flat rate", "flat packet", "2-level rate", "2-level packet"],
    );
    for nodes in [8usize, 16, 32, 64, 128, 256] {
        let flat_tr = uniform(nodes, total);
        let flat = simulate(&flat_tr, &cal, &params);
        let hier_tr = hierarchical_trace(&flat_tr, 16.min(nodes / 2).max(2));
        let hier = simulate(&hier_tr, &cal, &params);
        t.row(vec![
            nodes.to_string(),
            format!("{:.1}", flat.ops_per_sec(total) / 1e6),
            bytes_h(flat.avg_packet_bytes()),
            format!("{:.1}", hier.ops_per_sec(total) / 1e6),
            bytes_h(hier.avg_packet_bytes()),
        ]);
    }
    t.emit();
    println!(
        "\npaper §10: one indirect hop of 16-node aggregation should carry \
         Gravel to 256 nodes — the crossover above is that claim priced out."
    );

    // --- §8.1: software vs hardware aggregator -------------------------
    let mut hw = cal;
    hw.agg_repack_ns = 0.0; // repack in fixed-function logic
    hw.cpu_per_packet_ns = 1_000; // NIC-integrated send/recv path
    let mut t2 = Table::new(
        "ext_hw_aggregator",
        "CPU-side vs hardware aggregator at 8 nodes (speedup of hw over sw)",
        &["workload shape", "sw time (ms)", "hw time (ms)", "speedup"],
    );
    for (name, trace) in [
        ("uniform scatter (GUPS-like)", uniform(8, total)),
        ("sparse supersteps (SSSP-like)", {
            let mut tr = WorkloadTrace::new("sparse", 8);
            for _ in 0..512 {
                tr.push_step(StepTrace {
                    per_node: (0..8)
                        .map(|_| NodeStep {
                            gpu_ops: 100,
                            routed: vec![200; 8],
                            class: OpClass::Atomic,
                            local_pgas: 0,
                        })
                        .collect(),
                });
            }
            tr
        }),
    ] {
        let sw = simulate(&trace, &cal, &Style::Gravel.params(&cal));
        let hwr = simulate(&trace, &hw, &Style::Gravel.params(&hw));
        t2.row(vec![
            name.to_string(),
            format!("{:.2}", sw.total_ns as f64 / 1e6),
            format!("{:.2}", hwr.total_ns as f64 / 1e6),
            f2(sw.total_ns as f64 / hwr.total_ns as f64),
        ]);
    }
    t2.emit();
    println!(
        "\npaper §8.1: dedicated hardware frees the CPU the aggregator \
         monopolizes (65% of it spent polling on the APU)."
    );
}
