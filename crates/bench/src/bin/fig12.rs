//! Figure 12 — Gravel's scalability: speedup at 1/2/4/8 nodes for the
//! nine workloads, plus the geometric mean (paper: 5.3× at 8 nodes).

use gravel_bench::experiments::{scale_from_args, TraceSet, SIZES};
use gravel_bench::report::{f2, Table};
use gravel_cluster::{geo_mean, scaling_curve, Style};

fn main() {
    let ts = TraceSet::new(scale_from_args());
    let cal = ts.calibration();

    let mut t = Table::new(
        "fig12",
        "Gravel speedup vs one node",
        &["workload", "1 node", "2 nodes", "4 nodes", "8 nodes"],
    );
    let mut eights = Vec::new();
    for w in gravel_apps::WORKLOADS {
        eprintln!("[fig12: {w}]");
        let curve = scaling_curve(w, Style::Gravel, &cal, &SIZES, |n| ts.trace(w, n));
        let mut row = vec![w.to_string()];
        for p in &curve.points {
            row.push(f2(p.speedup));
        }
        eights.push(curve.points.last().unwrap().speedup);
        t.row(row);
    }
    let gm = geo_mean(&eights);
    t.row(vec!["geo. mean".into(), f2(1.0), "".into(), "".into(), f2(gm)]);
    t.emit();

    println!("\npaper: 5.3x geo-mean at 8 nodes; GUPS/kmeans/mer near-ideal, SSSP-1 worst.");
}
