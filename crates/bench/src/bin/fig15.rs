//! Figure 15 — style comparison at eight nodes: all six execution styles
//! on all nine workloads, speedups over the one-node Gravel baseline,
//! plus geometric means.

use gravel_bench::experiments::{scale_from_args, TraceSet};
use gravel_bench::report::{f2, Table};
use gravel_cluster::{geo_mean, style_comparison, Style};

fn main() {
    let ts = TraceSet::new(scale_from_args());
    let cal = ts.calibration();

    let styles: Vec<&str> = Style::fig15().iter().map(|s| s.name()).collect();
    let mut cols = vec!["workload"];
    cols.extend(styles.iter());
    let mut t = Table::new("fig15", "Style comparison at 8 nodes (speedup vs 1-node Gravel)", &cols);

    let mut per_style: Vec<Vec<f64>> = vec![Vec::new(); styles.len()];
    for w in gravel_apps::WORKLOADS {
        eprintln!("[fig15: {w}]");
        let t1 = ts.trace(w, 1);
        let t8 = ts.trace(w, 8);
        let row = style_comparison(w, &cal, &t1, &t8);
        let mut cells = vec![w.to_string()];
        for (i, (_, s)) in row.speedups.iter().enumerate() {
            per_style[i].push(*s);
            cells.push(f2(*s));
        }
        t.row(cells);
    }
    let mut gm_row = vec!["geo. mean".to_string()];
    for v in &per_style {
        gm_row.push(f2(geo_mean(v)));
    }
    t.row(gm_row);
    t.emit();

    println!(
        "\npaper: Gravel is equal-or-best everywhere; coalesced+Gravel \
         aggregation comes closest (GPU-wide aggregation is the key); \
         msg-per-lane collapses (GUPS ~0.01x)."
    );
}
