//! Table 5 — network statistics for Gravel at eight nodes: remote access
//! frequency and average (aggregated) network message size, plus the
//! §8.1 aggregator polling fraction measured on the live runtime.

use gravel_apps::gups::{self, GupsInput};
use gravel_bench::experiments::{scale_from_args, TraceSet};
use gravel_bench::report::{f2, Table};
use gravel_core::{GravelConfig, GravelRuntime};

fn main() {
    let ts = TraceSet::new(scale_from_args());
    let cal = ts.calibration();

    let mut t = Table::new(
        "table5",
        "Network statistics for Gravel at 8 nodes",
        &["workload", "remote access freq (%)", "avg message size (B)"],
    );
    // The paper's Table 5 reference values, for side-by-side reading.
    let paper: &[(&str, f64, u64)] = &[
        ("GUPS", 87.5, 65_440),
        ("PR-1", 37.7, 64_611),
        ("PR-2", 16.5, 15_700),
        ("SSSP-1", 30.0, 1_563),
        ("SSSP-2", 16.2, 57_916),
        ("color-1", 36.7, 27_258),
        ("color-2", 16.5, 9_463),
        ("kmeans", 87.5, 5_656),
        ("mer", 87.5, 64_822),
    ];
    for (w, paper_rf, paper_sz) in paper {
        eprintln!("[table5: {w}]");
        let trace = ts.trace(w, 8);
        let row = gravel_cluster::network_stats(&cal, &trace);
        t.row(vec![
            w.to_string(),
            format!("{} (paper {paper_rf})", f2(row.remote_fraction * 100.0)),
            format!("{:.0} (paper {paper_sz})", row.avg_message_bytes),
        ]);
    }
    t.emit();

    // §8.1: aggregator polling fraction, measured live on a small GUPS.
    let input = GupsInput { updates: 50_000, table_len: 4096, seed: 5 };
    let rt = GravelRuntime::new(GravelConfig::small(4, input.table_len));
    gups::run_live(&rt, &input);
    let stats = rt.shutdown().expect("clean shutdown");
    let mut t2 = Table::new(
        "sec8_1_polling",
        "Aggregator poll fraction (paper §8.1: ~65% at 8 nodes)",
        &["node", "empty polls (%)"],
    );
    for n in &stats.nodes {
        t2.row(vec![format!("{}", n.node), f2(n.poll_fraction() * 100.0)]);
    }
    t2.emit();
}
