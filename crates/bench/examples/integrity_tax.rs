//! Focused wire-integrity ablation: GUPS at lanes=1 with CRC32C on vs
//! off, repeated, printing only the tax. Diagnostic companion to the
//! full `throughput` bin for iterating on the seal/verify hot path.

use gravel_bench::throughput::{self, Scale};

fn main() {
    // Micro: isolated seal cost at the bench's typical frame size.
    {
        use gravel_core::pgas::Packet;
        use gravel_core::WireIntegrity;
        let words: Vec<u64> = (0..2035 * 4).map(|i| i as u64).collect();
        let pkt = Packet::from_words(0, 1, &words);
        for integ in [WireIntegrity::Crc32c, WireIntegrity::Off] {
            let t = std::time::Instant::now();
            let iters = 20_000;
            for _ in 0..iters {
                std::hint::black_box(pkt.seal(0, integ));
            }
            let ns = t.elapsed().as_nanos() as f64 / iters as f64;
            println!("seal {integ:?}: {ns:.0} ns/frame ({:.2} GB/s)", 65120.0 / ns);
        }
    }

    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let scale = Scale {
        pr_vertices: 4, // skip PageRank — this probe is GUPS-only
        pr_iters: 1,
        ..Scale::full()
    };
    for _ in 0..reps {
        let r = throughput::measure(&scale, 4, &[1], false);
        let on = r.gups_cell(1).unwrap().msgs_per_sec / 1e6;
        let off = r
            .cells
            .iter()
            .find(|c| c.workload == "gups_nocrc")
            .unwrap()
            .msgs_per_sec
            / 1e6;
        println!(
            "crc32c {on:.2} Mmsg/s  off {off:.2} Mmsg/s  tax {:.2}%",
            r.integrity_tax * 100.0
        );
    }
}
