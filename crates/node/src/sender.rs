//! Deterministic GUPS sender flows over the socket transport.
//!
//! The update stream is *packetized deterministically*: node `i`'s
//! updates (a pure function of the seed) are mapped to messages, split
//! by destination in stream order, and chunked into packets of a fixed
//! message count. Packet `k` of flow `i → j` therefore has identical
//! bytes on every run — which is what makes restart trivial: a
//! restarted sender re-sends from sequence 0, receivers recognize
//! already-applied sequences as duplicates, re-ack them, and the window
//! fast-forwards to where it was. No sender-side durable state at all.
//!
//! Delivery is go-back-N per destination flow, mirroring the in-process
//! aggregator's protocol: a bounded in-flight window, cumulative acks,
//! and full-window retransmission on timeout with exponential backoff.
//! Unlike the in-process runtime there is no retry budget: a dead peer
//! is expected to come back (that is the whole point of this binary),
//! so the sender retries until the run deadline. The node's own
//! updates loop back through the transport as a normal sequenced flow —
//! one delivery path, not two.

use std::sync::atomic::AtomicBool;
use std::sync::atomic::Ordering::Relaxed;
use std::time::{Duration, Instant};

use gravel_apps::gups::{self, GupsInput};
use gravel_core::NodeShared;
use gravel_gq::Message;
use gravel_net::{SendStatus, SocketTransport, Transport};
use gravel_pgas::Packet;

/// One destination flow's precomputed packets (message words, 4 per
/// message, up to `msgs_per_packet` messages each).
pub struct FlowPlan {
    pub dest: u32,
    pub packets: Vec<Vec<u64>>,
}

/// Deterministically packetize this node's GUPS update stream: one flow
/// per destination that receives at least one update, packets chunked
/// in stream order.
pub fn plan_flows(
    input: &GupsInput,
    nodes: usize,
    me: u32,
    msgs_per_packet: usize,
) -> Vec<FlowPlan> {
    assert!(msgs_per_packet > 0);
    let dir = gups::directory(input, nodes);
    let mut streams: Vec<Vec<Message>> = vec![Vec::new(); nodes];
    for g in gups::node_updates(input, nodes, me as usize) {
        let r = dir.route(g);
        streams[r.dest as usize].push(Message::inc(r.dest, r.offset, 1));
    }
    streams
        .into_iter()
        .enumerate()
        .filter(|(_, msgs)| !msgs.is_empty())
        .map(|(dest, msgs)| FlowPlan {
            dest: dest as u32,
            packets: msgs
                .chunks(msgs_per_packet)
                .map(|chunk| chunk.iter().flat_map(|m| m.encode()).collect())
                .collect(),
        })
        .collect()
}

/// How many packets flow `src → dest` carries — the receiver's
/// termination condition is `expected == this` for every source, and
/// it is computable on any node without communication.
pub fn expected_packets(
    input: &GupsInput,
    nodes: usize,
    src: u32,
    dest: u32,
    msgs_per_packet: usize,
) -> u64 {
    let dir = gups::directory(input, nodes);
    let msgs = gups::node_updates(input, nodes, src as usize)
        .into_iter()
        .filter(|&g| dir.route(g).dest == dest)
        .count();
    msgs.div_ceil(msgs_per_packet) as u64
}

/// Go-back-N tuning for the multi-process sender.
#[derive(Clone, Copy, Debug)]
pub struct SenderConfig {
    /// In-flight packets per destination flow.
    pub window: usize,
    /// First retransmission timeout; doubles per silent expiry.
    pub rto_base: Duration,
    /// Retransmission backoff ceiling (also covers restart windows:
    /// a dead peer costs one `rto_max` probe per expiry, not a storm).
    pub rto_max: Duration,
}

impl Default for SenderConfig {
    fn default() -> Self {
        SenderConfig {
            window: 32,
            rto_base: Duration::from_millis(50),
            rto_max: Duration::from_millis(500),
        }
    }
}

struct FlowRt {
    plan: FlowPlan,
    /// First unacked sequence.
    base: u64,
    /// Next never-sent sequence.
    next: u64,
    /// Highest sequence ever transmitted (so re-sends after a window
    /// rewind don't double-count `offloaded`).
    high_water: u64,
    rto: Duration,
    timer: Instant,
}

/// Drive every flow to full acknowledgement. Returns `true` when all
/// packets are acked; `false` on stop/deadline/transport-close.
pub fn run_sender(
    transport: &SocketTransport,
    node: &NodeShared,
    plans: Vec<FlowPlan>,
    cfg: &SenderConfig,
    stop: &AtomicBool,
    deadline: Instant,
) -> bool {
    let integrity = node.wire_integrity;
    let now = Instant::now();
    let mut flows: Vec<FlowRt> = plans
        .into_iter()
        .filter(|p| !p.packets.is_empty())
        .map(|plan| FlowRt {
            plan,
            base: 0,
            next: 0,
            high_water: 0,
            rto: cfg.rto_base,
            timer: now,
        })
        .collect();
    loop {
        if flows.iter().all(|f| f.base as usize >= f.plan.packets.len()) {
            return true;
        }
        if stop.load(Relaxed) || Instant::now() >= deadline || transport.is_closed() {
            return false;
        }
        let mut progressed = false;
        // Drain acks: cumulative, so any ack can advance a whole window.
        while let Some(frame) = transport.try_recv_ack(node.id, 0) {
            match frame.open(integrity) {
                Ok(ack) => {
                    node.net_acks_received.inc();
                    if let Some(f) = flows.iter_mut().find(|f| f.plan.dest == ack.src) {
                        if ack.cum_seq + 1 > f.base {
                            f.base = ack.cum_seq + 1;
                            f.rto = cfg.rto_base;
                            f.timer = Instant::now();
                            progressed = true;
                        }
                    }
                }
                Err(_) => node.net_ack_corrupt_dropped.inc(),
            }
        }
        for f in &mut flows {
            let total = f.plan.packets.len() as u64;
            if f.base >= total {
                continue;
            }
            // Fill the window with first transmissions.
            while f.next < total && f.next < f.base + cfg.window as u64 {
                if !transmit(transport, node, f, f.next, integrity) {
                    break;
                }
                if f.next >= f.high_water {
                    let msgs = f.plan.packets[f.next as usize].len() / gravel_gq::MSG_ROWS;
                    node.note_offloaded(msgs as u64);
                    f.high_water = f.next + 1;
                }
                f.next += 1;
                f.timer = Instant::now();
                progressed = true;
            }
            // Go-back-N: on a silent expiry, resend the whole window.
            // The link may be down mid-restart — frames are fire-and-
            // forget there, so this is also the probe that rediscovers
            // a recovered peer.
            if f.base < f.next && f.timer.elapsed() >= f.rto {
                for seq in f.base..f.next {
                    transmit(transport, node, f, seq, integrity);
                    node.net_retransmits.inc();
                }
                f.rto = (f.rto * 2).min(cfg.rto_max);
                f.timer = Instant::now();
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

/// Seal and send one packet of `f`. False only if the loopback lane is
/// backpressured (cross-node sends never block; a down link drops).
fn transmit(
    transport: &SocketTransport,
    node: &NodeShared,
    f: &FlowRt,
    seq: u64,
    integrity: gravel_pgas::WireIntegrity,
) -> bool {
    let mut pkt = Packet::from_words(node.id, f.plan.dest, &f.plan.packets[seq as usize]);
    pkt.lane = 0;
    pkt.seq = seq;
    let epoch = node.wire_epoch.load(Relaxed);
    let frame = pkt.seal_in(epoch, integrity, node.pool.as_ref());
    !matches!(
        transport.send_data(frame, Duration::from_millis(5)),
        SendStatus::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_cover_every_update() {
        let input = GupsInput { updates: 1000, table_len: 64, seed: 9 };
        let a = plan_flows(&input, 3, 1, 8);
        let b = plan_flows(&input, 3, 1, 8);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dest, y.dest);
            assert_eq!(x.packets, y.packets);
        }
        let msgs: usize = a
            .iter()
            .flat_map(|f| &f.packets)
            .map(|p| p.len() / gravel_gq::MSG_ROWS)
            .sum();
        assert_eq!(msgs, gups::node_updates(&input, 3, 1).len());
    }

    #[test]
    fn expected_packets_matches_the_plan() {
        let input = GupsInput { updates: 777, table_len: 32, seed: 3 };
        for src in 0..3u32 {
            let plans = plan_flows(&input, 3, src, 5);
            for dest in 0..3u32 {
                let planned = plans
                    .iter()
                    .find(|f| f.dest == dest)
                    .map_or(0, |f| f.packets.len() as u64);
                assert_eq!(expected_packets(&input, 3, src, dest, 5), planned);
            }
        }
    }
}
