//! Unix signal plumbing without a libc crate: raw `extern "C"`
//! declarations of the handful of POSIX calls the node binary needs.
//!
//! SIGTERM and SIGINT request *graceful* shutdown: the handler only
//! flips an `AtomicBool` (async-signal-safe) and the main loop notices,
//! quiesces, cuts a final checkpoint, and exits 0. SIGKILL can install
//! no handler by definition — it is the only way to crash a node, which
//! is exactly the failure model the recovery protocol is built for.

use std::sync::atomic::{AtomicBool, Ordering};

pub const SIGINT: i32 = 2;
pub const SIGKILL: i32 = 9;
pub const SIGUSR1: i32 = 10;
pub const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static LEAVE: AtomicBool = AtomicBool::new(false);

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn kill(pid: i32, sig: i32) -> i32;
}

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" fn on_leave(_sig: i32) {
    LEAVE.store(true, Ordering::SeqCst);
}

/// Install the graceful-shutdown handler for SIGTERM and SIGINT, and
/// the drain/leave trigger for SIGUSR1 (elastic membership: the node
/// proposes its own LEAVE to the coordinator and donates its shards,
/// but keeps running — and serving — until SIGTERM).
pub fn install_shutdown_handler() {
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGUSR1, on_leave as *const () as usize);
    }
}

/// Whether a SIGTERM/SIGINT has arrived since startup.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Pretend a signal arrived (tests of the shutdown path).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Whether a SIGUSR1 drain/leave request has arrived since startup.
pub fn leave_requested() -> bool {
    LEAVE.load(Ordering::SeqCst)
}

/// Die exactly like `kill -9`: no unwinding, no atexit, no flush. Used
/// by the chaos kill switch so the in-process "crash" is the literal
/// signal the recovery protocol promises to survive.
pub fn kill_self_hard() -> ! {
    unsafe {
        kill(std::process::id() as i32, SIGKILL);
    }
    // SIGKILL cannot be blocked; this is unreachable on any POSIX
    // system, but the signature must diverge.
    std::process::abort();
}

/// Send `sig` to another process (test harnesses).
pub fn send_signal(pid: u32, sig: i32) -> bool {
    unsafe { kill(pid as i32, sig) == 0 }
}
