//! `gravel-node` — one Gravel cluster member as a real OS process.
//!
//! The in-process runtime (`gravel-core`) proves the protocol under
//! threads and injected faults; this crate proves it under *processes*
//! and real `kill -9`. N instances of the `gravel-node` binary form a
//! cluster over Unix-domain (or TCP) sockets, run GUPS, and survive a
//! member being SIGKILLed and restarted mid-run with a bit-exact final
//! heap — see `tests/cluster.rs` and DESIGN.md §14.
//!
//! Layering:
//!
//! * [`proto`]  — control-plane word codec (FWD / CKPT / RECOVER and
//!   the elastic TOPO / MIGRATE / BOUNCE family).
//! * [`store`]  — buddy-side storage of a ward's baseline + replay log.
//! * [`forward`] — the [`PacketTap`](gravel_core::netthread::PacketTap)
//!   that streams applied packets to the buddy and cuts epochs.
//! * [`sender`] — deterministic GUPS packetization + go-back-N flows.
//! * [`elastic`] — live membership: the versioned shard directory, the
//!   stale-routing bounce gate, pull-based shard migration, and the
//!   node-0 coordinator (DESIGN.md §16).
//! * [`rpc_pump`] — request-reply (GET) flows on their own wire lane,
//!   plus the sentinel probes the cluster test verifies bit-exact.
//! * [`signal`] — SIGTERM/SIGINT graceful-shutdown plumbing and the
//!   literal self-`kill -9` chaos switch.
//! * [`report`] — the JSON the harness asserts on, written atomically.

pub mod elastic;
pub mod forward;
pub mod proto;
pub mod report;
pub mod rpc_pump;
pub mod sender;
pub mod signal;
pub mod store;
