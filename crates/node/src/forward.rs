//! The buddy forwarder: a [`PacketTap`] that streams every applied
//! packet to this node's buddy and periodically cuts an epoch.
//!
//! Crash consistency rests on two orderings:
//!
//! 1. **Forward-before-ack.** The tap runs while the network thread
//!    still holds the receive-state lock, *before* the cumulative ack
//!    is sent (see [`gravel_core::netthread::run_with_tap`]). So by the
//!    time any sender can observe a packet as acked, its forward has
//!    already been written to the buddy's stream — an acked packet can
//!    never be missing from the buddy's log (modulo the buddy itself
//!    being down, see below).
//! 2. **Cut-in-stream.** An epoch cut snapshots the heap and the flow
//!    cursors while the same lock is held and writes the `CKPT` frame
//!    on the same FIFO stream as the forwards. No barrier, no global
//!    coordination: the cut's position in the stream *is* its
//!    consistency point.
//!
//! If the buddy is down, forwards are dropped (`send_control` returns
//! false) and the node's protection degrades — the documented
//! single-failure assumption. The membership layer heals it: when the
//! buddy's link comes back, [`Forwarder::rebaseline`] cuts a fresh
//! full checkpoint, which supersedes everything the dead buddy missed.
//!
//! The tap is also where the chaos kill switch lives: `--kill-at N`
//! dies by literal SIGKILL immediately after applying (and forwarding)
//! the Nth packet — the worst possible moment, after state changed but
//! potentially before the ack left.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use gravel_core::netthread::{PacketTap, RecvState};
use gravel_core::NodeShared;
use gravel_net::{ChaosPlan, SocketTransport};
use gravel_pgas::Packet;
use gravel_telemetry::Counter;

use crate::proto::{self, CkptImage, FwdPacket};

struct FwdState {
    /// Next-expected sequence per flow, mirroring the network thread's
    /// receive state (the tap sees every applied packet in order, so
    /// the mirror is exact and needs no second lock on `RecvState`).
    cursors: HashMap<(u32, u32), u64>,
    /// Applied packets since the last cut.
    since_cut: u64,
    /// Monotonic epoch number (first cut = 1).
    epoch: u64,
}

/// Supplies the ready-shard set recorded in each epoch cut (elastic
/// mode; see [`Forwarder::set_ready_provider`]).
pub type ReadyProvider = Arc<dyn Fn() -> Vec<u32> + Send + Sync>;

/// Streams applied packets to the buddy and cuts epochs.
pub struct Forwarder {
    transport: Arc<SocketTransport>,
    node: Arc<NodeShared>,
    /// Receive state shared with the network thread; locked only by
    /// [`rebaseline`](Self::rebaseline) (the tap path is called with it
    /// already held by the network thread).
    recv_state: Arc<Mutex<RecvState>>,
    /// Who keeps our state: `(me + 1) % nodes`.
    buddy: u32,
    /// Cut an epoch every this many applied packets (0 = only explicit
    /// rebaselines).
    ckpt_every: u64,
    chaos: Option<Arc<ChaosPlan>>,
    state: Mutex<FwdState>,
    rebaseline_wanted: AtomicBool,
    /// Elastic mode: supplies the checkpoint's ready-shard set (the
    /// shards this node is serving, as recorded *in* each cut — see
    /// [`CkptImage::ready`]). Static clusters leave it unset (empty).
    ready_provider: Mutex<Option<ReadyProvider>>,
    fwd_sent: Counter,
    fwd_dropped: Counter,
    epochs_cut: Counter,
}

impl Forwarder {
    pub fn new(
        transport: Arc<SocketTransport>,
        node: Arc<NodeShared>,
        recv_state: Arc<Mutex<RecvState>>,
        buddy: u32,
        ckpt_every: u64,
        chaos: Option<Arc<ChaosPlan>>,
    ) -> Self {
        let name = |s: &str| format!("node{}.{s}", node.id);
        let registry = node.registry.clone();
        Forwarder {
            transport,
            recv_state,
            buddy,
            ckpt_every,
            chaos,
            state: Mutex::new(FwdState { cursors: HashMap::new(), since_cut: 0, epoch: 0 }),
            rebaseline_wanted: AtomicBool::new(false),
            ready_provider: Mutex::new(None),
            fwd_sent: registry.counter(&name("fwd.sent")),
            fwd_dropped: registry.counter(&name("fwd.dropped")),
            epochs_cut: registry.counter(&name("ha.epochs_cut")),
            node,
        }
    }

    /// Install the elastic ready-shard provider; every subsequent cut
    /// records its result in the checkpoint image.
    pub fn set_ready_provider(&self, f: ReadyProvider) {
        *self.ready_provider.lock().unwrap_or_else(|p| p.into_inner()) = Some(f);
    }

    /// Seed the cursor mirror and epoch after recovery, before the
    /// network thread starts consuming.
    pub fn seed(&self, cursors: &[(u32, u32, u64)], epoch: u64) {
        let mut st = self.lock();
        for &(src, lane, expected) in cursors {
            st.cursors.insert((src, lane), expected);
        }
        st.epoch = epoch;
        self.stamp_epoch(epoch);
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Ask for a full checkpoint at the next applied packet (cheap,
    /// lock-free; used from the membership thread on buddy rejoin).
    pub fn request_rebaseline(&self) {
        self.rebaseline_wanted.store(true, Ordering::Relaxed);
    }

    /// Cut a full checkpoint *now*, even with no traffic flowing.
    /// Takes the receive-state lock to exclude a mid-packet apply, so
    /// the heap image and cursor mirror are mutually consistent.
    pub fn rebaseline(&self) {
        let _recv = self.recv_state.lock().unwrap_or_else(|p| p.into_inner());
        let mut st = self.lock();
        self.cut_locked(&mut st);
    }

    /// The cut body; caller holds (or is called under) the receive-state
    /// lock, and holds `self.state`.
    fn cut_locked(&self, st: &mut FwdState) {
        st.epoch += 1;
        st.since_cut = 0;
        let mut cursors: Vec<(u32, u32, u64)> =
            st.cursors.iter().map(|(&(s, l), &e)| (s, l, e)).collect();
        cursors.sort_unstable();
        let ready = self
            .ready_provider
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .as_ref()
            .map_or_else(Vec::new, |f| f());
        let image = CkptImage { epoch: st.epoch, cursors, heap: self.node.heap.snapshot(), ready };
        self.transport.send_control(self.buddy, &proto::encode_ckpt(&image));
        self.stamp_epoch(st.epoch);
        self.epochs_cut.inc();
    }

    /// Stamp the epoch into outgoing frame headers (data packets via
    /// the node, heartbeats/HELLOs via the transport) so cross-epoch
    /// traffic stays attributable on the wire.
    fn stamp_epoch(&self, epoch: u64) {
        self.node.wire_epoch.store(epoch as u32, Ordering::Relaxed);
        self.transport.set_epoch(epoch as u32);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FwdState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl PacketTap for Forwarder {
    fn on_packet_applied(&self, pkt: &Packet) {
        let fwd = FwdPacket { src: pkt.src, lane: pkt.lane, seq: pkt.seq, words: pkt.words() };
        let mut st = self.lock();
        if self.transport.send_control(self.buddy, &proto::encode_fwd(&fwd)) {
            self.fwd_sent.inc();
        } else {
            // Buddy down: protection degraded until the rebaseline on
            // its rejoin (single-failure assumption).
            self.fwd_dropped.inc();
        }
        st.cursors.insert((pkt.src, pkt.lane), pkt.seq + 1);
        st.since_cut += 1;
        let wanted = self.rebaseline_wanted.swap(false, Ordering::Relaxed);
        if wanted || (self.ckpt_every > 0 && st.since_cut >= self.ckpt_every) {
            self.cut_locked(&mut st);
        }
        drop(st);
        // Chaos kill switch: die *after* the forward was written (the
        // guarantee under test) but before the ack goes out — the
        // network thread sends it after the tap returns, so SIGKILL
        // here is the adversarial interleaving.
        if let Some(chaos) = &self.chaos {
            if chaos.kill_tick(self.node.id) {
                eprintln!(
                    "[gravel-node {}] chaos: SIGKILL after applied packet (flow {}:{} seq {})",
                    self.node.id, pkt.src, pkt.lane, pkt.seq
                );
                crate::signal::kill_self_hard();
            }
        }
    }
}
