//! Buddy-side storage of a ward's recovery state.
//!
//! In the ring buddy topology node `i` forwards to node `(i+1) % n`
//! (its *buddy*), which makes node `i` the keeper for node
//! `(i-1+n) % n` (its *ward*). The store is keyed by the forwarding
//! node id anyway — it costs nothing and stays correct if the topology
//! ever changes.
//!
//! Consistency comes from FIFO ordering, not locking across processes:
//! the ward emits `FWD` frames and `CKPT` frames on the same stream, so
//! applying them here in arrival order reproduces exactly the ward's
//! own cut points. A `CKPT` replaces the baseline and clears the log;
//! a `FWD` appends. `recover()` clones baseline + log — together they
//! replay to the ward's state as of its last forwarded packet.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::proto::{CkptImage, FwdPacket, RecoverResp};

#[derive(Default)]
struct WardState {
    ckpt: Option<CkptImage>,
    log: Vec<FwdPacket>,
}

/// Recovery state held on behalf of other nodes, keyed by their id.
#[derive(Default)]
pub struct WardStores {
    wards: Mutex<HashMap<u32, WardState>>,
}

impl WardStores {
    pub fn new() -> Self {
        WardStores::default()
    }

    /// Append one forwarded packet to `ward`'s log.
    pub fn on_fwd(&self, ward: u32, pkt: FwdPacket) {
        let mut wards = self.lock();
        wards.entry(ward).or_default().log.push(pkt);
    }

    /// Install a new baseline for `ward`, truncating its log: every
    /// packet the ward forwarded before this cut is already reflected
    /// in the checkpoint's heap image and cursors.
    pub fn on_ckpt(&self, ward: u32, ckpt: CkptImage) {
        let mut wards = self.lock();
        let st = wards.entry(ward).or_default();
        st.ckpt = Some(ckpt);
        st.log.clear();
    }

    /// The stored baseline + log for `ward` (empty response if we never
    /// heard from it — a cold boot).
    pub fn recover(&self, ward: u32) -> RecoverResp {
        let wards = self.lock();
        match wards.get(&ward) {
            Some(st) => RecoverResp { ckpt: st.ckpt.clone(), log: st.log.clone() },
            None => RecoverResp::default(),
        }
    }

    /// Logged packets currently held for `ward` (tests, telemetry).
    pub fn log_len(&self, ward: u32) -> usize {
        self.lock().get(&ward).map_or(0, |s| s.log.len())
    }

    /// Reconstruct `ward`'s heap as of its last forwarded packet:
    /// the stored baseline image with the replay log applied on top.
    /// `None` if no baseline is stored (nothing to take over). This is
    /// the EVICT data source — when the coordinator expels a dead
    /// member, the new owners of its shards pull from this
    /// reconstruction instead of the corpse. Forward-before-ack makes
    /// it exact: every update any sender saw acked is in here.
    ///
    /// Only the commutative write commands the elastic traffic model
    /// emits (`Put`, `Inc`) are replayed; anything else in the log is
    /// skipped, mirroring `apply_words`' tolerance of pre-validation
    /// entries.
    pub fn reconstruct_heap(&self, ward: u32) -> Option<Vec<u64>> {
        let wards = self.lock();
        let st = wards.get(&ward)?;
        let ckpt = st.ckpt.as_ref()?;
        let mut heap = ckpt.heap.clone();
        for pkt in &st.log {
            for quad in pkt.words.chunks_exact(gravel_gq::MSG_ROWS) {
                let Some(msg) = gravel_gq::Message::decode(
                    quad.try_into().expect("chunks_exact yields MSG_ROWS"),
                ) else {
                    continue;
                };
                let Some(slot) = heap.get_mut(msg.addr as usize) else {
                    continue;
                };
                match msg.command {
                    gravel_gq::Command::Put => *slot = msg.value,
                    gravel_gq::Command::Inc => *slot = slot.wrapping_add(msg.value),
                    _ => {}
                }
            }
        }
        Some(heap)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u32, WardState>> {
        self.wards.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fwd(seq: u64) -> FwdPacket {
        FwdPacket { src: 0, lane: 0, seq, words: vec![seq; 4] }
    }

    #[test]
    fn ckpt_truncates_the_log_and_recover_returns_both() {
        let s = WardStores::new();
        assert_eq!(s.recover(3), RecoverResp::default(), "cold boot is empty");
        s.on_fwd(3, fwd(0));
        s.on_fwd(3, fwd(1));
        let cut = CkptImage { epoch: 1, cursors: vec![(0, 0, 2)], heap: vec![9], ready: vec![] };
        s.on_ckpt(3, cut.clone());
        assert_eq!(s.log_len(3), 0, "cut clears the log");
        s.on_fwd(3, fwd(2));
        let r = s.recover(3);
        assert_eq!(r.ckpt, Some(cut));
        assert_eq!(r.log, vec![fwd(2)]);
        // Wards are independent.
        assert_eq!(s.recover(1), RecoverResp::default());
    }

    #[test]
    fn reconstruct_replays_the_log_onto_the_baseline() {
        use gravel_gq::Message;
        let s = WardStores::new();
        assert_eq!(s.reconstruct_heap(2), None, "no baseline, nothing to take over");
        s.on_ckpt(
            2,
            CkptImage { epoch: 1, cursors: vec![], heap: vec![10, 0, 0, 3], ready: vec![0] },
        );
        let mut words = Vec::new();
        words.extend(Message::inc(0, 0, 5).encode());
        words.extend(Message::put(0, 2, 77).encode());
        words.extend(Message::inc(0, 3, 1).encode());
        words.extend([u64::MAX, 0, 0, 0]); // undecodable: skipped
        words.extend(Message::inc(0, 999, 1).encode()); // out of range: skipped
        s.on_fwd(2, FwdPacket { src: 1, lane: 0, seq: 0, words });
        assert_eq!(s.reconstruct_heap(2), Some(vec![15, 0, 77, 4]));
    }
}
