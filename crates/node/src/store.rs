//! Buddy-side storage of a ward's recovery state.
//!
//! In the ring buddy topology node `i` forwards to node `(i+1) % n`
//! (its *buddy*), which makes node `i` the keeper for node
//! `(i-1+n) % n` (its *ward*). The store is keyed by the forwarding
//! node id anyway — it costs nothing and stays correct if the topology
//! ever changes.
//!
//! Consistency comes from FIFO ordering, not locking across processes:
//! the ward emits `FWD` frames and `CKPT` frames on the same stream, so
//! applying them here in arrival order reproduces exactly the ward's
//! own cut points. A `CKPT` replaces the baseline and clears the log;
//! a `FWD` appends. `recover()` clones baseline + log — together they
//! replay to the ward's state as of its last forwarded packet.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::proto::{CkptImage, FwdPacket, RecoverResp};

#[derive(Default)]
struct WardState {
    ckpt: Option<CkptImage>,
    log: Vec<FwdPacket>,
}

/// Recovery state held on behalf of other nodes, keyed by their id.
#[derive(Default)]
pub struct WardStores {
    wards: Mutex<HashMap<u32, WardState>>,
}

impl WardStores {
    pub fn new() -> Self {
        WardStores::default()
    }

    /// Append one forwarded packet to `ward`'s log.
    pub fn on_fwd(&self, ward: u32, pkt: FwdPacket) {
        let mut wards = self.lock();
        wards.entry(ward).or_default().log.push(pkt);
    }

    /// Install a new baseline for `ward`, truncating its log: every
    /// packet the ward forwarded before this cut is already reflected
    /// in the checkpoint's heap image and cursors.
    pub fn on_ckpt(&self, ward: u32, ckpt: CkptImage) {
        let mut wards = self.lock();
        let st = wards.entry(ward).or_default();
        st.ckpt = Some(ckpt);
        st.log.clear();
    }

    /// The stored baseline + log for `ward` (empty response if we never
    /// heard from it — a cold boot).
    pub fn recover(&self, ward: u32) -> RecoverResp {
        let wards = self.lock();
        match wards.get(&ward) {
            Some(st) => RecoverResp { ckpt: st.ckpt.clone(), log: st.log.clone() },
            None => RecoverResp::default(),
        }
    }

    /// Logged packets currently held for `ward` (tests, telemetry).
    pub fn log_len(&self, ward: u32) -> usize {
        self.lock().get(&ward).map_or(0, |s| s.log.len())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u32, WardState>> {
        self.wards.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fwd(seq: u64) -> FwdPacket {
        FwdPacket { src: 0, lane: 0, seq, words: vec![seq; 4] }
    }

    #[test]
    fn ckpt_truncates_the_log_and_recover_returns_both() {
        let s = WardStores::new();
        assert_eq!(s.recover(3), RecoverResp::default(), "cold boot is empty");
        s.on_fwd(3, fwd(0));
        s.on_fwd(3, fwd(1));
        let cut = CkptImage { epoch: 1, cursors: vec![(0, 0, 2)], heap: vec![9] };
        s.on_ckpt(3, cut.clone());
        assert_eq!(s.log_len(3), 0, "cut clears the log");
        s.on_fwd(3, fwd(2));
        let r = s.recover(3);
        assert_eq!(r.ckpt, Some(cut));
        assert_eq!(r.log, vec![fwd(2)]);
        // Wards are independent.
        assert_eq!(s.recover(1), RecoverResp::default());
    }
}
