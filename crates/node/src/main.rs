//! `gravel-node` — one cluster member as a real OS process.
//!
//! ```text
//! gravel-node --node 2 --nodes 4 --dir /tmp/cluster --updates 4096 \
//!             --table 512 --out /tmp/cluster/node2.json
//! ```
//!
//! N such processes form a mesh over Unix-domain sockets (`--dir`) or
//! TCP (`--tcp-base`), run the GUPS update streams deterministically,
//! and continuously protect each other: every applied packet is
//! forwarded to the next node in the ring before it is acked, and
//! epoch checkpoints truncate the forwarded log. A member killed with
//! `kill -9` and restarted with the *same* command line recovers its
//! heap, replay log, and flow cursors from its buddy over the socket
//! and rejoins — the final cluster heap is bit-exact with a no-fault
//! run (asserted by `tests/cluster.rs`).
//!
//! Exit codes: 0 success (including graceful SIGTERM/SIGINT shutdown),
//! 2 deadline expired before completion, 3 cluster error, 64 usage.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use gravel_apps::gups::{self, GupsInput};
use gravel_core::ha::heartbeat;
use gravel_core::netthread::{self, PacketTap, RecvState};
use gravel_core::{ErrorSlot, FailureDetector, GravelConfig, HeartbeatConfig, NodeShared};
use gravel_net::{
    ChaosPlan, PeerEvent, ProcessFault, RecvStatus, SocketAddrSpec, SocketConfig,
    SocketTransport, Transport,
};
use gravel_pgas::{AmRegistry, WireIntegrity};
use gravel_telemetry::Counter;

use gravel_node::elastic::{self, ElasticCtx, ElasticState};
use gravel_node::forward::Forwarder;
use gravel_node::proto::{self, RecoverResp, OP_CKPT, OP_FWD, OP_RECOVER_REQ, OP_RECOVER_RESP};
use gravel_node::report::{write_report, OutReport, OutStats, QuarantineEntry};
use gravel_node::rpc_pump;
use gravel_node::sender::{self, SenderConfig};
use gravel_node::signal;
use gravel_node::store::WardStores;

struct Args {
    node: u32,
    nodes: usize,
    dir: Option<PathBuf>,
    tcp_base: Option<u16>,
    updates: usize,
    table: usize,
    seed: u64,
    integrity: WireIntegrity,
    msgs_per_packet: usize,
    ckpt_every: u64,
    kill_at: Option<u64>,
    deadline_secs: u64,
    gets: usize,
    out: PathBuf,
    /// Elastic mode: the initial active membership is `0..active`
    /// (slots `active..nodes` are capacity for joiners). `None` =
    /// static cluster, the pre-elastic behavior bit for bit.
    active: Option<usize>,
    /// This process dials into a running elastic cluster (its slot is
    /// outside the initial membership); the coordinator it knocks on
    /// is node 0 of the same `--dir`/`--tcp-base` mesh.
    join: bool,
    /// How long a starting elastic node waits for its buddy before
    /// treating startup as a cold boot (a joiner's buddy slot may not
    /// exist yet).
    buddy_wait_ms: u64,
    /// Coordinator: evict a member continuously dead this long.
    evict_grace_ms: u64,
    /// Chaos: SIGKILL while installing the Kth migrated shard (words
    /// written, epoch not yet cut — the worst mid-migration window).
    kill_on_migrate: Option<u64>,
    /// Chaos: the lease holder SIGKILLs itself right after broadcasting
    /// its next moves-carrying TOPO — a deterministic coordinator death
    /// mid-shard-migration (the failover acceptance window).
    kill_on_commit: bool,
    /// Chaos: a declarative link-fault schedule, e.g.
    /// `part:0|1|2:500:2500;oneway:2:3:100:900;delay:0:1:5:3`.
    link_chaos: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: gravel-node --node I --nodes N (--dir PATH | --tcp-base PORT) [--updates U] \
         [--table T] [--seed S] [--integrity crc32c|off] [--msgs-per-packet K] \
         [--ckpt-every P] [--kill-at N] [--deadline-secs D] [--gets G] [--out FILE] \
         [--active M] [--join] [--buddy-wait-ms W] [--evict-grace-ms E] [--kill-on-migrate K] \
         [--kill-on-commit] [--link-chaos SPEC]"
    );
    std::process::exit(64);
}

fn parse_args() -> Args {
    let mut a = Args {
        node: u32::MAX,
        nodes: 0,
        dir: None,
        tcp_base: None,
        updates: 4096,
        table: 512,
        seed: 42,
        integrity: WireIntegrity::Crc32c,
        msgs_per_packet: 8,
        ckpt_every: 16,
        kill_at: None,
        deadline_secs: 60,
        gets: 0,
        out: PathBuf::new(),
        active: None,
        join: false,
        buddy_wait_ms: 2000,
        evict_grace_ms: 1500,
        kill_on_migrate: None,
        kill_on_commit: false,
        link_chaos: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--node" => a.node = val().parse().unwrap_or_else(|_| usage()),
            "--nodes" => a.nodes = val().parse().unwrap_or_else(|_| usage()),
            "--dir" => a.dir = Some(PathBuf::from(val())),
            "--tcp-base" => a.tcp_base = Some(val().parse().unwrap_or_else(|_| usage())),
            "--updates" => a.updates = val().parse().unwrap_or_else(|_| usage()),
            "--table" => a.table = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => a.seed = val().parse().unwrap_or_else(|_| usage()),
            "--integrity" => {
                a.integrity = match val().as_str() {
                    "crc32c" => WireIntegrity::Crc32c,
                    "off" => WireIntegrity::Off,
                    _ => usage(),
                }
            }
            "--msgs-per-packet" => a.msgs_per_packet = val().parse().unwrap_or_else(|_| usage()),
            "--ckpt-every" => a.ckpt_every = val().parse().unwrap_or_else(|_| usage()),
            "--kill-at" => a.kill_at = Some(val().parse().unwrap_or_else(|_| usage())),
            "--deadline-secs" => a.deadline_secs = val().parse().unwrap_or_else(|_| usage()),
            "--gets" => a.gets = val().parse().unwrap_or_else(|_| usage()),
            "--out" => a.out = PathBuf::from(val()),
            "--active" => a.active = Some(val().parse().unwrap_or_else(|_| usage())),
            "--join" => a.join = true,
            "--buddy-wait-ms" => a.buddy_wait_ms = val().parse().unwrap_or_else(|_| usage()),
            "--evict-grace-ms" => a.evict_grace_ms = val().parse().unwrap_or_else(|_| usage()),
            "--kill-on-migrate" => {
                a.kill_on_migrate = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--kill-on-commit" => a.kill_on_commit = true,
            "--link-chaos" => a.link_chaos = Some(val()),
            _ => usage(),
        }
    }
    if a.node == u32::MAX || a.nodes == 0 || a.node as usize >= a.nodes {
        usage();
    }
    if a.dir.is_none() && a.tcp_base.is_none() {
        usage();
    }
    if let Some(active) = a.active {
        if active == 0 || active > a.nodes {
            usage();
        }
        // A slot outside the initial membership must opt into joining;
        // an initial member must not claim to join.
        if ((a.node as usize) >= active) != a.join {
            usage();
        }
        if a.gets > 0 {
            eprintln!("[gravel-node {}] --gets is not supported in elastic mode", a.node);
            usage();
        }
    } else if a.join || a.kill_on_migrate.is_some() {
        usage();
    }
    if a.out.as_os_str().is_empty() {
        a.out = PathBuf::from(format!("gravel-node-{}.json", a.node));
    }
    a
}

fn addrs(a: &Args) -> Vec<SocketAddrSpec> {
    (0..a.nodes)
        .map(|i| match (&a.dir, a.tcp_base) {
            (Some(dir), _) => SocketAddrSpec::Uds(dir.join(format!("node{i}.sock"))),
            (None, Some(base)) => SocketAddrSpec::Tcp(format!("127.0.0.1:{}", base + i as u16)),
            (None, None) => unreachable!("parse_args requires one"),
        })
        .collect()
}

/// Membership counters, created up front so the report sees zeros
/// rather than missing metrics.
struct Membership {
    joins: Counter,
    losses: Counter,
    rejoins: Counter,
}

/// Control-plane service loop: store the ward's forwards and cuts,
/// serve recovery requests, route recovery responses to `resp_tx` —
/// and, in elastic mode, dispatch the TOPO/MIGRATE/BOUNCE family.
fn ctrl_loop(
    transport: Arc<SocketTransport>,
    stores: Arc<WardStores>,
    resp_tx: mpsc::Sender<RecoverResp>,
    errors: Arc<ErrorSlot>,
    elastic: Option<Arc<ElasticCtx>>,
) {
    loop {
        let msg = match transport.recv_control(Duration::from_millis(50)) {
            RecvStatus::Msg(m) => m,
            RecvStatus::TimedOut => {
                if errors.is_set() {
                    return;
                }
                continue;
            }
            RecvStatus::Closed => return,
        };
        if let Some(ctx) = &elastic {
            if elastic::handle_ctrl(ctx, msg.src, &msg.words) {
                continue;
            }
        }
        match msg.words.first().copied() {
            Some(OP_FWD) => {
                if let Some(p) = proto::decode_fwd(&msg.words) {
                    stores.on_fwd(msg.src, p);
                }
            }
            Some(OP_CKPT) => {
                if let Some(c) = proto::decode_ckpt(&msg.words) {
                    stores.on_ckpt(msg.src, c);
                }
            }
            Some(OP_RECOVER_REQ) => {
                let resp = stores.recover(msg.src);
                transport.send_control(msg.src, &proto::encode_recover_resp(&resp));
            }
            Some(OP_RECOVER_RESP) => {
                if let Some(r) = proto::decode_recover_resp(&msg.words) {
                    let _ = resp_tx.send(r);
                }
            }
            // Unknown op from a newer (or confused) peer: ignore —
            // version skew on the control plane must not wedge a node.
            _ => {}
        }
    }
}

/// Membership loop: mirror connection events into counters, un-latch
/// the failure detector when a dead peer's new incarnation handshakes,
/// and re-baseline our buddy-held checkpoint when the buddy returns.
///
/// Every rebaseline here is gated on `started`: until the main thread
/// has finished startup recovery and seeded the heap, a cut would ship
/// an *empty* baseline — at best a useless ward, at worst (the buddy
/// link coming up mid-startup, which is the common case on a fresh
/// cluster) it overwrites the very checkpoint recovery is about to
/// read, turning a cold boot into a phantom "restart" with an empty
/// ready-set. The post-recovery cut in `run` covers any Up event
/// suppressed by this gate.
#[allow(clippy::too_many_arguments)]
fn membership_loop(
    transport: Arc<SocketTransport>,
    detector: Arc<FailureDetector>,
    forwarder: Arc<Forwarder>,
    counters: Membership,
    buddy: u32,
    nodes: usize,
    rebaseline_on_first_up: bool,
    started: Arc<AtomicBool>,
) {
    let mut seen_down = vec![false; nodes];
    while !transport.is_closed() {
        let Some(ev) = transport.poll_event(Duration::from_millis(50)) else {
            continue;
        };
        match ev {
            PeerEvent::Up(peer) => {
                if seen_down[peer as usize] {
                    seen_down[peer as usize] = false;
                    counters.rejoins.inc();
                    detector.reset_peer(peer, Instant::now());
                    if peer == buddy && started.load(Ordering::SeqCst) {
                        // The buddy missed every forward while it was
                        // down; a fresh full checkpoint supersedes them.
                        forwarder.rebaseline();
                    }
                } else {
                    counters.joins.inc();
                    if rebaseline_on_first_up && peer == buddy && started.load(Ordering::SeqCst) {
                        // Elastic: the buddy slot may be a joiner that
                        // just started — hand it our baseline now that
                        // someone exists to protect us.
                        forwarder.rebaseline();
                    }
                }
            }
            PeerEvent::Down(peer) => {
                seen_down[peer as usize] = true;
                counters.losses.inc();
            }
        }
    }
}

/// Ask the buddy for our stored state, retrying the request until a
/// response arrives (the buddy may still be starting). Uniform across
/// cold boot and restart: a cold cluster answers "nothing stored".
/// `buddy_wait` bounds how long we wait for the buddy's link (elastic
/// mode: a joiner's buddy slot may not exist yet — a bounded wait then
/// a cold boot, instead of blocking to the deadline).
fn recover_from_buddy(
    transport: &SocketTransport,
    buddy: u32,
    me: u32,
    resp_rx: &mpsc::Receiver<RecoverResp>,
    deadline: Instant,
    buddy_wait: Option<Duration>,
) -> Option<RecoverResp> {
    let wait = buddy_wait
        .unwrap_or_else(|| deadline.saturating_duration_since(Instant::now()))
        .min(deadline.saturating_duration_since(Instant::now()));
    if buddy != me && !transport.wait_connected(buddy, wait) {
        // Elastic (`buddy_wait` set): no buddy yet — nothing can be
        // stored for us. Static: an unreachable buddy is fatal.
        return buddy_wait.map(|_| RecoverResp::default());
    }
    loop {
        transport.send_control(buddy, &proto::encode_recover_req());
        match resp_rx.recv_timeout(Duration::from_millis(300)) {
            Ok(r) => return Some(r),
            Err(_) => {
                if Instant::now() >= deadline || signal::shutdown_requested() {
                    return None;
                }
            }
        }
    }
}

/// Whether every inbound flow has reached its deterministic packet
/// count.
fn receive_complete(state: &Mutex<RecvState>, expected: &[u64]) -> bool {
    let cursors: HashMap<(u32, u32), u64> = state
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .flow_cursors()
        .into_iter()
        .map(|(s, l, e)| ((s, l), e))
        .collect();
    expected
        .iter()
        .enumerate()
        .all(|(src, &want)| cursors.get(&(src as u32, 0)).copied().unwrap_or(0) >= want)
}

struct Reporter {
    args: Args,
    node: Arc<NodeShared>,
    transport: Arc<SocketTransport>,
    forwarder: Arc<Forwarder>,
    elastic: Option<Arc<ElasticState>>,
    sender_drained: Arc<AtomicBool>,
    recovered_from_ckpt: bool,
    recovered_log_packets: u64,
    /// Quarantined messages accumulated across report writes (each
    /// write drains the node's quarantine, so without this buffer the
    /// final report would lose what earlier writes already surfaced).
    quarantine: Mutex<Vec<QuarantineEntry>>,
}

impl Reporter {
    fn write(&self, completed: bool, graceful: bool) {
        let s = self.transport.stats();
        let snap = self.node.registry.snapshot();
        let me = self.args.node;
        let n = |suffix: &str| format!("node{me}.{suffix}");
        let quarantine = {
            let mut q = self.quarantine.lock().unwrap_or_else(|p| p.into_inner());
            q.extend(self.node.quarantine.drain().into_iter().map(|m| QuarantineEntry {
                src: m.src,
                lane: m.lane,
                seq: m.seq,
                index: m.index as u64,
                reason: format!("{:?}", m.reason),
            }));
            q.clone()
        };
        let report = OutReport {
            node: me as u64,
            nodes: self.args.nodes as u64,
            completed,
            graceful,
            recovered_from_ckpt: self.recovered_from_ckpt,
            updates_issued: self.node.offloaded.get(),
            applied: self.node.applied.get(),
            epoch: self.forwarder.epoch(),
            heap: self.node.heap.snapshot(),
            stats: OutStats {
                handshakes: s.handshakes,
                reconnects: s.reconnects,
                connect_failures: s.connect_failures,
                handshake_rejects: s.handshake_rejects,
                link_drops: s.link_drops,
                retransmits: self.node.net_retransmits.get(),
                dups_suppressed: self.node.net_dups_suppressed.get(),
                acks_sent: self.node.net_acks_sent.get(),
                deaths_declared: snap.counter("ha.deaths_declared"),
                membership_joins: snap.counter(&n("membership.joins")),
                membership_losses: snap.counter(&n("membership.losses")),
                membership_rejoins: snap.counter(&n("membership.rejoins")),
                epochs_cut: snap.counter(&n("ha.epochs_cut")),
                fwd_sent: snap.counter(&n("fwd.sent")),
                fwd_dropped: snap.counter(&n("fwd.dropped")),
                recovered_log_packets: self.recovered_log_packets,
                gets_issued: snap.counter(&n("gets.issued")),
                gets_ok: snap.counter(&n("gets.ok")),
                gets_timed_out: snap.counter(&n("gets.timed_out")),
                gets_mismatched: snap.counter(&n("gets.mismatched")),
                rpc_replies_sent: self.node.rpc_replies_sent.get(),
                quarantined: self.node.quarantine.total(),
                reshard_stale_routed: snap.counter(&n("reshard.stale_routed")),
                reshard_redelivered: snap.counter(&n("reshard.redelivered")),
                reshard_bounce_dropped: snap.counter(&n("reshard.bounce_dropped")),
                reshard_moves_in: snap.counter(&n("reshard.moves_in")),
                reshard_moves_out: snap.counter(&n("reshard.moves_out")),
                reshard_bytes_migrated: snap.counter(&n("reshard.bytes_migrated")),
                ha_takeovers: self.elastic.as_ref().map_or(0, |st| st.takeovers_count()),
                ha_evictions_vetoed: self
                    .elastic
                    .as_ref()
                    .map_or(0, |st| st.evictions_vetoed_count()),
            },
            quarantine,
            map_version: self.elastic.as_ref().map_or(0, |st| st.version()),
            members: self.elastic.as_ref().map_or_else(Vec::new, |st| st.members()),
            shard_owners: self
                .elastic
                .as_ref()
                .map_or_else(Vec::new, |st| st.shard_owners()),
            sender_drained: self.sender_drained.load(Ordering::SeqCst),
            ha_term: self.elastic.as_ref().map_or(0, |st| st.ha_term()),
            ha_holder: self.elastic.as_ref().map_or(0, |st| st.ha_holder()),
        };
        if let Err(e) = write_report(&self.args.out, &report) {
            eprintln!("[gravel-node {me}] failed to write {}: {e}", self.args.out.display());
        }
    }
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args = parse_args();
    let me = args.node;
    let nodes = args.nodes;
    signal::install_shutdown_handler();
    let deadline = Instant::now() + Duration::from_secs(args.deadline_secs);

    let input = GupsInput { updates: args.updates, table_len: args.table, seed: args.seed };
    let part = gups::partition(&input, nodes);
    // With GET probes enabled the heap grows one sentinel word past the
    // GUPS partition (never touched by updates, so its value is a pure
    // function of the seed — the bit-exact GET target). Elastic heaps
    // are provisioned at the *full* table size: shards address by
    // global index, so ownership can move without offset translation.
    let heap_len = if args.active.is_some() {
        args.table.max(1)
    } else if args.gets > 0 {
        part.local_len(me as usize) + 1
    } else {
        part.local_len(me as usize).max(1)
    };
    let mut cfg = GravelConfig::small(nodes, heap_len);
    cfg.wire_integrity = args.integrity;
    // Generous RPC deadline: a GET must survive a peer's kill -9 →
    // restart window before it is declared timed out.
    cfg.rpc.timeout = Duration::from_secs(5);
    let node = Arc::new(NodeShared::new(me, &cfg, Arc::new(AmRegistry::new())));

    let mut scfg = SocketConfig::new(me, addrs(&args));
    scfg.integrity = args.integrity;
    scfg.seed = args.seed ^ (me as u64).wrapping_mul(0x9E37_79B9);
    // The wire loops draw frame buffers from the node's arena.
    scfg.pool = node.pool.clone();
    if args.gets > 0 {
        // Lane 0 carries the deterministic GUPS flows; lane 1 carries
        // request-reply traffic (its own ack mailbox).
        scfg.lanes = 2;
    }
    if let Some(spec) = &args.link_chaos {
        // Same seed on every node: symmetric faults really are
        // symmetric, and the partition islands agree across processes.
        let sched = match gravel_net::LinkSchedule::parse(args.seed, spec) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("[gravel-node {me}] bad --link-chaos spec: {e}");
                return 64;
            }
        };
        sched.arm();
        scfg.link_chaos = Some(Arc::new(sched));
    }
    let transport = match SocketTransport::spawn(scfg) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[gravel-node {me}] transport spawn failed: {e}");
            return 3;
        }
    };

    let errors = Arc::new(ErrorSlot::default());
    let state = Arc::new(Mutex::new(RecvState::new()));
    let stores = Arc::new(WardStores::new());
    let buddy = ((me as usize + 1) % nodes) as u32;
    let chaos = args
        .kill_at
        .map(|at| Arc::new(ChaosPlan::new(vec![ProcessFault::KillProcess { node: me, at_step: at }])));
    let forwarder = Arc::new(Forwarder::new(
        transport.clone(),
        node.clone(),
        state.clone(),
        buddy,
        args.ckpt_every,
        chaos,
    ));

    // Elastic mode: the shard directory, bounce gate, and (on node 0)
    // the coordinator's rebalancer. The checkpoint provider must be
    // installed before the first cut so every baseline carries its
    // ready-shard set.
    let elastic_state = args.active.map(|active| {
        let nshards = gravel_pgas::DEFAULT_SHARDS.min(args.table.max(1));
        let members: Vec<u32> = (0..active as u32).collect();
        let initial = gravel_pgas::ShardMap::initial(&members, nshards);
        let st = ElasticState::new(
            node.clone(),
            transport.clone(),
            nodes,
            args.table,
            initial,
            args.kill_on_migrate,
        );
        let provider = st.clone();
        forwarder.set_ready_provider(Arc::new(move || provider.ckpt_ready_shards()));
        st
    });
    // Liveness: heartbeats over the wire into a phi-accrual detector.
    // The interval is wider than the in-process default — N processes
    // share cores here, and a falsely latched peer stays dead until
    // its next handshake. Built before the elastic wiring: the HA
    // driver corroborates death votes against this detector.
    let hb_cfg = HeartbeatConfig {
        interval: Duration::from_millis(15),
        suspect_phi: 4.0,
        dead_phi: 8.0,
        min_samples: 3,
    };
    let detector = Arc::new(FailureDetector::new(hb_cfg.clone()));

    let elastic_ctx = elastic_state.as_ref().map(|st| {
        Arc::new(ElasticCtx {
            state: st.clone(),
            forwarder: forwarder.clone(),
            stores: stores.clone(),
            transport: transport.clone(),
            // Every node carries one: whoever wins the lease drives it.
            rebalancer: Arc::new(Mutex::new(gravel_core::ha::Rebalancer::new())),
            detector: detector.clone(),
            is_joiner: args.join,
        })
    });

    // Control-plane service first: recovery requests (ours and our
    // ward's) need it running before anything blocks.
    let (resp_tx, resp_rx) = mpsc::channel();
    let ctrl = std::thread::spawn({
        let (t, s, e) = (transport.clone(), stores.clone(), errors.clone());
        let ctx = elastic_ctx.clone();
        move || ctrl_loop(t, s, resp_tx, e, ctx)
    });
    let hb = std::thread::spawn({
        let (t, d, e, r) = (transport.clone(), detector.clone(), errors.clone(), node.registry.clone());
        let n = nodes as u32;
        move || {
            heartbeat::run(hb_cfg, me, n, t, d, None, e, r, Arc::new(AtomicU64::new(0)));
        }
    });

    let membership = Membership {
        joins: node.registry.counter(&format!("node{me}.membership.joins")),
        losses: node.registry.counter(&format!("node{me}.membership.losses")),
        rejoins: node.registry.counter(&format!("node{me}.membership.rejoins")),
    };
    let started = Arc::new(AtomicBool::new(false));
    let memb = std::thread::spawn({
        let (t, d, f) = (transport.clone(), detector.clone(), forwarder.clone());
        let elastic = args.active.is_some();
        let started = started.clone();
        move || membership_loop(t, d, f, membership, buddy, nodes, elastic, started)
    });

    // Recover (or cold-boot) from the buddy before consuming anything.
    let buddy_wait = args.active.map(|_| Duration::from_millis(args.buddy_wait_ms));
    let Some(recovered) =
        recover_from_buddy(&transport, buddy, me, &resp_rx, deadline, buddy_wait)
    else {
        transport.close();
        if signal::shutdown_requested() {
            eprintln!("[gravel-node {me}] graceful shutdown during startup recovery");
            return 0;
        }
        eprintln!("[gravel-node {me}] no recovery response from node {buddy} before deadline");
        return 2;
    };
    let recovered_from_ckpt = recovered.ckpt.is_some();
    let recovered_log_packets = recovered.log.len() as u64;
    let mut cursors: HashMap<(u32, u32), u64> = HashMap::new();
    let mut epoch = 0;
    if let Some(c) = &recovered.ckpt {
        if c.heap.len() == node.heap.len() {
            node.heap.fill_from(&c.heap);
        } else {
            eprintln!(
                "[gravel-node {me}] buddy checkpoint heap is {} words, expected {} — ignoring",
                c.heap.len(),
                node.heap.len()
            );
        }
        epoch = c.epoch;
        for &(src, lane, expected) in &c.cursors {
            cursors.insert((src, lane), expected);
        }
    }
    for p in &recovered.log {
        let (disposed, _) =
            gravel_pgas::apply_words(&p.words, p.src, &node.heap, &node.ams, &mut |_reply| {});
        node.note_applied(disposed as u64);
        let cur = cursors.entry((p.src, p.lane)).or_insert(0);
        *cur = (*cur).max(p.seq + 1);
    }
    {
        let mut st = state.lock().unwrap_or_else(|p| p.into_inner());
        for (&(src, lane), &expected) in &cursors {
            st.seed_flow(src, lane, expected);
        }
    }
    if let Some(st) = &elastic_state {
        match &recovered.ckpt {
            // Restart: exactly the shards the last cut proved. A shard
            // migrated in but never cut is *absent* here and will be
            // re-pulled; the heap image just restored matches.
            Some(c) => st.seed_ready(&c.ready),
            // Cold boot: an initial member starts serving its dealt
            // shards; a joiner serves nothing until migration.
            None => {
                if (me as usize) < args.active.unwrap_or(nodes) && !args.join {
                    st.seed_ready(&st.current_map().shards_of(me));
                }
            }
        }
    }
    let triples: Vec<(u32, u32, u64)> =
        cursors.iter().map(|(&(s, l), &e)| (s, l, e)).collect();
    forwarder.seed(&triples, epoch);
    // Recovery done: membership-event rebaselines are safe from here.
    started.store(true, Ordering::SeqCst);
    // Baseline cut: truncates the buddy's (possibly stale) log so the
    // stored state always replays from what we just restored.
    forwarder.rebaseline();
    if recovered_from_ckpt || recovered_log_packets > 0 {
        eprintln!(
            "[gravel-node {me}] recovered from buddy {buddy}: ckpt={recovered_from_ckpt} \
             log_packets={recovered_log_packets} epoch={epoch}"
        );
    }

    // The sentinel is deterministic, so (re)storing it after recovery
    // is idempotent — a restarted node and a cold boot publish the same
    // word.
    if args.gets > 0 {
        node.heap.store(
            part.local_len(me as usize) as u64,
            rpc_pump::sentinel_value(args.seed, me),
        );
    }

    // Elastic, non-holder: resync the shard map before serving a byte
    // of data traffic. A restarted node's built-in map may predate
    // topology changes; applying under it could accept shards that
    // moved away. The boot lease holder is the map authority and skips
    // this (topo_seen starts true there); everyone else knocks at
    // whoever it currently believes holds the lease.
    if let Some(st) = &elastic_state {
        let mut last = Instant::now() - Duration::from_secs(1);
        while !st.topo_seen() {
            if signal::shutdown_requested() {
                transport.close();
                return 0;
            }
            if Instant::now() >= deadline {
                eprintln!("[gravel-node {me}] no topology from lease holder before deadline");
                transport.close();
                return 2;
            }
            if last.elapsed() >= Duration::from_millis(200) {
                last = Instant::now();
                transport.send_control(st.ha_holder(), &proto::encode_map_req());
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    // Receiver: the shared netthread body, with the forwarder tapping
    // every applied packet before its ack — and, in elastic mode, the
    // stale-routing gate filtering each accepted packet first.
    let net = std::thread::spawn({
        let (n, t, e, s) = (node.clone(), transport.clone(), errors.clone(), state.clone());
        let tap: Arc<dyn PacketTap> = forwarder.clone();
        let gate = elastic_state
            .clone()
            .map(|st| st as Arc<dyn netthread::ApplyGate>);
        move || netthread::run_with_gate(n, t, e, s, None, Some(tap), gate)
    });

    // Sender: deterministic flows, go-back-N until fully acked. The
    // elastic sender instead routes its queue through the live map
    // every pass and publishes quiescence continuously (`sender_done`
    // doubles as the drained flag — a bounce can clear it again).
    let stop = Arc::new(AtomicBool::new(false));
    let sender_done = Arc::new(AtomicBool::new(false));
    let snd = if let Some(st) = &elastic_state {
        std::thread::spawn({
            let (t, n, stop, drained) =
                (transport.clone(), node.clone(), stop.clone(), sender_done.clone());
            let st = st.clone();
            // Only initial members carry update streams; joiners (and
            // post-drain leavers) route and serve but send nothing —
            // which is what makes their restart/kill windows safe (an
            // elastic sender's pending queue is volatile).
            let plan = if args.join {
                Vec::new()
            } else {
                elastic::elastic_plan(&input, nodes, me)
            };
            let msgs_per_packet = args.msgs_per_packet;
            move || {
                elastic::run_elastic_sender(
                    &t,
                    &n,
                    &st,
                    plan,
                    msgs_per_packet,
                    &SenderConfig::default(),
                    &stop,
                    deadline,
                    &drained,
                );
            }
        })
    } else {
        std::thread::spawn({
            let (t, n, stop, done) =
                (transport.clone(), node.clone(), stop.clone(), sender_done.clone());
            let plans = sender::plan_flows(&input, nodes, me, args.msgs_per_packet);
            move || {
                if sender::run_sender(&t, &n, plans, &SenderConfig::default(), &stop, deadline) {
                    done.store(true, Ordering::SeqCst);
                }
            }
        })
    };

    // Elastic service threads: the migration/membership pump and the
    // HA driver (lease beats / takeover watchdog / quorum voting /
    // epoch commits) on EVERY node — any node may end up holding the
    // coordinator lease.
    let mut elastic_threads = Vec::new();
    if let Some(ctx) = &elastic_ctx {
        elastic_threads.push(std::thread::spawn({
            let (ctx, stop) = (ctx.clone(), stop.clone());
            move || elastic::run_elastic_pump(&ctx, &stop, deadline)
        }));
        elastic_threads.push(std::thread::spawn({
            let (ctx, stop) = (ctx.clone(), stop.clone());
            let grace = Duration::from_millis(args.evict_grace_ms);
            let kill_on_commit = args.kill_on_commit;
            move || elastic::run_ha(&ctx, grace, kill_on_commit, &stop, deadline)
        }));
    }

    // Request-reply plane: a pump draining the offload queue (GETs we
    // issue + replies the netthread enqueues for peers) onto lane-1
    // flows, and a probe stream GETting every peer's sentinel.
    let gets_done = Arc::new(AtomicBool::new(args.gets == 0));
    let mut rpc_threads = Vec::new();
    if args.gets > 0 {
        rpc_threads.push(std::thread::spawn({
            let (t, n, stop) = (transport.clone(), node.clone(), stop.clone());
            move || rpc_pump::run_rpc_pump(&t, &n, &stop, deadline)
        }));
        rpc_threads.push(std::thread::spawn({
            let (n, stop, done) = (node.clone(), stop.clone(), gets_done.clone());
            let (gets, seed, input) = (args.gets, args.seed, input);
            move || {
                let counters = rpc_pump::GetsCounters::bound(&n);
                let part = gups::partition(&input, nodes);
                let out = rpc_pump::run_gets(
                    &n,
                    nodes,
                    gets,
                    seed,
                    |dest| part.local_len(dest as usize) as u64,
                    &stop,
                    deadline,
                    &counters,
                );
                eprintln!(
                    "[gravel-node {}] gets: issued={} ok={} timed_out={} failed={} mismatched={}",
                    n.id, out.issued, out.ok, out.timed_out, out.failed, out.mismatched
                );
                done.store(true, Ordering::SeqCst);
            }
        }));
    }

    let expected: Vec<u64> = (0..nodes)
        .map(|src| sender::expected_packets(&input, nodes, src as u32, me, args.msgs_per_packet))
        .collect();
    let reporter = Reporter {
        args,
        node: node.clone(),
        transport: transport.clone(),
        forwarder: forwarder.clone(),
        elastic: elastic_state.clone(),
        sender_drained: sender_done.clone(),
        recovered_from_ckpt,
        recovered_log_packets,
        quarantine: Mutex::new(Vec::new()),
    };

    // Main loop: wait for local completion, then linger (serving acks,
    // forwards, and recovery for peers) until SIGTERM or deadline. An
    // elastic node also republishes its report periodically: drain
    // state, map version, and the reshard ledger move as the cluster
    // grows and shrinks, and the harness polls for convergence.
    let mut completed = false;
    let mut last_periodic = Instant::now();
    let code = loop {
        if errors.is_set() {
            eprintln!("[gravel-node {me}] cluster error: {:?}", errors.take());
            reporter.write(completed, false);
            break 3;
        }
        if signal::shutdown_requested() {
            // Graceful: quiesce the sender, cut a final epoch so the
            // buddy holds our freshest state, report, exit 0.
            stop.store(true, Ordering::SeqCst);
            forwarder.rebaseline();
            reporter.write(completed, true);
            eprintln!("[gravel-node {me}] graceful shutdown (completed={completed})");
            break 0;
        }
        let locally_done = match &elastic_state {
            Some(st) => sender_done.load(Ordering::SeqCst) && !st.migrations_pending(),
            None => {
                sender_done.load(Ordering::SeqCst)
                    && gets_done.load(Ordering::SeqCst)
                    && receive_complete(&state, &expected)
            }
        };
        if !completed && locally_done {
            completed = true;
            reporter.write(true, false);
            eprintln!("[gravel-node {me}] complete; lingering for peers");
        }
        if elastic_state.is_some() && last_periodic.elapsed() >= Duration::from_millis(250) {
            last_periodic = Instant::now();
            reporter.write(completed, false);
        }
        if Instant::now() >= deadline {
            if !completed {
                reporter.write(false, false);
                eprintln!("[gravel-node {me}] deadline expired before completion");
                break 2;
            }
            break 0;
        }
        std::thread::sleep(Duration::from_millis(10));
    };

    stop.store(true, Ordering::SeqCst);
    transport.close();
    for h in [ctrl, hb, memb, net, snd]
        .into_iter()
        .chain(rpc_threads)
        .chain(elastic_threads)
    {
        let _ = h.join();
    }
    code
}
