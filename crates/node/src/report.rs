//! The JSON report a `gravel-node` process writes for its harness.
//!
//! Written atomically (temp file + rename) so a watcher polling for the
//! file never reads a half-written document. Written twice in a normal
//! run: once when the node's own work completes (`completed = true`,
//! `graceful = false` — the process stays up to serve peers), and again
//! on SIGTERM/SIGINT with `graceful = true` just before exit 0.

use std::io::Write as _;
use std::path::Path;

/// Counters distilled for the harness; mirrors the socket, membership,
/// and delivery telemetry.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct OutStats {
    pub handshakes: u64,
    pub reconnects: u64,
    pub connect_failures: u64,
    pub handshake_rejects: u64,
    pub link_drops: u64,
    pub retransmits: u64,
    pub dups_suppressed: u64,
    pub acks_sent: u64,
    pub deaths_declared: u64,
    pub membership_joins: u64,
    pub membership_losses: u64,
    pub membership_rejoins: u64,
    pub epochs_cut: u64,
    pub fwd_sent: u64,
    pub fwd_dropped: u64,
    pub recovered_log_packets: u64,
    #[serde(default)]
    pub gets_issued: u64,
    #[serde(default)]
    pub gets_ok: u64,
    #[serde(default)]
    pub gets_timed_out: u64,
    /// Replies that arrived but did not match the target's sentinel —
    /// any nonzero value is a correctness bug, not a fault artifact.
    #[serde(default)]
    pub gets_mismatched: u64,
    #[serde(default)]
    pub rpc_replies_sent: u64,
    #[serde(default)]
    pub quarantined: u64,
    /// Messages the elastic gate refused and bounced to their sender
    /// (stale or not-yet-migrated shard ownership).
    #[serde(default)]
    pub reshard_stale_routed: u64,
    /// Bounced messages re-enqueued by this node's sender. Across a
    /// whole cluster, `Σ stale_routed == Σ redelivered + Σ dropped`
    /// once every sender drains — the exactly-once ledger.
    #[serde(default)]
    pub reshard_redelivered: u64,
    /// Bounces that could not reach their (dead) sender.
    #[serde(default)]
    pub reshard_bounce_dropped: u64,
    /// Shards this node pulled in / served out during migrations.
    #[serde(default)]
    pub reshard_moves_in: u64,
    #[serde(default)]
    pub reshard_moves_out: u64,
    /// Shard words shipped (both directions), in bytes.
    #[serde(default)]
    pub reshard_bytes_migrated: u64,
    /// Times this node asserted a coordinator takeover (won the lease
    /// after quorum-confirming the holder's death).
    #[serde(default)]
    pub ha_takeovers: u64,
    /// Eviction rounds vetoed because a majority still heard the
    /// suspect (one-way link or local fault, not a death).
    #[serde(default)]
    pub ha_evictions_vetoed: u64,
}

/// One quarantined message's provenance, surfaced verbatim so the
/// harness (or an operator) sees *what* poison arrived, not just a
/// count.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct QuarantineEntry {
    pub src: u32,
    pub lane: u32,
    pub seq: u64,
    pub index: u64,
    pub reason: String,
}

/// Everything the harness asserts on.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct OutReport {
    pub node: u64,
    pub nodes: u64,
    /// This node's own sends are fully acked and its inbound flows are
    /// fully applied.
    pub completed: bool,
    /// The process exited via the SIGTERM/SIGINT path (final epoch cut
    /// taken). `kill -9` can, by definition, never write this.
    pub graceful: bool,
    /// Whether startup recovery found a buddy-held baseline (a restart
    /// rather than a cold boot).
    pub recovered_from_ckpt: bool,
    pub updates_issued: u64,
    pub applied: u64,
    pub epoch: u64,
    /// This node's full heap slice at report time.
    pub heap: Vec<u64>,
    pub stats: OutStats,
    /// Every message quarantined since the previous report, with full
    /// provenance (drained from the node's quarantine at write time).
    #[serde(default)]
    pub quarantine: Vec<QuarantineEntry>,
    /// Elastic mode: the installed shard-map version (0 = static).
    #[serde(default)]
    pub map_version: u64,
    /// Elastic mode: active members under the installed map.
    #[serde(default)]
    pub members: Vec<u32>,
    /// Elastic mode: owner node per shard under the installed map
    /// (shard = global index % len). Empty in static mode.
    #[serde(default)]
    pub shard_owners: Vec<u32>,
    /// Elastic mode: the sender's pending + bounce queues are empty and
    /// every in-flight packet is acked *at report time* (a later bounce
    /// can clear it again — harnesses poll for it across all nodes).
    #[serde(default)]
    pub sender_drained: bool,
    /// Elastic mode: the highest coordinator term this node accepted
    /// (0 = static mode; the boot term is 1).
    #[serde(default)]
    pub ha_term: u64,
    /// Elastic mode: who this node believes holds the coordinator
    /// lease.
    #[serde(default)]
    pub ha_holder: u32,
}

/// Atomically (re)write `report` at `path`.
pub fn write_report(path: &Path, report: &OutReport) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| std::io::Error::other(format!("serialize report: {e:?}")))?;
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Read a report back (harnesses).
pub fn read_report(path: &Path) -> std::io::Result<OutReport> {
    let text = std::fs::read_to_string(path)?;
    serde_json::from_str(&text)
        .map_err(|e| std::io::Error::other(format!("parse {}: {e:?}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_disk() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("gravel_report_{}.json", std::process::id()));
        let r = OutReport {
            node: 2,
            nodes: 4,
            completed: true,
            heap: vec![1, 2, 3],
            stats: OutStats { reconnects: 5, ..Default::default() },
            ..Default::default()
        };
        write_report(&path, &r).unwrap();
        let back = read_report(&path).unwrap();
        assert_eq!(back.node, 2);
        assert_eq!(back.heap, vec![1, 2, 3]);
        assert_eq!(back.stats.reconnects, 5);
        assert!(back.completed && !back.graceful);
        std::fs::remove_file(&path).ok();
    }
}
