//! Elastic membership for `gravel-node` (DESIGN.md §16): live join and
//! leave with epoch-boundary heap resharding, under the same chaos the
//! static cluster already survives.
//!
//! The moving parts, all keyed off one [`gravel_pgas::Directory`]:
//!
//! * **Versioned shard map.** The table is dealt into shards
//!   (`g % nshards`); a monotonic [`ShardMap`] assigns each shard an
//!   owner. Every PUT/INC routes via the map — there is no static
//!   `dest = addr % N` anywhere in the elastic path. Heaps are
//!   provisioned at the *full* table size and addressed by global
//!   index, so a message re-routed to a different owner needs no
//!   offset translation and a shard's words are the stride
//!   `shard, shard + nshards, shard + 2·nshards, …`.
//! * **Epoch-boundary commit.** The coordinator (node 0) queues
//!   JOIN/LEAVE/EVICT proposals and commits at most one at a time: cut
//!   an epoch, compute the minimal-move map, broadcast `TOPO`. Traffic
//!   on unaffected shards never stops.
//! * **Stale-routing bounce.** The receive-side [`ApplyGate`] refuses
//!   messages for shards it does not own (stale map at the sender) or
//!   does not *yet* serve (migration still in flight) and bounces them
//!   to their sender with the current map — the packet's sequence
//!   number is consumed and acked either way, so the flow never wedges
//!   and nothing is ever dropped: the sender re-aggregates bounced
//!   messages under the new map. `reshard.stale_routed` (bounced) and
//!   `reshard.redelivered` (re-enqueued) reconcile exactly.
//! * **Pull-based migration.** A shard's new owner re-requests the
//!   shard until the words arrive — idempotent, so a kill -9 mid
//!   -migration heals by re-pulling after recovery. The donor's copy is
//!   frozen the moment it installs the new map (its own gate bounces
//!   every write), so serving repeated requests from the live heap is
//!   exact. For an EVICT the donor is dead; the shard is reconstructed
//!   from the dead node's buddy via [`WardStores::reconstruct_heap`]
//!   (forward-before-ack makes that reconstruction contain every
//!   update any sender ever saw acked).
//! * **Kill-window ordering.** On receipt of shard words:
//!   write words → mark checkpoint-ready → cut an epoch → serve →
//!   ack to coordinator. A kill between any two steps is safe: before
//!   the cut the shard is absent from the buddy checkpoint's `ready`
//!   set and is re-pulled; after it, recovery restores it as served
//!   (and the coordinator's outstanding-move entry is re-acked when
//!   the restarted node sees the snapshot `TOPO`).
//!
//! The elastic traffic model is commutative-only (INC with per-message
//! values) so bounce-redelivery reordering cannot perturb the final
//! histogram; [`expected_table`] is the sequential truth the acceptance
//! suite compares against bit-exactly.
//!
//! Documented limitations (asserted by tests, not hidden): the
//! coordinator is fixed at node 0 and cannot leave or be evicted; an
//! elastic *sender's* restart is unsupported (its pending queue is
//! volatile — chaos targets joiners mid-migration and drained
//! evictees); and a member evicted while data packets to it are still
//! unacked leaves those flows probing forever (the harness drains
//! before killing, so the suite never enters that window).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gravel_apps::gups::{self, GupsInput};
use gravel_core::ha::{Rebalancer, TopologyChange};
use gravel_core::netthread::ApplyGate;
use gravel_core::{FailureDetector, NodeShared};
use gravel_gq::{Command, Message};
use gravel_net::{SendStatus, SocketTransport, Transport};
use gravel_pgas::{Directory, Packet, ShardMap};
use gravel_telemetry::{Counter, Gauge, Histogram};

use crate::forward::Forwarder;
use crate::proto::{
    self, BounceMsg, MigrateMsg, TopoKind, TopoMsg, OP_BOUNCE, OP_JOIN_REQ, OP_LEAVE_REQ,
    OP_MAP_REQ, OP_MIGRATE, OP_MIGRATE_ACK, OP_MIGRATE_REQ, OP_TOPO, OP_WARD_MIGRATE_REQ,
};
use crate::sender::SenderConfig;
use crate::store::WardStores;

/// The fixed coordinator slot (see module docs: single-coordinator
/// assumption, never killed by the chaos suites).
pub const COORDINATOR: u32 = 0;

/// Number of table words in `shard` under an identity-strided layout:
/// the globals `g < table` with `g % nshards == shard`.
pub fn shard_words(table: usize, nshards: usize, shard: u32) -> usize {
    let s = shard as usize;
    if s >= table {
        0
    } else {
        (table - s).div_ceil(nshards)
    }
}

/// One pending inbound shard migration.
struct MoveIn {
    /// Old owner (the pull target), or the dead node whose buddy we
    /// pull the ward reconstruction from when `evict`.
    from: u32,
    evict: bool,
    since: Instant,
}

/// Everything the elastic data plane shares between the gate (network
/// thread), the control loop, the migration pump, and the sender.
pub struct ElasticState {
    pub me: u32,
    /// Fixed process-slot count (`--nodes`); active membership is a
    /// subset, tracked by the map.
    pub capacity: usize,
    pub table: usize,
    /// The live routing directory (elastic inner).
    pub dir: Directory,
    node: Arc<NodeShared>,
    transport: Arc<SocketTransport>,
    /// Shards the gate applies locally (everything else bounces).
    serving: Mutex<HashSet<u32>>,
    /// Shards recorded as ready in the *next* epoch cut. Updated
    /// before the post-migration cut, so a checkpoint's `ready` set
    /// never claims a shard whose words it does not contain.
    ckpt_ready: Mutex<HashSet<u32>>,
    moves_in: Mutex<HashMap<u32, MoveIn>>,
    /// Shards we are the authoritative donor for: `shard → new owner`.
    /// Reset from each `TOPO`'s outstanding-move list.
    moves_out: Mutex<HashMap<u32, u32>>,
    /// Bounced message quads awaiting re-aggregation by the sender.
    bounced: Mutex<VecDeque<[u64; 4]>>,
    topo_seen: AtomicBool,
    /// `--kill-on-migrate K`: SIGKILL while installing the Kth
    /// migrated shard, after its words land but before the epoch cut —
    /// the adversarial mid-migration window.
    kill_on_migrate: Mutex<Option<u64>>,
    stale_routed: Counter,
    redelivered: Counter,
    bounce_dropped: Counter,
    moves_in_ctr: Counter,
    moves_out_ctr: Counter,
    bytes_migrated: Counter,
    map_version: Gauge,
    migration_ns: Histogram,
}

impl ElasticState {
    pub fn new(
        node: Arc<NodeShared>,
        transport: Arc<SocketTransport>,
        capacity: usize,
        table: usize,
        initial: ShardMap,
        kill_on_migrate: Option<u64>,
    ) -> Arc<Self> {
        let me = node.id;
        let name = |s: &str| format!("node{me}.reshard.{s}");
        let registry = node.registry.clone();
        let version = initial.version;
        let st = ElasticState {
            me,
            capacity,
            table,
            dir: Directory::elastic(table, initial),
            transport,
            serving: Mutex::new(HashSet::new()),
            ckpt_ready: Mutex::new(HashSet::new()),
            moves_in: Mutex::new(HashMap::new()),
            moves_out: Mutex::new(HashMap::new()),
            bounced: Mutex::new(VecDeque::new()),
            topo_seen: AtomicBool::new(me == COORDINATOR),
            kill_on_migrate: Mutex::new(kill_on_migrate),
            stale_routed: registry.counter(&name("stale_routed")),
            redelivered: registry.counter(&name("redelivered")),
            bounce_dropped: registry.counter(&name("bounce_dropped")),
            moves_in_ctr: registry.counter(&name("moves_in")),
            moves_out_ctr: registry.counter(&name("moves_out")),
            bytes_migrated: registry.counter(&name("bytes_migrated")),
            map_version: registry.gauge(&name("map_version")),
            migration_ns: registry.histogram(&name("migration_ns")),
            node,
        };
        st.map_version.set(version as i64);
        Arc::new(st)
    }

    /// Mark shards as served *and* checkpoint-ready (startup: a cold
    /// initial member's dealt shards, or a restarted node's recovered
    /// `CkptImage::ready` set).
    pub fn seed_ready(&self, shards: &[u32]) {
        let mut serving = lock(&self.serving);
        let mut ckpt = lock(&self.ckpt_ready);
        for &s in shards {
            serving.insert(s);
            ckpt.insert(s);
        }
    }

    /// The checkpoint provider: shards whose words are guaranteed
    /// present in any heap snapshot taken from now on.
    pub fn ckpt_ready_shards(&self) -> Vec<u32> {
        let mut v: Vec<u32> = lock(&self.ckpt_ready).iter().copied().collect();
        v.sort_unstable();
        v
    }

    pub fn current_map(&self) -> Arc<ShardMap> {
        self.dir.current_map().expect("elastic directory")
    }

    pub fn version(&self) -> u64 {
        self.dir.version()
    }

    pub fn members(&self) -> Vec<u32> {
        self.current_map().members.clone()
    }

    /// Owner per shard under the installed map (report surface: lets a
    /// harness assemble the authoritative table from owners' heaps).
    pub fn shard_owners(&self) -> Vec<u32> {
        let map = self.current_map();
        (0..map.nshards() as u32).map(|s| map.owner_of_shard(s)).collect()
    }

    pub fn is_member(&self) -> bool {
        self.current_map().is_member(self.me)
    }

    /// Whether any topology frame (including a same-version snapshot)
    /// has been observed — gates data-plane startup on restarted
    /// non-coordinator nodes so a stale map never serves traffic.
    pub fn topo_seen(&self) -> bool {
        self.topo_seen.load(Ordering::SeqCst)
    }

    pub fn migrations_pending(&self) -> bool {
        !lock(&self.moves_in).is_empty()
    }

    pub fn stale_routed_count(&self) -> u64 {
        self.stale_routed.get()
    }

    pub fn redelivered_count(&self) -> u64 {
        self.redelivered.get()
    }

    fn install_map(&self, map: &ShardMap) {
        self.topo_seen.store(true, Ordering::SeqCst);
        if self.dir.install(map.clone()) {
            self.map_version.set(map.version as i64);
            // Ownership moved: stop serving (and checkpointing) any
            // shard the new map assigns elsewhere. Without this prune a
            // shard that leaves and later returns would be served from
            // its stale pre-departure words.
            let mine: HashSet<u32> = map.shards_of(self.me).into_iter().collect();
            lock(&self.serving).retain(|s| mine.contains(s));
            lock(&self.ckpt_ready).retain(|s| mine.contains(s));
            lock(&self.moves_in).retain(|s, _| mine.contains(s));
        }
    }

    /// Handle a `TOPO` broadcast (or snapshot): install the map,
    /// register inbound moves for re-request, reset the donor registry.
    pub fn on_topo(&self, t: &TopoMsg) {
        self.install_map(&t.map);
        let map = self.current_map();
        let evict = t.kind == TopoKind::Evict;
        {
            let serving = lock(&self.serving);
            let mut moves_in = lock(&self.moves_in);
            for m in &t.moves {
                if m.to != self.me || map.owner_of_shard(m.shard) != self.me {
                    continue;
                }
                if serving.contains(&m.shard) {
                    // Already installed (a kill landed between our cut
                    // and the ack): the coordinator is still waiting.
                    self.transport.send_control(
                        COORDINATOR,
                        &proto::encode_migrate_ack(map.version, m.shard),
                    );
                } else {
                    moves_in.entry(m.shard).or_insert(MoveIn {
                        from: m.from,
                        evict,
                        since: Instant::now(),
                    });
                }
            }
        }
        {
            let mut out = lock(&self.moves_out);
            out.clear();
            for m in &t.moves {
                if m.from == self.me {
                    out.insert(m.shard, m.to);
                }
            }
        }
        self.request_pending();
    }

    /// (Re-)request every pending inbound shard. Idempotent by design:
    /// the pump calls this until the words arrive.
    pub fn request_pending(&self) {
        let map = self.current_map();
        let reqs: Vec<(u32, Vec<u64>)> = lock(&self.moves_in)
            .iter()
            .map(|(&shard, mi)| {
                if mi.evict {
                    // The donor is dead; its buddy holds the ward.
                    let keeper = (mi.from + 1) % self.capacity as u32;
                    (keeper, proto::encode_ward_migrate_req(map.version, shard, mi.from))
                } else {
                    (mi.from, proto::encode_migrate_req(map.version, shard))
                }
            })
            .collect();
        for (to, words) in reqs {
            self.transport.send_control(to, &words);
        }
    }

    /// Install arriving shard words (the migration receive side; see
    /// module docs for the kill-window ordering).
    pub fn on_migrate(&self, m: &MigrateMsg, forwarder: &Forwarder) {
        let map = self.current_map();
        if map.owner_of_shard(m.shard) != self.me {
            return;
        }
        if lock(&self.serving).contains(&m.shard) {
            // Duplicate delivery (our ack raced a re-request): re-ack.
            self.transport
                .send_control(COORDINATOR, &proto::encode_migrate_ack(map.version, m.shard));
            return;
        }
        if !lock(&self.moves_in).contains_key(&m.shard)
            || m.words.len() != shard_words(self.table, map.nshards(), m.shard)
        {
            return;
        }
        // 1. Words land. No lock needed: the gate bounces every write
        // to a not-yet-served shard, so nothing else touches these
        // addresses.
        let stride = map.nshards() as u64;
        for (k, &w) in m.words.iter().enumerate() {
            self.node.heap.store(m.shard as u64 + k as u64 * stride, w);
        }
        // 2. Checkpoint-ready before the cut that will contain it.
        lock(&self.ckpt_ready).insert(m.shard);
        self.chaos_kill_tick(m.shard);
        // 3. Epoch cut: the buddy's baseline now proves the shard.
        forwarder.rebaseline();
        // 4. Serve.
        let taken = lock(&self.moves_in).remove(&m.shard);
        lock(&self.serving).insert(m.shard);
        if let Some(mi) = taken {
            self.migration_ns.record(mi.since.elapsed().as_nanos() as u64);
        }
        self.moves_in_ctr.inc();
        self.bytes_migrated.add(m.words.len() as u64 * 8);
        // 5. Tell the coordinator.
        self.transport
            .send_control(COORDINATOR, &proto::encode_migrate_ack(map.version, m.shard));
        eprintln!(
            "[gravel-node {}] reshard: installed shard {} ({} words) v{}",
            self.me,
            m.shard,
            m.words.len(),
            map.version
        );
    }

    fn chaos_kill_tick(&self, shard: u32) {
        let mut slot = lock(&self.kill_on_migrate);
        if let Some(k) = slot.as_mut() {
            *k -= 1;
            if *k == 0 {
                eprintln!(
                    "[gravel-node {}] chaos: SIGKILL mid-migration (shard {} written, not yet cut)",
                    self.me, shard
                );
                crate::signal::kill_self_hard();
            }
        }
    }

    /// Serve a shard pull from our (frozen) live heap. Only answered
    /// while the donor registry names the requester — any other copy of
    /// this shard we might hold is potentially stale.
    pub fn serve_migrate_req(&self, version: u64, shard: u32, to: u32) {
        if lock(&self.moves_out).get(&shard) != Some(&to) {
            return;
        }
        let map = self.current_map();
        let stride = map.nshards() as u64;
        let words: Vec<u64> = (0..shard_words(self.table, map.nshards(), shard))
            .map(|k| self.node.heap.load(shard as u64 + k as u64 * stride))
            .collect();
        let n = words.len();
        if self
            .transport
            .send_control(to, &proto::encode_migrate(&MigrateMsg { version, shard, words }))
        {
            self.moves_out_ctr.inc();
            self.bytes_migrated.add(n as u64 * 8);
        }
    }

    /// Serve a shard pull out of a dead ward's reconstruction (we are
    /// the evicted node's buddy).
    pub fn serve_ward_migrate_req(
        &self,
        version: u64,
        shard: u32,
        ward: u32,
        to: u32,
        stores: &WardStores,
    ) {
        let map = self.current_map();
        if map.is_member(ward) || map.owner_of_shard(shard) != to {
            return;
        }
        let Some(heap) = stores.reconstruct_heap(ward) else {
            return;
        };
        if heap.len() != self.table {
            return;
        }
        let stride = map.nshards();
        let words: Vec<u64> = (0..shard_words(self.table, stride, shard))
            .map(|k| heap[shard as usize + k * stride])
            .collect();
        let n = words.len();
        if self
            .transport
            .send_control(to, &proto::encode_migrate(&MigrateMsg { version, shard, words }))
        {
            self.moves_out_ctr.inc();
            self.bytes_migrated.add(n as u64 * 8);
        }
    }

    /// Handle a bounce: adopt the newer map, queue the refused quads
    /// for re-aggregation.
    pub fn on_bounce(&self, b: &BounceMsg) {
        self.install_map(&b.map);
        self.enqueue_bounced(&b.quads);
    }

    fn enqueue_bounced(&self, quads: &[u64]) {
        let mut q = lock(&self.bounced);
        for quad in quads.chunks_exact(4) {
            q.push_back(quad.try_into().expect("chunks_exact(4)"));
        }
        self.redelivered.add((quads.len() / 4) as u64);
    }

    /// Drain the bounce queue (sender side).
    pub fn take_bounced(&self) -> Vec<[u64; 4]> {
        lock(&self.bounced).drain(..).collect()
    }

    pub fn bounced_empty(&self) -> bool {
        lock(&self.bounced).is_empty()
    }
}

/// The receive-side stale-routing gate: every accepted packet's
/// PUT/INC messages are checked against the installed map and the
/// served-shard set; refused messages bounce to the packet's sender
/// with the current map and the packet applies without them.
impl ApplyGate for ElasticState {
    fn filter(&self, pkt: &Packet) -> Option<Packet> {
        let map = self.dir.current_map()?;
        let mut kept: Vec<u64> = Vec::new();
        let mut refused: Vec<u64> = Vec::new();
        {
            let serving = lock(&self.serving);
            for i in 0..pkt.msg_count() {
                let words = pkt.msg_words(i);
                let keep = match Message::decode(words) {
                    Some(m) if matches!(m.command, Command::Put | Command::Inc) => {
                        map.owner_of(m.addr) == self.me && serving.contains(&map.shard_of(m.addr))
                    }
                    // Poison and non-addressed commands go through to
                    // the apply path's quarantine/handler logic.
                    _ => true,
                };
                if keep {
                    kept.extend(words);
                } else {
                    refused.extend(words);
                }
            }
        }
        if refused.is_empty() {
            return None;
        }
        let n = (refused.len() / 4) as u64;
        self.stale_routed.add(n);
        if pkt.src == self.me {
            // Loopback: hand the quads straight to our own sender.
            self.enqueue_bounced(&refused);
        } else {
            let b = BounceMsg { map: (*map).clone(), quads: refused };
            if !self.transport.send_control(pkt.src, &proto::encode_bounce(&b)) {
                // Sender's link is down (it died): the messages are
                // lost to it — surfaced, not silent.
                self.bounce_dropped.add(n);
            }
        }
        let mut repl = Packet::from_words(pkt.src, pkt.dest, &kept);
        repl.lane = pkt.lane;
        repl.seq = pkt.seq;
        Some(repl)
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

// ---------------------------------------------------------------------
// Deterministic elastic traffic
// ---------------------------------------------------------------------

/// This node's elastic update stream: `(global_index, inc_value)`
/// pairs. Two deterministic halves — a GUPS stream (uniform singles)
/// and a PageRank-style contribution stream (weighted values) — both
/// derived from [`gups::node_updates`] so the split across `capacity`
/// slots is a pure function of the seed, independent of membership.
/// Only initial members send; joiners and leavers route and serve.
pub fn elastic_plan(input: &GupsInput, capacity: usize, me: u32) -> Vec<(u64, u64)> {
    let mut plan: Vec<(u64, u64)> = gups::node_updates(input, capacity, me as usize)
        .into_iter()
        .map(|g| (g as u64, 1))
        .collect();
    let contrib = GupsInput { seed: input.seed ^ 0xC0FF_EE00_D15C_0B0E, ..*input };
    plan.extend(
        gups::node_updates(&contrib, capacity, me as usize)
            .into_iter()
            .enumerate()
            .map(|(k, g)| (g as u64, 1 + (k as u64 % 7))),
    );
    plan
}

/// The sequential truth: the table after `senders`' full streams.
pub fn expected_table(input: &GupsInput, capacity: usize, senders: &[u32]) -> Vec<u64> {
    let mut t = vec![0u64; input.table_len];
    for &m in senders {
        for (g, v) in elastic_plan(input, capacity, m) {
            t[g as usize] = t[g as usize].wrapping_add(v);
        }
    }
    t
}

// ---------------------------------------------------------------------
// Elastic sender
// ---------------------------------------------------------------------

struct ElFlow {
    base: u64,
    next: u64,
    /// `(seq, words)` in-flight packets, exact bytes for go-back-N.
    unacked: VecDeque<(u64, Vec<u64>)>,
    rto: Duration,
    timer: Instant,
}

impl ElFlow {
    fn new(rto: Duration) -> Self {
        ElFlow { base: 0, next: 0, unacked: VecDeque::new(), rto, timer: Instant::now() }
    }
}

fn transmit(
    transport: &SocketTransport,
    node: &NodeShared,
    dest: u32,
    seq: u64,
    words: &[u64],
) -> bool {
    let mut pkt = Packet::from_words(node.id, dest, words);
    pkt.lane = 0;
    pkt.seq = seq;
    let frame = pkt.seal_in(
        node.wire_epoch.load(Ordering::Relaxed),
        node.wire_integrity,
        node.pool.as_ref(),
    );
    !matches!(transport.send_data(frame, Duration::from_millis(5)), SendStatus::TimedOut)
}

/// Drive this node's elastic update stream. Unlike the static sender
/// there is no precomputed packetization: each loop routes the pending
/// queue through the *current* map, so a map flip (or a bounce) simply
/// re-aggregates messages toward their new owner. Runs until `stop` —
/// an elastic sender can never declare itself finished (a bounce may
/// arrive any time another node reshards); instead it continuously
/// publishes quiescence through `drained`.
#[allow(clippy::too_many_arguments)]
pub fn run_elastic_sender(
    transport: &SocketTransport,
    node: &NodeShared,
    state: &ElasticState,
    plan: Vec<(u64, u64)>,
    msgs_per_packet: usize,
    cfg: &SenderConfig,
    stop: &AtomicBool,
    deadline: Instant,
    drained: &AtomicBool,
) {
    assert!(msgs_per_packet > 0);
    // (addr, value, fresh): fresh messages count toward `offloaded`
    // exactly once; redelivered ones were already counted.
    let mut pending: VecDeque<(u64, u64, bool)> =
        plan.into_iter().map(|(a, v)| (a, v, true)).collect();
    let mut flows: HashMap<u32, ElFlow> = HashMap::new();
    loop {
        if stop.load(Ordering::Relaxed) || Instant::now() >= deadline || transport.is_closed() {
            return;
        }
        let mut progressed = false;
        // Bounced messages re-enter the queue (never dropped).
        for quad in state.take_bounced() {
            if let Some(m) = Message::decode(quad) {
                pending.push_back((m.addr, m.value, false));
                progressed = true;
            }
        }
        // Cumulative acks advance windows.
        while let Some(frame) = transport.try_recv_ack(node.id, 0) {
            match frame.open(node.wire_integrity) {
                Ok(ack) => {
                    node.net_acks_received.inc();
                    if let Some(f) = flows.get_mut(&ack.src) {
                        if ack.cum_seq + 1 > f.base {
                            f.base = ack.cum_seq + 1;
                            while f.unacked.front().is_some_and(|&(s, _)| s < f.base) {
                                f.unacked.pop_front();
                            }
                            f.rto = cfg.rto_base;
                            f.timer = Instant::now();
                            progressed = true;
                        }
                    }
                }
                Err(_) => node.net_ack_corrupt_dropped.inc(),
            }
        }
        // Route the pending queue through the current map, batching
        // per destination up to msgs_per_packet, respecting windows.
        let map = state.current_map();
        let mut stash: VecDeque<(u64, u64, bool)> = VecDeque::new();
        let mut batches: HashMap<u32, Vec<u64>> = HashMap::new();
        while let Some((addr, value, fresh)) = pending.pop_front() {
            let dest = map.owner_of(addr);
            let flow = flows.entry(dest).or_insert_with(|| ElFlow::new(cfg.rto_base));
            let in_flight = flow.unacked.len()
                + usize::from(batches.get(&dest).is_some_and(|b| !b.is_empty()));
            if in_flight >= cfg.window {
                stash.push_back((addr, value, fresh));
                continue;
            }
            let batch = batches.entry(dest).or_default();
            batch.extend(Message::inc(dest, addr, value).encode());
            if fresh {
                node.note_offloaded(1);
            }
            if batch.len() / gravel_gq::MSG_ROWS >= msgs_per_packet {
                let words = std::mem::take(batch);
                let seq = flow.next;
                flow.next += 1;
                transmit(transport, node, dest, seq, &words);
                flow.unacked.push_back((seq, words));
                flow.timer = Instant::now();
                progressed = true;
            }
        }
        // Flush partial batches — latency over packing at the tail.
        for (dest, words) in batches {
            if words.is_empty() {
                continue;
            }
            let flow = flows.get_mut(&dest).expect("batched flow exists");
            let seq = flow.next;
            flow.next += 1;
            transmit(transport, node, dest, seq, &words);
            flow.unacked.push_back((seq, words));
            flow.timer = Instant::now();
            progressed = true;
        }
        pending = stash;
        // Go-back-N on silent expiry, exact stored bytes.
        for (&dest, f) in flows.iter_mut() {
            if !f.unacked.is_empty() && f.timer.elapsed() >= f.rto {
                for (seq, words) in &f.unacked {
                    transmit(transport, node, dest, *seq, words);
                    node.net_retransmits.inc();
                }
                f.rto = (f.rto * 2).min(cfg.rto_max);
                f.timer = Instant::now();
            }
        }
        let quiescent = pending.is_empty()
            && state.bounced_empty()
            && flows.values().all(|f| f.unacked.is_empty());
        drained.store(quiescent, Ordering::SeqCst);
        if !progressed {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

// ---------------------------------------------------------------------
// Control-plane dispatch, pumps, coordinator
// ---------------------------------------------------------------------

/// Shared wiring the elastic control paths need.
pub struct ElasticCtx {
    pub state: Arc<ElasticState>,
    pub forwarder: Arc<Forwarder>,
    pub stores: Arc<WardStores>,
    pub transport: Arc<SocketTransport>,
    /// `Some` on the coordinator.
    pub rebalancer: Option<Arc<Mutex<Rebalancer>>>,
    pub is_joiner: bool,
}

fn change_kind(c: &TopologyChange) -> TopoKind {
    match c {
        TopologyChange::Join(_) => TopoKind::Join,
        TopologyChange::Leave(_) => TopoKind::Leave,
        TopologyChange::Evict(_) => TopoKind::Evict,
    }
}

/// The coordinator's answer to `MAP_REQ`/`JOIN_REQ`: the current map
/// plus — if a change is mid-migration — its kind and still-outstanding
/// moves, so a restarted participant resumes exactly where the plan
/// stands.
fn snapshot_topo(ctx: &ElasticCtx) -> TopoMsg {
    let map = (*ctx.state.current_map()).clone();
    if let Some(rb) = &ctx.rebalancer {
        let rb = lock(rb);
        if let Some(plan) = rb.migrating() {
            let outstanding: HashSet<u32> = rb.outstanding().iter().copied().collect();
            return TopoMsg {
                kind: change_kind(&plan.change),
                node: plan.change.node(),
                map,
                moves: plan
                    .moves
                    .iter()
                    .filter(|m| outstanding.contains(&m.shard))
                    .copied()
                    .collect(),
            };
        }
    }
    TopoMsg { kind: TopoKind::Snapshot, node: 0, map, moves: Vec::new() }
}

/// Dispatch one control frame's elastic ops. Returns `false` for ops
/// this layer does not own (the caller's static protocol handles them).
pub fn handle_ctrl(ctx: &ElasticCtx, src: u32, words: &[u64]) -> bool {
    let state = &ctx.state;
    match words.first().copied() {
        Some(OP_TOPO) => {
            if let Some(t) = proto::decode_topo(words) {
                state.on_topo(&t);
            }
        }
        Some(OP_MIGRATE) => {
            if let Some(m) = proto::decode_migrate(words) {
                state.on_migrate(&m, &ctx.forwarder);
            }
        }
        Some(OP_MIGRATE_REQ) => {
            if let Some((v, shard)) = proto::decode_migrate_req(words) {
                state.serve_migrate_req(v, shard, src);
            }
        }
        Some(OP_WARD_MIGRATE_REQ) => {
            if let Some((v, shard, ward)) = proto::decode_ward_migrate_req(words) {
                state.serve_ward_migrate_req(v, shard, ward, src, &ctx.stores);
            }
        }
        Some(OP_MIGRATE_ACK) => {
            if let (Some(rb), Some((_, shard))) =
                (&ctx.rebalancer, proto::decode_migrate_ack(words))
            {
                if lock(rb).note_shard_ready(shard) {
                    eprintln!(
                        "[gravel-node {}] reshard: topology change complete (v{})",
                        state.me,
                        state.version()
                    );
                }
            }
        }
        Some(OP_JOIN_REQ) => {
            if let (Some(rb), Some(n)) = (&ctx.rebalancer, proto::decode_join_req(words)) {
                if (n as usize) < state.capacity {
                    lock(rb).propose(TopologyChange::Join(n));
                }
                // Answer with the current topology either way: an
                // already-admitted joiner learns it is a member.
                ctx.transport.send_control(src, &proto::encode_topo(&snapshot_topo(ctx)));
            }
        }
        Some(OP_LEAVE_REQ) => {
            if let (Some(rb), Some(n)) = (&ctx.rebalancer, proto::decode_leave_req(words)) {
                // The coordinator cannot leave (single-coordinator
                // assumption, module docs).
                if n != COORDINATOR {
                    lock(rb).propose(TopologyChange::Leave(n));
                }
            }
        }
        Some(OP_BOUNCE) => {
            if let Some(b) = proto::decode_bounce(words) {
                state.on_bounce(&b);
            }
        }
        Some(OP_MAP_REQ) => {
            if ctx.rebalancer.is_some() {
                ctx.transport.send_control(src, &proto::encode_topo(&snapshot_topo(ctx)));
            }
        }
        _ => return false,
    }
    true
}

/// The membership pump every elastic node runs: keep re-requesting
/// pending migrations, keep a joiner knocking until admitted, turn a
/// SIGUSR1 into a LEAVE proposal, and resync the map after a restart.
pub fn run_elastic_pump(ctx: &ElasticCtx, stop: &AtomicBool, deadline: Instant) {
    let state = &ctx.state;
    let mut last_req = Instant::now() - Duration::from_secs(1);
    let mut last_knock = last_req;
    while !stop.load(Ordering::Relaxed)
        && !ctx.transport.is_closed()
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(25));
        if last_req.elapsed() >= Duration::from_millis(100) {
            last_req = Instant::now();
            state.request_pending();
        }
        if last_knock.elapsed() >= Duration::from_millis(250) {
            last_knock = Instant::now();
            if state.me != COORDINATOR && !state.topo_seen() {
                ctx.transport.send_control(COORDINATOR, &proto::encode_map_req());
            }
            // A joiner knocks until admitted — but never again once a
            // leave was requested, or its own knock would re-admit it
            // right after the LEAVE commits (a join/leave oscillation).
            if ctx.is_joiner
                && state.topo_seen()
                && !state.is_member()
                && !crate::signal::leave_requested()
            {
                ctx.transport
                    .send_control(COORDINATOR, &proto::encode_join_req(state.me));
            }
            if crate::signal::leave_requested() && state.is_member() && state.me != COORDINATOR {
                ctx.transport
                    .send_control(COORDINATOR, &proto::encode_leave_req(state.me));
            }
        }
    }
}

/// The coordinator driver: watch the failure detector for evictions,
/// and commit queued proposals one at a time at epoch boundaries.
pub fn run_coordinator(
    ctx: &ElasticCtx,
    detector: &FailureDetector,
    evict_grace: Duration,
    stop: &AtomicBool,
    deadline: Instant,
) {
    let rb = ctx.rebalancer.as_ref().expect("coordinator has the rebalancer");
    let state = &ctx.state;
    let mut dead_since: HashMap<u32, Instant> = HashMap::new();
    while !stop.load(Ordering::Relaxed)
        && !ctx.transport.is_closed()
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(25));
        // Evict scan: a member continuously dead past the grace window
        // is expelled. Kills-and-restarts un-latch via the membership
        // loop's detector reset, which clears the timer here.
        let dead: HashSet<u32> = detector.dead_peers().into_iter().collect();
        dead_since.retain(|peer, _| dead.contains(peer));
        let map = state.current_map();
        let now = Instant::now();
        for &peer in &dead {
            if peer == COORDINATOR || !map.is_member(peer) {
                continue;
            }
            let since = *dead_since.entry(peer).or_insert(now);
            if now.duration_since(since) < evict_grace {
                continue;
            }
            let mut rbl = lock(rb);
            // Never evict a node participating in the in-flight plan:
            // the plan must complete (or the node recover) first.
            let entangled = rbl.migrating().is_some_and(|p| {
                p.moves.iter().any(|m| m.from == peer || m.to == peer)
            });
            if !entangled && rbl.propose(TopologyChange::Evict(peer)) {
                eprintln!(
                    "[gravel-node {}] reshard: proposing EVICT of node {peer} \
                     (dead past grace)",
                    state.me
                );
            }
        }
        // Epoch-boundary commit: at most one change in flight.
        let plan = {
            let mut rbl = lock(rb);
            if rbl.migrating().is_some() || rbl.is_quiescent() {
                None
            } else {
                // The boundary ritual: cut first, so the change lands
                // between epochs, then flip the map.
                ctx.forwarder.rebaseline();
                rbl.boundary_tick(&state.current_map())
            }
        };
        if let Some(plan) = plan {
            let t = TopoMsg {
                kind: change_kind(&plan.change),
                node: plan.change.node(),
                map: plan.map.clone(),
                moves: plan.moves.clone(),
            };
            let words = proto::encode_topo(&t);
            for peer in 0..state.capacity as u32 {
                if peer != state.me {
                    // Absent slots (a not-yet-started joiner) drop the
                    // frame; they resync via MAP_REQ at startup.
                    ctx.transport.send_control(peer, &words);
                }
            }
            state.on_topo(&t);
            eprintln!(
                "[gravel-node {}] reshard: committed {:?} v{} ({} moves)",
                state.me,
                plan.change,
                plan.map.version,
                plan.moves.len()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_words_counts_the_stride() {
        // table 10, 4 shards: shard 0 owns {0,4,8}, 1 owns {1,5,9},
        // 2 owns {2,6}, 3 owns {3,7}.
        assert_eq!(shard_words(10, 4, 0), 3);
        assert_eq!(shard_words(10, 4, 1), 3);
        assert_eq!(shard_words(10, 4, 2), 2);
        assert_eq!(shard_words(10, 4, 3), 2);
        // Degenerate: more shards than words.
        assert_eq!(shard_words(3, 8, 5), 0);
        let total: usize = (0..64).map(|s| shard_words(513, 64, s)).sum();
        assert_eq!(total, 513);
    }

    #[test]
    fn elastic_plan_is_deterministic_and_membership_independent() {
        let input = GupsInput { updates: 1000, table_len: 64, seed: 9 };
        assert_eq!(elastic_plan(&input, 6, 2), elastic_plan(&input, 6, 2));
        assert_ne!(elastic_plan(&input, 6, 2), elastic_plan(&input, 6, 3));
        // Weighted half really carries weights.
        assert!(elastic_plan(&input, 6, 0).iter().any(|&(_, v)| v > 1));
    }

    #[test]
    fn expected_table_sums_the_sender_streams() {
        let input = GupsInput { updates: 200, table_len: 32, seed: 5 };
        let t = expected_table(&input, 4, &[0, 1, 2, 3]);
        let total: u64 = t.iter().sum();
        let per_node: u64 = (0..4)
            .flat_map(|m| elastic_plan(&input, 4, m))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(total, per_node);
        // A non-sender contributes nothing.
        assert_eq!(expected_table(&input, 4, &[]), vec![0; 32]);
    }
}
