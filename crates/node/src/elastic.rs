//! Elastic membership for `gravel-node` (DESIGN.md §16): live join and
//! leave with epoch-boundary heap resharding, under the same chaos the
//! static cluster already survives.
//!
//! The moving parts, all keyed off one [`gravel_pgas::Directory`]:
//!
//! * **Versioned shard map.** The table is dealt into shards
//!   (`g % nshards`); a monotonic [`ShardMap`] assigns each shard an
//!   owner. Every PUT/INC routes via the map — there is no static
//!   `dest = addr % N` anywhere in the elastic path. Heaps are
//!   provisioned at the *full* table size and addressed by global
//!   index, so a message re-routed to a different owner needs no
//!   offset translation and a shard's words are the stride
//!   `shard, shard + nshards, shard + 2·nshards, …`.
//! * **Epoch-boundary commit.** The coordinator (node 0) queues
//!   JOIN/LEAVE/EVICT proposals and commits at most one at a time: cut
//!   an epoch, compute the minimal-move map, broadcast `TOPO`. Traffic
//!   on unaffected shards never stops.
//! * **Stale-routing bounce.** The receive-side [`ApplyGate`] refuses
//!   messages for shards it does not own (stale map at the sender) or
//!   does not *yet* serve (migration still in flight) and bounces them
//!   to their sender with the current map — the packet's sequence
//!   number is consumed and acked either way, so the flow never wedges
//!   and nothing is ever dropped: the sender re-aggregates bounced
//!   messages under the new map. `reshard.stale_routed` (bounced) and
//!   `reshard.redelivered` (re-enqueued) reconcile exactly.
//! * **Pull-based migration.** A shard's new owner re-requests the
//!   shard until the words arrive — idempotent, so a kill -9 mid
//!   -migration heals by re-pulling after recovery. The donor's copy is
//!   frozen the moment it installs the new map (its own gate bounces
//!   every write), so serving repeated requests from the live heap is
//!   exact. For an EVICT the donor is dead; the shard is reconstructed
//!   from the dead node's buddy via [`WardStores::reconstruct_heap`]
//!   (forward-before-ack makes that reconstruction contain every
//!   update any sender ever saw acked).
//! * **Kill-window ordering.** On receipt of shard words:
//!   write words → mark checkpoint-ready → cut an epoch → serve →
//!   ack to coordinator. A kill between any two steps is safe: before
//!   the cut the shard is absent from the buddy checkpoint's `ready`
//!   set and is re-pulled; after it, recovery restores it as served
//!   (and the coordinator's outstanding-move entry is re-acked when
//!   the restarted node sees the snapshot `TOPO`).
//!
//! The elastic traffic model is commutative-only (INC with per-message
//! values) so bounce-redelivery reordering cannot perturb the final
//! histogram; [`expected_table`] is the sequential truth the acceptance
//! suite compares against bit-exactly.
//!
//! The coordinator role itself is fault tolerant (DESIGN.md §18): a
//! lease with a monotonically increasing **term** names the acting
//! coordinator, every TOPO/MAP frame is term-stamped and fenced at the
//! receiver, the lowest live member takes over when the holder's
//! phi-accrual lease expires *and a majority of the last-committed
//! membership corroborates the death*, and an interrupted shard
//! migration is reconstructed on the successor from the cached last
//! TOPO broadcast. The same quorum gates every EVICT, so a minority
//! partition freezes (stale traffic NACK-bounces, nothing forks) until
//! connectivity heals. The boot holder is the lowest initial member —
//! node 0 by convention, but it can drain-leave like anyone else by
//! handing the lease off first.
//!
//! Documented limitations (asserted by tests, not hidden): an elastic
//! *sender's* restart is unsupported (its pending queue is volatile —
//! chaos targets joiners mid-migration and drained evictees); a member
//! evicted while data packets to it are still unacked leaves those
//! flows probing forever (the harness drains before killing, so the
//! suite never enters that window); and a cluster without a live
//! majority of its last-committed membership deliberately freezes
//! rather than guess.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gravel_apps::gups::{self, GupsInput};
use gravel_core::ha::lease::{successor, LeaseState, VoteLedger};
use gravel_core::ha::{RebalancePlan, Rebalancer, TopologyChange};
use gravel_core::netthread::ApplyGate;
use gravel_core::{FailureDetector, NodeShared, PeerStatus};
use gravel_gq::{Command, Message};
use gravel_net::{SendStatus, SocketTransport, Transport};
use gravel_pgas::{Directory, FencedInstall, Packet, ShardMap};
use gravel_telemetry::{Counter, Gauge, Histogram};

use crate::forward::Forwarder;
use crate::proto::{
    self, BounceMsg, LeaseMsg, MigrateMsg, TopoKind, TopoMsg, OP_BOUNCE, OP_DEATH_VOTE,
    OP_DEATH_VOTE_REQ, OP_JOIN_REQ, OP_LEASE, OP_LEAVE_REQ, OP_MAP_REQ, OP_MIGRATE,
    OP_MIGRATE_ACK, OP_MIGRATE_REQ, OP_TOPO, OP_WARD_MIGRATE_REQ,
};
use crate::sender::SenderConfig;
use crate::store::WardStores;

/// How often the lease holder broadcasts its beat.
const LEASE_BEAT_EVERY: Duration = Duration::from_millis(100);
/// How often latched deaths are (re-)submitted to the vote quorum.
const VOTE_ROUND_EVERY: Duration = Duration::from_millis(150);
/// A node that just became (or booted believing itself) the holder
/// waits this long before committing topology changes, so a live
/// higher-term holder's beats can demote it first. Lease beats and
/// MAP_REQ answers are not delayed — stale ones are fenced by term.
const HOLDER_STABILIZE: Duration = Duration::from_millis(300);
/// Consecutive HA ticks a latched-dead peer's beats must have resumed
/// before the revive sweep clears the latch (partition heal: the TCP
/// stream never dropped, so no reconnect event will do it for us).
const REVIVE_STREAK: u32 = 2;
/// A pending (non-evict) shard pull that has gone unanswered this long
/// escalates: the destination *also* knocks the donor's ward keeper.
/// Covers a donor that died mid-migration (e.g. the old coordinator) —
/// the keeper only answers once its own detector latched the donor
/// dead, so a merely slow donor is never shadow-served.
const WARD_FALLBACK: Duration = Duration::from_millis(1000);

/// Number of table words in `shard` under an identity-strided layout:
/// the globals `g < table` with `g % nshards == shard`.
pub fn shard_words(table: usize, nshards: usize, shard: u32) -> usize {
    let s = shard as usize;
    if s >= table {
        0
    } else {
        (table - s).div_ceil(nshards)
    }
}

/// One pending inbound shard migration.
struct MoveIn {
    /// Old owner (the pull target), or the dead node whose buddy we
    /// pull the ward reconstruction from when `evict`.
    from: u32,
    evict: bool,
    since: Instant,
}

/// Everything the elastic data plane shares between the gate (network
/// thread), the control loop, the migration pump, and the sender.
pub struct ElasticState {
    pub me: u32,
    /// Fixed process-slot count (`--nodes`); active membership is a
    /// subset, tracked by the map.
    pub capacity: usize,
    pub table: usize,
    /// The live routing directory (elastic inner).
    pub dir: Directory,
    node: Arc<NodeShared>,
    transport: Arc<SocketTransport>,
    /// Shards the gate applies locally (everything else bounces).
    serving: Mutex<HashSet<u32>>,
    /// Shards recorded as ready in the *next* epoch cut. Updated
    /// before the post-migration cut, so a checkpoint's `ready` set
    /// never claims a shard whose words it does not contain.
    ckpt_ready: Mutex<HashSet<u32>>,
    moves_in: Mutex<HashMap<u32, MoveIn>>,
    /// Shards we are the authoritative donor for: `shard → new owner`.
    /// Reset from each `TOPO`'s outstanding-move list.
    moves_out: Mutex<HashMap<u32, u32>>,
    /// Bounced message quads awaiting re-aggregation by the sender.
    bounced: Mutex<VecDeque<[u64; 4]>>,
    topo_seen: AtomicBool,
    /// `--kill-on-migrate K`: SIGKILL while installing the Kth
    /// migrated shard, after its words land but before the epoch cut —
    /// the adversarial mid-migration window.
    kill_on_migrate: Mutex<Option<u64>>,
    /// Coordinator lease: highest accepted (term, holder).
    lease: LeaseState,
    /// Death-corroboration ballots observed by this node.
    pub votes: VoteLedger,
    /// Last accepted lease beat (the lease renewal clock).
    lease_beat: Mutex<Instant>,
    /// Last TOPO frame accepted with moves attached — the takeover
    /// coordinator's seed for an interrupted migration.
    last_topo: Mutex<Option<TopoMsg>>,
    stale_routed: Counter,
    redelivered: Counter,
    bounce_dropped: Counter,
    moves_in_ctr: Counter,
    moves_out_ctr: Counter,
    bytes_migrated: Counter,
    topo_fenced: Counter,
    takeovers: Counter,
    evictions_vetoed: Counter,
    map_version: Gauge,
    ha_term: Gauge,
    migration_ns: Histogram,
}

impl ElasticState {
    pub fn new(
        node: Arc<NodeShared>,
        transport: Arc<SocketTransport>,
        capacity: usize,
        table: usize,
        initial: ShardMap,
        kill_on_migrate: Option<u64>,
    ) -> Arc<Self> {
        let me = node.id;
        let name = |s: &str| format!("node{me}.reshard.{s}");
        let registry = node.registry.clone();
        let version = initial.version;
        // Every node boots agreeing: the lowest initial member holds
        // term 1. No handshake needed before fencing works.
        let boot_holder =
            initial.members.iter().copied().min().expect("initial map has members");
        let st = ElasticState {
            me,
            capacity,
            table,
            dir: Directory::elastic(table, initial),
            transport,
            serving: Mutex::new(HashSet::new()),
            ckpt_ready: Mutex::new(HashSet::new()),
            moves_in: Mutex::new(HashMap::new()),
            moves_out: Mutex::new(HashMap::new()),
            bounced: Mutex::new(VecDeque::new()),
            topo_seen: AtomicBool::new(me == boot_holder),
            kill_on_migrate: Mutex::new(kill_on_migrate),
            lease: LeaseState::new(me, boot_holder),
            votes: VoteLedger::new(),
            lease_beat: Mutex::new(Instant::now()),
            last_topo: Mutex::new(None),
            stale_routed: registry.counter(&name("stale_routed")),
            redelivered: registry.counter(&name("redelivered")),
            bounce_dropped: registry.counter(&name("bounce_dropped")),
            moves_in_ctr: registry.counter(&name("moves_in")),
            moves_out_ctr: registry.counter(&name("moves_out")),
            bytes_migrated: registry.counter(&name("bytes_migrated")),
            topo_fenced: registry.counter(&name("topo_fenced")),
            takeovers: registry.vital_counter("ha.takeovers"),
            evictions_vetoed: registry.vital_counter("ha.evictions_vetoed"),
            map_version: registry.gauge(&name("map_version")),
            ha_term: registry.gauge(&format!("node{me}.ha.term")),
            migration_ns: registry.histogram(&name("migration_ns")),
            node,
        };
        st.map_version.set(version as i64);
        st.ha_term.set(st.lease.term() as i64);
        Arc::new(st)
    }

    /// Mark shards as served *and* checkpoint-ready (startup: a cold
    /// initial member's dealt shards, or a restarted node's recovered
    /// `CkptImage::ready` set).
    pub fn seed_ready(&self, shards: &[u32]) {
        let mut serving = lock(&self.serving);
        let mut ckpt = lock(&self.ckpt_ready);
        for &s in shards {
            serving.insert(s);
            ckpt.insert(s);
        }
    }

    /// The checkpoint provider: shards whose words are guaranteed
    /// present in any heap snapshot taken from now on.
    pub fn ckpt_ready_shards(&self) -> Vec<u32> {
        let mut v: Vec<u32> = lock(&self.ckpt_ready).iter().copied().collect();
        v.sort_unstable();
        v
    }

    pub fn current_map(&self) -> Arc<ShardMap> {
        self.dir.current_map().expect("elastic directory")
    }

    pub fn version(&self) -> u64 {
        self.dir.version()
    }

    pub fn members(&self) -> Vec<u32> {
        self.current_map().members.clone()
    }

    /// Owner per shard under the installed map (report surface: lets a
    /// harness assemble the authoritative table from owners' heaps).
    pub fn shard_owners(&self) -> Vec<u32> {
        let map = self.current_map();
        (0..map.nshards() as u32).map(|s| map.owner_of_shard(s)).collect()
    }

    pub fn is_member(&self) -> bool {
        self.current_map().is_member(self.me)
    }

    /// Whether any topology frame (including a same-version snapshot)
    /// has been observed — gates data-plane startup on restarted
    /// non-coordinator nodes so a stale map never serves traffic.
    pub fn topo_seen(&self) -> bool {
        self.topo_seen.load(Ordering::SeqCst)
    }

    pub fn migrations_pending(&self) -> bool {
        !lock(&self.moves_in).is_empty()
    }

    pub fn stale_routed_count(&self) -> u64 {
        self.stale_routed.get()
    }

    pub fn redelivered_count(&self) -> u64 {
        self.redelivered.get()
    }

    /// The highest coordinator term this node has accepted.
    pub fn ha_term(&self) -> u64 {
        self.lease.term()
    }

    /// Who this node believes holds the coordinator lease.
    pub fn ha_holder(&self) -> u32 {
        self.lease.holder()
    }

    /// Whether this node currently holds the lease.
    pub fn is_lease_holder(&self) -> bool {
        self.lease.is_holder()
    }

    pub fn takeovers_count(&self) -> u64 {
        self.takeovers.get()
    }

    pub fn evictions_vetoed_count(&self) -> u64 {
        self.evictions_vetoed.get()
    }

    /// Fenced map install (the only install path for TOPO frames).
    /// `Stale` means the whole frame must be ignored.
    fn install_map(&self, map: &ShardMap, term: u64) -> FencedInstall {
        let outcome = self.dir.install_fenced(map.clone(), term);
        if outcome == FencedInstall::Stale {
            self.topo_fenced.inc();
            return outcome;
        }
        self.topo_seen.store(true, Ordering::SeqCst);
        if outcome == FencedInstall::Installed {
            self.map_version.set(map.version as i64);
            // Ownership moved: stop serving (and checkpointing) any
            // shard the new map assigns elsewhere. Without this prune a
            // shard that leaves and later returns would be served from
            // its stale pre-departure words.
            let mine: HashSet<u32> = map.shards_of(self.me).into_iter().collect();
            lock(&self.serving).retain(|s| mine.contains(s));
            lock(&self.ckpt_ready).retain(|s| mine.contains(s));
            lock(&self.moves_in).retain(|s, _| mine.contains(s));
        }
        outcome
    }

    /// Handle a `TOPO` broadcast (or snapshot) issued by `from`:
    /// fence by term, install the map, register inbound moves for
    /// re-request, reset the donor registry. Migration acks go to the
    /// frame's sender — under a takeover that is the *new* holder, not
    /// whatever fixed slot first committed the plan.
    pub fn on_topo(&self, t: &TopoMsg, from: u32) {
        if self.install_map(&t.map, t.term) == FencedInstall::Stale {
            return;
        }
        // The frame is current, so its issuer's lease claim is too.
        self.lease.observe(t.term, from);
        self.ha_term.set(self.lease.term() as i64);
        if !t.moves.is_empty() {
            *lock(&self.last_topo) = Some(t.clone());
        }
        let map = self.current_map();
        let evict = t.kind == TopoKind::Evict;
        {
            let serving = lock(&self.serving);
            let mut moves_in = lock(&self.moves_in);
            for m in &t.moves {
                if m.to != self.me || map.owner_of_shard(m.shard) != self.me {
                    continue;
                }
                if serving.contains(&m.shard) {
                    // Already installed (a kill landed between our cut
                    // and the ack, or a takeover re-broadcast): the
                    // sender is still waiting for this ack.
                    self.transport.send_control(
                        from,
                        &proto::encode_migrate_ack(map.version, m.shard),
                    );
                } else {
                    moves_in.entry(m.shard).or_insert(MoveIn {
                        from: m.from,
                        evict,
                        since: Instant::now(),
                    });
                }
            }
        }
        {
            let mut out = lock(&self.moves_out);
            out.clear();
            for m in &t.moves {
                if m.from == self.me {
                    out.insert(m.shard, m.to);
                }
            }
        }
        self.request_pending();
    }

    /// Handle a lease beat from `from`. A fenced (stale-term) beat is
    /// ignored; an accepted one renews the lease clock — and if the
    /// holder's map is ahead of ours, returns `true` so the pump knocks
    /// with `MAP_REQ` (the same resync path a restarted node uses).
    pub fn on_lease(&self, l: &LeaseMsg, from: u32) -> bool {
        // A beat claims the lease for `l.holder`; `from` relays it
        // (they are the same node in practice — holders beat for
        // themselves — but trust the frame body, it is what's fenced).
        let _ = from;
        if !self.lease.observe(l.term, l.holder) {
            return false;
        }
        self.ha_term.set(self.lease.term() as i64);
        *lock(&self.lease_beat) = Instant::now();
        l.map_version > self.version()
    }

    /// (Re-)request every pending inbound shard. Idempotent by design:
    /// the pump calls this until the words arrive. A non-evict pull
    /// stalled past [`WARD_FALLBACK`] additionally knocks the donor's
    /// ward keeper — the donor may have died mid-migration, and the
    /// keeper's reconstruction is then the only surviving copy.
    pub fn request_pending(&self) {
        let map = self.current_map();
        let mut reqs: Vec<(u32, Vec<u64>)> = Vec::new();
        for (&shard, mi) in lock(&self.moves_in).iter() {
            let keeper = (mi.from + 1) % self.capacity as u32;
            if mi.evict {
                // The donor is dead; its buddy holds the ward.
                reqs.push((keeper, proto::encode_ward_migrate_req(map.version, shard, mi.from)));
            } else {
                reqs.push((mi.from, proto::encode_migrate_req(map.version, shard)));
                if mi.since.elapsed() >= WARD_FALLBACK {
                    reqs.push((
                        keeper,
                        proto::encode_ward_migrate_req(map.version, shard, mi.from),
                    ));
                }
            }
        }
        for (to, words) in reqs {
            self.transport.send_control(to, &words);
        }
    }

    /// Install arriving shard words (the migration receive side; see
    /// module docs for the kill-window ordering).
    pub fn on_migrate(&self, m: &MigrateMsg, forwarder: &Forwarder) {
        let map = self.current_map();
        if map.owner_of_shard(m.shard) != self.me {
            return;
        }
        if lock(&self.serving).contains(&m.shard) {
            // Duplicate delivery (our ack raced a re-request): re-ack.
            self.transport
                .send_control(self.lease.holder(), &proto::encode_migrate_ack(map.version, m.shard));
            return;
        }
        if !lock(&self.moves_in).contains_key(&m.shard)
            || m.words.len() != shard_words(self.table, map.nshards(), m.shard)
        {
            return;
        }
        // 1. Words land. No lock needed: the gate bounces every write
        // to a not-yet-served shard, so nothing else touches these
        // addresses.
        let stride = map.nshards() as u64;
        for (k, &w) in m.words.iter().enumerate() {
            self.node.heap.store(m.shard as u64 + k as u64 * stride, w);
        }
        // 2. Checkpoint-ready before the cut that will contain it.
        lock(&self.ckpt_ready).insert(m.shard);
        self.chaos_kill_tick(m.shard);
        // 3. Epoch cut: the buddy's baseline now proves the shard.
        forwarder.rebaseline();
        // 4. Serve.
        let taken = lock(&self.moves_in).remove(&m.shard);
        lock(&self.serving).insert(m.shard);
        if let Some(mi) = taken {
            self.migration_ns.record(mi.since.elapsed().as_nanos() as u64);
        }
        self.moves_in_ctr.inc();
        self.bytes_migrated.add(m.words.len() as u64 * 8);
        // 5. Tell whoever holds the lease (the migration's coordinator).
        self.transport
            .send_control(self.lease.holder(), &proto::encode_migrate_ack(map.version, m.shard));
        eprintln!(
            "[gravel-node {}] reshard: installed shard {} ({} words) v{}",
            self.me,
            m.shard,
            m.words.len(),
            map.version
        );
    }

    fn chaos_kill_tick(&self, shard: u32) {
        let mut slot = lock(&self.kill_on_migrate);
        if let Some(k) = slot.as_mut() {
            *k -= 1;
            if *k == 0 {
                eprintln!(
                    "[gravel-node {}] chaos: SIGKILL mid-migration (shard {} written, not yet cut)",
                    self.me, shard
                );
                crate::signal::kill_self_hard();
            }
        }
    }

    /// Serve a shard pull from our (frozen) live heap. Only answered
    /// while the donor registry names the requester — any other copy of
    /// this shard we might hold is potentially stale.
    pub fn serve_migrate_req(&self, version: u64, shard: u32, to: u32) {
        if lock(&self.moves_out).get(&shard) != Some(&to) {
            return;
        }
        let map = self.current_map();
        let stride = map.nshards() as u64;
        let words: Vec<u64> = (0..shard_words(self.table, map.nshards(), shard))
            .map(|k| self.node.heap.load(shard as u64 + k as u64 * stride))
            .collect();
        let n = words.len();
        if self
            .transport
            .send_control(to, &proto::encode_migrate(&MigrateMsg { version, shard, words }))
        {
            self.moves_out_ctr.inc();
            self.bytes_migrated.add(n as u64 * 8);
        }
    }

    /// Serve a shard pull out of a dead ward's reconstruction (we are
    /// the dead node's buddy). Answered when the ward was evicted — or
    /// is still a member but *our own* detector has latched it dead
    /// (`ward_dead`): a donor killed mid-migration whose eviction
    /// cannot commit until this very pull completes the plan.
    pub fn serve_ward_migrate_req(
        &self,
        version: u64,
        shard: u32,
        ward: u32,
        to: u32,
        stores: &WardStores,
        ward_dead: bool,
    ) {
        let map = self.current_map();
        if (map.is_member(ward) && !ward_dead) || map.owner_of_shard(shard) != to {
            return;
        }
        let Some(heap) = stores.reconstruct_heap(ward) else {
            return;
        };
        if heap.len() != self.table {
            return;
        }
        let stride = map.nshards();
        let words: Vec<u64> = (0..shard_words(self.table, stride, shard))
            .map(|k| heap[shard as usize + k * stride])
            .collect();
        let n = words.len();
        if self
            .transport
            .send_control(to, &proto::encode_migrate(&MigrateMsg { version, shard, words }))
        {
            self.moves_out_ctr.inc();
            self.bytes_migrated.add(n as u64 * 8);
        }
    }

    /// Handle a bounce: adopt the newer map, queue the refused quads
    /// for re-aggregation.
    pub fn on_bounce(&self, b: &BounceMsg) {
        // Bounce maps carry no term of their own — they echo a map that
        // was originally installed under a fenced TOPO, so version
        // monotonicity suffices. Install at the current floor.
        self.install_map(&b.map, self.dir.term());
        self.enqueue_bounced(&b.quads);
    }

    fn enqueue_bounced(&self, quads: &[u64]) {
        let mut q = lock(&self.bounced);
        for quad in quads.chunks_exact(4) {
            q.push_back(quad.try_into().expect("chunks_exact(4)"));
        }
        self.redelivered.add((quads.len() / 4) as u64);
    }

    /// Drain the bounce queue (sender side).
    pub fn take_bounced(&self) -> Vec<[u64; 4]> {
        lock(&self.bounced).drain(..).collect()
    }

    pub fn bounced_empty(&self) -> bool {
        lock(&self.bounced).is_empty()
    }
}

/// The receive-side stale-routing gate: every accepted packet's
/// PUT/INC messages are checked against the installed map and the
/// served-shard set; refused messages bounce to the packet's sender
/// with the current map and the packet applies without them.
impl ApplyGate for ElasticState {
    fn filter(&self, pkt: &Packet) -> Option<Packet> {
        let map = self.dir.current_map()?;
        let mut kept: Vec<u64> = Vec::new();
        let mut refused: Vec<u64> = Vec::new();
        {
            let serving = lock(&self.serving);
            for i in 0..pkt.msg_count() {
                let words = pkt.msg_words(i);
                let keep = match Message::decode(words) {
                    Some(m) if matches!(m.command, Command::Put | Command::Inc) => {
                        map.owner_of(m.addr) == self.me && serving.contains(&map.shard_of(m.addr))
                    }
                    // Poison and non-addressed commands go through to
                    // the apply path's quarantine/handler logic.
                    _ => true,
                };
                if keep {
                    kept.extend(words);
                } else {
                    refused.extend(words);
                }
            }
        }
        if refused.is_empty() {
            return None;
        }
        let n = (refused.len() / 4) as u64;
        self.stale_routed.add(n);
        if pkt.src == self.me {
            // Loopback: hand the quads straight to our own sender.
            self.enqueue_bounced(&refused);
        } else {
            let b = BounceMsg { map: (*map).clone(), quads: refused };
            if !self.transport.send_control(pkt.src, &proto::encode_bounce(&b)) {
                // Sender's link is down (it died): the messages are
                // lost to it — surfaced, not silent.
                self.bounce_dropped.add(n);
            }
        }
        let mut repl = Packet::from_words(pkt.src, pkt.dest, &kept);
        repl.lane = pkt.lane;
        repl.seq = pkt.seq;
        Some(repl)
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

// ---------------------------------------------------------------------
// Deterministic elastic traffic
// ---------------------------------------------------------------------

/// This node's elastic update stream: `(global_index, inc_value)`
/// pairs. Two deterministic halves — a GUPS stream (uniform singles)
/// and a PageRank-style contribution stream (weighted values) — both
/// derived from [`gups::node_updates`] so the split across `capacity`
/// slots is a pure function of the seed, independent of membership.
/// Only initial members send; joiners and leavers route and serve.
pub fn elastic_plan(input: &GupsInput, capacity: usize, me: u32) -> Vec<(u64, u64)> {
    let mut plan: Vec<(u64, u64)> = gups::node_updates(input, capacity, me as usize)
        .into_iter()
        .map(|g| (g as u64, 1))
        .collect();
    let contrib = GupsInput { seed: input.seed ^ 0xC0FF_EE00_D15C_0B0E, ..*input };
    plan.extend(
        gups::node_updates(&contrib, capacity, me as usize)
            .into_iter()
            .enumerate()
            .map(|(k, g)| (g as u64, 1 + (k as u64 % 7))),
    );
    plan
}

/// The sequential truth: the table after `senders`' full streams.
pub fn expected_table(input: &GupsInput, capacity: usize, senders: &[u32]) -> Vec<u64> {
    let mut t = vec![0u64; input.table_len];
    for &m in senders {
        for (g, v) in elastic_plan(input, capacity, m) {
            t[g as usize] = t[g as usize].wrapping_add(v);
        }
    }
    t
}

// ---------------------------------------------------------------------
// Elastic sender
// ---------------------------------------------------------------------

struct ElFlow {
    base: u64,
    next: u64,
    /// `(seq, words)` in-flight packets, exact bytes for go-back-N.
    unacked: VecDeque<(u64, Vec<u64>)>,
    rto: Duration,
    timer: Instant,
}

impl ElFlow {
    fn new(rto: Duration) -> Self {
        ElFlow { base: 0, next: 0, unacked: VecDeque::new(), rto, timer: Instant::now() }
    }
}

fn transmit(
    transport: &SocketTransport,
    node: &NodeShared,
    dest: u32,
    seq: u64,
    words: &[u64],
) -> bool {
    let mut pkt = Packet::from_words(node.id, dest, words);
    pkt.lane = 0;
    pkt.seq = seq;
    let frame = pkt.seal_in(
        node.wire_epoch.load(Ordering::Relaxed),
        node.wire_integrity,
        node.pool.as_ref(),
    );
    !matches!(transport.send_data(frame, Duration::from_millis(5)), SendStatus::TimedOut)
}

/// Drive this node's elastic update stream. Unlike the static sender
/// there is no precomputed packetization: each loop routes the pending
/// queue through the *current* map, so a map flip (or a bounce) simply
/// re-aggregates messages toward their new owner. Runs until `stop` —
/// an elastic sender can never declare itself finished (a bounce may
/// arrive any time another node reshards); instead it continuously
/// publishes quiescence through `drained`.
#[allow(clippy::too_many_arguments)]
pub fn run_elastic_sender(
    transport: &SocketTransport,
    node: &NodeShared,
    state: &ElasticState,
    plan: Vec<(u64, u64)>,
    msgs_per_packet: usize,
    cfg: &SenderConfig,
    stop: &AtomicBool,
    deadline: Instant,
    drained: &AtomicBool,
) {
    assert!(msgs_per_packet > 0);
    // (addr, value, fresh): fresh messages count toward `offloaded`
    // exactly once; redelivered ones were already counted.
    let mut pending: VecDeque<(u64, u64, bool)> =
        plan.into_iter().map(|(a, v)| (a, v, true)).collect();
    let mut flows: HashMap<u32, ElFlow> = HashMap::new();
    loop {
        if stop.load(Ordering::Relaxed) || Instant::now() >= deadline || transport.is_closed() {
            return;
        }
        let mut progressed = false;
        // Bounced messages re-enter the queue (never dropped).
        for quad in state.take_bounced() {
            if let Some(m) = Message::decode(quad) {
                pending.push_back((m.addr, m.value, false));
                progressed = true;
            }
        }
        // Cumulative acks advance windows.
        while let Some(frame) = transport.try_recv_ack(node.id, 0) {
            match frame.open(node.wire_integrity) {
                Ok(ack) => {
                    node.net_acks_received.inc();
                    if let Some(f) = flows.get_mut(&ack.src) {
                        if ack.cum_seq + 1 > f.base {
                            f.base = ack.cum_seq + 1;
                            while f.unacked.front().is_some_and(|&(s, _)| s < f.base) {
                                f.unacked.pop_front();
                            }
                            f.rto = cfg.rto_base;
                            f.timer = Instant::now();
                            progressed = true;
                        }
                    }
                }
                Err(_) => node.net_ack_corrupt_dropped.inc(),
            }
        }
        // Route the pending queue through the current map, batching
        // per destination up to msgs_per_packet, respecting windows.
        let map = state.current_map();
        let mut stash: VecDeque<(u64, u64, bool)> = VecDeque::new();
        let mut batches: HashMap<u32, Vec<u64>> = HashMap::new();
        while let Some((addr, value, fresh)) = pending.pop_front() {
            let dest = map.owner_of(addr);
            let flow = flows.entry(dest).or_insert_with(|| ElFlow::new(cfg.rto_base));
            let in_flight = flow.unacked.len()
                + usize::from(batches.get(&dest).is_some_and(|b| !b.is_empty()));
            if in_flight >= cfg.window {
                stash.push_back((addr, value, fresh));
                continue;
            }
            let batch = batches.entry(dest).or_default();
            batch.extend(Message::inc(dest, addr, value).encode());
            if fresh {
                node.note_offloaded(1);
            }
            if batch.len() / gravel_gq::MSG_ROWS >= msgs_per_packet {
                let words = std::mem::take(batch);
                let seq = flow.next;
                flow.next += 1;
                transmit(transport, node, dest, seq, &words);
                flow.unacked.push_back((seq, words));
                flow.timer = Instant::now();
                progressed = true;
            }
        }
        // Flush partial batches — latency over packing at the tail.
        for (dest, words) in batches {
            if words.is_empty() {
                continue;
            }
            let flow = flows.get_mut(&dest).expect("batched flow exists");
            let seq = flow.next;
            flow.next += 1;
            transmit(transport, node, dest, seq, &words);
            flow.unacked.push_back((seq, words));
            flow.timer = Instant::now();
            progressed = true;
        }
        pending = stash;
        // Go-back-N on silent expiry, exact stored bytes.
        for (&dest, f) in flows.iter_mut() {
            if !f.unacked.is_empty() && f.timer.elapsed() >= f.rto {
                for (seq, words) in &f.unacked {
                    transmit(transport, node, dest, *seq, words);
                    node.net_retransmits.inc();
                }
                f.rto = (f.rto * 2).min(cfg.rto_max);
                f.timer = Instant::now();
            }
        }
        let quiescent = pending.is_empty()
            && state.bounced_empty()
            && flows.values().all(|f| f.unacked.is_empty());
        drained.store(quiescent, Ordering::SeqCst);
        if !progressed {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

// ---------------------------------------------------------------------
// Control-plane dispatch, pumps, coordinator
// ---------------------------------------------------------------------

/// Shared wiring the elastic control paths need.
pub struct ElasticCtx {
    pub state: Arc<ElasticState>,
    pub forwarder: Arc<Forwarder>,
    pub stores: Arc<WardStores>,
    pub transport: Arc<SocketTransport>,
    /// Every node carries a rebalancer now: any node may become the
    /// lease holder, and a takeover seeds this from the cached TOPO.
    pub rebalancer: Arc<Mutex<Rebalancer>>,
    pub detector: Arc<FailureDetector>,
    pub is_joiner: bool,
}

fn change_kind(c: &TopologyChange) -> TopoKind {
    match c {
        TopologyChange::Join(_) => TopoKind::Join,
        TopologyChange::Leave(_) => TopoKind::Leave,
        TopologyChange::Evict(_) => TopoKind::Evict,
    }
}

/// The lease holder's answer to `MAP_REQ`/`JOIN_REQ`: the current map
/// plus — if a change is mid-migration — its kind and still-outstanding
/// moves, so a restarted participant resumes exactly where the plan
/// stands. Stamped with the holder's term so fencing applies.
fn snapshot_topo(ctx: &ElasticCtx) -> TopoMsg {
    let map = (*ctx.state.current_map()).clone();
    let term = ctx.state.ha_term();
    {
        let rb = lock(&ctx.rebalancer);
        if let Some(plan) = rb.migrating() {
            let outstanding: HashSet<u32> = rb.outstanding().iter().copied().collect();
            return TopoMsg {
                term,
                kind: change_kind(&plan.change),
                node: plan.change.node(),
                map,
                moves: plan
                    .moves
                    .iter()
                    .filter(|m| outstanding.contains(&m.shard))
                    .copied()
                    .collect(),
            };
        }
    }
    TopoMsg { term, kind: TopoKind::Snapshot, node: 0, map, moves: Vec::new() }
}

/// Dispatch one control frame's elastic ops. Returns `false` for ops
/// this layer does not own (the caller's static protocol handles them).
pub fn handle_ctrl(ctx: &ElasticCtx, src: u32, words: &[u64]) -> bool {
    let state = &ctx.state;
    match words.first().copied() {
        Some(OP_TOPO) => {
            if let Some(t) = proto::decode_topo(words) {
                state.on_topo(&t, src);
            }
        }
        Some(OP_MIGRATE) => {
            if let Some(m) = proto::decode_migrate(words) {
                state.on_migrate(&m, &ctx.forwarder);
            }
        }
        Some(OP_MIGRATE_REQ) => {
            if let Some((v, shard)) = proto::decode_migrate_req(words) {
                state.serve_migrate_req(v, shard, src);
            }
        }
        Some(OP_WARD_MIGRATE_REQ) => {
            if let Some((v, shard, ward)) = proto::decode_ward_migrate_req(words) {
                let ward_dead =
                    ctx.detector.status(ward, Instant::now()) == PeerStatus::Dead;
                state.serve_ward_migrate_req(v, shard, ward, src, &ctx.stores, ward_dead);
            }
        }
        Some(OP_MIGRATE_ACK) => {
            // Always fed: a takeover holder's seeded rebalancer needs
            // these, and a non-holder's idle rebalancer ignores them.
            if let Some((_, shard)) = proto::decode_migrate_ack(words) {
                if lock(&ctx.rebalancer).note_shard_ready(shard) {
                    eprintln!(
                        "[gravel-node {}] reshard: topology change complete (v{})",
                        state.me,
                        state.version()
                    );
                }
            }
        }
        Some(OP_JOIN_REQ) => {
            if state.is_lease_holder() {
                if let Some(n) = proto::decode_join_req(words) {
                    if (n as usize) < state.capacity {
                        lock(&ctx.rebalancer).propose(TopologyChange::Join(n));
                    }
                    // Answer with the current topology either way: an
                    // already-admitted joiner learns it is a member.
                    ctx.transport.send_control(src, &proto::encode_topo(&snapshot_topo(ctx)));
                }
            }
        }
        Some(OP_LEAVE_REQ) => {
            if state.is_lease_holder() {
                if let Some(n) = proto::decode_leave_req(words) {
                    // The holder cannot coordinate its own removal; it
                    // hands the lease off first (run_ha) and the new
                    // holder processes the re-sent request.
                    if n != state.me {
                        lock(&ctx.rebalancer).propose(TopologyChange::Leave(n));
                    }
                }
            }
        }
        Some(OP_BOUNCE) => {
            if let Some(b) = proto::decode_bounce(words) {
                state.on_bounce(&b);
            }
        }
        Some(OP_MAP_REQ) => {
            // Only the current holder answers: a deposed coordinator
            // replying with its stale map would be fenced anyway, but
            // staying silent keeps the requester knocking at the right
            // door once a lease beat reaches it.
            if state.is_lease_holder() {
                ctx.transport.send_control(src, &proto::encode_topo(&snapshot_topo(ctx)));
            }
        }
        Some(OP_LEASE) => {
            if let Some(l) = proto::decode_lease(words) {
                if state.on_lease(&l, src) {
                    // The holder's map is ahead of ours: resync.
                    ctx.transport.send_control(state.ha_holder(), &proto::encode_map_req());
                }
            }
        }
        Some(OP_DEATH_VOTE_REQ) => {
            if let Some((term, suspect)) = proto::decode_death_vote_req(words) {
                // Corroborate only what our own detector has latched.
                // Votes are advisory (the requester applies quorum), so
                // no term fencing beyond echoing what we were asked.
                let dead = suspect != state.me
                    && ctx.detector.status(suspect, Instant::now()) == PeerStatus::Dead;
                ctx.transport
                    .send_control(src, &proto::encode_death_vote(term, suspect, dead));
            }
        }
        Some(OP_DEATH_VOTE) => {
            if let Some((_, suspect, dead)) = proto::decode_death_vote(words) {
                state.votes.record(suspect, src, dead);
            }
        }
        _ => return false,
    }
    true
}

/// The membership pump every elastic node runs: keep re-requesting
/// pending migrations, keep a joiner knocking until admitted, turn a
/// SIGUSR1 into a LEAVE proposal, and resync the map after a restart.
pub fn run_elastic_pump(ctx: &ElasticCtx, stop: &AtomicBool, deadline: Instant) {
    let state = &ctx.state;
    let mut last_req = Instant::now() - Duration::from_secs(1);
    let mut last_knock = last_req;
    while !stop.load(Ordering::Relaxed)
        && !ctx.transport.is_closed()
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(25));
        if last_req.elapsed() >= Duration::from_millis(100) {
            last_req = Instant::now();
            state.request_pending();
        }
        if last_knock.elapsed() >= Duration::from_millis(250) {
            last_knock = Instant::now();
            let holder = state.ha_holder();
            if !state.is_lease_holder() && !state.topo_seen() {
                ctx.transport.send_control(holder, &proto::encode_map_req());
            }
            // A joiner knocks until admitted — but never again once a
            // leave was requested, or its own knock would re-admit it
            // right after the LEAVE commits (a join/leave oscillation).
            if ctx.is_joiner
                && state.topo_seen()
                && !state.is_member()
                && !crate::signal::leave_requested()
            {
                ctx.transport.send_control(holder, &proto::encode_join_req(state.me));
            }
            // A leaving holder first hands the lease off (run_ha), then
            // this clause fires at the successor.
            if crate::signal::leave_requested() && state.is_member() && !state.is_lease_holder() {
                ctx.transport.send_control(holder, &proto::encode_leave_req(state.me));
            }
        }
    }
}

/// Invert a moves-carrying TOPO's kind back into the change it
/// committed (a takeover re-seeds the rebalancer from this).
fn kind_change(kind: TopoKind, node: u32) -> Option<TopologyChange> {
    match kind {
        TopoKind::Join => Some(TopologyChange::Join(node)),
        TopoKind::Leave => Some(TopologyChange::Leave(node)),
        TopoKind::Evict => Some(TopologyChange::Evict(node)),
        TopoKind::Snapshot => None,
    }
}

fn broadcast(ctx: &ElasticCtx, words: &[u64]) {
    for peer in 0..ctx.state.capacity as u32 {
        if peer != ctx.state.me {
            // Absent slots (a not-yet-started joiner) drop the frame;
            // they resync via MAP_REQ at startup.
            ctx.transport.send_control(peer, words);
        }
    }
}

fn lease_beat_words(state: &ElasticState) -> Vec<u64> {
    proto::encode_lease(&LeaseMsg {
        term: state.ha_term(),
        holder: state.me,
        map_version: state.version(),
    })
}

/// The HA driver **every** elastic node runs: lease beats and the
/// epoch-boundary commit loop while holding the lease, the takeover
/// watchdog while not, and quorum death-voting plus the revive sweep
/// on both sides. Replaces the old fixed-coordinator `run_coordinator`.
pub fn run_ha(
    ctx: &ElasticCtx,
    evict_grace: Duration,
    kill_on_commit: bool,
    stop: &AtomicBool,
    deadline: Instant,
) {
    let state = &ctx.state;
    let detector = &ctx.detector;
    let mut dead_since: HashMap<u32, Instant> = HashMap::new();
    let mut revive_streak: HashMap<u32, u32> = HashMap::new();
    let mut holder_since: Option<Instant> =
        state.is_lease_holder().then(Instant::now);
    let mut last_beat = Instant::now() - LEASE_BEAT_EVERY;
    let mut last_vote_round = Instant::now() - VOTE_ROUND_EVERY;
    let mut handed_off = false;
    // "Beats resumed" = silence shorter than a few detector intervals.
    let revive_thresh = detector.config().interval * 3;
    while !stop.load(Ordering::Relaxed)
        && !ctx.transport.is_closed()
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(25));
        let now = Instant::now();
        let map = state.current_map();
        let members = map.members.clone();
        let i_am_member = map.is_member(state.me);

        // -- Holder-transition tracking. Commits, evictions and
        // handoff wait out HOLDER_STABILIZE after we become holder, so
        // a live higher-term holder's beats can demote a stale
        // restarted claimant before it acts. Beats and MAP_REQ answers
        // are not delayed — they are fenced anyway.
        if state.is_lease_holder() {
            if holder_since.is_none() {
                holder_since = Some(now);
            }
        } else {
            holder_since = None;
            handed_off = false;
        }
        let stable =
            holder_since.is_some_and(|t| now.duration_since(t) >= HOLDER_STABILIZE);

        // -- Revive sweep. A socket partition swallows frames but the
        // TCP stream stays ESTABLISHED, so no reconnect ever resets the
        // latched-dead verdict; when beats resume (small silence) for
        // REVIVE_STREAK consecutive ticks, un-latch. Safe: eviction is
        // quorum-gated, so a premature un-latch only delays it.
        let mut dead: HashSet<u32> = detector.dead_peers().into_iter().collect();
        let mut revived: Vec<u32> = Vec::new();
        for &peer in &dead {
            let recent =
                detector.silence(peer, now).is_some_and(|s| s < revive_thresh);
            let streak = revive_streak.entry(peer).or_insert(0);
            *streak = if recent { *streak + 1 } else { 0 };
            if *streak >= REVIVE_STREAK {
                revived.push(peer);
            }
        }
        for peer in revived {
            eprintln!(
                "[gravel-node {}] ha: node {peer} beats resumed — clearing \
                 latched death (partition healed?)",
                state.me
            );
            detector.reset_peer(peer, now);
            state.votes.clear(peer);
            dead_since.remove(&peer);
            revive_streak.remove(&peer);
            dead.remove(&peer);
        }
        revive_streak.retain(|p, _| dead.contains(p));
        dead_since.retain(|p, _| dead.contains(p));

        // -- Death-vote rounds: tally our own verdict and poll the
        // membership. Replies land in `state.votes` via `handle_ctrl`.
        if i_am_member && last_vote_round.elapsed() >= VOTE_ROUND_EVERY {
            last_vote_round = now;
            for &peer in &dead {
                if !map.is_member(peer) {
                    continue;
                }
                state.votes.record(peer, state.me, true);
                let req = proto::encode_death_vote_req(state.ha_term(), peer);
                for &m in &members {
                    if m != state.me && m != peer && !dead.contains(&m) {
                        ctx.transport.send_control(m, &req);
                    }
                }
                // A denied round (so many live "not dead" replies that
                // a quorum can never form) is a vetoed eviction: our
                // link to the suspect is down, not the suspect.
                if state.votes.denied(peer, &members) && state.votes.note_veto(peer) {
                    state.evictions_vetoed.inc();
                    eprintln!(
                        "[gravel-node {}] ha: eviction of node {peer} VETOED \
                         (majority still hears it — one-way or local fault)",
                        state.me
                    );
                }
            }
        }

        // -- Takeover watchdog (non-holders). We step up only if the
        // quorum-confirmed dead set makes *us* the lowest live member:
        // an unconfirmed lower-ranked candidate keeps us waiting
        // rather than racing it for the lease.
        if !state.is_lease_holder() && i_am_member {
            let holder = state.ha_holder();
            let confirmed_dead: Vec<u32> = dead
                .iter()
                .copied()
                .filter(|&p| state.votes.confirmed(p, &members))
                .collect();
            if confirmed_dead.contains(&holder)
                && successor(&members, &confirmed_dead) == Some(state.me)
            {
                let term = state.lease.assert_takeover();
                state.takeovers.inc();
                state.ha_term.set(term as i64);
                holder_since = Some(now);
                eprintln!(
                    "[gravel-node {}] ha: TAKEOVER — holder {holder} confirmed \
                     dead by quorum, asserting term {term}",
                    state.me
                );
                broadcast(ctx, &lease_beat_words(state));
                // Reconstruct the in-flight migration (if any) from the
                // cached last TOPO: re-broadcast it under the new term
                // and seed the rebalancer. Destinations already serving
                // re-ack to us; the rest re-pull from their donors.
                let cached = lock(&state.last_topo).clone();
                if let Some(t) = cached {
                    if t.map.version == map.version && !t.moves.is_empty() {
                        if let Some(change) = kind_change(t.kind, t.node) {
                            let already: Vec<u32> = {
                                let serving = lock(&state.serving);
                                t.moves
                                    .iter()
                                    .filter(|m| {
                                        m.to == state.me && serving.contains(&m.shard)
                                    })
                                    .map(|m| m.shard)
                                    .collect()
                            };
                            let plan = RebalancePlan {
                                change,
                                map: t.map.clone(),
                                moves: t.moves.clone(),
                            };
                            lock(&ctx.rebalancer).seed_in_flight(plan, &already);
                            let t2 = TopoMsg { term, ..t };
                            broadcast(ctx, &proto::encode_topo(&t2));
                            eprintln!(
                                "[gravel-node {}] ha: re-driving interrupted \
                                 migration v{} under term {term}",
                                state.me, t2.map.version
                            );
                        }
                    }
                }
            }
        }

        if !state.is_lease_holder() {
            continue;
        }

        // -- Holder duty: lease beats, never stabilization-gated.
        if last_beat.elapsed() >= LEASE_BEAT_EVERY {
            last_beat = now;
            broadcast(ctx, &lease_beat_words(state));
        }
        if !stable {
            continue;
        }

        // -- Holder duty: quorum-gated evict scan. A member
        // continuously dead past the grace window is expelled once a
        // majority of the membership corroborates the death. Minority
        // side of a partition can never clear this bar: it freezes.
        for &peer in &dead {
            if peer == state.me || !map.is_member(peer) {
                continue;
            }
            let since = *dead_since.entry(peer).or_insert(now);
            if now.duration_since(since) < evict_grace
                || !state.votes.confirmed(peer, &members)
            {
                continue;
            }
            let mut rbl = lock(&ctx.rebalancer);
            // Never evict a node participating in the in-flight plan:
            // the plan must complete (or the node recover) first.
            let entangled = rbl
                .migrating()
                .is_some_and(|p| p.moves.iter().any(|m| m.from == peer || m.to == peer));
            if !entangled && rbl.propose(TopologyChange::Evict(peer)) {
                eprintln!(
                    "[gravel-node {}] reshard: proposing EVICT of node {peer} \
                     (dead past grace, quorum-confirmed)",
                    state.me
                );
            }
        }

        // -- Holder duty: lease handoff for our own drain-leave. The
        // holder cannot coordinate its own removal, so once quiescent
        // it hands the lease to the successor and re-sends LEAVE_REQ
        // there (the pump's leave clause fires once we are demoted).
        if crate::signal::leave_requested() && !handed_off && members.len() > 1 {
            let quiescent = {
                let rbl = lock(&ctx.rebalancer);
                rbl.migrating().is_none() && rbl.is_quiescent()
            };
            if quiescent {
                if let Some(succ) = successor(&members, &[state.me]) {
                    let term = state.lease.handoff(succ);
                    state.ha_term.set(term as i64);
                    handed_off = true;
                    eprintln!(
                        "[gravel-node {}] ha: handing lease to node {succ} \
                         (term {term}) before leaving",
                        state.me
                    );
                    broadcast(
                        ctx,
                        &proto::encode_lease(&LeaseMsg {
                            term,
                            holder: succ,
                            map_version: state.version(),
                        }),
                    );
                    continue;
                }
            }
        }

        // -- Holder duty: epoch-boundary commit, at most one change in
        // flight.
        let plan = {
            let mut rbl = lock(&ctx.rebalancer);
            if rbl.migrating().is_some() || rbl.is_quiescent() {
                None
            } else {
                // The boundary ritual: cut first, so the change lands
                // between epochs, then flip the map.
                ctx.forwarder.rebaseline();
                rbl.boundary_tick(&state.current_map())
            }
        };
        if let Some(plan) = plan {
            let t = TopoMsg {
                term: state.ha_term(),
                kind: change_kind(&plan.change),
                node: plan.change.node(),
                map: plan.map.clone(),
                moves: plan.moves.clone(),
            };
            broadcast(ctx, &proto::encode_topo(&t));
            if kill_on_commit && !t.moves.is_empty() {
                eprintln!(
                    "[gravel-node {}] chaos: SIGKILL right after committing \
                     {:?} v{} ({} moves outstanding)",
                    state.me,
                    plan.change,
                    t.map.version,
                    t.moves.len()
                );
                crate::signal::kill_self_hard();
            }
            state.on_topo(&t, state.me);
            if let TopologyChange::Evict(n) = plan.change {
                state.votes.clear(n);
                dead_since.remove(&n);
            }
            eprintln!(
                "[gravel-node {}] reshard: committed {:?} v{} ({} moves)",
                state.me,
                plan.change,
                plan.map.version,
                plan.moves.len()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_words_counts_the_stride() {
        // table 10, 4 shards: shard 0 owns {0,4,8}, 1 owns {1,5,9},
        // 2 owns {2,6}, 3 owns {3,7}.
        assert_eq!(shard_words(10, 4, 0), 3);
        assert_eq!(shard_words(10, 4, 1), 3);
        assert_eq!(shard_words(10, 4, 2), 2);
        assert_eq!(shard_words(10, 4, 3), 2);
        // Degenerate: more shards than words.
        assert_eq!(shard_words(3, 8, 5), 0);
        let total: usize = (0..64).map(|s| shard_words(513, 64, s)).sum();
        assert_eq!(total, 513);
    }

    #[test]
    fn elastic_plan_is_deterministic_and_membership_independent() {
        let input = GupsInput { updates: 1000, table_len: 64, seed: 9 };
        assert_eq!(elastic_plan(&input, 6, 2), elastic_plan(&input, 6, 2));
        assert_ne!(elastic_plan(&input, 6, 2), elastic_plan(&input, 6, 3));
        // Weighted half really carries weights.
        assert!(elastic_plan(&input, 6, 0).iter().any(|&(_, v)| v > 1));
    }

    #[test]
    fn expected_table_sums_the_sender_streams() {
        let input = GupsInput { updates: 200, table_len: 32, seed: 5 };
        let t = expected_table(&input, 4, &[0, 1, 2, 3]);
        let total: u64 = t.iter().sum();
        let per_node: u64 = (0..4)
            .flat_map(|m| elastic_plan(&input, 4, m))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(total, per_node);
        // A non-sender contributes nothing.
        assert_eq!(expected_table(&input, 4, &[]), vec![0; 32]);
    }
}
