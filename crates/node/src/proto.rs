//! Control-plane word codec for the multi-process buddy protocol.
//!
//! Every cross-process recovery exchange rides the socket transport's
//! control plane (`FrameKind::Control`, always CRC32C) as a flat `u64`
//! word vector whose first word is an opcode. The codec is pure and
//! total-on-decode: any word vector either decodes to a well-formed op
//! or returns `None` — a malformed control frame from a confused peer
//! is dropped, never panicked on (the decode fuzz tests assert this).
//!
//! Ops:
//!
//! * `FWD`  — one fully applied packet, forwarded by its receiver to
//!   that receiver's buddy *before* the cumulative ack leaves (see
//!   [`gravel_core::netthread::PacketTap`]). The buddy appends it to
//!   its replay log for the forwarding node.
//! * `CKPT` — the forwarding node's epoch cut: its heap image plus its
//!   per-flow receive cursors, taken under the receive-state lock. The
//!   buddy replaces its stored baseline and clears the log. Because
//!   `FWD` and `CKPT` travel the same FIFO stream, the cut is exact:
//!   every forward that precedes the cut is in the log it truncates.
//! * `RECOVER_REQ`  — a (re)starting node asks its buddy for its state.
//! * `RECOVER_RESP` — baseline + log in one frame (empty on cold boot,
//!   so the restart path and the cold-boot path are the same code).
//!
//! Elastic-membership ops (DESIGN.md §16) ride the same plane:
//!
//! * `TOPO` — the coordinator's committed topology change: the new
//!   [`ShardMap`] plus the outstanding shard moves. Also the answer to
//!   `MAP_REQ` and `JOIN_REQ` (kind = snapshot), so "learn the current
//!   topology" and "observe a change" are one code path.
//! * `MIGRATE` / `MIGRATE_REQ` / `WARD_MIGRATE_REQ` / `MIGRATE_ACK` —
//!   shard data pull: the new owner re-requests each pending shard
//!   until the words arrive (idempotent; heals kills mid-migration),
//!   from the old owner's live heap — or, for an evicted owner, from
//!   the dead node's buddy, which reconstructs the shard out of its
//!   ward checkpoint + replay log. The ack goes to the coordinator.
//! * `JOIN_REQ` / `LEAVE_REQ` — membership proposals (a `--join`
//!   process dialing in; a SIGUSR1 drain).
//! * `BOUNCE` — the stale-routing NACK: message quads the receiver
//!   refused (it no longer — or does not yet — own their shard) are
//!   returned to their sender together with the receiver's current
//!   map, to be re-aggregated and re-sent, never dropped.
//!
//! Coordinator-failover ops (DESIGN.md §18) make the coordinator role
//! itself survivable. `TOPO` frames carry the issuing holder's fencing
//! **term** as their second word; receivers reject terms below their
//! observed floor, so a resurrected old coordinator cannot clobber a
//! successor's map:
//!
//! * `LEASE` — the holder's periodic lease beat: its term and current
//!   map version. Followers use the beat to renew the lease, detect a
//!   map-version gap (then knock with `MAP_REQ`), and learn takeovers.
//! * `DEATH_VOTE_REQ` / `DEATH_VOTE` — quorum corroboration of a
//!   phi-accrual death verdict. Nothing is evicted and no takeover
//!   term is asserted until a majority of the last-committed
//!   membership votes the suspect dead, which is what keeps a minority
//!   partition from evicting the other side or forking the map.

use gravel_pgas::{ShardMap, ShardMove};

/// Applied-packet forward (receiver → its buddy).
pub const OP_FWD: u64 = 1;
/// Epoch cut: heap image + receive cursors (receiver → its buddy).
pub const OP_CKPT: u64 = 2;
/// Recovery request (restarting node → its buddy).
pub const OP_RECOVER_REQ: u64 = 3;
/// Recovery response: stored baseline + log (buddy → restarting node).
pub const OP_RECOVER_RESP: u64 = 4;
/// Topology broadcast: new shard map + outstanding moves.
pub const OP_TOPO: u64 = 5;
/// Shard data: every word of one shard (old owner → new owner).
pub const OP_MIGRATE: u64 = 6;
/// Shard migration complete (new owner → coordinator).
pub const OP_MIGRATE_ACK: u64 = 7;
/// Shard data re-request (new owner → old owner).
pub const OP_MIGRATE_REQ: u64 = 8;
/// Join proposal (a `--join` process → coordinator).
pub const OP_JOIN_REQ: u64 = 9;
/// Leave proposal (a SIGUSR1'd member → coordinator).
pub const OP_LEAVE_REQ: u64 = 10;
/// Stale-routing NACK: refused message quads + the refuser's map.
pub const OP_BOUNCE: u64 = 11;
/// Current-topology request (restarting node → coordinator).
pub const OP_MAP_REQ: u64 = 12;
/// Shard data re-request against a dead node's ward (new owner → the
/// dead node's buddy, which reconstructs from checkpoint + log).
pub const OP_WARD_MIGRATE_REQ: u64 = 13;
/// Coordinator lease beat: term + holder + current map version
/// (holder → everyone, each lease interval).
pub const OP_LEASE: u64 = 14;
/// Death-corroboration ballot: "is `suspect` dead by your detector?"
/// (suspecting node → every live peer).
pub const OP_DEATH_VOTE_REQ: u64 = 15;
/// Ballot reply carrying the voter's verdict (peer → requester).
pub const OP_DEATH_VOTE: u64 = 16;

/// One applied packet as forwarded to the buddy: the flow coordinates
/// the receiver applied it under, plus the raw message words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FwdPacket {
    /// Original sender of the packet.
    pub src: u32,
    /// Sender lane.
    pub lane: u32,
    /// Per-flow sequence number.
    pub seq: u64,
    /// Message words (4 per message).
    pub words: Vec<u64>,
}

/// An epoch cut: everything a restarted process needs to resume as if
/// it had applied exactly the packets covered by the cut.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CkptImage {
    /// Monotonic epoch number (first cut = 1).
    pub epoch: u64,
    /// Per-flow next-expected sequence numbers `(src, lane, expected)`.
    pub cursors: Vec<(u32, u32, u64)>,
    /// The forwarding node's full heap image at the cut.
    pub heap: Vec<u64>,
    /// Shards the forwarding node was serving at the cut (elastic mode;
    /// empty in a static cluster). A restarted node treats exactly
    /// these as migrated-and-ready — a shard whose words were written
    /// but never checkpointed is *not* here, so it is safely
    /// re-requested, and a shard that is here has its post-migration
    /// traffic in the ward log on top of a baseline that includes it.
    pub ready: Vec<u32>,
}

/// Stored recovery state returned by a buddy: the last baseline (if
/// any) plus every packet forwarded since it, in apply order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoverResp {
    /// Last epoch cut, `None` before the first (cold boot).
    pub ckpt: Option<CkptImage>,
    /// Packets applied (and forwarded) since the baseline.
    pub log: Vec<FwdPacket>,
}

pub fn encode_fwd(p: &FwdPacket) -> Vec<u64> {
    let mut w = Vec::with_capacity(5 + p.words.len());
    w.extend([OP_FWD, p.src as u64, p.lane as u64, p.seq, p.words.len() as u64]);
    w.extend_from_slice(&p.words);
    w
}

pub fn decode_fwd(words: &[u64]) -> Option<FwdPacket> {
    if words.len() < 5 || words[0] != OP_FWD {
        return None;
    }
    let n = usize::try_from(words[4]).ok()?;
    if words.len() != n.checked_add(5)? {
        return None;
    }
    Some(FwdPacket {
        src: u32::try_from(words[1]).ok()?,
        lane: u32::try_from(words[2]).ok()?,
        seq: words[3],
        words: words[5..].to_vec(),
    })
}

/// Append a checkpoint body (everything but the opcode) to `out`.
fn push_ckpt_body(out: &mut Vec<u64>, c: &CkptImage) {
    out.push(c.epoch);
    out.push(c.cursors.len() as u64);
    for &(src, lane, expected) in &c.cursors {
        out.extend([src as u64, lane as u64, expected]);
    }
    out.push(c.heap.len() as u64);
    out.extend_from_slice(&c.heap);
    out.push(c.ready.len() as u64);
    out.extend(c.ready.iter().map(|&s| s as u64));
}

/// Decode a checkpoint body starting at `words[at]`; returns the image
/// and the index one past it.
fn pop_ckpt_body(words: &[u64], at: usize) -> Option<(CkptImage, usize)> {
    let epoch = *words.get(at)?;
    let ncur = usize::try_from(*words.get(at + 1)?).ok()?;
    let mut i = at + 2;
    let mut cursors = Vec::with_capacity(ncur.min(1024));
    for _ in 0..ncur {
        let src = u32::try_from(*words.get(i)?).ok()?;
        let lane = u32::try_from(*words.get(i + 1)?).ok()?;
        let expected = *words.get(i + 2)?;
        cursors.push((src, lane, expected));
        i += 3;
    }
    let hlen = usize::try_from(*words.get(i)?).ok()?;
    i += 1;
    let end = i.checked_add(hlen)?;
    let heap = words.get(i..end)?.to_vec();
    i = end;
    let nready = usize::try_from(*words.get(i)?).ok()?;
    i += 1;
    let mut ready = Vec::with_capacity(nready.min(1024));
    for _ in 0..nready {
        ready.push(u32::try_from(*words.get(i)?).ok()?);
        i += 1;
    }
    Some((CkptImage { epoch, cursors, heap, ready }, i))
}

pub fn encode_ckpt(c: &CkptImage) -> Vec<u64> {
    let mut w = vec![OP_CKPT];
    push_ckpt_body(&mut w, c);
    w
}

pub fn decode_ckpt(words: &[u64]) -> Option<CkptImage> {
    if words.first() != Some(&OP_CKPT) {
        return None;
    }
    let (c, end) = pop_ckpt_body(words, 1)?;
    (end == words.len()).then_some(c)
}

pub fn encode_recover_req() -> Vec<u64> {
    vec![OP_RECOVER_REQ]
}

pub fn encode_recover_resp(r: &RecoverResp) -> Vec<u64> {
    let mut w = vec![OP_RECOVER_RESP, u64::from(r.ckpt.is_some())];
    if let Some(c) = &r.ckpt {
        push_ckpt_body(&mut w, c);
    }
    w.push(r.log.len() as u64);
    for p in &r.log {
        w.extend([p.src as u64, p.lane as u64, p.seq, p.words.len() as u64]);
        w.extend_from_slice(&p.words);
    }
    w
}

pub fn decode_recover_resp(words: &[u64]) -> Option<RecoverResp> {
    if words.first() != Some(&OP_RECOVER_RESP) {
        return None;
    }
    let has_ckpt = *words.get(1)?;
    if has_ckpt > 1 {
        return None;
    }
    let (ckpt, mut i) = if has_ckpt == 1 {
        let (c, end) = pop_ckpt_body(words, 2)?;
        (Some(c), end)
    } else {
        (None, 2)
    };
    let nlog = usize::try_from(*words.get(i)?).ok()?;
    i += 1;
    let mut log = Vec::with_capacity(nlog.min(4096));
    for _ in 0..nlog {
        let src = u32::try_from(*words.get(i)?).ok()?;
        let lane = u32::try_from(*words.get(i + 1)?).ok()?;
        let seq = *words.get(i + 2)?;
        let n = usize::try_from(*words.get(i + 3)?).ok()?;
        i += 4;
        let end = i.checked_add(n)?;
        let pw = words.get(i..end)?.to_vec();
        i = end;
        log.push(FwdPacket { src, lane, seq, words: pw });
    }
    (i == words.len()).then_some(RecoverResp { ckpt, log })
}

/// What kind of topology change a `TOPO` frame announces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoKind {
    /// A new member was admitted; moves stream from live old owners.
    Join,
    /// A member is draining out; moves stream from the (live) leaver.
    Leave,
    /// A member was declared dead; moves stream from its buddy's ward.
    Evict,
    /// No change — the current map + outstanding moves, answering a
    /// `MAP_REQ` or `JOIN_REQ` (a restarted node resynchronizing).
    Snapshot,
}

impl TopoKind {
    fn encode(self) -> u64 {
        match self {
            TopoKind::Join => 0,
            TopoKind::Leave => 1,
            TopoKind::Evict => 2,
            TopoKind::Snapshot => 3,
        }
    }

    fn decode(w: u64) -> Option<Self> {
        Some(match w {
            0 => TopoKind::Join,
            1 => TopoKind::Leave,
            2 => TopoKind::Evict,
            3 => TopoKind::Snapshot,
            _ => return None,
        })
    }
}

/// A topology broadcast: the map every receiver must install plus the
/// shard moves still outstanding under it. `evict` tells a move's new
/// owner where to pull from: the old owner's live heap, or (evict) the
/// old owner's buddy's ward reconstruction.
#[derive(Clone, Debug, PartialEq)]
pub struct TopoMsg {
    /// Fencing term of the coordinator lease that issued this frame.
    /// Receivers feed it through
    /// [`Directory::install_fenced`](gravel_pgas::Directory::install_fenced):
    /// a term below their observed floor marks the whole frame stale.
    pub term: u64,
    pub kind: TopoKind,
    /// The node whose membership changed (ignored for `Snapshot`).
    pub node: u32,
    pub map: ShardMap,
    pub moves: Vec<ShardMove>,
}

pub fn encode_topo(t: &TopoMsg) -> Vec<u64> {
    let mut w = vec![OP_TOPO, t.term, t.kind.encode(), t.node as u64];
    w.extend(t.map.encode_words());
    w.push(t.moves.len() as u64);
    for m in &t.moves {
        w.extend([m.shard as u64, m.from as u64, m.to as u64]);
    }
    w
}

pub fn decode_topo(words: &[u64]) -> Option<TopoMsg> {
    if words.first() != Some(&OP_TOPO) {
        return None;
    }
    let term = *words.get(1)?;
    let kind = TopoKind::decode(*words.get(2)?)?;
    let node = u32::try_from(*words.get(3)?).ok()?;
    let (map, mut i) = ShardMap::decode_words(words, 4)?;
    let nmoves = usize::try_from(*words.get(i)?).ok()?;
    i += 1;
    let mut moves = Vec::with_capacity(nmoves.min(1024));
    for _ in 0..nmoves {
        let shard = u32::try_from(*words.get(i)?).ok()?;
        let from = u32::try_from(*words.get(i + 1)?).ok()?;
        let to = u32::try_from(*words.get(i + 2)?).ok()?;
        if shard as usize >= map.nshards() {
            return None;
        }
        moves.push(ShardMove { shard, from, to });
        i += 3;
    }
    (i == words.len()).then_some(TopoMsg { term, kind, node, map, moves })
}

/// The holder's periodic lease beat. `map_version` lets a follower
/// whose directory lags the holder's detect the gap and knock with
/// `MAP_REQ` — the same resync path a restarted node uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaseMsg {
    pub term: u64,
    pub holder: u32,
    pub map_version: u64,
}

pub fn encode_lease(l: &LeaseMsg) -> Vec<u64> {
    vec![OP_LEASE, l.term, l.holder as u64, l.map_version]
}

pub fn decode_lease(words: &[u64]) -> Option<LeaseMsg> {
    if words.len() != 4 || words[0] != OP_LEASE {
        return None;
    }
    Some(LeaseMsg {
        term: words[1],
        holder: u32::try_from(words[2]).ok()?,
        map_version: words[3],
    })
}

/// Ask a peer to corroborate `suspect`'s death as observed under
/// `term`. The requester's identity rides the control frame's `src`.
pub fn encode_death_vote_req(term: u64, suspect: u32) -> Vec<u64> {
    vec![OP_DEATH_VOTE_REQ, term, suspect as u64]
}

pub fn decode_death_vote_req(words: &[u64]) -> Option<(u64, u32)> {
    if words.len() != 3 || words[0] != OP_DEATH_VOTE_REQ {
        return None;
    }
    Some((words[1], u32::try_from(words[2]).ok()?))
}

/// A ballot reply: the voter's own detector verdict on `suspect`.
pub fn encode_death_vote(term: u64, suspect: u32, dead: bool) -> Vec<u64> {
    vec![OP_DEATH_VOTE, term, suspect as u64, u64::from(dead)]
}

pub fn decode_death_vote(words: &[u64]) -> Option<(u64, u32, bool)> {
    if words.len() != 4 || words[0] != OP_DEATH_VOTE || words[3] > 1 {
        return None;
    }
    Some((words[1], u32::try_from(words[2]).ok()?, words[3] == 1))
}

/// One shard's words, pulled by its new owner. Word `k` is the value
/// of global index `shard + k * nshards` — the offsets are implicit in
/// the elastic identity-layout, so the frame is just the opcode, the
/// map version it answers, the shard id, and the strided values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrateMsg {
    pub version: u64,
    pub shard: u32,
    pub words: Vec<u64>,
}

pub fn encode_migrate(m: &MigrateMsg) -> Vec<u64> {
    let mut w = vec![OP_MIGRATE, m.version, m.shard as u64, m.words.len() as u64];
    w.extend_from_slice(&m.words);
    w
}

pub fn decode_migrate(words: &[u64]) -> Option<MigrateMsg> {
    if words.first() != Some(&OP_MIGRATE) {
        return None;
    }
    let version = *words.get(1)?;
    let shard = u32::try_from(*words.get(2)?).ok()?;
    let n = usize::try_from(*words.get(3)?).ok()?;
    if words.len() != n.checked_add(4)? {
        return None;
    }
    Some(MigrateMsg { version, shard, words: words[4..].to_vec() })
}

pub fn encode_migrate_ack(version: u64, shard: u32) -> Vec<u64> {
    vec![OP_MIGRATE_ACK, version, shard as u64]
}

pub fn decode_migrate_ack(words: &[u64]) -> Option<(u64, u32)> {
    if words.len() != 3 || words[0] != OP_MIGRATE_ACK {
        return None;
    }
    Some((words[1], u32::try_from(words[2]).ok()?))
}

pub fn encode_migrate_req(version: u64, shard: u32) -> Vec<u64> {
    vec![OP_MIGRATE_REQ, version, shard as u64]
}

pub fn decode_migrate_req(words: &[u64]) -> Option<(u64, u32)> {
    if words.len() != 3 || words[0] != OP_MIGRATE_REQ {
        return None;
    }
    Some((words[1], u32::try_from(words[2]).ok()?))
}

pub fn encode_ward_migrate_req(version: u64, shard: u32, ward: u32) -> Vec<u64> {
    vec![OP_WARD_MIGRATE_REQ, version, shard as u64, ward as u64]
}

pub fn decode_ward_migrate_req(words: &[u64]) -> Option<(u64, u32, u32)> {
    if words.len() != 4 || words[0] != OP_WARD_MIGRATE_REQ {
        return None;
    }
    Some((words[1], u32::try_from(words[2]).ok()?, u32::try_from(words[3]).ok()?))
}

pub fn encode_join_req(node: u32) -> Vec<u64> {
    vec![OP_JOIN_REQ, node as u64]
}

pub fn decode_join_req(words: &[u64]) -> Option<u32> {
    if words.len() != 2 || words[0] != OP_JOIN_REQ {
        return None;
    }
    u32::try_from(words[1]).ok()
}

pub fn encode_leave_req(node: u32) -> Vec<u64> {
    vec![OP_LEAVE_REQ, node as u64]
}

pub fn decode_leave_req(words: &[u64]) -> Option<u32> {
    if words.len() != 2 || words[0] != OP_LEAVE_REQ {
        return None;
    }
    u32::try_from(words[1]).ok()
}

pub fn encode_map_req() -> Vec<u64> {
    vec![OP_MAP_REQ]
}

/// The stale-routing NACK: refused message quads plus the refuser's
/// current map, so one round trip both re-delivers the messages and
/// heals the sender's directory.
#[derive(Clone, Debug, PartialEq)]
pub struct BounceMsg {
    pub map: ShardMap,
    /// Raw message words, 4 per refused message.
    pub quads: Vec<u64>,
}

pub fn encode_bounce(b: &BounceMsg) -> Vec<u64> {
    let mut w = vec![OP_BOUNCE];
    w.extend(b.map.encode_words());
    w.push((b.quads.len() / 4) as u64);
    w.extend_from_slice(&b.quads);
    w
}

pub fn decode_bounce(words: &[u64]) -> Option<BounceMsg> {
    if words.first() != Some(&OP_BOUNCE) {
        return None;
    }
    let (map, i) = ShardMap::decode_words(words, 1)?;
    let n = usize::try_from(*words.get(i)?).ok()?;
    let quads = words.get(i + 1..)?.to_vec();
    if quads.len() != n.checked_mul(4)? {
        return None;
    }
    Some(BounceMsg { map, quads })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fwd(seq: u64) -> FwdPacket {
        FwdPacket { src: 2, lane: 0, seq, words: vec![10, 20, 30, 40, 50, 60, 70, 80] }
    }

    fn ckpt() -> CkptImage {
        CkptImage {
            epoch: 3,
            cursors: vec![(0, 0, 5), (2, 0, 9)],
            heap: vec![7, 0, 0, 11],
            ready: vec![1, 5, 12],
        }
    }

    #[test]
    fn fwd_roundtrips() {
        let p = fwd(4);
        assert_eq!(decode_fwd(&encode_fwd(&p)), Some(p));
    }

    #[test]
    fn ckpt_roundtrips() {
        let c = ckpt();
        assert_eq!(decode_ckpt(&encode_ckpt(&c)), Some(c));
    }

    #[test]
    fn recover_resp_roundtrips_with_and_without_baseline() {
        let full = RecoverResp { ckpt: Some(ckpt()), log: vec![fwd(9), fwd(10)] };
        assert_eq!(decode_recover_resp(&encode_recover_resp(&full)), Some(full));
        let cold = RecoverResp::default();
        assert_eq!(decode_recover_resp(&encode_recover_resp(&cold)), Some(cold));
    }

    #[test]
    fn truncated_and_mangled_encodings_decode_to_none() {
        let w = encode_recover_resp(&RecoverResp { ckpt: Some(ckpt()), log: vec![fwd(1)] });
        for cut in 0..w.len() {
            assert_eq!(decode_recover_resp(&w[..cut]), None, "cut at {cut}");
        }
        let mut extra = w.clone();
        extra.push(0);
        assert_eq!(decode_recover_resp(&extra), None, "trailing junk refused");
        assert_eq!(decode_fwd(&encode_ckpt(&ckpt())), None, "wrong opcode refused");
        // A length word claiming more payload than present must not panic.
        let mut lying = encode_fwd(&fwd(0));
        lying[4] = u64::MAX;
        assert_eq!(decode_fwd(&lying), None);
    }

    fn topo() -> TopoMsg {
        let map = ShardMap::initial(&[0, 1, 2, 3], 8);
        let (map, moves) = map.rebalance_join(4).unwrap();
        TopoMsg { term: 3, kind: TopoKind::Join, node: 4, map, moves }
    }

    #[test]
    fn topo_roundtrips_for_every_kind() {
        for kind in [TopoKind::Join, TopoKind::Leave, TopoKind::Evict, TopoKind::Snapshot] {
            for term in [1, 7, u64::MAX] {
                let t = TopoMsg { term, kind, ..topo() };
                assert_eq!(decode_topo(&encode_topo(&t)), Some(t));
            }
        }
        let w = encode_topo(&topo());
        for cut in 0..w.len() {
            assert_eq!(decode_topo(&w[..cut]), None, "cut at {cut}");
        }
        let mut junk = w.clone();
        junk.push(0);
        assert_eq!(decode_topo(&junk), None);
        let mut bad_kind = w;
        bad_kind[2] = 9;
        assert_eq!(decode_topo(&bad_kind), None);
    }

    #[test]
    fn lease_and_death_vote_roundtrip() {
        let l = LeaseMsg { term: 9, holder: 2, map_version: 14 };
        assert_eq!(decode_lease(&encode_lease(&l)), Some(l));
        assert_eq!(decode_death_vote_req(&encode_death_vote_req(9, 5)), Some((9, 5)));
        for dead in [true, false] {
            assert_eq!(
                decode_death_vote(&encode_death_vote(9, 5, dead)),
                Some((9, 5, dead))
            );
        }
        // Cut loops: every truncation of every new frame decodes to None.
        for w in [
            encode_lease(&l),
            encode_death_vote_req(9, 5),
            encode_death_vote(9, 5, true),
        ] {
            for cut in 0..w.len() {
                assert_eq!(decode_lease(&w[..cut]), None, "cut at {cut}");
                assert_eq!(decode_death_vote_req(&w[..cut]), None, "cut at {cut}");
                assert_eq!(decode_death_vote(&w[..cut]), None, "cut at {cut}");
            }
        }
        // Cross-op confusion and out-of-range fields are refused.
        assert_eq!(decode_lease(&encode_death_vote(9, 5, true)), None);
        assert_eq!(decode_death_vote(&encode_lease(&l)), None);
        let mut bad_verdict = encode_death_vote(9, 5, true);
        bad_verdict[3] = 2;
        assert_eq!(decode_death_vote(&bad_verdict), None);
        let mut wide_holder = encode_lease(&l);
        wide_holder[2] = u64::MAX;
        assert_eq!(decode_lease(&wide_holder), None);
    }

    /// Seeded byte-level fuzz over the failover-frame decoders: random
    /// word soups and bit-mutated valid encodings must decode to `None`
    /// or a well-formed message, never panic. Nightly CI widens the
    /// corpus via `GRAVEL_FUZZ_CASES`.
    #[test]
    fn fuzz_failover_frames_never_panic() {
        let cases: u64 = std::env::var("GRAVEL_FUZZ_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            // SplitMix64: deterministic, dependency-free.
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let decode_all = |w: &[u64]| {
            let _ = decode_topo(w);
            let _ = decode_lease(w);
            let _ = decode_death_vote_req(w);
            let _ = decode_death_vote(w);
        };
        for case in 0..cases {
            // Random soup, sometimes starting with a valid opcode.
            let len = (next() % 40) as usize;
            let mut w: Vec<u64> = (0..len).map(|_| next()).collect();
            if case % 3 == 0 && !w.is_empty() {
                w[0] = [OP_TOPO, OP_LEASE, OP_DEATH_VOTE_REQ, OP_DEATH_VOTE]
                    [(next() % 4) as usize];
            }
            decode_all(&w);
            // A valid frame with one word bit-flipped: decodes to None
            // or to a message that re-encodes canonically.
            let mut v = encode_topo(&topo());
            let i = (next() % v.len() as u64) as usize;
            v[i] ^= 1u64 << (next() % 64);
            if let Some(t) = decode_topo(&v) {
                assert_eq!(encode_topo(&t), v, "decode is the inverse of encode");
            }
            decode_all(&v);
        }
    }

    #[test]
    fn migrate_and_small_ops_roundtrip() {
        let m = MigrateMsg { version: 7, shard: 3, words: vec![5, 0, 9] };
        assert_eq!(decode_migrate(&encode_migrate(&m)), Some(m.clone()));
        let mut lying = encode_migrate(&m);
        lying[3] = u64::MAX;
        assert_eq!(decode_migrate(&lying), None);
        assert_eq!(decode_migrate_ack(&encode_migrate_ack(7, 3)), Some((7, 3)));
        assert_eq!(decode_migrate_req(&encode_migrate_req(2, 11)), Some((2, 11)));
        assert_eq!(
            decode_ward_migrate_req(&encode_ward_migrate_req(2, 11, 5)),
            Some((2, 11, 5))
        );
        assert_eq!(decode_join_req(&encode_join_req(4)), Some(4));
        assert_eq!(decode_leave_req(&encode_leave_req(5)), Some(5));
        assert_eq!(decode_join_req(&encode_leave_req(5)), None, "wrong op");
        assert_eq!(encode_map_req(), vec![OP_MAP_REQ]);
    }

    #[test]
    fn bounce_roundtrips_and_refuses_partial_quads() {
        let b = BounceMsg {
            map: ShardMap::initial(&[0, 1], 4),
            quads: vec![1, 2, 3, 4, 5, 6, 7, 8],
        };
        assert_eq!(decode_bounce(&encode_bounce(&b)), Some(b.clone()));
        let mut w = encode_bounce(&b);
        w.pop();
        assert_eq!(decode_bounce(&w), None, "partial quad refused");
        for cut in 0..w.len() {
            assert_eq!(decode_bounce(&w[..cut]), None, "cut at {cut}");
        }
    }
}
