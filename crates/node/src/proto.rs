//! Control-plane word codec for the multi-process buddy protocol.
//!
//! Every cross-process recovery exchange rides the socket transport's
//! control plane (`FrameKind::Control`, always CRC32C) as a flat `u64`
//! word vector whose first word is an opcode. The codec is pure and
//! total-on-decode: any word vector either decodes to a well-formed op
//! or returns `None` — a malformed control frame from a confused peer
//! is dropped, never panicked on (the decode fuzz tests assert this).
//!
//! Ops:
//!
//! * `FWD`  — one fully applied packet, forwarded by its receiver to
//!   that receiver's buddy *before* the cumulative ack leaves (see
//!   [`gravel_core::netthread::PacketTap`]). The buddy appends it to
//!   its replay log for the forwarding node.
//! * `CKPT` — the forwarding node's epoch cut: its heap image plus its
//!   per-flow receive cursors, taken under the receive-state lock. The
//!   buddy replaces its stored baseline and clears the log. Because
//!   `FWD` and `CKPT` travel the same FIFO stream, the cut is exact:
//!   every forward that precedes the cut is in the log it truncates.
//! * `RECOVER_REQ`  — a (re)starting node asks its buddy for its state.
//! * `RECOVER_RESP` — baseline + log in one frame (empty on cold boot,
//!   so the restart path and the cold-boot path are the same code).

/// Applied-packet forward (receiver → its buddy).
pub const OP_FWD: u64 = 1;
/// Epoch cut: heap image + receive cursors (receiver → its buddy).
pub const OP_CKPT: u64 = 2;
/// Recovery request (restarting node → its buddy).
pub const OP_RECOVER_REQ: u64 = 3;
/// Recovery response: stored baseline + log (buddy → restarting node).
pub const OP_RECOVER_RESP: u64 = 4;

/// One applied packet as forwarded to the buddy: the flow coordinates
/// the receiver applied it under, plus the raw message words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FwdPacket {
    /// Original sender of the packet.
    pub src: u32,
    /// Sender lane.
    pub lane: u32,
    /// Per-flow sequence number.
    pub seq: u64,
    /// Message words (4 per message).
    pub words: Vec<u64>,
}

/// An epoch cut: everything a restarted process needs to resume as if
/// it had applied exactly the packets covered by the cut.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CkptImage {
    /// Monotonic epoch number (first cut = 1).
    pub epoch: u64,
    /// Per-flow next-expected sequence numbers `(src, lane, expected)`.
    pub cursors: Vec<(u32, u32, u64)>,
    /// The forwarding node's full heap image at the cut.
    pub heap: Vec<u64>,
}

/// Stored recovery state returned by a buddy: the last baseline (if
/// any) plus every packet forwarded since it, in apply order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoverResp {
    /// Last epoch cut, `None` before the first (cold boot).
    pub ckpt: Option<CkptImage>,
    /// Packets applied (and forwarded) since the baseline.
    pub log: Vec<FwdPacket>,
}

pub fn encode_fwd(p: &FwdPacket) -> Vec<u64> {
    let mut w = Vec::with_capacity(5 + p.words.len());
    w.extend([OP_FWD, p.src as u64, p.lane as u64, p.seq, p.words.len() as u64]);
    w.extend_from_slice(&p.words);
    w
}

pub fn decode_fwd(words: &[u64]) -> Option<FwdPacket> {
    if words.len() < 5 || words[0] != OP_FWD {
        return None;
    }
    let n = usize::try_from(words[4]).ok()?;
    if words.len() != n.checked_add(5)? {
        return None;
    }
    Some(FwdPacket {
        src: u32::try_from(words[1]).ok()?,
        lane: u32::try_from(words[2]).ok()?,
        seq: words[3],
        words: words[5..].to_vec(),
    })
}

/// Append a checkpoint body (everything but the opcode) to `out`.
fn push_ckpt_body(out: &mut Vec<u64>, c: &CkptImage) {
    out.push(c.epoch);
    out.push(c.cursors.len() as u64);
    for &(src, lane, expected) in &c.cursors {
        out.extend([src as u64, lane as u64, expected]);
    }
    out.push(c.heap.len() as u64);
    out.extend_from_slice(&c.heap);
}

/// Decode a checkpoint body starting at `words[at]`; returns the image
/// and the index one past it.
fn pop_ckpt_body(words: &[u64], at: usize) -> Option<(CkptImage, usize)> {
    let epoch = *words.get(at)?;
    let ncur = usize::try_from(*words.get(at + 1)?).ok()?;
    let mut i = at + 2;
    let mut cursors = Vec::with_capacity(ncur.min(1024));
    for _ in 0..ncur {
        let src = u32::try_from(*words.get(i)?).ok()?;
        let lane = u32::try_from(*words.get(i + 1)?).ok()?;
        let expected = *words.get(i + 2)?;
        cursors.push((src, lane, expected));
        i += 3;
    }
    let hlen = usize::try_from(*words.get(i)?).ok()?;
    i += 1;
    let end = i.checked_add(hlen)?;
    let heap = words.get(i..end)?.to_vec();
    Some((CkptImage { epoch, cursors, heap }, end))
}

pub fn encode_ckpt(c: &CkptImage) -> Vec<u64> {
    let mut w = vec![OP_CKPT];
    push_ckpt_body(&mut w, c);
    w
}

pub fn decode_ckpt(words: &[u64]) -> Option<CkptImage> {
    if words.first() != Some(&OP_CKPT) {
        return None;
    }
    let (c, end) = pop_ckpt_body(words, 1)?;
    (end == words.len()).then_some(c)
}

pub fn encode_recover_req() -> Vec<u64> {
    vec![OP_RECOVER_REQ]
}

pub fn encode_recover_resp(r: &RecoverResp) -> Vec<u64> {
    let mut w = vec![OP_RECOVER_RESP, u64::from(r.ckpt.is_some())];
    if let Some(c) = &r.ckpt {
        push_ckpt_body(&mut w, c);
    }
    w.push(r.log.len() as u64);
    for p in &r.log {
        w.extend([p.src as u64, p.lane as u64, p.seq, p.words.len() as u64]);
        w.extend_from_slice(&p.words);
    }
    w
}

pub fn decode_recover_resp(words: &[u64]) -> Option<RecoverResp> {
    if words.first() != Some(&OP_RECOVER_RESP) {
        return None;
    }
    let has_ckpt = *words.get(1)?;
    if has_ckpt > 1 {
        return None;
    }
    let (ckpt, mut i) = if has_ckpt == 1 {
        let (c, end) = pop_ckpt_body(words, 2)?;
        (Some(c), end)
    } else {
        (None, 2)
    };
    let nlog = usize::try_from(*words.get(i)?).ok()?;
    i += 1;
    let mut log = Vec::with_capacity(nlog.min(4096));
    for _ in 0..nlog {
        let src = u32::try_from(*words.get(i)?).ok()?;
        let lane = u32::try_from(*words.get(i + 1)?).ok()?;
        let seq = *words.get(i + 2)?;
        let n = usize::try_from(*words.get(i + 3)?).ok()?;
        i += 4;
        let end = i.checked_add(n)?;
        let pw = words.get(i..end)?.to_vec();
        i = end;
        log.push(FwdPacket { src, lane, seq, words: pw });
    }
    (i == words.len()).then_some(RecoverResp { ckpt, log })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fwd(seq: u64) -> FwdPacket {
        FwdPacket { src: 2, lane: 0, seq, words: vec![10, 20, 30, 40, 50, 60, 70, 80] }
    }

    fn ckpt() -> CkptImage {
        CkptImage {
            epoch: 3,
            cursors: vec![(0, 0, 5), (2, 0, 9)],
            heap: vec![7, 0, 0, 11],
        }
    }

    #[test]
    fn fwd_roundtrips() {
        let p = fwd(4);
        assert_eq!(decode_fwd(&encode_fwd(&p)), Some(p));
    }

    #[test]
    fn ckpt_roundtrips() {
        let c = ckpt();
        assert_eq!(decode_ckpt(&encode_ckpt(&c)), Some(c));
    }

    #[test]
    fn recover_resp_roundtrips_with_and_without_baseline() {
        let full = RecoverResp { ckpt: Some(ckpt()), log: vec![fwd(9), fwd(10)] };
        assert_eq!(decode_recover_resp(&encode_recover_resp(&full)), Some(full));
        let cold = RecoverResp::default();
        assert_eq!(decode_recover_resp(&encode_recover_resp(&cold)), Some(cold));
    }

    #[test]
    fn truncated_and_mangled_encodings_decode_to_none() {
        let w = encode_recover_resp(&RecoverResp { ckpt: Some(ckpt()), log: vec![fwd(1)] });
        for cut in 0..w.len() {
            assert_eq!(decode_recover_resp(&w[..cut]), None, "cut at {cut}");
        }
        let mut extra = w.clone();
        extra.push(0);
        assert_eq!(decode_recover_resp(&extra), None, "trailing junk refused");
        assert_eq!(decode_fwd(&encode_ckpt(&ckpt())), None, "wrong opcode refused");
        // A length word claiming more payload than present must not panic.
        let mut lying = encode_fwd(&fwd(0));
        lying[4] = u64::MAX;
        assert_eq!(decode_fwd(&lying), None);
    }
}
