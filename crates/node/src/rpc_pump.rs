//! Request-reply traffic for the multi-process cluster.
//!
//! The in-process runtime drains request-reply messages through its
//! aggregator lanes; this binary has no aggregator (GUPS flows are
//! pre-packetized by [`crate::sender`]), so RPC traffic gets its own
//! pump: a thread that drains the node's offload queue — GET requests
//! issued locally *and* reply messages the network thread enqueues
//! while serving peers — and drives them as go-back-N flows on **lane
//! 1**, keeping the deterministic GUPS flows on lane 0 untouched.
//!
//! Each node also owns a *sentinel* heap word just past its GUPS
//! partition, holding a value that is a pure function of `(seed, node)`
//! and is never touched by updates. A GET probe against a peer's
//! sentinel therefore has exactly one correct answer on every run,
//! which is what lets the cluster test assert bit-exact GET results
//! even across a `kill -9` recovery.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::AtomicBool;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gravel_core::NodeShared;
use gravel_gq::{Consumed, Message, ReplySink, ReplyState, RpcFailure};
use gravel_net::{SocketTransport, Transport};
use gravel_pgas::Packet;
use gravel_telemetry::Counter;

/// The wire lane RPC flows travel on (GUPS owns lane 0).
pub const RPC_LANE: u32 = 1;

/// The deterministic sentinel value node `node` publishes for GET
/// probes under `seed`. Never zero, so a zeroed heap can't fake it.
pub fn sentinel_value(seed: u64, node: u32) -> u64 {
    (seed ^ u64::from(node).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .rotate_left((node % 63) + 1)
        | 1
}

struct PumpFlow {
    /// First unacked sequence.
    base: u64,
    /// Next sequence to stamp.
    next: u64,
    /// Sent, unacknowledged frames in sequence order.
    unacked: VecDeque<gravel_pgas::DataFrame>,
    /// Messages drained from the queue, not yet stamped (one message
    /// per packet: RPC traffic is latency-bound, not bandwidth-bound).
    queued: VecDeque<[u64; gravel_gq::MSG_ROWS]>,
    rto: Duration,
    timer: Instant,
}

impl PumpFlow {
    fn new(rto: Duration) -> Self {
        PumpFlow {
            base: 0,
            next: 0,
            unacked: VecDeque::new(),
            queued: VecDeque::new(),
            rto,
            timer: Instant::now(),
        }
    }
}

const PUMP_WINDOW: usize = 32;
const PUMP_RTO_BASE: Duration = Duration::from_millis(50);
const PUMP_RTO_MAX: Duration = Duration::from_millis(500);

/// Drain the node's offload queue into per-destination go-back-N flows
/// on [`RPC_LANE`] until `stop`, the deadline, or transport close.
/// Like the GUPS sender there is no retry budget: a dead peer is
/// expected to come back, and the pending-reply table (not this pump)
/// enforces each request's deadline.
pub fn run_rpc_pump(
    transport: &SocketTransport,
    node: &NodeShared,
    stop: &AtomicBool,
    deadline: Instant,
) {
    let integrity = node.wire_integrity;
    let mut flows: HashMap<u32, PumpFlow> = HashMap::new();
    let mut batch: Vec<u64> = Vec::new();
    loop {
        if stop.load(Relaxed) || Instant::now() >= deadline || transport.is_closed() {
            return;
        }
        let mut progressed = false;
        // Cumulative acks for the RPC lane.
        while let Some(frame) = transport.try_recv_ack(node.id, RPC_LANE) {
            match frame.open(integrity) {
                Ok(ack) => {
                    node.net_acks_received.inc();
                    if let Some(f) = flows.get_mut(&ack.src) {
                        while f.base <= ack.cum_seq && !f.unacked.is_empty() {
                            f.unacked.pop_front();
                            f.base += 1;
                            progressed = true;
                        }
                        if progressed {
                            f.rto = PUMP_RTO_BASE;
                            f.timer = Instant::now();
                        }
                    }
                }
                Err(_) => node.net_ack_corrupt_dropped.inc(),
            }
        }
        // Drain the offload queue: locally issued GETs plus replies the
        // network thread enqueued while serving peers.
        for lane in 0..node.queue.lanes() {
            batch.clear();
            match node.queue.ring(lane).try_consume_batch(&mut batch, 64) {
                Consumed::Batch(_) => {
                    for chunk in batch.chunks_exact(gravel_gq::MSG_ROWS) {
                        let words: [u64; gravel_gq::MSG_ROWS] =
                            chunk.try_into().expect("exact chunk");
                        let dest = words[1] as u32;
                        flows
                            .entry(dest)
                            .or_insert_with(|| PumpFlow::new(PUMP_RTO_BASE))
                            .queued
                            .push_back(words);
                        progressed = true;
                    }
                }
                Consumed::Empty => {}
                Consumed::Closed => return,
            }
        }
        let epoch = node.wire_epoch.load(Relaxed);
        for (&dest, f) in flows.iter_mut() {
            // Stamp queued messages into the window.
            while f.unacked.len() < PUMP_WINDOW {
                let Some(words) = f.queued.pop_front() else { break };
                let mut pkt = Packet::from_words(node.id, dest, &words);
                pkt.lane = RPC_LANE;
                pkt.seq = f.next;
                f.next += 1;
                // Sealing stamps the frame kind from the message class
                // (GET / AM_REPLY), so the wire advertises the traffic
                // class even without the in-process QoS scheduler. The
                // frame buffer comes from the node's arena when pooling
                // is on.
                let frame = pkt.seal_in(epoch, integrity, node.pool.as_ref());
                let _ = transport.send_data(frame.clone(), Duration::from_millis(5));
                f.unacked.push_back(frame);
                f.timer = Instant::now();
                progressed = true;
            }
            // Go-back-N on silent expiry; also the probe that
            // rediscovers a peer returning from a kill -9.
            if !f.unacked.is_empty() && f.timer.elapsed() >= f.rto {
                for frame in &f.unacked {
                    let _ = transport.send_data(frame.clone(), Duration::from_millis(5));
                    node.net_retransmits.inc();
                }
                f.rto = (f.rto * 2).min(PUMP_RTO_MAX);
                f.timer = Instant::now();
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

/// Outcome ledger of one node's GET probe stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct GetsOutcome {
    pub issued: u64,
    pub ok: u64,
    pub timed_out: u64,
    pub failed: u64,
    /// Replies that arrived but did not match the target's sentinel —
    /// must be zero on every run, faults or not.
    pub mismatched: u64,
}

/// Issue `gets` sentinel GET probes round-robin across the cluster
/// (self included — loopback exercises the same path) and verify each
/// reply bit-exact against [`sentinel_value`]. Returns the ledger;
/// `issued == ok + timed_out + failed` by construction.
#[allow(clippy::too_many_arguments)]
pub fn run_gets(
    node: &NodeShared,
    nodes: usize,
    gets: usize,
    seed: u64,
    sentinel_addr: impl Fn(u32) -> u64,
    stop: &AtomicBool,
    deadline: Instant,
    counters: &GetsCounters,
) -> GetsOutcome {
    let mut out = GetsOutcome::default();
    let deadline_ms = node.rpc_timeout.as_millis().min(u128::from(u16::MAX)) as u16;
    const BATCH: usize = 16;
    let mut k = 0usize;
    while k < gets {
        if stop.load(Relaxed) || Instant::now() >= deadline {
            break;
        }
        let n = BATCH.min(gets - k);
        let sink = Arc::new(ReplySink::new(n));
        let rpc_deadline = Instant::now() + node.rpc_timeout;
        let mut dests = Vec::with_capacity(n);
        for slot in 0..n {
            let dest = ((node.id as usize + 1 + k + slot) % nodes) as u32;
            dests.push(dest);
            match node.rpc.register(sink.clone(), slot, rpc_deadline) {
                Ok(token) => {
                    node.host_send(Message::get(dest, sentinel_addr(dest), token, deadline_ms));
                }
                Err(_) => {
                    sink.arm();
                    sink.fail(slot, RpcFailure::TableFull);
                }
            }
        }
        out.issued += n as u64;
        sink.wait_all(node.rpc_timeout * 2 + Duration::from_secs(1));
        for (slot, &dest) in dests.iter().enumerate() {
            match sink.get(slot) {
                ReplyState::Ok(v) if v == sentinel_value(seed, dest) => out.ok += 1,
                ReplyState::Ok(_) => {
                    out.ok += 1;
                    out.mismatched += 1;
                }
                ReplyState::Failed(RpcFailure::TimedOut) | ReplyState::Pending => {
                    out.timed_out += 1
                }
                ReplyState::Failed(_) => out.failed += 1,
            }
        }
        k += n;
    }
    counters.issued.add(out.issued);
    counters.ok.add(out.ok);
    counters.timed_out.add(out.timed_out);
    counters.mismatched.add(out.mismatched);
    out
}

/// Registry-backed GET-probe counters so the report reads them the same
/// way it reads every other metric.
pub struct GetsCounters {
    pub issued: Counter,
    pub ok: Counter,
    pub timed_out: Counter,
    pub mismatched: Counter,
}

impl GetsCounters {
    pub fn bound(node: &NodeShared) -> Self {
        let me = node.id;
        let name = |s: &str| format!("node{me}.gets.{s}");
        GetsCounters {
            issued: node.registry.counter(&name("issued")),
            ok: node.registry.counter(&name("ok")),
            timed_out: node.registry.counter(&name("timed_out")),
            mismatched: node.registry.counter(&name("mismatched")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_values_are_distinct_and_deterministic() {
        let a: Vec<u64> = (0..8).map(|n| sentinel_value(42, n)).collect();
        let b: Vec<u64> = (0..8).map(|n| sentinel_value(42, n)).collect();
        assert_eq!(a, b);
        for i in 0..8 {
            assert_ne!(a[i], 0);
            for j in 0..i {
                assert_ne!(a[i], a[j], "sentinels for nodes {i} and {j} collide");
            }
        }
        assert_ne!(sentinel_value(42, 0), sentinel_value(43, 0));
    }
}
