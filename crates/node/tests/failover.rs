//! Coordinator-failover and partition-tolerance acceptance: the
//! control plane survives the death of its own coordinator and never
//! forks the shard map under network partitions.
//!
//! The headline scenarios (ISSUE §acceptance):
//!
//! * `kill -9` of the acting coordinator right after it broadcasts a
//!   moves-carrying TOPO: the successor asserts a higher term, re-drives
//!   the interrupted migration (pulling the dead donor's shards out of
//!   its ward), evicts the corpse, and the final heap is bit-exact.
//! * A seeded symmetric 3/3 partition of a 6-node cluster: neither side
//!   can form an eviction quorum, so the map never forks (version 1 on
//!   every node throughout), and the cluster converges bit-exact after
//!   the heal.
//! * A one-way link drop: the deafened node's suspicion is *vetoed* by
//!   the majority that still hears the suspect — no takeover, no
//!   eviction, term never moves.
//! * The boot coordinator drain-leaves: it hands the lease to its
//!   successor (term 2) and the new holder commits the LEAVE.

use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gravel_apps::gups::GupsInput;
use gravel_node::elastic;
use gravel_node::report::{read_report, OutReport};
use gravel_node::signal::{send_signal, SIGTERM, SIGUSR1};

const BIN: &str = env!("CARGO_BIN_EXE_gravel-node");

/// One cluster of real processes at a time: these tests stress timing
/// (partitions, lease beats, takeover latency) and stay deterministic
/// only without a sibling cluster stealing their cores.
static SERIAL: Mutex<()> = Mutex::new(());

struct Cluster {
    dir: PathBuf,
    input: GupsInput,
    capacity: usize,
    active: usize,
}

impl Cluster {
    fn new(tag: &str, input: GupsInput, capacity: usize, active: usize) -> Cluster {
        let dir = std::env::temp_dir().join(format!("gravel_failover_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        Cluster { dir, input, capacity, active }
    }

    fn out_path(&self, node: usize) -> PathBuf {
        self.dir.join(format!("node{node}.json"))
    }

    fn spawn(&self, node: usize, extra: &[String]) -> Child {
        let mut args = vec![
            "--node".into(),
            node.to_string(),
            "--nodes".into(),
            self.capacity.to_string(),
            "--dir".into(),
            self.dir.to_str().unwrap().to_string(),
            "--updates".into(),
            self.input.updates.to_string(),
            "--table".into(),
            self.input.table_len.to_string(),
            "--seed".into(),
            self.input.seed.to_string(),
            "--ckpt-every".into(),
            "4".to_string(),
            "--deadline-secs".into(),
            "120".to_string(),
            "--out".into(),
            self.out_path(node).to_str().unwrap().to_string(),
            "--active".into(),
            self.active.to_string(),
        ];
        if node >= self.active {
            args.push("--join".into());
        }
        Command::new(BIN).args(&args).args(extra).spawn().expect("spawn gravel-node")
    }

    /// Poll `slots`' reports until `pred` holds for all, *stays* true
    /// across a 600ms re-check, and (when given) the assembled table is
    /// bit-exact. See `tests/reshard.rs` for why a single observation
    /// is not a settlement.
    fn wait_settled(
        &self,
        slots: &[usize],
        timeout: Duration,
        what: &str,
        expected: Option<&[u64]>,
        pred: impl Fn(&OutReport) -> bool,
    ) -> Vec<OutReport> {
        let deadline = Instant::now() + timeout;
        let read_all = |pred: &dyn Fn(&OutReport) -> bool| -> Option<Vec<OutReport>> {
            let reports: Vec<OutReport> = slots
                .iter()
                .filter_map(|&n| read_report(&self.out_path(n)).ok())
                .collect();
            (reports.len() == slots.len() && reports.iter().all(pred)).then_some(reports)
        };
        let exact = |reports: &[OutReport]| match expected {
            None => true,
            Some(want) => self.try_assemble(reports).is_some_and(|got| got == want),
        };
        loop {
            if read_all(&pred).filter(|r| exact(r)).is_some() {
                std::thread::sleep(Duration::from_millis(600));
                if let Some(reports) = read_all(&pred).filter(|r| exact(r)) {
                    return reports;
                }
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {what}; reports: {:?}",
                slots
                    .iter()
                    .map(|&n| read_report(&self.out_path(n)).ok().map(|r| (
                        r.node,
                        r.completed,
                        r.sender_drained,
                        r.map_version,
                        r.ha_term,
                        r.ha_holder,
                        r.members.clone()
                    )))
                    .collect::<Vec<_>>()
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Assemble the authoritative table from owner heaps; `None` while
    /// reports disagree on ownership or an owner's report is missing.
    fn try_assemble(&self, reports: &[OutReport]) -> Option<Vec<u64>> {
        let owners = &reports.first()?.shard_owners;
        if owners.is_empty() || reports.iter().any(|r| &r.shard_owners != owners) {
            return None;
        }
        (0..self.input.table_len)
            .map(|g| {
                let owner = owners[g % owners.len()];
                let r = reports.iter().find(|r| r.node == owner as u64)?;
                r.heap.get(g).copied()
            })
            .collect()
    }

    fn assemble(&self, reports: &[OutReport]) -> Vec<u64> {
        self.try_assemble(reports)
            .expect("settled reports must agree on shard ownership")
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn sigterm_and_reap(
    children: &mut [(usize, Child)],
    path_of: impl Fn(usize) -> PathBuf,
) -> Vec<OutReport> {
    for (_, c) in children.iter() {
        assert!(send_signal(c.id(), SIGTERM), "SIGTERM delivery");
    }
    let mut finals = Vec::new();
    for (slot, c) in children.iter_mut() {
        let status = c.wait().unwrap();
        assert!(status.success(), "node {slot} exit status {status:?}");
        finals.push(read_report(&path_of(*slot)).unwrap());
    }
    finals
}

#[test]
fn coordinator_killed_mid_migration_successor_completes_it() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let input = GupsInput { updates: 6_000, table_len: 96, seed: 31 };
    let senders: Vec<u32> = (0..4).collect();
    let expected = elastic::expected_table(&input, 5, &senders);

    let cluster = Cluster::new("coordkill", input, 5, 4);
    let grace = vec!["--evict-grace-ms".to_string(), "800".to_string()];
    // The boot coordinator arms the chaos switch: SIGKILL itself right
    // after broadcasting its next moves-carrying TOPO — which will be
    // the JOIN commit, leaving the shard migration with no coordinator.
    let mut coord_extra = grace.clone();
    coord_extra.push("--kill-on-commit".to_string());
    let mut corpse = cluster.spawn(0, &coord_extra);
    let mut children: Vec<(usize, Child)> =
        (1..4).map(|n| (n, cluster.spawn(n, &grace))).collect();

    // Drain all streams first: node 0's words must be fully forwarded
    // to its ward keeper before it dies, or its shards die with it.
    cluster.wait_settled(
        &[0, 1, 2, 3],
        Duration::from_secs(45),
        "pre-join drain",
        Some(&expected),
        |r| r.completed && r.sender_drained && r.members == vec![0, 1, 2, 3],
    );

    // The join triggers the fatal commit.
    children.push((4, cluster.spawn(4, &grace)));
    let status = corpse.wait().unwrap();
    assert!(!status.success(), "coordinator must die by its own SIGKILL, got {status:?}");

    // Successor story: node 1 quorum-confirms the holder's death,
    // asserts term 2, re-drives the interrupted migration (the dead
    // donor's shards come out of node 1's ward reconstruction), then
    // evicts the corpse. v1 + join + evict = v3.
    let survivors = [1usize, 2, 3, 4];
    let settled = cluster.wait_settled(
        &survivors,
        Duration::from_secs(60),
        "takeover, migration completion, eviction of the corpse",
        Some(&expected),
        |r| {
            r.completed
                && r.sender_drained
                && r.members == vec![1, 2, 3, 4]
                && r.map_version == 3
        },
    );
    for r in &settled {
        assert!(r.ha_term >= 2, "node {} never saw the takeover term", r.node);
        assert_eq!(r.ha_holder, 1, "node {} holder after takeover", r.node);
        assert!(
            r.shard_owners.iter().all(|&o| o != 0),
            "node {} still routes to the dead coordinator",
            r.node
        );
    }
    assert!(
        settled.iter().map(|r| r.stats.ha_takeovers).sum::<u64>() >= 1,
        "nobody counted a takeover"
    );
    let joiner = settled.iter().find(|r| r.node == 4).unwrap();
    assert!(joiner.stats.reshard_moves_in > 0, "the joiner pulled its shards");

    let finals = sigterm_and_reap(&mut children, |n| cluster.out_path(n));
    assert_eq!(cluster.assemble(&finals), expected, "post-teardown table");
}

#[test]
fn symmetric_partition_minority_freezes_and_heals() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let input = GupsInput { updates: 10_000, table_len: 96, seed: 41 };
    let senders: Vec<u32> = (0..6).collect();
    let expected = elastic::expected_table(&input, 6, &senders);

    let cluster = Cluster::new("partition", input, 6, 6);
    // A 3/3 split 1.2s in, healed 3s later. The evict grace (600ms) is
    // far shorter than the partition: without the quorum gate every
    // node would have evicted the far side long before the heal.
    let extra = vec![
        "--link-chaos".to_string(),
        "part:0|1|2:1200:4200".to_string(),
        "--evict-grace-ms".to_string(),
        "600".to_string(),
    ];
    let mut children: Vec<(usize, Child)> =
        (0..6).map(|n| (n, cluster.spawn(n, &extra))).collect();

    let all: Vec<usize> = (0..6).collect();
    let settled = cluster.wait_settled(
        &all,
        Duration::from_secs(90),
        "heal and converge with an unforked map",
        Some(&expected),
        // `deaths_declared >= 1` keeps the wait from settling before the
        // partition window has even opened: convergence alone is already
        // true pre-chaos, and the counter is monotonic so it cannot
        // un-settle after the heal.
        |r| {
            r.completed
                && r.sender_drained
                && r.members == vec![0, 1, 2, 3, 4, 5]
                && r.map_version == 1
                && r.stats.deaths_declared >= 1
        },
    );
    // Both sides really did latch the far side dead — and still nobody
    // could evict: 3 corroborating votes can never reach quorum(6) = 4.
    assert!(
        settled.iter().map(|r| r.stats.deaths_declared).sum::<u64>() >= 1,
        "the partition never even latched a suspicion"
    );
    for r in &settled {
        assert_eq!(r.ha_term, 1, "node {} term moved under partition", r.node);
        assert_eq!(r.stats.ha_takeovers, 0, "node {} asserted a takeover", r.node);
    }

    let finals = sigterm_and_reap(&mut children, |n| cluster.out_path(n));
    for r in &finals {
        assert_eq!(r.map_version, 1, "node {} forked the shard map", r.node);
    }
    assert_eq!(cluster.assemble(&finals), expected, "post-teardown table");
}

#[test]
fn one_way_link_is_vetoed_not_escalated() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let input = GupsInput { updates: 5_000, table_len: 64, seed: 53 };
    let senders: Vec<u32> = (0..4).collect();
    let expected = elastic::expected_table(&input, 4, &senders);

    let cluster = Cluster::new("oneway", input, 4, 4);
    // Node 3 stops hearing node 0 (beats and data both) for 2.4s; the
    // reverse direction stays up. Node 3's suspicion must be vetoed by
    // the majority that still hears node 0 — never an eviction, never
    // a takeover.
    let extra = vec![
        "--link-chaos".to_string(),
        "oneway:0:3:800:3200".to_string(),
        "--evict-grace-ms".to_string(),
        "500".to_string(),
    ];
    let mut children: Vec<(usize, Child)> =
        (0..4).map(|n| (n, cluster.spawn(n, &extra))).collect();

    let all: Vec<usize> = (0..4).collect();
    let settled = cluster.wait_settled(
        &all,
        Duration::from_secs(90),
        "one-way drop healed without membership damage",
        Some(&expected),
        // Gating on node 3's veto counter keeps the wait from settling
        // before the drop window opens (convergence alone holds from
        // t=0); the counter is monotonic, so the settle re-check stands.
        |r| {
            r.completed
                && r.sender_drained
                && r.members == vec![0, 1, 2, 3]
                && r.map_version == 1
                && (r.node != 3 || r.stats.ha_evictions_vetoed >= 1)
        },
    );
    for r in &settled {
        assert_eq!(r.ha_term, 1, "node {} term moved under a one-way drop", r.node);
        assert_eq!(r.stats.ha_takeovers, 0, "node {} asserted a takeover", r.node);
    }
    // The deafened node escalated to a vote and was denied.
    let deaf = settled.iter().find(|r| r.node == 3).unwrap();
    assert!(
        deaf.stats.ha_evictions_vetoed >= 1,
        "node 3's one-sided suspicion was never vetoed"
    );

    let finals = sigterm_and_reap(&mut children, |n| cluster.out_path(n));
    assert_eq!(cluster.assemble(&finals), expected, "post-teardown table");
}

#[test]
fn holder_drain_leave_hands_off_the_lease() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let input = GupsInput { updates: 4_000, table_len: 64, seed: 67 };
    let senders: Vec<u32> = (0..4).collect();
    let expected = elastic::expected_table(&input, 4, &senders);

    let cluster = Cluster::new("handoff", input, 4, 4);
    // Huge grace: nothing here should ever look like a death.
    let extra = vec!["--evict-grace-ms".to_string(), "60000".to_string()];
    let mut children: Vec<(usize, Child)> =
        (0..4).map(|n| (n, cluster.spawn(n, &extra))).collect();

    cluster.wait_settled(
        &[0, 1, 2, 3],
        Duration::from_secs(45),
        "pre-leave drain",
        Some(&expected),
        |r| r.completed && r.sender_drained,
    );

    // SIGUSR1 to the boot holder: under the old single-coordinator
    // design node 0 could never leave. Now it hands the lease to node 1
    // (term 2) and the *new* holder commits the LEAVE.
    let (_, holder_child) = children.iter().find(|(s, _)| *s == 0).unwrap();
    assert!(send_signal(holder_child.id(), SIGUSR1), "SIGUSR1 to node 0");

    let all: Vec<usize> = (0..4).collect();
    let settled = cluster.wait_settled(
        &all,
        Duration::from_secs(45),
        "lease handoff and the old holder's leave",
        Some(&expected),
        |r| {
            r.completed
                && r.sender_drained
                && r.members == vec![1, 2, 3]
                && r.map_version == 2
        },
    );
    for r in &settled {
        assert_eq!(r.ha_term, 2, "node {} term after handoff", r.node);
        assert_eq!(r.ha_holder, 1, "node {} holder after handoff", r.node);
        assert!(
            r.shard_owners.iter().all(|&o| o != 0),
            "node {} still routes to the departed holder",
            r.node
        );
    }

    // The departed holder keeps serving as a non-member until teardown,
    // and every process — including it — exits gracefully.
    let finals = sigterm_and_reap(&mut children, |n| cluster.out_path(n));
    assert_eq!(cluster.assemble(&finals), expected, "post-teardown table");
}
