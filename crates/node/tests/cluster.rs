//! Real-process cluster tests: N `gravel-node` binaries over Unix-domain
//! sockets, including the headline `kill -9` recovery scenario.
//!
//! Scales are deliberately tiny — CI runs these on a single core — but
//! the topology is real: separate OS processes, real sockets, a real
//! SIGKILL, and a real restart that must recover its state over the
//! wire from its buddy and converge to the exact no-fault heap.

use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use gravel_apps::gups::{self, GupsInput};
use gravel_net::ChaosPlan;
use gravel_node::report::{read_report, OutReport};
use gravel_node::signal::{send_signal, SIGTERM};

const BIN: &str = env!("CARGO_BIN_EXE_gravel-node");

struct Cluster {
    dir: PathBuf,
    input: GupsInput,
    nodes: usize,
}

impl Cluster {
    fn new(tag: &str, input: GupsInput, nodes: usize) -> Cluster {
        let dir = std::env::temp_dir().join(format!("gravel_cluster_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        Cluster { dir, input, nodes }
    }

    fn out_path(&self, node: usize) -> PathBuf {
        self.dir.join(format!("node{node}.json"))
    }

    /// Spawn member `node`; `extra` appends flags (e.g. `--kill-at`).
    fn spawn(&self, node: usize, extra: &[String]) -> Child {
        Command::new(BIN)
            .args([
                "--node",
                &node.to_string(),
                "--nodes",
                &self.nodes.to_string(),
                "--dir",
                self.dir.to_str().unwrap(),
                "--updates",
                &self.input.updates.to_string(),
                "--table",
                &self.input.table_len.to_string(),
                "--seed",
                &self.input.seed.to_string(),
                "--ckpt-every",
                "4",
                "--out",
                self.out_path(node).to_str().unwrap(),
            ])
            .args(extra)
            .spawn()
            .expect("spawn gravel-node")
    }

    /// Poll the out files until every member reports `completed`.
    fn wait_all_completed(&self, timeout: Duration) -> Vec<OutReport> {
        let deadline = Instant::now() + timeout;
        loop {
            let reports: Vec<OutReport> = (0..self.nodes)
                .filter_map(|n| read_report(&self.out_path(n)).ok())
                .filter(|r| r.completed)
                .collect();
            if reports.len() == self.nodes {
                let mut reports = reports;
                reports.sort_by_key(|r| r.node);
                return reports;
            }
            assert!(
                Instant::now() < deadline,
                "cluster did not complete: {}/{} reports",
                reports.len(),
                self.nodes
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// The bit-exactness assertion: the union of the per-node heap
    /// slices must equal the sequential histogram of every node's
    /// update stream — the same heap a no-fault run produces.
    fn assert_bit_exact(&self, reports: &[OutReport]) {
        let part = gups::partition(&self.input, self.nodes);
        let mut expect = vec![0u64; self.input.table_len];
        for node in 0..self.nodes {
            for g in gups::node_updates(&self.input, self.nodes, node) {
                expect[g] += 1;
            }
        }
        for (g, &want) in expect.iter().enumerate() {
            let owner = part.owner(g);
            let off = part.local_offset(g) as usize;
            assert_eq!(
                reports[owner].heap[off], want,
                "heap mismatch at global index {g} (owner {owner}, offset {off})"
            );
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn sigterm_and_reap(children: &mut [Child], path_of: impl Fn(usize) -> PathBuf) -> Vec<OutReport> {
    for c in children.iter() {
        assert!(send_signal(c.id(), SIGTERM), "SIGTERM delivery");
    }
    let mut finals = Vec::new();
    for (i, c) in children.iter_mut().enumerate() {
        let status = c.wait().unwrap();
        assert!(status.success(), "node {i} exit status {status:?}");
        finals.push(read_report(&path_of(i)).unwrap());
    }
    finals
}

#[test]
fn no_fault_cluster_is_bit_exact_and_sigterm_is_graceful() {
    let input = GupsInput { updates: 900, table_len: 96, seed: 7 };
    let cluster = Cluster::new("nofault", input, 3);
    let mut children: Vec<Child> = (0..3).map(|n| cluster.spawn(n, &[])).collect();

    let reports = cluster.wait_all_completed(Duration::from_secs(45));
    cluster.assert_bit_exact(&reports);
    for r in &reports {
        assert!(!r.recovered_from_ckpt, "cold boot must not find a baseline");
        assert!(r.epoch > 0, "epoch cuts flowed");
        assert!(r.stats.fwd_sent > 0, "applied packets were forwarded");
        assert!(r.stats.handshakes >= 2, "full mesh handshakes");
    }

    // Graceful teardown: SIGTERM → final epoch cut → exit 0.
    let finals = sigterm_and_reap(&mut children, |n| cluster.out_path(n));
    for r in &finals {
        assert!(r.graceful && r.completed, "node {} final report", r.node);
    }
    cluster.assert_bit_exact(&finals);
}

#[test]
fn kill9_mid_run_recovers_bit_exact_over_the_wire() {
    let input = GupsInput { updates: 1600, table_len: 128, seed: 11 };
    let cluster = Cluster::new("kill9", input, 4);

    // Pick the victim and the kill step from the same seeded plan the
    // victim process will execute with --kill-at.
    let plan = ChaosPlan::seeded_kill(input.seed, 4, 12);
    let (victim, at_step) = (0..4u32)
        .find_map(|n| plan.process_kill(n).map(|s| (n as usize, s)))
        .expect("seeded plan has a victim");

    let mut children: Vec<Child> = (0..4)
        .map(|n| {
            let extra = if n == victim {
                vec!["--kill-at".to_string(), at_step.to_string()]
            } else {
                vec![]
            };
            cluster.spawn(n, &extra)
        })
        .collect();

    // The victim self-SIGKILLs after applying (and forwarding) packet
    // `at_step`. Reap the corpse and verify it really died by signal.
    let died = Instant::now();
    let status = children[victim].wait().unwrap();
    assert!(!status.success(), "victim must die by SIGKILL, got {status:?}");
    eprintln!("victim node {victim} died after {:?} (kill at step {at_step})", died.elapsed());

    // Let the survivors notice: heartbeats go silent and the
    // phi-accrual detector must latch the death before the new
    // incarnation shows up.
    std::thread::sleep(Duration::from_millis(1500));

    // Restart with the *same* command line minus the kill switch: the
    // new process re-handshakes, pulls its checkpoint + replay log from
    // its buddy over the socket, and resumes.
    children[victim] = cluster.spawn(victim, &[]);

    let reports = cluster.wait_all_completed(Duration::from_secs(50));
    cluster.assert_bit_exact(&reports);

    let vr = &reports[victim];
    assert!(
        vr.recovered_from_ckpt,
        "restarted victim recovered a buddy-held baseline"
    );
    let survivors: Vec<&OutReport> =
        reports.iter().filter(|r| r.node as usize != victim).collect();
    assert!(
        survivors.iter().any(|r| r.stats.membership_losses > 0),
        "a survivor observed the victim's link drop"
    );
    assert!(
        survivors.iter().any(|r| r.stats.membership_rejoins > 0),
        "a survivor observed the new incarnation's handshake"
    );
    assert!(
        survivors.iter().map(|r| r.stats.deaths_declared).sum::<u64>() >= 1,
        "the failure detector declared the victim dead over the wire"
    );
    for r in &survivors {
        assert!(
            r.stats.reconnects <= 8,
            "node {} reconnect storm: {} re-handshakes for one restart",
            r.node,
            r.stats.reconnects
        );
    }

    let finals = sigterm_and_reap(&mut children, |n| cluster.out_path(n));
    cluster.assert_bit_exact(&finals);
    for r in &finals {
        assert!(r.graceful, "node {} tore down gracefully after recovery", r.node);
    }
}

#[test]
fn cluster_gets_complete_bit_exact_across_members() {
    // Request-reply traffic over the real sockets: every member issues
    // sentinel GET probes (round-robin across the cluster, self
    // included) on the dedicated RPC wire lane while the GUPS streams
    // run on lane 0. Each probe has exactly one correct answer — the
    // target's (seed, node)-derived sentinel word — so a reply is
    // verified bit-exact, not just received.
    let input = GupsInput { updates: 1200, table_len: 96, seed: 13 };
    let cluster = Cluster::new("gets", input, 4);
    const GETS: u64 = 32;
    let extra = vec!["--gets".to_string(), GETS.to_string()];
    let mut children: Vec<Child> = (0..4).map(|n| cluster.spawn(n, &extra)).collect();

    let reports = cluster.wait_all_completed(Duration::from_secs(60));
    cluster.assert_bit_exact(&reports);
    for r in &reports {
        assert_eq!(r.stats.gets_issued, GETS, "node {} probe count", r.node);
        assert_eq!(
            r.stats.gets_mismatched, 0,
            "node {} received a reply that did not match the sentinel",
            r.node
        );
        assert_eq!(
            r.stats.gets_ok, GETS,
            "node {} no-fault probes must all complete (timed_out={})",
            r.node, r.stats.gets_timed_out
        );
        assert_eq!(r.stats.quarantined, 0, "node {} quarantined frames", r.node);
        assert!(r.quarantine.is_empty(), "node {} quarantine report", r.node);
    }
    let finals = sigterm_and_reap(&mut children, |n| cluster.out_path(n));
    cluster.assert_bit_exact(&finals);
    for r in &finals {
        assert!(r.graceful && r.completed, "node {} final report", r.node);
    }
    // Each applied GET produced exactly one reply at its server
    // (retransmitted requests are seq-deduped before apply). Checked on
    // the *final* reports: a mid-run report snapshots its counters when
    // that node completes, which can precede a late peer probe; by
    // teardown every requester has observed every reply, so every
    // server counted it first.
    let replies: u64 = finals.iter().map(|r| r.stats.rpc_replies_sent).sum();
    assert_eq!(replies, 4 * GETS, "cluster-wide replies sent");
}

#[test]
fn sigterm_mid_run_exits_zero_with_graceful_report() {
    // A workload big enough that SIGTERM lands mid-stream.
    let input = GupsInput { updates: 60_000, table_len: 256, seed: 5 };
    let cluster = Cluster::new("sigterm", input, 2);
    let mut children: Vec<Child> = (0..2).map(|n| cluster.spawn(n, &[])).collect();

    // Past startup recovery (cold boot over local UDS is milliseconds),
    // but far before 60k updates complete.
    std::thread::sleep(Duration::from_millis(500));
    for c in &children {
        assert!(send_signal(c.id(), SIGTERM));
    }
    for (i, c) in children.iter_mut().enumerate() {
        let status = c.wait().unwrap();
        assert!(status.success(), "node {i} exit after SIGTERM: {status:?}");
    }
    // Both wrote a graceful report (completed or not — the point is the
    // quiesce-checkpoint-exit path ran).
    for n in 0..2 {
        let r = read_report(&cluster.out_path(n)).unwrap();
        assert!(r.graceful, "node {n} graceful flag");
    }
}
