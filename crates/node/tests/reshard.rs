//! Elastic membership acceptance: a real-process cluster grows and
//! shrinks at epoch boundaries while traffic flows, under chaos.
//!
//! The headline scenario (ISSUE §acceptance): a 4-process socket
//! cluster with capacity for 6 admits two live joiners, one of which is
//! SIGKILLed in the worst mid-migration window (shard words written,
//! epoch not yet cut) and restarted; both joiners then leave again via
//! SIGUSR1. The final heap must be bit-exact against the sequential
//! truth *and* against a static-membership run of the same streams, and
//! the stale-routing ledger must reconcile.

use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use gravel_apps::gups::GupsInput;
use gravel_node::elastic;
use gravel_node::report::{read_report, OutReport};
use gravel_node::signal::{send_signal, SIGKILL, SIGTERM, SIGUSR1};

const BIN: &str = env!("CARGO_BIN_EXE_gravel-node");

struct ElasticCluster {
    dir: PathBuf,
    input: GupsInput,
    /// `--nodes`: the slot capacity (every process must agree on it —
    /// the deterministic streams are split across *capacity*, not the
    /// live membership).
    capacity: usize,
    /// `--active`: the initial membership is `0..active`.
    active: usize,
}

impl ElasticCluster {
    fn new(tag: &str, input: GupsInput, capacity: usize, active: usize) -> ElasticCluster {
        let dir = std::env::temp_dir().join(format!("gravel_reshard_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        ElasticCluster { dir, input, capacity, active }
    }

    fn out_path(&self, node: usize) -> PathBuf {
        self.dir.join(format!("node{node}.json"))
    }

    /// Spawn slot `node`; slots `>= active` must pass `--join`.
    fn spawn(&self, node: usize, extra: &[String]) -> Child {
        let mut args = vec![
            "--node".into(),
            node.to_string(),
            "--nodes".into(),
            self.capacity.to_string(),
            "--dir".into(),
            self.dir.to_str().unwrap().to_string(),
            "--updates".into(),
            self.input.updates.to_string(),
            "--table".into(),
            self.input.table_len.to_string(),
            "--seed".into(),
            self.input.seed.to_string(),
            "--ckpt-every".into(),
            "4".to_string(),
            "--deadline-secs".into(),
            "120".to_string(),
            "--out".into(),
            self.out_path(node).to_str().unwrap().to_string(),
            "--active".into(),
            self.active.to_string(),
        ];
        if node >= self.active {
            args.push("--join".into());
        }
        Command::new(BIN)
            .args(&args)
            .args(extra)
            .spawn()
            .expect("spawn gravel-node")
    }

    /// Poll `slots`' reports (rewritten every 250ms by live nodes) until
    /// `pred` holds for all of them, *stays* true across a re-check
    /// 600ms later, and — when `expected` is given — the assembled
    /// table is bit-exact. A drain can transiently flip back under a
    /// late bounce, so a single observation is not a settlement; and a
    /// sender can look drained while a bounce is still in flight toward
    /// it (the bounce acked the original flow), so on a loaded host the
    /// last redeliveries may land *after* every per-node flag settles —
    /// convergence is only proven by the heap contents themselves.
    fn wait_settled(
        &self,
        slots: &[usize],
        timeout: Duration,
        what: &str,
        expected: Option<&[u64]>,
        pred: impl Fn(&OutReport) -> bool,
    ) -> Vec<OutReport> {
        let deadline = Instant::now() + timeout;
        let read_all = |pred: &dyn Fn(&OutReport) -> bool| -> Option<Vec<OutReport>> {
            let reports: Vec<OutReport> = slots
                .iter()
                .filter_map(|&n| read_report(&self.out_path(n)).ok())
                .collect();
            (reports.len() == slots.len() && reports.iter().all(pred)).then_some(reports)
        };
        let exact = |reports: &[OutReport]| match expected {
            None => true,
            Some(want) => self.try_assemble(reports).is_some_and(|got| got == want),
        };
        loop {
            if read_all(&pred).filter(|r| exact(r)).is_some() {
                std::thread::sleep(Duration::from_millis(600));
                if let Some(reports) = read_all(&pred).filter(|r| exact(r)) {
                    return reports;
                }
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {what}; reports: {:?}",
                slots
                    .iter()
                    .map(|&n| read_report(&self.out_path(n)).ok().map(|r| (
                        r.node,
                        r.completed,
                        r.sender_drained,
                        r.map_version,
                        r.members.clone()
                    )))
                    .collect::<Vec<_>>()
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Assemble the authoritative table: for every global index, the
    /// word held by the shard's owner under the installed map. `None`
    /// while the reports disagree on ownership (a flip mid-broadcast)
    /// or an owner's report is missing.
    fn try_assemble(&self, reports: &[OutReport]) -> Option<Vec<u64>> {
        let owners = &reports.first()?.shard_owners;
        if owners.is_empty() || reports.iter().any(|r| &r.shard_owners != owners) {
            return None;
        }
        (0..self.input.table_len)
            .map(|g| {
                let owner = owners[g % owners.len()];
                let r = reports.iter().find(|r| r.node == owner as u64)?;
                r.heap.get(g).copied()
            })
            .collect()
    }

    /// [`try_assemble`](Self::try_assemble) on reports that must be
    /// settled (post-teardown finals): disagreement is a failure.
    fn assemble(&self, reports: &[OutReport]) -> Vec<u64> {
        self.try_assemble(reports)
            .expect("settled reports must agree on shard ownership")
    }
}

impl Drop for ElasticCluster {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn sigterm_and_reap(children: &mut [(usize, Child)], path_of: impl Fn(usize) -> PathBuf) -> Vec<OutReport> {
    for (_, c) in children.iter() {
        assert!(send_signal(c.id(), SIGTERM), "SIGTERM delivery");
    }
    let mut finals = Vec::new();
    for (slot, c) in children.iter_mut() {
        let status = c.wait().unwrap();
        assert!(status.success(), "node {slot} exit status {status:?}");
        finals.push(read_report(&path_of(*slot)).unwrap());
    }
    finals
}

/// Cluster-wide exactly-once ledger over a set of final (quiesced)
/// reports: every bounce was either re-enqueued at its sender or
/// counted as dropped toward a dead one.
fn ledger(reports: &[OutReport]) -> (u64, u64, u64) {
    let stale: u64 = reports.iter().map(|r| r.stats.reshard_stale_routed).sum();
    let redel: u64 = reports.iter().map(|r| r.stats.reshard_redelivered).sum();
    let dropped: u64 = reports.iter().map(|r| r.stats.reshard_bounce_dropped).sum();
    (stale, redel, dropped)
}

#[test]
fn grow_shrink_under_chaos_matches_static_run_bit_exact() {
    // A stream long enough that the joins and leaves land mid-traffic:
    // the flips must race live packets, or the stale-routing path is
    // never exercised (asserted on the ledger below).
    let input = GupsInput { updates: 24_000, table_len: 96, seed: 17 };
    let senders: Vec<u32> = (0..4).collect();
    let expected = elastic::expected_table(&input, 6, &senders);

    // ---- Static-membership reference: same capacity, same streams,
    // nobody joins or leaves. This is the "static-N run" the chaos
    // run's final heap must match bit for bit.
    let static_table = {
        let cluster = ElasticCluster::new("static", input, 6, 4);
        let mut children: Vec<(usize, Child)> =
            (0..4).map(|n| (n, cluster.spawn(n, &[]))).collect();
        let settled = cluster.wait_settled(
            &[0, 1, 2, 3],
            Duration::from_secs(45),
            "static elastic drain",
            Some(&expected),
            |r| r.completed && r.sender_drained && r.members == vec![0, 1, 2, 3],
        );
        let table = cluster.assemble(&settled);
        let finals = sigterm_and_reap(&mut children, |n| cluster.out_path(n));
        // No topology changes: the gate never bounced anything.
        let (stale, redel, dropped) = ledger(&finals);
        assert_eq!((stale, redel, dropped), (0, 0, 0), "static run must not bounce");
        for r in &finals {
            assert_eq!(r.map_version, 1, "static membership never flips the map");
        }
        assert_eq!(table, expected, "static elastic run vs sequential truth");
        table
    };

    // ---- Chaos run: grow 4 → 6 (one joiner killed mid-migration and
    // restarted), then shrink back to 4 via SIGUSR1 leaves.
    let cluster = ElasticCluster::new("chaos", input, 6, 4);
    // A huge evict grace: the mid-migration corpse must be *recovered*,
    // not evicted — eviction has its own test below.
    let grace = vec!["--evict-grace-ms".to_string(), "60000".to_string()];
    let mut children: Vec<(usize, Child)> =
        (0..4).map(|n| (n, cluster.spawn(n, &grace))).collect();

    // Let the initial members mesh and start streaming before growing.
    std::thread::sleep(Duration::from_millis(100));

    // Joiner 4 self-SIGKILLs while installing its first migrated shard
    // (words written, checkpoint-ready marked, epoch not yet cut — the
    // window where only the re-pull protocol can save the shard).
    let mut kill_extra = grace.clone();
    kill_extra.extend(["--kill-on-migrate".to_string(), "1".to_string()]);
    let mut joiner4 = cluster.spawn(4, &kill_extra);
    children.push((5, cluster.spawn(5, &grace)));

    let status = joiner4.wait().unwrap();
    assert!(!status.success(), "joiner must die by SIGKILL, got {status:?}");

    // Restart the corpse with the same command line minus the kill
    // switch: it resyncs the map (MAP_REQ → outstanding moves) and
    // re-pulls the half-installed shard from its donor.
    children.push((4, cluster.spawn(4, &grace)));

    let all: Vec<usize> = (0..6).collect();
    let grown = cluster.wait_settled(
        &all,
        Duration::from_secs(60),
        "grow to 6 members, bit-exact",
        Some(&expected),
        |r| r.completed && r.sender_drained && r.members == vec![0, 1, 2, 3, 4, 5],
    );
    // The grown map really moved shards onto the joiners, and the
    // joiners pulled them over the wire.
    for joiner in [4u64, 5u64] {
        let r = grown.iter().find(|r| r.node == joiner).unwrap();
        assert!(r.stats.reshard_moves_in > 0, "joiner {joiner} pulled shards");
        assert!(r.stats.reshard_bytes_migrated > 0, "joiner {joiner} migrated bytes");
    }
    assert!(
        grown[0].shard_owners.iter().any(|&o| o >= 4),
        "grown directory assigns shards to joiners"
    );
    // Traffic kept flowing across both flips: the table under the
    // 6-member map is already exact.
    assert_eq!(cluster.assemble(&grown), expected, "grown table vs sequential truth");

    // ---- Shrink: both joiners ask to leave (SIGUSR1 → LEAVE_REQ →
    // epoch-boundary commit → shards migrate back), then keep serving
    // as non-members until torn down.
    for (slot, c) in children.iter() {
        if *slot >= 4 {
            assert!(send_signal(c.id(), SIGUSR1), "SIGUSR1 to node {slot}");
        }
    }
    let shrunk = cluster.wait_settled(
        &all,
        Duration::from_secs(60),
        "shrink back to 4 members, bit-exact",
        Some(&expected),
        |r| r.completed && r.sender_drained && r.members == vec![0, 1, 2, 3],
    );
    // initial v1 + join + join + leave + leave = v5 everywhere.
    for r in &shrunk {
        assert_eq!(r.map_version, 5, "node {} final map version", r.node);
        assert!(
            r.shard_owners.iter().all(|&o| o < 4),
            "node {} directory routes to a departed member",
            r.node
        );
    }

    let chaos_table = cluster.assemble(&shrunk);
    assert_eq!(chaos_table, expected, "chaos table vs sequential truth");
    assert_eq!(chaos_table, static_table, "chaos grow/shrink vs static-N run");

    let finals = sigterm_and_reap(&mut children, |n| cluster.out_path(n));
    assert_eq!(cluster.assemble(&finals), expected, "post-teardown table");

    // Ledger: every bounce was re-enqueued; no sender died, so nothing
    // was dropped. The SIGKILLed joiner's own stale_routed counter dies
    // with its first incarnation while the senders' redelivered counts
    // survive, so the surviving ledger is `redelivered >= stale_routed`
    // (equality whenever the kill window saw no bounces).
    let (stale, redel, dropped) = ledger(&finals);
    assert_eq!(dropped, 0, "no bounce ever lost its sender");
    assert!(
        redel >= stale,
        "ledger went backwards: stale_routed={stale} redelivered={redel}"
    );
    // The flips really exercised the stale-routing path: with senders
    // streaming across four map versions, at least one packet must have
    // raced a flip and bounced.
    assert!(redel > 0, "grow/shrink under live traffic never bounced a message");
}

#[test]
fn dead_member_is_evicted_and_its_shards_recovered_from_ward() {
    let input = GupsInput { updates: 1400, table_len: 128, seed: 23 };
    let senders: Vec<u32> = (0..4).collect();
    let expected = elastic::expected_table(&input, 4, &senders);

    let cluster = ElasticCluster::new("evict", input, 4, 4);
    let extra = vec!["--evict-grace-ms".to_string(), "700".to_string()];
    let mut spawned: Vec<(usize, Child)> =
        (0..4).map(|n| (n, cluster.spawn(n, &extra))).collect();

    // Drain first: the victim's stream must be fully acked (and thus
    // forwarded to its ward keeper) before the kill, so the ward holds
    // everything the cluster ever acknowledged.
    cluster.wait_settled(
        &[0, 1, 2, 3],
        Duration::from_secs(45),
        "pre-kill drain",
        Some(&expected),
        |r| r.completed && r.sender_drained,
    );

    // kill -9 node 2 (not the coordinator, not the coordinator's
    // buddy): no goodbye, no final checkpoint. Its ward keeper is node
    // 3 by the buddy ring.
    let victim = 2usize;
    let idx = spawned.iter().position(|(s, _)| *s == victim).unwrap();
    let (_, mut corpse) = spawned.remove(idx);
    assert!(send_signal(corpse.id(), SIGKILL), "SIGKILL delivery");
    let status = corpse.wait().unwrap();
    assert!(!status.success(), "victim must die by SIGKILL");

    // Failure detector latches, grace expires, the coordinator commits
    // EVICT at an epoch boundary, and the victim's shards are pulled
    // out of its buddy's ward reconstruction by their new owners.
    let survivors = [0usize, 1, 3];
    let settled = cluster.wait_settled(
        &survivors,
        Duration::from_secs(45),
        "evict and ward takeover, bit-exact",
        Some(&expected),
        |r| r.completed && r.sender_drained && r.members == vec![0, 1, 3],
    );
    for r in &settled {
        assert_eq!(r.map_version, 2, "node {} map version after one evict", r.node);
        assert!(
            r.shard_owners.iter().all(|&o| o != victim as u32),
            "node {} still routes to the evicted member",
            r.node
        );
    }
    assert!(
        settled.iter().map(|r| r.stats.reshard_moves_in).sum::<u64>() > 0,
        "survivors took over the victim's shards"
    );
    assert!(
        settled.iter().map(|r| r.stats.deaths_declared).sum::<u64>() >= 1,
        "the failure detector declared the victim dead"
    );

    // The evicted node's words are intact: reconstructed from the ward,
    // not resent (the victim is gone for good).
    assert_eq!(cluster.assemble(&settled), expected, "post-evict table");

    let finals = sigterm_and_reap(&mut spawned, |n| cluster.out_path(n));
    assert_eq!(cluster.assemble(&finals), expected, "post-teardown table");
    let (stale, redel, dropped) = ledger(&finals);
    assert_eq!(dropped, 0, "survivors' bounces all found their senders");
    assert!(redel >= stale, "ledger reconciliation");
}
