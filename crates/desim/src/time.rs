//! Virtual time.
//!
//! The simulator counts virtual nanoseconds in a `u64` ([`SimTime`]),
//! which covers ~584 years of simulated time — far beyond any experiment —
//! while keeping timestamps `Copy`, totally ordered, and exact (no
//! floating-point drift when accumulating millions of small service
//! times).

/// A point in virtual time, in nanoseconds since simulation start.
pub type SimTime = u64;

/// One microsecond in [`SimTime`] units.
pub const MICROS: SimTime = 1_000;

/// One millisecond in [`SimTime`] units.
pub const MILLIS: SimTime = 1_000_000;

/// One second in [`SimTime`] units.
pub const SECONDS: SimTime = 1_000_000_000;

/// Convert a byte count and a bandwidth in bytes/second into a
/// transmission time. Rounds up so tiny transfers never take zero time.
pub fn transfer_time(bytes: u64, bytes_per_sec: u64) -> SimTime {
    assert!(bytes_per_sec > 0, "zero bandwidth");
    // ns = bytes * 1e9 / Bps, computed in u128 to avoid overflow.
    let ns = (bytes as u128 * SECONDS as u128).div_ceil(bytes_per_sec as u128);
    ns as SimTime
}

/// Convert virtual time to seconds (for reporting).
pub fn to_secs(t: SimTime) -> f64 {
    t as f64 / SECONDS as f64
}

/// Rate helper: `count` events over `t` virtual time, per second.
pub fn per_sec(count: u64, t: SimTime) -> f64 {
    if t == 0 {
        return 0.0;
    }
    count as f64 / to_secs(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_at_7gbs() {
        // 64 kB at 7 GB/s ≈ 9.36 µs.
        let t = transfer_time(64 * 1024, 7_000_000_000);
        assert!(t > 9 * MICROS && t < 10 * MICROS, "got {t}");
    }

    #[test]
    fn tiny_transfers_take_nonzero_time() {
        assert!(transfer_time(1, u64::MAX / SECONDS) >= 1);
    }

    #[test]
    fn reporting_helpers() {
        assert!((to_secs(2 * SECONDS) - 2.0).abs() < 1e-12);
        assert!((per_sec(10, SECONDS) - 10.0).abs() < 1e-12);
        assert_eq!(per_sec(10, 0), 0.0);
    }
}
