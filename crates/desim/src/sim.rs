//! The event loop.
//!
//! A [`Sim`] is a deterministic discrete-event simulator: events are
//! closures over a user-supplied world type `W`, ordered by (timestamp,
//! insertion sequence) so same-time events run in FIFO order and replays
//! are bit-identical. Events receive `&mut W` and `&mut Sim<W>` and may
//! schedule further events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest (time, seq)
        // pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event simulator over world state `W`.
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    executed: u64,
    heap: BinaryHeap<Entry<W>>,
}

impl<W> Sim<W> {
    /// An empty simulation at time 0.
    pub fn new() -> Self {
        Sim { now: 0, seq: 0, executed: 0, heap: BinaryHeap::new() }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `f` at absolute time `at`. Scheduling in the past is a
    /// bug in the model and panics.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        assert!(at >= self.now, "event scheduled in the past ({at} < {})", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, f: Box::new(f) });
    }

    /// Schedule `f` after a delay from now.
    pub fn schedule_in(&mut self, delay: SimTime, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        self.schedule_at(self.now + delay, f);
    }

    /// Run one event. Returns `false` when no events remain.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some(Entry { at, f, .. }) = self.heap.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.executed += 1;
        f(world, self);
        true
    }

    /// Run until the event queue drains. Returns the final time.
    pub fn run(&mut self, world: &mut W) -> SimTime {
        while self.step(world) {}
        self.now
    }

    /// Run while events exist and time has not passed `deadline`.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> SimTime {
        while let Some(next) = self.heap.peek().map(|e| e.at) {
            if next > deadline {
                break;
            }
            self.step(world);
        }
        // Advance the clock to the deadline even if the queue went quiet
        // earlier ("run until t" semantics).
        self.now = self.now.max(deadline);
        self.now
    }
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(30, |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(10, |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(20, |w: &mut Vec<u32>, _| w.push(2));
        let end = sim.run(&mut world);
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(end, 30);
        assert_eq!(sim.executed(), 3);
    }

    #[test]
    fn same_time_events_run_fifo() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        for i in 0..10 {
            sim.schedule_at(5, move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run(&mut world);
        assert_eq!(world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<u64> = Sim::new();
        let mut world = 0u64;
        // A chain: each event schedules the next until the counter hits 5.
        fn tick(w: &mut u64, sim: &mut Sim<u64>) {
            *w += 1;
            if *w < 5 {
                sim.schedule_in(10, tick);
            }
        }
        sim.schedule_at(0, tick);
        let end = sim.run(&mut world);
        assert_eq!(world, 5);
        assert_eq!(end, 40);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        let mut world = Vec::new();
        sim.schedule_at(10, |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(100, |w: &mut Vec<u32>, _| w.push(2));
        sim.run_until(&mut world, 50);
        assert_eq!(world, vec![1]);
        assert_eq!(sim.pending(), 1);
        sim.run(&mut world);
        assert_eq!(world, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<()> = Sim::new();
        sim.schedule_at(10, |_, _| {});
        let mut w = ();
        sim.run(&mut w);
        sim.schedule_at(5, |_, _| {});
    }

    #[test]
    fn deterministic_replay() {
        fn build() -> (Sim<Vec<u64>>, Vec<u64>) {
            let mut sim = Sim::new();
            for i in 0..50u64 {
                sim.schedule_at(i % 7, move |w: &mut Vec<u64>, s| {
                    w.push(i * 1000 + s.now());
                });
            }
            let mut w = Vec::new();
            sim.run(&mut w);
            (sim, w)
        }
        let (_, a) = build();
        let (_, b) = build();
        assert_eq!(a, b);
    }
}
