//! Deterministic pseudo-randomness for models.
//!
//! The simulator must be bit-reproducible across runs and platforms, so it
//! carries its own tiny splitmix64 generator instead of depending on an
//! external crate whose stream might change between versions. Quality is
//! more than sufficient for workload perturbation (it passes the usual
//! avalanche sanity checks); it is *not* cryptographic.

/// A splitmix64 PRNG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator. Equal seeds give equal streams forever.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` (Lemire's multiply-shift; `bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "zero bound");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially-distributed value with the given mean (service-time
    /// perturbation).
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = self.unit_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn unit_f64_in_range_and_mean_near_half() {
        let mut r = SplitMix64::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exp_mean() {
        let mut r = SplitMix64::new(11);
        let mean_in = 250.0;
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let v = r.exp(mean_in);
            assert!(v >= 0.0);
            sum += v;
        }
        let mean = sum / 20_000.0;
        assert!((mean - mean_in).abs() / mean_in < 0.05, "mean {mean}");
    }
}
