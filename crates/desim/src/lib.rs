//! # gravel-desim — a deterministic discrete-event simulation kernel
//!
//! The timing substrate for the Gravel reproduction's cluster experiments.
//! The paper's multi-node results (Figures 12-15, Table 5) were measured
//! on an eight-node InfiniBand cluster; this reproduction replays
//! application communication traces through a calibrated cluster model
//! built on this kernel:
//!
//! * [`Sim`] — the event loop: closures over a world type, ordered by
//!   (time, insertion sequence), bit-reproducible.
//! * [`Resource`]/[`MultiResource`] — FIFO server accounting for links,
//!   NICs, aggregator CPUs.
//! * [`SplitMix64`] — a self-contained deterministic PRNG.
//! * [`time`] — virtual-nanosecond arithmetic and bandwidth helpers.
//!
//! ```
//! use gravel_desim::{Sim, Resource, time};
//!
//! // Two packets contend for one 7 GB/s link.
//! struct World { link: Resource, delivered: Vec<u64> }
//! let mut sim = Sim::new();
//! let mut w = World { link: Resource::new(), delivered: vec![] };
//! for _ in 0..2 {
//!     sim.schedule_at(0, |w: &mut World, sim| {
//!         let t = time::transfer_time(64 * 1024, 7_000_000_000);
//!         let (_, end) = w.link.acquire(sim.now(), t);
//!         sim.schedule_at(end, |w: &mut World, sim| w.delivered.push(sim.now()));
//!     });
//! }
//! sim.run(&mut w);
//! assert_eq!(w.delivered.len(), 2);
//! assert!(w.delivered[1] > w.delivered[0], "serialized on the link");
//! ```

pub mod resource;
pub mod rng;
pub mod sim;
pub mod time;

pub use resource::{MultiResource, Resource};
pub use rng::SplitMix64;
pub use sim::Sim;
pub use time::{per_sec, to_secs, transfer_time, SimTime, MICROS, MILLIS, SECONDS};
