//! Serial-server resources.
//!
//! Most of the cluster model's contention points — a network link, an
//! aggregator CPU, a NIC send engine — are FIFO servers: work arrives,
//! queues behind earlier work, and occupies the server for a service
//! time. [`Resource`] does that accounting without needing events: given
//! an arrival time and a service time it returns when the work starts and
//! finishes, and remembers its own busy horizon. [`MultiResource`] models
//! `k` identical servers (e.g. the paper's three in-flight per-node
//! queues).

use crate::time::SimTime;

/// A single FIFO server.
#[derive(Clone, Copy, Debug, Default)]
pub struct Resource {
    free_at: SimTime,
    busy: SimTime,
    jobs: u64,
}

impl Resource {
    /// An idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue work arriving at `now` needing `service` time. Returns
    /// `(start, end)`.
    pub fn acquire(&mut self, now: SimTime, service: SimTime) -> (SimTime, SimTime) {
        let start = now.max(self.free_at);
        let end = start + service;
        self.free_at = end;
        self.busy += service;
        self.jobs += 1;
        (start, end)
    }

    /// When the server next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over a horizon (for reports like §8.1's 65 % polling).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        self.busy as f64 / horizon as f64
    }
}

/// `k` identical FIFO servers; work goes to whichever frees first.
#[derive(Clone, Debug)]
pub struct MultiResource {
    servers: Vec<Resource>,
}

impl MultiResource {
    /// `k` idle servers.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one server");
        MultiResource { servers: vec![Resource::new(); k] }
    }

    /// Enqueue work arriving at `now` needing `service`; picks the
    /// earliest-free server. Returns `(start, end)`.
    pub fn acquire(&mut self, now: SimTime, service: SimTime) -> (SimTime, SimTime) {
        let idx = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.free_at())
            .map(|(i, _)| i)
            .expect("non-empty server set");
        self.servers[idx].acquire(now, service)
    }

    /// Earliest time any server is free.
    pub fn next_free(&self) -> SimTime {
        self.servers.iter().map(|s| s.free_at()).min().unwrap_or(0)
    }

    /// Total busy time across servers.
    pub fn busy_time(&self) -> SimTime {
        self.servers.iter().map(|s| s.busy_time()).sum()
    }

    /// Total jobs served.
    pub fn jobs(&self) -> u64 {
        self.servers.iter().map(|s| s.jobs()).sum()
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Never empty (constructor asserts).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(100, 50), (100, 150));
        assert_eq!(r.free_at(), 150);
    }

    #[test]
    fn busy_server_queues_work() {
        let mut r = Resource::new();
        r.acquire(0, 100);
        assert_eq!(r.acquire(10, 5), (100, 105));
        assert_eq!(r.busy_time(), 105);
        assert_eq!(r.jobs(), 2);
    }

    #[test]
    fn utilization() {
        let mut r = Resource::new();
        r.acquire(0, 65);
        assert!((r.utilization(100) - 0.65).abs() < 1e-12);
        assert_eq!(Resource::new().utilization(0), 0.0);
    }

    #[test]
    fn multi_resource_spreads_load() {
        let mut m = MultiResource::new(2);
        let (s1, e1) = m.acquire(0, 100);
        let (s2, e2) = m.acquire(0, 100);
        // Both start immediately on different servers.
        assert_eq!((s1, s2), (0, 0));
        assert_eq!((e1, e2), (100, 100));
        // Third job waits for the first free server.
        let (s3, _) = m.acquire(0, 10);
        assert_eq!(s3, 100);
        assert_eq!(m.jobs(), 3);
    }

    #[test]
    fn multi_resource_next_free() {
        let mut m = MultiResource::new(3);
        m.acquire(0, 50);
        assert_eq!(m.next_free(), 0); // two servers still idle
        m.acquire(0, 60);
        m.acquire(0, 70);
        assert_eq!(m.next_free(), 50);
    }
}
