fn main() {
    let data = vec![0xABu8; 40 * 1024];
    let start = std::time::Instant::now();
    let mut acc = 0u32;
    let iters = 10_000;
    for _ in 0..iters {
        acc ^= gravel_pgas::crc32c(std::hint::black_box(&data));
    }
    let el = start.elapsed().as_secs_f64();
    let gb = (data.len() as f64 * iters as f64) / el / 1e9;
    println!("crc32c: {gb:.2} GB/s (acc={acc:08x})");
}
