//! Elastic shard directory: the layer that makes the cluster never a
//! fixed N.
//!
//! The paper (and the seed runtime) bakes the node count into address
//! translation: `dest = owner(addr)` is a pure function of a fixed
//! [`Partition`]. This module replaces that with a *versioned,
//! monotonic* [`ShardMap`]: the global index space is split into a
//! fixed number of shards (`addr % nshards`), and each shard names its
//! current owner. Topology change is then a map edit — join, leave,
//! evict — that moves whole shards between members, plus a data
//! migration of exactly the moved shards' heap words.
//!
//! Two invariants carry all the correctness weight (DESIGN.md §16):
//!
//! 1. **Monotonic versions.** Every rebalance bumps `version` by one;
//!    a node never installs a map older than the one it holds
//!    ([`Directory::install`] refuses). In-flight packets routed under
//!    a stale map are detected by *ownership*, not by version stamps —
//!    the receiver checks `owner_of(addr) == me` before applying — so
//!    late frames can never corrupt a moved shard.
//! 2. **Minimal moves.** `rebalance_join` moves only the shards the
//!    joiner must take (balanced load, steal-from-richest); a
//!    `rebalance_leave` moves only the leaver's shards. Unaffected
//!    shards keep their owner *and their data* — traffic on them never
//!    pauses.
//!
//! The elastic address scheme keeps local offsets stable across
//! resharding: in elastic mode the local heap offset of global index
//! `g` *is* `g` (heaps are provisioned at the full table size, shards
//! interleave through them cyclically). Migration therefore copies
//! words at offsets `{ g : g % nshards == shard }` verbatim, and a
//! bounced message re-routes by its `addr` alone.

use crate::partition::Partition;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Default shard count: enough granularity to balance small clusters
/// within one shard of ideal, small enough that a full map rides in
/// one control frame.
pub const DEFAULT_SHARDS: usize = 64;

/// One shard's change of owner inside a rebalance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMove {
    /// Shard index in `[0, nshards)`.
    pub shard: u32,
    /// Owner under the old map (migration source).
    pub from: u32,
    /// Owner under the new map (migration target).
    pub to: u32,
}

/// A monotonically versioned shard → owner map over a fixed shard
/// count and a dynamic member set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// Monotonic map version; bumped by every rebalance. The initial
    /// map is version 1 so that "no map yet" can be version 0.
    pub version: u64,
    /// Owner node id per shard.
    pub owners: Vec<u32>,
    /// Active member ids, sorted ascending.
    pub members: Vec<u32>,
}

impl ShardMap {
    /// The initial map: `nshards` shards dealt round-robin over the
    /// (sorted, deduplicated) members, version 1.
    pub fn initial(members: &[u32], nshards: usize) -> Self {
        assert!(nshards > 0, "need at least one shard");
        let mut members: Vec<u32> = members.to_vec();
        members.sort_unstable();
        members.dedup();
        assert!(!members.is_empty(), "need at least one member");
        let owners = (0..nshards).map(|s| members[s % members.len()]).collect();
        ShardMap { version: 1, owners, members }
    }

    /// Shard count.
    pub fn nshards(&self) -> usize {
        self.owners.len()
    }

    /// The shard holding global index `g`.
    pub fn shard_of(&self, g: u64) -> u32 {
        (g % self.owners.len() as u64) as u32
    }

    /// The member owning global index `g`.
    pub fn owner_of(&self, g: u64) -> u32 {
        self.owners[self.shard_of(g) as usize]
    }

    /// The member owning shard `s`.
    pub fn owner_of_shard(&self, s: u32) -> u32 {
        self.owners[s as usize]
    }

    /// Whether `node` is an active member.
    pub fn is_member(&self, node: u32) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// Shards currently owned by `node`.
    pub fn shards_of(&self, node: u32) -> Vec<u32> {
        (0..self.owners.len() as u32)
            .filter(|&s| self.owners[s as usize] == node)
            .collect()
    }

    /// A new map admitting `node`, with the minimal move set that
    /// rebalances shard counts to within one of ideal: the joiner
    /// steals from the richest members until it holds `⌊S/(m+1)⌋`
    /// shards. Returns `None` if `node` is already a member.
    pub fn rebalance_join(&self, node: u32) -> Option<(ShardMap, Vec<ShardMove>)> {
        if self.is_member(node) {
            return None;
        }
        let mut next = self.clone();
        next.version += 1;
        let at = next.members.partition_point(|&m| m < node);
        next.members.insert(at, node);
        let take = next.owners.len() / next.members.len();
        let mut moves = Vec::with_capacity(take);
        for _ in 0..take {
            // Steal one shard from the currently richest member;
            // among equals, the lowest id loses its highest shard —
            // deterministic on every node that computes the same edit.
            let richest = *next
                .members
                .iter()
                .filter(|&&m| m != node)
                .max_by_key(|&&m| (next.shards_of(m).len(), std::cmp::Reverse(m)))
                .expect("join always has a prior member");
            let shard = *next.shards_of(richest).last().expect("richest owns a shard");
            next.owners[shard as usize] = node;
            moves.push(ShardMove { shard, from: richest, to: node });
        }
        Some((next, moves))
    }

    /// A new map expelling `node` (leave or evict), its shards dealt
    /// round-robin to the survivors poorest-first. Returns `None` if
    /// `node` is not a member or is the last one.
    pub fn rebalance_leave(&self, node: u32) -> Option<(ShardMap, Vec<ShardMove>)> {
        if !self.is_member(node) || self.members.len() == 1 {
            return None;
        }
        let mut next = self.clone();
        next.version += 1;
        next.members.retain(|&m| m != node);
        let mut moves = Vec::new();
        for shard in self.shards_of(node) {
            let poorest = *next
                .members
                .iter()
                .min_by_key(|&&m| (next.shards_of(m).len(), m))
                .expect("survivors exist");
            next.owners[shard as usize] = poorest;
            moves.push(ShardMove { shard, from: node, to: poorest });
        }
        Some((next, moves))
    }

    /// Flat-word encoding for control frames:
    /// `[version, nmembers, members…, nshards, owners…]`.
    pub fn encode_words(&self) -> Vec<u64> {
        let mut w = Vec::with_capacity(2 + self.members.len() + 1 + self.owners.len());
        w.push(self.version);
        w.push(self.members.len() as u64);
        w.extend(self.members.iter().map(|&m| m as u64));
        w.push(self.owners.len() as u64);
        w.extend(self.owners.iter().map(|&o| o as u64));
        w
    }

    /// Total-on-decode inverse of [`encode_words`](Self::encode_words):
    /// returns the map and the index one past it, or `None` for any
    /// malformed input (never panics — control frames come off the
    /// wire).
    pub fn decode_words(words: &[u64], at: usize) -> Option<(ShardMap, usize)> {
        let version = *words.get(at)?;
        let nm = usize::try_from(*words.get(at + 1)?).ok()?;
        if nm == 0 || nm > 1 << 16 {
            return None;
        }
        let mut i = at + 2;
        let mut members = Vec::with_capacity(nm);
        for _ in 0..nm {
            members.push(u32::try_from(*words.get(i)?).ok()?);
            i += 1;
        }
        if members.windows(2).any(|w| w[0] >= w[1]) {
            return None; // must be sorted + unique
        }
        let ns = usize::try_from(*words.get(i)?).ok()?;
        if ns == 0 || ns > 1 << 20 {
            return None;
        }
        i += 1;
        let mut owners = Vec::with_capacity(ns);
        for _ in 0..ns {
            let o = u32::try_from(*words.get(i)?).ok()?;
            if members.binary_search(&o).is_err() {
                return None; // every owner must be a member
            }
            owners.push(o);
            i += 1;
        }
        Some((ShardMap { version, owners, members }, i))
    }
}

/// One routed element: which node to send to and at which local heap
/// offset it lives there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// Owning node id.
    pub dest: u32,
    /// Offset in the owner's local symmetric heap.
    pub offset: u64,
}

enum DirInner {
    /// Static cluster: the classic fixed [`Partition`] (block/cyclic
    /// layout, compact local offsets).
    Fixed(Partition),
    /// Elastic cluster: a swappable [`ShardMap`]; local offsets are
    /// global indices (heaps provisioned at table size) so they stay
    /// stable across resharding. `term` is the highest coordinator
    /// fencing term observed on an installed-or-attempted map — the
    /// floor below which [`Directory::install_fenced`] rejects frames
    /// outright.
    Elastic { total: usize, map: RwLock<Arc<ShardMap>>, term: AtomicU64 },
}

/// The one address-to-node mapping every producer routes through —
/// apps, the aggregator, and the multi-process sender alike. Fixed
/// directories are a zero-cost view over a [`Partition`]; elastic
/// directories add one `RwLock` read per *packet-sized batch* (callers
/// snapshot the map with [`current_map`](Directory::current_map) for
/// per-message loops).
pub struct Directory {
    inner: DirInner,
}

impl Directory {
    /// A static directory over a fixed partition.
    pub fn fixed(part: Partition) -> Self {
        Directory { inner: DirInner::Fixed(part) }
    }

    /// An elastic directory over `total` global elements, starting at
    /// `map`.
    pub fn elastic(total: usize, map: ShardMap) -> Self {
        Directory {
            inner: DirInner::Elastic {
                total,
                map: RwLock::new(Arc::new(map)),
                term: AtomicU64::new(0),
            },
        }
    }

    /// Route global index `g` to its owner and local offset.
    pub fn route(&self, g: usize) -> Route {
        match &self.inner {
            DirInner::Fixed(p) => Route { dest: p.owner(g) as u32, offset: p.local_offset(g) },
            DirInner::Elastic { total, map, .. } => {
                debug_assert!(g < *total, "global index {g} out of {total}");
                let map = map.read().unwrap_or_else(|p| p.into_inner());
                Route { dest: map.owner_of(g as u64), offset: g as u64 }
            }
        }
    }

    /// Global element count.
    pub fn total(&self) -> usize {
        match &self.inner {
            DirInner::Fixed(p) => p.total(),
            DirInner::Elastic { total, .. } => *total,
        }
    }

    /// The current map version (0 for fixed directories, which never
    /// change).
    pub fn version(&self) -> u64 {
        match &self.inner {
            DirInner::Fixed(_) => 0,
            DirInner::Elastic { map, .. } => {
                map.read().unwrap_or_else(|p| p.into_inner()).version
            }
        }
    }

    /// Snapshot the elastic map (None for fixed directories). One lock
    /// read; hold the `Arc` across a message loop.
    pub fn current_map(&self) -> Option<Arc<ShardMap>> {
        match &self.inner {
            DirInner::Fixed(_) => None,
            DirInner::Elastic { map, .. } => {
                Some(map.read().unwrap_or_else(|p| p.into_inner()).clone())
            }
        }
    }

    /// Install a newer map; refuses stale or equal versions (the
    /// monotonicity guard) and is a no-op on fixed directories.
    /// Returns whether the map was installed.
    pub fn install(&self, new: ShardMap) -> bool {
        match &self.inner {
            DirInner::Fixed(_) => false,
            DirInner::Elastic { map, .. } => {
                let mut cur = map.write().unwrap_or_else(|p| p.into_inner());
                if new.version <= cur.version {
                    return false;
                }
                *cur = Arc::new(new);
                true
            }
        }
    }

    /// The highest coordinator term observed via
    /// [`install_fenced`](Self::install_fenced) (0 for fixed
    /// directories and before any term-stamped frame arrives).
    pub fn term(&self) -> u64 {
        match &self.inner {
            DirInner::Fixed(_) => 0,
            DirInner::Elastic { term, .. } => term.load(Ordering::Acquire),
        }
    }

    /// Term-fenced install (DESIGN.md §18). The term is the map's
    /// *provenance* — which coordinator lease issued it — and gates the
    /// frame before the version is even looked at:
    ///
    /// - `term` below the highest observed → [`FencedInstall::Stale`];
    ///   the frame is from a fenced-off old coordinator and must be
    ///   ignored wholesale (no re-acks, no migration bookkeeping).
    /// - otherwise the observed-term floor rises to `term`, and the map
    ///   installs under the usual monotonic-version rule:
    ///   [`FencedInstall::Installed`] if `new.version` is higher,
    ///   [`FencedInstall::Current`] if not (a takeover re-broadcast of
    ///   a map this node already holds — still a *valid* frame whose
    ///   migration side effects the caller should replay idempotently).
    ///
    /// Versions stay monotonic **across** terms: a higher term never
    /// licenses a version regression, so a successor that missed the
    /// old coordinator's last commit cannot roll this node's map back.
    pub fn install_fenced(&self, new: ShardMap, new_term: u64) -> FencedInstall {
        match &self.inner {
            DirInner::Fixed(_) => FencedInstall::Current,
            DirInner::Elastic { map, term, .. } => {
                let mut cur = map.write().unwrap_or_else(|p| p.into_inner());
                // The term floor only moves under the map write lock, so
                // fencing and installation are atomic together.
                if new_term < term.load(Ordering::Acquire) {
                    return FencedInstall::Stale;
                }
                term.store(new_term, Ordering::Release);
                if new.version <= cur.version {
                    return FencedInstall::Current;
                }
                *cur = Arc::new(new);
                FencedInstall::Installed
            }
        }
    }
}

/// Outcome of a [`Directory::install_fenced`] attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FencedInstall {
    /// The frame's term is below the observed floor: it came from a
    /// fenced-off coordinator. Drop it entirely.
    Stale,
    /// Term accepted (floor possibly raised) but the map is not newer
    /// than the one held — e.g. a takeover re-broadcast. Process the
    /// frame's idempotent side effects; the routing map is unchanged.
    Current,
    /// Term accepted and the newer map is now live.
    Installed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Layout;

    #[test]
    fn initial_map_deals_round_robin_and_is_version_1() {
        let m = ShardMap::initial(&[0, 1, 2, 3], 8);
        assert_eq!(m.version, 1);
        assert_eq!(m.owners, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert!(m.is_member(2));
        assert!(!m.is_member(4));
        assert_eq!(m.owner_of(5), m.owner_of_shard(5));
        assert_eq!(m.shard_of(13), 5);
    }

    #[test]
    fn join_moves_minimally_and_balances() {
        let m = ShardMap::initial(&[0, 1, 2, 3], 64);
        let (next, moves) = m.rebalance_join(4).unwrap();
        assert_eq!(next.version, 2);
        assert!(next.is_member(4));
        // The joiner takes exactly ⌊64/5⌋ = 12 shards; nothing else moves.
        assert_eq!(moves.len(), 12);
        assert_eq!(next.shards_of(4).len(), 12);
        for mv in &moves {
            assert_eq!(mv.to, 4);
            assert_eq!(m.owner_of_shard(mv.shard), mv.from);
            assert_eq!(next.owner_of_shard(mv.shard), 4);
        }
        // Unaffected shards kept their owner.
        let moved: Vec<u32> = moves.iter().map(|mv| mv.shard).collect();
        for s in 0..64u32 {
            if !moved.contains(&s) {
                assert_eq!(m.owner_of_shard(s), next.owner_of_shard(s));
            }
        }
        // Balance: every member within one shard of ideal.
        for &mem in &next.members {
            let n = next.shards_of(mem).len();
            assert!((12..=13).contains(&n), "member {mem} owns {n}");
        }
        // Joining twice is refused.
        assert!(next.rebalance_join(4).is_none());
    }

    #[test]
    fn leave_moves_only_the_leaver_and_evict_of_nonmember_is_refused() {
        let m = ShardMap::initial(&[0, 1, 2, 3], 64);
        let (next, moves) = m.rebalance_leave(2).unwrap();
        assert_eq!(next.version, 2);
        assert!(!next.is_member(2));
        assert_eq!(moves.len(), 16, "exactly the leaver's shards move");
        assert!(moves.iter().all(|mv| mv.from == 2 && mv.to != 2));
        for &mem in &next.members {
            let n = next.shards_of(mem).len();
            assert!((21..=22).contains(&n), "member {mem} owns {n}");
        }
        assert!(m.rebalance_leave(9).is_none(), "non-member");
        let solo = ShardMap::initial(&[5], 8);
        assert!(solo.rebalance_leave(5).is_none(), "last member");
    }

    #[test]
    fn grow_then_shrink_returns_to_a_balanced_four_way_map() {
        let mut m = ShardMap::initial(&[0, 1, 2, 3], 64);
        let (m5, _) = m.rebalance_join(4).unwrap();
        let (m6, _) = m5.rebalance_join(5).unwrap();
        assert_eq!(m6.members, vec![0, 1, 2, 3, 4, 5]);
        let (m5b, _) = m6.rebalance_leave(4).unwrap();
        let (m4, _) = m5b.rebalance_leave(5).unwrap();
        assert_eq!(m4.version, 5);
        assert_eq!(m4.members, vec![0, 1, 2, 3]);
        for mem in 0..4u32 {
            assert_eq!(m4.shards_of(mem).len(), 16);
        }
        m = m4;
        assert_eq!(m.owners.len(), 64);
    }

    #[test]
    fn map_words_roundtrip_and_malformed_decodes_refuse() {
        let m = ShardMap::initial(&[3, 0, 7], 16);
        let w = m.encode_words();
        let (back, end) = ShardMap::decode_words(&w, 0).unwrap();
        assert_eq!(back, m);
        assert_eq!(end, w.len());
        for cut in 0..w.len() {
            assert!(ShardMap::decode_words(&w[..cut], 0).is_none(), "cut {cut}");
        }
        // An owner outside the member set is refused.
        let mut bad = w.clone();
        let last = bad.len() - 1;
        bad[last] = 99;
        assert!(ShardMap::decode_words(&bad, 0).is_none());
        // Unsorted members are refused.
        let mut unsorted = w;
        unsorted.swap(2, 3);
        assert!(ShardMap::decode_words(&unsorted, 0).is_none());
    }

    #[test]
    fn fixed_directory_matches_the_partition() {
        let p = Partition::new(100, 4, Layout::Cyclic);
        let d = Directory::fixed(p);
        for g in 0..100 {
            let r = d.route(g);
            assert_eq!(r.dest as usize, p.owner(g));
            assert_eq!(r.offset, p.local_offset(g));
        }
        assert_eq!(d.version(), 0);
        assert!(d.current_map().is_none());
        assert!(!d.install(ShardMap::initial(&[0], 4)), "fixed never reshards");
    }

    #[test]
    fn elastic_directory_routes_by_map_and_installs_monotonically() {
        let d = Directory::elastic(100, ShardMap::initial(&[0, 1, 2, 3], 8));
        assert_eq!(d.version(), 1);
        let r = d.route(13);
        assert_eq!(r.offset, 13, "elastic offsets are global indices");
        assert_eq!(r.dest, (13 % 8) % 4, "shard 5 deals to member 1");
        let m = d.current_map().unwrap();
        let (next, _) = m.rebalance_join(4).unwrap();
        assert!(d.install(next.clone()));
        assert_eq!(d.version(), 2);
        assert!(!d.install(next), "equal version refused");
        assert!(
            !d.install(ShardMap::initial(&[0, 1], 8)),
            "stale version refused"
        );
        // Routing reflects the installed map.
        let m2 = d.current_map().unwrap();
        for g in 0..100u64 {
            assert_eq!(d.route(g as usize).dest, m2.owner_of(g));
        }
    }

    #[test]
    fn fenced_install_rejects_old_terms_and_keeps_versions_monotonic() {
        let d = Directory::elastic(100, ShardMap::initial(&[0, 1, 2, 3], 8));
        assert_eq!(d.term(), 0, "no term-stamped frame seen yet");

        let m1 = d.current_map().unwrap();
        let (v2, _) = m1.rebalance_join(4).unwrap();
        assert_eq!(d.install_fenced(v2.clone(), 1), FencedInstall::Installed);
        assert_eq!((d.term(), d.version()), (1, 2));

        // Takeover: the successor re-broadcasts the same map under term 2.
        assert_eq!(
            d.install_fenced(v2.clone(), 2),
            FencedInstall::Current,
            "same map under a newer term: valid frame, no map change"
        );
        assert_eq!(d.term(), 2, "the floor still rises");

        // The fenced-off old coordinator resurrects and re-sends v2 —
        // or even a newer-looking v3 — under its dead term 1.
        assert_eq!(d.install_fenced(v2.clone(), 1), FencedInstall::Stale);
        let (v3, _) = v2.rebalance_leave(4).unwrap();
        assert_eq!(d.install_fenced(v3.clone(), 1), FencedInstall::Stale);
        assert_eq!((d.term(), d.version()), (2, 2), "nothing moved");

        // A higher term never licenses a version rollback.
        assert_eq!(
            d.install_fenced(ShardMap::initial(&[0, 1], 8), 5),
            FencedInstall::Current,
            "version 1 under term 5: term accepted, map refused"
        );
        assert_eq!((d.term(), d.version()), (5, 2));

        // And the current term still installs newer maps.
        assert_eq!(d.install_fenced(v3, 5), FencedInstall::Installed);
        assert_eq!((d.term(), d.version()), (5, 3));
    }

    #[test]
    fn fixed_directories_ignore_fencing() {
        let d = Directory::fixed(Partition::new(64, 4, Layout::Block));
        assert_eq!(d.term(), 0);
        assert_eq!(
            d.install_fenced(ShardMap::initial(&[0, 1], 8), 7),
            FencedInstall::Current
        );
        assert_eq!(d.term(), 0, "fixed directories never change");
    }

    #[test]
    fn repeated_join_leave_cycles_keep_every_shard_owned_by_a_member() {
        let mut m = ShardMap::initial(&[0, 1], 32);
        for round in 0..20u32 {
            let candidate = 2 + (round % 5);
            m = if m.is_member(candidate) {
                m.rebalance_leave(candidate).map(|(n, _)| n).unwrap_or(m)
            } else {
                m.rebalance_join(candidate).map(|(n, _)| n).unwrap_or(m)
            };
            for s in 0..32u32 {
                assert!(m.is_member(m.owner_of_shard(s)), "round {round} shard {s}");
            }
        }
    }
}
