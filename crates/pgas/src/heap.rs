//! Symmetric heap.
//!
//! PGAS systems allocate a *symmetric heap*: an array of the same size at
//! the same (virtual) address on every node, so a global element is named
//! by `(node, offset)` and a remote operation ships only the offset
//! (paper Fig. 4: "There is a slice of A, at the same virtual address, on
//! each node"). [`SymmetricHeap`] is one node's slice, stored as atomics
//! because the network thread, the GPU, and helper threads all touch it.

use std::sync::atomic::{AtomicU64, Ordering};

/// One node's slice of the symmetric heap: `len` 64-bit elements.
pub struct SymmetricHeap {
    cells: Box<[AtomicU64]>,
}

impl SymmetricHeap {
    /// A zero-initialised heap of `len` elements.
    pub fn new(len: usize) -> Self {
        SymmetricHeap { cells: (0..len).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the heap has no elements.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Read element `offset`.
    #[inline]
    pub fn load(&self, offset: u64) -> u64 {
        self.cells[offset as usize].load(Ordering::Acquire)
    }

    /// PUT: store `value` at `offset`.
    #[inline]
    pub fn store(&self, offset: u64, value: u64) {
        self.cells[offset as usize].store(value, Ordering::Release);
    }

    /// Atomic add: add `value` to `offset`, returning the old value.
    #[inline]
    pub fn fetch_add(&self, offset: u64, value: u64) -> u64 {
        self.cells[offset as usize].fetch_add(value, Ordering::AcqRel)
    }

    /// Atomic minimum (used by SSSP's relax handler): store
    /// `min(current, value)`, returning the old value.
    pub fn fetch_min(&self, offset: u64, value: u64) -> u64 {
        self.cells[offset as usize].fetch_min(value, Ordering::AcqRel)
    }

    /// Atomic compare-exchange on element `offset`.
    pub fn compare_exchange(&self, offset: u64, current: u64, new: u64) -> Result<u64, u64> {
        self.cells[offset as usize].compare_exchange(
            current,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        )
    }

    /// Copy the heap into a plain vector (test/verification helper; not
    /// atomic across elements).
    pub fn snapshot(&self) -> Vec<u64> {
        self.cells.iter().map(|c| c.load(Ordering::Acquire)).collect()
    }

    /// Bulk-initialise from a slice (test/setup helper).
    pub fn fill_from(&self, values: &[u64]) {
        assert!(values.len() <= self.len(), "initialiser longer than heap");
        for (i, &v) in values.iter().enumerate() {
            self.cells[i].store(v, Ordering::Release);
        }
    }

    /// Reset every element to `value`.
    pub fn reset(&self, value: u64) {
        for c in self.cells.iter() {
            c.store(value, Ordering::Release);
        }
    }
}

impl std::fmt::Debug for SymmetricHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SymmetricHeap({} elements)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip() {
        let h = SymmetricHeap::new(8);
        h.store(3, 42);
        assert_eq!(h.load(3), 42);
        assert_eq!(h.load(0), 0);
    }

    #[test]
    fn fetch_add_accumulates() {
        let h = SymmetricHeap::new(2);
        assert_eq!(h.fetch_add(1, 5), 0);
        assert_eq!(h.fetch_add(1, 7), 5);
        assert_eq!(h.load(1), 12);
    }

    #[test]
    fn fetch_min_keeps_smaller() {
        let h = SymmetricHeap::new(1);
        h.store(0, 100);
        assert_eq!(h.fetch_min(0, 50), 100);
        assert_eq!(h.fetch_min(0, 80), 50);
        assert_eq!(h.load(0), 50);
    }

    #[test]
    fn compare_exchange() {
        let h = SymmetricHeap::new(1);
        assert_eq!(h.compare_exchange(0, 0, 9), Ok(0));
        assert_eq!(h.compare_exchange(0, 0, 10), Err(9));
    }

    #[test]
    fn snapshot_and_fill() {
        let h = SymmetricHeap::new(4);
        h.fill_from(&[1, 2, 3]);
        assert_eq!(h.snapshot(), vec![1, 2, 3, 0]);
        h.reset(7);
        assert_eq!(h.snapshot(), vec![7, 7, 7, 7]);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let h = std::sync::Arc::new(SymmetricHeap::new(1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        h.fetch_add(0, 1);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.load(0), 4000);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        SymmetricHeap::new(1).load(1);
    }
}
