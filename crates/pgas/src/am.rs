//! Active messages.
//!
//! Gravel supports "a primitive active message API" (paper §6): a message
//! names a pre-registered handler that runs *at the destination* against
//! the destination's symmetric heap. Handlers are registered identically
//! on every node before the runtime starts (SPMD style), so a handler id
//! is meaningful cluster-wide. Because Gravel serializes atomics —
//! including active messages — through each node's network thread,
//! handlers may assume they run one-at-a-time per node with respect to
//! other serialized operations.
//!
//! Handlers may also *reply*: the invoke path hands them a callback that
//! enqueues follow-up messages through the local node's own Gravel path
//! (queue → aggregator → wire). Request/response patterns — remote
//! lookups, the Meraculous phase-2 traversal the paper leaves as future
//! work — build on this.

use gravel_gq::Message;

use crate::heap::SymmetricHeap;

/// A simple handler invoked at the destination: `(heap, addr, value)`.
pub type AmHandler = Box<dyn Fn(&SymmetricHeap, u64, u64) + Send + Sync>;

/// A replying handler: like [`AmHandler`] but may emit follow-up
/// messages via the last argument (each is routed through the local
/// node's aggregator like any GPU-initiated message).
pub type AmReplyHandler =
    Box<dyn Fn(&SymmetricHeap, u64, u64, &mut dyn FnMut(Message)) + Send + Sync>;

/// A value-returning handler for the AM_CALL traffic class: runs at the
/// destination against `(heap, arg)` and its return value travels back
/// to the requester in an AM_REPLY. A separate id space from
/// [`AmReplyHandler`] — a call naming a returning id must get a reply or
/// a deterministic timeout, so the two tables never alias.
pub type AmReturningHandler = Box<dyn Fn(&SymmetricHeap, u64) -> u64 + Send + Sync>;

/// Registry of active-message handlers, indexed by the id carried in the
/// message's command word.
#[derive(Default)]
pub struct AmRegistry {
    handlers: Vec<AmReplyHandler>,
    returning: Vec<AmReturningHandler>,
}

impl AmRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a non-replying `handler`, returning its id. Registration
    /// order must match across nodes.
    pub fn register(&mut self, handler: AmHandler) -> u32 {
        self.register_replying(Box::new(move |heap, addr, value, _reply| {
            handler(heap, addr, value)
        }))
    }

    /// Register a replying handler, returning its id.
    pub fn register_replying(&mut self, handler: AmReplyHandler) -> u32 {
        let id = self.handlers.len() as u32;
        self.handlers.push(handler);
        id
    }

    /// Register a value-returning handler for AM_CALL, returning its id
    /// (an independent id space from [`register`](Self::register) /
    /// [`register_replying`](Self::register_replying)). Registration
    /// order must match across nodes.
    pub fn register_returning(&mut self, handler: AmReturningHandler) -> u32 {
        let id = self.returning.len() as u32;
        self.returning.push(handler);
        id
    }

    /// Run returning handler `id` against `heap` and `arg`. `None` for
    /// an unknown id — the caller quarantines the call and the requester
    /// times out deterministically instead of the network thread
    /// crashing.
    pub fn invoke_returning(&self, id: u32, heap: &SymmetricHeap, arg: u64) -> Option<u64> {
        self.returning.get(id as usize).map(|h| h(heap, arg))
    }

    /// Number of registered handlers.
    pub fn len(&self) -> usize {
        self.handlers.len()
    }

    /// True when no handlers are registered.
    pub fn is_empty(&self) -> bool {
        self.handlers.is_empty()
    }

    /// Run handler `id` against `heap`, collecting any replies through
    /// `reply`. Returns `false` (and does nothing) for an unknown id — a
    /// malformed message must not crash the network thread.
    pub fn invoke(
        &self,
        id: u32,
        heap: &SymmetricHeap,
        addr: u64,
        value: u64,
        reply: &mut dyn FnMut(Message),
    ) -> bool {
        match self.handlers.get(id as usize) {
            Some(h) => {
                h(heap, addr, value, reply);
                true
            }
            None => false,
        }
    }
}

impl std::fmt::Debug for AmRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AmRegistry({} handlers, {} returning)",
            self.handlers.len(),
            self.returning.len()
        )
    }
}

/// The relax handler used by SSSP: `dist[addr] = min(dist[addr], value)`.
/// Provided here because several crates (runtime, cluster models, tests)
/// need the identical handler.
pub fn relax_min_handler() -> AmHandler {
    Box::new(|heap, addr, value| {
        heap.fetch_min(addr, value);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_reply() -> impl FnMut(Message) {
        |_m| {}
    }

    #[test]
    fn register_and_invoke() {
        let mut reg = AmRegistry::new();
        let id = reg.register(Box::new(|h, a, v| h.store(a, v * 2)));
        let heap = SymmetricHeap::new(4);
        assert!(reg.invoke(id, &heap, 1, 21, &mut no_reply()));
        assert_eq!(heap.load(1), 42);
    }

    #[test]
    fn ids_are_sequential() {
        let mut reg = AmRegistry::new();
        let a = reg.register(Box::new(|_, _, _| {}));
        let b = reg.register(Box::new(|_, _, _| {}));
        assert_eq!((a, b), (0, 1));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn unknown_handler_is_ignored() {
        let reg = AmRegistry::new();
        let heap = SymmetricHeap::new(1);
        assert!(!reg.invoke(5, &heap, 0, 0, &mut no_reply()));
        assert_eq!(heap.load(0), 0);
    }

    #[test]
    fn relax_min() {
        let mut reg = AmRegistry::new();
        let id = reg.register(relax_min_handler());
        let heap = SymmetricHeap::new(1);
        heap.store(0, 10);
        reg.invoke(id, &heap, 0, 7, &mut no_reply());
        assert_eq!(heap.load(0), 7);
        reg.invoke(id, &heap, 0, 9, &mut no_reply());
        assert_eq!(heap.load(0), 7);
    }

    #[test]
    fn returning_handlers_have_their_own_id_space() {
        let mut reg = AmRegistry::new();
        let plain = reg.register(Box::new(|_, _, _| {}));
        let ret = reg.register_returning(Box::new(|h, a| h.load(a) + 1));
        // Both start at 0: independent tables.
        assert_eq!((plain, ret), (0, 0));
        let heap = SymmetricHeap::new(2);
        heap.store(1, 41);
        assert_eq!(reg.invoke_returning(ret, &heap, 1), Some(42));
        assert_eq!(reg.invoke_returning(9, &heap, 0), None);
    }

    #[test]
    fn replying_handler_emits_messages() {
        let mut reg = AmRegistry::new();
        let id = reg.register_replying(Box::new(|heap, addr, value, reply| {
            let found = heap.load(addr);
            reply(Message::put(value as u32, 0, found + 100));
        }));
        let heap = SymmetricHeap::new(2);
        heap.store(1, 7);
        let mut replies = Vec::new();
        assert!(reg.invoke(id, &heap, 1, 3, &mut |m| replies.push(m)));
        assert_eq!(replies, vec![Message::put(3, 0, 107)]);
    }
}
