//! Poison-message quarantine (DESIGN.md §13).
//!
//! A message that arrives in a frame with a *valid* CRC but fails
//! semantic validation — unknown active-message handler, out-of-range
//! heap address, undecodable command word — is not a transport fault:
//! retransmitting it would deliver the same poison again. Panicking
//! would take the node down for one peer's bug; silently skipping would
//! hide the bug forever. Instead the network thread diverts the
//! offending message into this bounded per-node dead-letter buffer,
//! counts it (`net.quarantined`), and keeps applying the rest of the
//! packet. Operators (and tests) inspect the poison via
//! [`Quarantine::drain`].
//!
//! The buffer is bounded: past `capacity`, the *oldest* entry is
//! evicted (and `net.quarantine_evicted` counted) so a babbling peer
//! cannot OOM the receiver while the newest evidence is retained.

use std::collections::VecDeque;

use gravel_gq::MSG_ROWS;
use gravel_telemetry::{Counter, Registry};
use parking_lot::Mutex;

/// Why a CRC-clean message was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The command word does not decode to any known [`gravel_gq::Command`].
    BadCommand,
    /// An active message named a handler id the node never registered.
    UnknownHandler,
    /// A Put/Inc addressed a heap offset past the local partition.
    OutOfRange,
    /// The packet payload ended mid-message (length not a multiple of
    /// the message stride) — only reachable with `WireIntegrity::Off`.
    PartialPayload,
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QuarantineReason::BadCommand => "bad-command",
            QuarantineReason::UnknownHandler => "unknown-handler",
            QuarantineReason::OutOfRange => "out-of-range",
            QuarantineReason::PartialPayload => "partial-payload",
        };
        f.write_str(s)
    }
}

/// One quarantined message with enough provenance to debug the sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuarantinedMessage {
    /// Node that sent the packet.
    pub src: u32,
    /// Aggregator lane (flow) it arrived on.
    pub lane: u32,
    /// Packet sequence number within the flow.
    pub seq: u64,
    /// Message index inside the packet.
    pub index: usize,
    /// The raw message words, zero-padded if the payload ended early.
    pub words: [u64; MSG_ROWS],
    /// Why it was refused.
    pub reason: QuarantineReason,
}

/// A bounded per-node dead-letter buffer.
pub struct Quarantine {
    buf: Mutex<VecDeque<QuarantinedMessage>>,
    capacity: usize,
    total: Counter,
    evicted: Counter,
}

impl Quarantine {
    /// A quarantine with detached (unregistered but live) counters.
    pub fn detached(capacity: usize) -> Self {
        Quarantine {
            buf: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            total: Counter::detached(),
            evicted: Counter::detached(),
        }
    }

    /// A quarantine whose counters register as
    /// `{prefix}.net.quarantined` / `{prefix}.net.quarantine_evicted`.
    pub fn bound(registry: &Registry, prefix: &str, capacity: usize) -> Self {
        Quarantine {
            buf: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            total: registry.counter(&format!("{prefix}.net.quarantined")),
            evicted: registry.counter(&format!("{prefix}.net.quarantine_evicted")),
        }
    }

    /// Divert one poison message. Evicts the oldest entry when full.
    pub fn push(&self, msg: QuarantinedMessage) {
        self.total.inc();
        let mut buf = self.buf.lock();
        if buf.len() >= self.capacity {
            buf.pop_front();
            self.evicted.inc();
        }
        buf.push_back(msg);
    }

    /// Remove and return everything currently quarantined, oldest first.
    pub fn drain(&self) -> Vec<QuarantinedMessage> {
        self.buf.lock().drain(..).collect()
    }

    /// Messages currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// True when nothing is quarantined right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Messages ever quarantined (monotonic, survives drains).
    pub fn total(&self) -> u64 {
        self.total.get()
    }

    /// Messages evicted to make room (monotonic).
    pub fn evicted(&self) -> u64 {
        self.evicted.get()
    }
}

impl std::fmt::Debug for Quarantine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Quarantine")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("total", &self.total())
            .field("evicted", &self.evicted())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poison(seq: u64) -> QuarantinedMessage {
        QuarantinedMessage {
            src: 1,
            lane: 0,
            seq,
            index: 0,
            words: [seq, 0, 0, 0],
            reason: QuarantineReason::OutOfRange,
        }
    }

    #[test]
    fn push_drain_roundtrip() {
        let q = Quarantine::detached(8);
        assert!(q.is_empty());
        q.push(poison(1));
        q.push(poison(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total(), 2);
        let drained = q.drain();
        assert_eq!(drained.iter().map(|m| m.seq).collect::<Vec<_>>(), [1, 2]);
        assert!(q.is_empty());
        // The monotonic total survives the drain.
        assert_eq!(q.total(), 2);
    }

    #[test]
    fn bounded_evicts_oldest() {
        let q = Quarantine::detached(3);
        for seq in 0..10 {
            q.push(poison(seq));
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.total(), 10);
        assert_eq!(q.evicted(), 7);
        // The newest evidence is what survives.
        assert_eq!(q.drain().iter().map(|m| m.seq).collect::<Vec<_>>(), [7, 8, 9]);
    }

    #[test]
    fn bound_counters_appear_in_registry() {
        let reg = Registry::enabled();
        let q = Quarantine::bound(&reg, "node0", 4);
        q.push(poison(0));
        q.push(poison(1));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("node0.net.quarantined"), 2);
        assert_eq!(snap.counter("node0.net.quarantine_evicted"), 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = Quarantine::detached(0);
        q.push(poison(0));
        q.push(poison(1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.drain()[0].seq, 1);
    }
}
