//! Wire framing and end-to-end integrity (DESIGN.md §13).
//!
//! Every data packet and ack the runtime puts on the fabric is wrapped
//! in a self-describing frame: a fixed 36-byte header (magic, version,
//! kind, routing ids, epoch, sequence number, payload length) followed
//! by the payload and a 4-byte CRC32C trailer computed over everything
//! before it. The receiver verifies the frame *before any decode* — a
//! frame that fails verification is counted and dropped, and the
//! sender's go-back-N retransmission heals it exactly as if the fabric
//! had lost the packet (corrupted ≡ lost at the protocol level).
//!
//! The header checks (magic, version, length consistency) always run;
//! the CRC is computed and verified only under
//! [`WireIntegrity::Crc32c`] (the default). [`WireIntegrity::Off`] is
//! the ablation knob the throughput bench uses to price the checksum.

use std::time::Instant;

use bytes::{BufMut, Bytes, BytesMut};

use crate::nodeq::Packet;

/// Frame magic: `b"GRVL"` read as a little-endian `u32`.
pub const MAGIC: u32 = 0x4C56_5247;

/// Wire-format version this build speaks.
pub const VERSION: u16 = 1;

/// Fixed header size in bytes (see the layout table in DESIGN.md §13).
pub const HEADER_BYTES: usize = 36;

/// Total framing overhead per packet: header plus CRC trailer.
pub const FRAME_OVERHEAD: usize = HEADER_BYTES + 4;

/// An ack frame is a header + trailer with no payload.
pub const ACK_FRAME_BYTES: usize = FRAME_OVERHEAD;

/// Whether frames carry (and receivers verify) a CRC32C trailer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WireIntegrity {
    /// Stamp and verify CRC32C over header + payload (the default).
    #[default]
    Crc32c,
    /// Skip checksum compute and verification; the trailer is stamped
    /// zero and ignored on receive. Structural header checks (magic,
    /// version, length) still run. This is the throughput ablation —
    /// running it over a corrupting fabric forfeits every integrity
    /// guarantee.
    Off,
}

/// What a frame claims to carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// An aggregated data packet (payload = packed messages).
    Data,
    /// A cumulative acknowledgement (no payload; `seq` is the cum-seq).
    Ack,
    /// Connection handshake: the first frame on a new stream, carrying
    /// protocol version (header), node id (`src`), intended peer
    /// (`dest`), current epoch, and cluster shape (payload).
    Hello,
    /// Handshake rejection: sent in place of a HELLO-ack when the
    /// peer's version or cluster shape is unacceptable; the payload
    /// says why.
    Reject,
    /// A liveness beat for the phi-accrual detector (no payload; `seq`
    /// is the beat counter).
    Heartbeat,
    /// Cluster control plane: checkpoint shipping, replay forwarding,
    /// recovery requests. Payload is op-specific `u64` words.
    Control,
    /// A packet of one-sided GET requests (payload = packed GET
    /// messages). Travels the data plane but advertises the LATENCY
    /// band so receivers and schedulers can prioritize without
    /// decoding the payload.
    Get,
    /// A packet of value-returning active-message calls (NORMAL band).
    AmCall,
    /// A packet of replies — GET values or AM return values — headed
    /// back to the requester (LATENCY band).
    AmReply,
}

impl FrameKind {
    fn encode(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::Ack => 1,
            FrameKind::Hello => 2,
            FrameKind::Reject => 3,
            FrameKind::Heartbeat => 4,
            FrameKind::Control => 5,
            FrameKind::Get => 6,
            FrameKind::AmCall => 7,
            FrameKind::AmReply => 8,
        }
    }

    fn decode(b: u8) -> Option<FrameKind> {
        match b {
            0 => Some(FrameKind::Data),
            1 => Some(FrameKind::Ack),
            2 => Some(FrameKind::Hello),
            3 => Some(FrameKind::Reject),
            4 => Some(FrameKind::Heartbeat),
            5 => Some(FrameKind::Control),
            6 => Some(FrameKind::Get),
            7 => Some(FrameKind::AmCall),
            8 => Some(FrameKind::AmReply),
            _ => None,
        }
    }

    /// True for the four kinds that carry packed messages over the data
    /// plane (sequenced, acked, retransmitted by go-back-N). The other
    /// kinds each have their own opener.
    pub fn is_data_plane(self) -> bool {
        matches!(
            self,
            FrameKind::Data | FrameKind::Get | FrameKind::AmCall | FrameKind::AmReply
        )
    }
}

/// Why a frame failed verification. The receiver maps `TooShort` and
/// `Truncated` to its `net.truncated` counter and everything else to
/// `net.corrupt_dropped`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than a header — nothing can be trusted.
    TooShort { have: usize },
    /// The magic word is wrong (garbage frame, or a flip in the first
    /// four bytes).
    BadMagic { got: u32 },
    /// Unknown wire-format version.
    BadVersion { got: u16 },
    /// The kind byte is not a known kind, or not the kind this plane
    /// carries.
    WrongKind { got: u8 },
    /// The frame ends before `payload_len` + trailer bytes arrive.
    Truncated { need: usize, have: usize },
    /// The frame is *longer* than the header says it should be.
    BadLength { expect: usize, have: usize },
    /// The CRC32C trailer does not match the frame contents.
    BadCrc { expect: u32, got: u32 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort { have } => write!(f, "frame too short ({have} bytes)"),
            FrameError::BadMagic { got } => write!(f, "bad frame magic {got:#010x}"),
            FrameError::BadVersion { got } => write!(f, "unknown wire version {got}"),
            FrameError::WrongKind { got } => write!(f, "unexpected frame kind {got}"),
            FrameError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            FrameError::BadLength { expect, have } => {
                write!(f, "oversized frame: expect {expect} bytes, have {have}")
            }
            FrameError::BadCrc { expect, got } => {
                write!(f, "crc mismatch: computed {expect:#010x}, frame says {got:#010x}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// True for the error classes the receiver counts as truncation
    /// (the frame ended early) rather than generic corruption.
    pub fn is_truncation(&self) -> bool {
        matches!(self, FrameError::TooShort { .. } | FrameError::Truncated { .. })
    }
}

/// A verified frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHead {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Reserved flag bits (zero in version 1).
    pub flags: u8,
    /// Sending node.
    pub src: u32,
    /// Destination node the *sender* stamped — the receiver checks this
    /// against its own id to catch misrouted frames.
    pub dest: u32,
    /// Aggregator lane of the flow.
    pub lane: u32,
    /// Checkpoint epoch at the sender when the frame was sealed.
    pub epoch: u32,
    /// Per-flow sequence number (data) or cumulative ack (ack).
    pub seq: u64,
    /// Payload bytes following the header.
    pub payload_len: u32,
}

// ---------------------------------------------------------------------------
// CRC32C (Castagnoli), slice-by-8, tables generated at compile time.
// ---------------------------------------------------------------------------

/// Reflected CRC-32C polynomial.
const CRC_POLY: u32 = 0x82F6_3B78;

const fn make_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ CRC_POLY } else { crc >> 1 };
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static CRC_TABLES: [[u32; 256]; 8] = make_tables();

/// Bytes per interleaved lane in the 3-way hardware CRC kernel. A
/// power of two so the zero-append operator below is pure squarings.
const CRC_LANE_BYTES: usize = 1024;

/// The "append one zero byte" operator on the (reflected) CRC register
/// is linear over GF(2): `crc' = (crc >> 8) ^ T0[crc & 0xff]`. Columns
/// are the operator applied to each basis vector.
const fn gf2_zero_byte_op() -> [u32; 32] {
    let mut m = [0u32; 32];
    let mut i = 0;
    while i < 32 {
        let v = 1u32 << i;
        m[i] = (v >> 8) ^ CRC_TABLES[0][(v & 0xff) as usize];
        i += 1;
    }
    m
}

/// `out = a ∘ b`: column i of the composition is `a` applied to column
/// i of `b`.
const fn gf2_compose(a: &[u32; 32], b: &[u32; 32]) -> [u32; 32] {
    let mut out = [0u32; 32];
    let mut i = 0;
    while i < 32 {
        let mut acc = 0u32;
        let col = b[i];
        let mut j = 0;
        while j < 32 {
            if col >> j & 1 != 0 {
                acc ^= a[j];
            }
            j += 1;
        }
        out[i] = acc;
        i += 1;
    }
    out
}

/// Byte-indexed lookup tables for appending `CRC_LANE_BYTES` zero bytes
/// to a CRC register: the zero-byte operator raised to the 1024th power
/// (ten squarings), split into four per-byte tables so the combine is
/// four loads and three XORs at runtime.
const fn make_shift_tables() -> [[u32; 256]; 4] {
    let mut m = gf2_zero_byte_op();
    let mut s = 0;
    while (1usize << s) < CRC_LANE_BYTES {
        m = gf2_compose(&m, &m);
        s += 1;
    }
    let mut t = [[0u32; 256]; 4];
    let mut k = 0;
    while k < 4 {
        let mut v = 0;
        while v < 256 {
            let mut acc = 0u32;
            let mut j = 0;
            while j < 8 {
                if v >> j & 1 != 0 {
                    acc ^= m[k * 8 + j];
                }
                j += 1;
            }
            t[k][v] = acc;
            v += 1;
        }
        k += 1;
    }
    t
}

static CRC_SHIFT_TABLES: [[u32; 256]; 4] = make_shift_tables();

/// Advance `crc` past `CRC_LANE_BYTES` zero bytes.
#[inline]
fn crc_shift_lane(crc: u32) -> u32 {
    CRC_SHIFT_TABLES[0][(crc & 0xff) as usize]
        ^ CRC_SHIFT_TABLES[1][((crc >> 8) & 0xff) as usize]
        ^ CRC_SHIFT_TABLES[2][((crc >> 16) & 0xff) as usize]
        ^ CRC_SHIFT_TABLES[3][(crc >> 24) as usize]
}

// ---------------------------------------------------------------------------
// Carry-less-multiply folding constants (for the AVX-512 kernel below).
// ---------------------------------------------------------------------------

/// The CRC32C polynomial in natural (non-reflected) bit order, without
/// the implicit x³² term.
const CRC_POLY_NATURAL: u32 = 0x1EDC_6F41;

/// x^n mod P(x) over GF(2), natural bit order (bit i = coefficient of
/// xⁱ).
const fn xpow_mod(n: usize) -> u32 {
    let mut r: u32 = 1;
    let mut i = 0;
    while i < n {
        let carry = r & 0x8000_0000 != 0;
        r <<= 1;
        if carry {
            r ^= CRC_POLY_NATURAL;
        }
        i += 1;
    }
    r
}

const fn rev32(v: u32) -> u32 {
    v.reverse_bits()
}

/// Folding constant for "multiply a reflected 64-bit operand by x^k
/// (mod P)" via `pclmulqdq`: with reflected operands the instruction
/// computes `rev64(a)·rev64(b)·x`, so encoding `rev32(x^(k-32) mod P)
/// << 1` makes `rev64(b)·x ≡ x^k` — the product is congruent to
/// `rev64(a)·x^k` and fits the 128-bit register unreduced.
const fn fold_k(k: usize) -> u64 {
    (rev32(xpow_mod(k - 32)) as u64) << 1
}

/// `(k_lo, k_hi)` fold-constant pairs, forced to compile time (the
/// generator loops are far too slow to run per call).
const K_MAIN: (u64, u64) = (fold_k(1088), fold_k(1024));
const K_Y0: (u64, u64) = (fold_k(832), fold_k(768));
const K_Y1: (u64, u64) = (fold_k(576), fold_k(512));
const K_Y2: (u64, u64) = (fold_k(320), fold_k(256));
const K_LANE: (u64, u64) = (fold_k(192), fold_k(128));

/// CRC32C of `data` (one-shot). Dispatches to the SSE4.2 `crc32`
/// instruction where the CPU has it (the reason Castagnoli was picked
/// over CRC-32/ISO-HDLC), falling back to slice-by-8 tables elsewhere.
pub fn crc32c(data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if data.len() >= 512
            && std::arch::is_x86_feature_detected!("vpclmulqdq")
            && std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("sse4.2")
            && std::arch::is_x86_feature_detected!("pclmulqdq")
        {
            // SAFETY: feature presence checked at runtime above.
            return unsafe { crc32c_clmul(data) };
        }
        if std::arch::is_x86_feature_detected!("sse4.2") {
            // SAFETY: feature presence checked at runtime above.
            return unsafe { crc32c_hw(data) };
        }
    }
    crc32c_sw(data)
}

/// Fold every 128-bit lane of `y` forward by the distance encoded in
/// `k` (lane-uniform `[k_lo, k_hi]` pair) and absorb `next`. 256-bit
/// VEX `vpclmulqdq` on purpose: the ymm encoding stays in the light
/// frequency-license class, where 512-bit carry-less multiplies would
/// trigger AVX-512 license transitions whose stalls dwarf the folding
/// work at this duty cycle (one ~64 kB frame every few hundred µs).
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2,vpclmulqdq")]
unsafe fn fold_ymm(
    y: std::arch::x86_64::__m256i,
    k: std::arch::x86_64::__m256i,
    next: std::arch::x86_64::__m256i,
) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::*;
    let lo = _mm256_clmulepi64_epi128::<0x00>(y, k);
    let hi = _mm256_clmulepi64_epi128::<0x11>(y, k);
    _mm256_xor_si256(_mm256_xor_si256(lo, hi), next)
}

/// Fold one 128-bit lane forward by the distance encoded in `k`.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "pclmulqdq")]
unsafe fn fold_xmm(
    x: std::arch::x86_64::__m128i,
    k: std::arch::x86_64::__m128i,
) -> std::arch::x86_64::__m128i {
    use std::arch::x86_64::*;
    _mm_xor_si128(
        _mm_clmulepi64_si128::<0x00>(x, k),
        _mm_clmulepi64_si128::<0x11>(x, k),
    )
}

/// Carry-less-multiply CRC32C: four 256-bit accumulators folded with
/// VEX `vpclmulqdq` (128 bytes per iteration, independent dependency
/// chains), reduced lane-by-lane to one 128-bit congruent value whose
/// bytes — plus the unconsumed tail — finish through the scalar `crc32`
/// instruction. Folding keeps values *congruent* mod P rather than
/// reduced, so the constants carry the fold distance and the scalar
/// pass does the only true reduction.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2,pclmulqdq,avx2,vpclmulqdq")]
unsafe fn crc32c_clmul(data: &[u8]) -> u32 {
    use std::arch::x86_64::*;
    debug_assert!(data.len() >= 512);
    let p = data.as_ptr();
    let ld = |off: usize| _mm256_loadu_si256(p.add(off) as *const _);
    // Seed four accumulators with the first 128 bytes; the !0 init
    // enters as an XOR onto the first 32 message bits, exactly as in
    // the scalar register convention.
    let mut y0 = _mm256_xor_si256(ld(0), _mm256_castsi128_si256(_mm_cvtsi32_si128(!0i32)));
    let mut y1 = ld(32);
    let mut y2 = ld(64);
    let mut y3 = ld(96);
    let pair = |k: (u64, u64)| {
        _mm256_broadcastsi128_si256(_mm_set_epi64x(k.1 as i64, k.0 as i64))
    };
    // Main loop: each accumulator advances 1024 bits per iteration.
    let k_main = pair(K_MAIN);
    let mut at = 128;
    while at + 128 <= data.len() {
        y0 = fold_ymm(y0, k_main, ld(at));
        y1 = fold_ymm(y1, k_main, ld(at + 32));
        y2 = fold_ymm(y2, k_main, ld(at + 64));
        y3 = fold_ymm(y3, k_main, ld(at + 96));
        at += 128;
    }
    // Merge the four 256-bit blocks (message order y0..y3) into one.
    let zero = _mm256_setzero_si256();
    let w = fold_ymm(y0, pair(K_Y0), y3);
    let w = _mm256_xor_si256(w, fold_ymm(y1, pair(K_Y1), zero));
    let w = _mm256_xor_si256(w, fold_ymm(y2, pair(K_Y2), zero));
    // Merge the block's two lanes into one 128-bit congruent value.
    let kx = |k: (u64, u64)| _mm_set_epi64x(k.1 as i64, k.0 as i64);
    let x = _mm256_extracti128_si256::<1>(w);
    let x = _mm_xor_si128(x, fold_xmm(_mm256_castsi256_si128(w), kx(K_LANE)));
    // Final reduction: run the congruent value and the tail through the
    // scalar instruction from a zero register (the init is already in).
    let mut buf = [0u8; 16];
    _mm_storeu_si128(buf.as_mut_ptr() as *mut _, x);
    let mut crc = 0u64;
    crc = _mm_crc32_u64(crc, u64::from_le_bytes(buf[..8].try_into().unwrap()));
    crc = _mm_crc32_u64(crc, u64::from_le_bytes(buf[8..].try_into().unwrap()));
    let tail = &data[at..];
    let mut chunks = tail.chunks_exact(8);
    for c in &mut chunks {
        crc = _mm_crc32_u64(crc, u64::from_le_bytes(c.try_into().unwrap()));
    }
    let mut crc = crc as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    !crc
}

/// Hardware CRC32C. The `crc32` instruction has 3-cycle latency but
/// single-cycle throughput, so a single dependent chain leaves two
/// thirds of the unit idle; large inputs run three independent lanes of
/// [`CRC_LANE_BYTES`] and stitch them with the zero-append shift
/// operator (`crc(A‖B) = shift_len(B)(crc(A)) ^ crc₀(B)`). The
/// detection branch in [`crc32c`] predicts perfectly, so the dispatch
/// is free on the hot path.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_hw(data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut crc = !0u32;
    let mut data = data;
    while data.len() >= 3 * CRC_LANE_BYTES {
        let mut c0 = crc as u64;
        let mut c1 = 0u64;
        let mut c2 = 0u64;
        let mut at = 0;
        while at < CRC_LANE_BYTES {
            let w = |off: usize| {
                u64::from_le_bytes(data[off..off + 8].try_into().unwrap())
            };
            c0 = _mm_crc32_u64(c0, w(at));
            c1 = _mm_crc32_u64(c1, w(CRC_LANE_BYTES + at));
            c2 = _mm_crc32_u64(c2, w(2 * CRC_LANE_BYTES + at));
            at += 8;
        }
        crc = crc_shift_lane(crc_shift_lane(c0 as u32) ^ c1 as u32) ^ c2 as u32;
        data = &data[3 * CRC_LANE_BYTES..];
    }
    let mut crc = crc as u64;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        crc = _mm_crc32_u64(crc, u64::from_le_bytes(c.try_into().unwrap()));
    }
    let mut crc = crc as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    !crc
}

/// Portable slice-by-8 fallback.
fn crc32c_sw(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC_TABLES[7][(lo & 0xff) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xff) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Seal / open primitives shared by the data and ack planes.
// ---------------------------------------------------------------------------

/// Writes into a fixed byte array without allocating (ack frames).
struct ArrayWriter<'a> {
    buf: &'a mut [u8],
    at: usize,
}

impl BufMut for ArrayWriter<'_> {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf[self.at..self.at + src.len()].copy_from_slice(src);
        self.at += src.len();
    }
}

fn put_header(buf: &mut impl BufMut, head: &FrameHead) {
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(head.kind.encode());
    buf.put_u8(head.flags);
    buf.put_u32_le(head.src);
    buf.put_u32_le(head.dest);
    buf.put_u32_le(head.lane);
    buf.put_u32_le(head.epoch);
    buf.put_u64_le(head.seq);
    buf.put_u32_le(head.payload_len);
}

/// Build a complete frame (header + payload + trailer) as contiguous
/// bytes. Under [`WireIntegrity::Off`] the trailer is stamped zero.
pub fn seal_frame(head: &FrameHead, payload: &[u8], integrity: WireIntegrity) -> Bytes {
    debug_assert_eq!(head.payload_len as usize, payload.len());
    let mut buf = BytesMut::with_capacity(HEADER_BYTES + payload.len() + 4);
    put_header(&mut buf, head);
    buf.put_slice(payload);
    let crc = match integrity {
        WireIntegrity::Crc32c => crc32c(&buf),
        WireIntegrity::Off => 0,
    };
    buf.put_u32_le(crc);
    buf.freeze()
}

/// [`seal_frame`] drawing the frame buffer from a packet-buffer arena:
/// allocation-free in steady state (the buffer and its refcount block
/// both recycle once every clone of the frame drops). `None` falls
/// back to the allocating path.
pub fn seal_frame_in(
    head: &FrameHead,
    payload: &[u8],
    integrity: WireIntegrity,
    pool: Option<&gravel_gq::BufferPool>,
) -> Bytes {
    let Some(pool) = pool else {
        return seal_frame(head, payload, integrity);
    };
    debug_assert_eq!(head.payload_len as usize, payload.len());
    let (mut buf, ticket) = pool.take(HEADER_BYTES + payload.len() + 4);
    put_header(&mut buf, head);
    buf.put_slice(payload);
    let crc = match integrity {
        WireIntegrity::Crc32c => crc32c(&buf),
        WireIntegrity::Off => 0,
    };
    buf.put_u32_le(crc);
    pool.seal(buf, ticket)
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

/// Verify `bytes` as one whole frame of `expect` kind and return its
/// header. Check order is deliberate — structural damage is reported
/// before the (skippable) CRC: length → magic → version → kind →
/// payload-length consistency → CRC.
pub fn open_frame(
    bytes: &[u8],
    expect: FrameKind,
    integrity: WireIntegrity,
) -> Result<FrameHead, FrameError> {
    open_frame_where(bytes, |k| k == expect, integrity)
}

/// Verify `bytes` as one whole frame of any data-plane kind (DATA, GET,
/// AM_CALL, AM_REPLY — see [`FrameKind::is_data_plane`]) and return its
/// header. The receive path uses this so request-reply traffic shares
/// the sequenced go-back-N plane with bulk data.
pub fn open_data_frame(bytes: &[u8], integrity: WireIntegrity) -> Result<FrameHead, FrameError> {
    open_frame_where(bytes, FrameKind::is_data_plane, integrity)
}

fn open_frame_where(
    bytes: &[u8],
    accept: impl Fn(FrameKind) -> bool,
    integrity: WireIntegrity,
) -> Result<FrameHead, FrameError> {
    if bytes.len() < HEADER_BYTES {
        return Err(FrameError::TooShort { have: bytes.len() });
    }
    let magic = read_u32(bytes, 0);
    if magic != MAGIC {
        return Err(FrameError::BadMagic { got: magic });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(FrameError::BadVersion { got: version });
    }
    let kind = FrameKind::decode(bytes[6]).ok_or(FrameError::WrongKind { got: bytes[6] })?;
    if !accept(kind) {
        return Err(FrameError::WrongKind { got: bytes[6] });
    }
    let payload_len = read_u32(bytes, 32);
    let need = HEADER_BYTES + payload_len as usize + 4;
    if bytes.len() < need {
        return Err(FrameError::Truncated { need, have: bytes.len() });
    }
    if bytes.len() > need {
        return Err(FrameError::BadLength { expect: need, have: bytes.len() });
    }
    if integrity == WireIntegrity::Crc32c {
        let got = read_u32(bytes, need - 4);
        let expect_crc = crc32c(&bytes[..need - 4]);
        if got != expect_crc {
            return Err(FrameError::BadCrc { expect: expect_crc, got });
        }
    }
    Ok(FrameHead {
        kind,
        flags: bytes[7],
        src: read_u32(bytes, 8),
        dest: read_u32(bytes, 12),
        lane: read_u32(bytes, 16),
        epoch: read_u32(bytes, 20),
        seq: u64::from_le_bytes(bytes[24..32].try_into().unwrap()),
        payload_len,
    })
}

/// Seal a payload-free ack frame into a fixed array (no allocation —
/// acks are small and frequent). `seq` carries the cumulative ack.
pub fn seal_ack(
    src: u32,
    dest: u32,
    lane: u32,
    epoch: u32,
    cum_seq: u64,
    integrity: WireIntegrity,
) -> [u8; ACK_FRAME_BYTES] {
    let head = FrameHead {
        kind: FrameKind::Ack,
        flags: 0,
        src,
        dest,
        lane,
        epoch,
        seq: cum_seq,
        payload_len: 0,
    };
    let mut out = [0u8; ACK_FRAME_BYTES];
    put_header(&mut ArrayWriter { buf: &mut out, at: 0 }, &head);
    let crc = match integrity {
        WireIntegrity::Crc32c => crc32c(&out[..HEADER_BYTES]),
        WireIntegrity::Off => 0,
    };
    out[HEADER_BYTES..].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Verify an ack frame and return its header.
pub fn open_ack(bytes: &[u8], integrity: WireIntegrity) -> Result<FrameHead, FrameError> {
    open_frame(bytes, FrameKind::Ack, integrity)
}

// ---------------------------------------------------------------------------
// Connection control plane: HELLO / REJECT / HEARTBEAT / CONTROL frames.
// ---------------------------------------------------------------------------

/// HELLO payload: cluster node count + lane count, 4 bytes each.
pub const HELLO_PAYLOAD_BYTES: usize = 8;

/// What a HELLO frame announces about its sender. `peer` is the node
/// id the sender *believes* it is talking to — the accept side checks
/// it against its own id to catch miswired address maps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HelloInfo {
    /// The sending node's id.
    pub node: u32,
    /// The node id the sender expects on the other end.
    pub peer: u32,
    /// Cluster size the sender was configured with.
    pub nodes: u32,
    /// Lane count the sender was configured with.
    pub lanes: u32,
    /// The sender's checkpoint epoch at connect time.
    pub epoch: u32,
}

/// Seal a HELLO handshake frame.
pub fn seal_hello(hello: &HelloInfo, integrity: WireIntegrity) -> Bytes {
    let mut payload = [0u8; HELLO_PAYLOAD_BYTES];
    payload[..4].copy_from_slice(&hello.nodes.to_le_bytes());
    payload[4..].copy_from_slice(&hello.lanes.to_le_bytes());
    let head = FrameHead {
        kind: FrameKind::Hello,
        flags: 0,
        src: hello.node,
        dest: hello.peer,
        lane: 0,
        epoch: hello.epoch,
        seq: 0,
        payload_len: HELLO_PAYLOAD_BYTES as u32,
    };
    seal_frame(&head, &payload, integrity)
}

/// Verify a HELLO frame and decode what it announces. A frame from a
/// build speaking a different wire version fails here with
/// [`FrameError::BadVersion`] — the caller turns that into a counted
/// REJECT instead of a silent hang.
pub fn open_hello(bytes: &[u8], integrity: WireIntegrity) -> Result<HelloInfo, FrameError> {
    let head = open_frame(bytes, FrameKind::Hello, integrity)?;
    if head.payload_len as usize != HELLO_PAYLOAD_BYTES {
        return Err(FrameError::BadLength {
            expect: HEADER_BYTES + HELLO_PAYLOAD_BYTES + 4,
            have: bytes.len(),
        });
    }
    Ok(HelloInfo {
        node: head.src,
        peer: head.dest,
        nodes: read_u32(bytes, HEADER_BYTES),
        lanes: read_u32(bytes, HEADER_BYTES + 4),
        epoch: head.epoch,
    })
}

/// Why a handshake was refused (REJECT payload word 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The peer speaks a different wire-format version; the detail word
    /// carries the version it offered.
    Version,
    /// The peer was configured with a different cluster size or lane
    /// count; the detail word carries the offending value.
    ClusterShape,
    /// The peer's node id is out of range or aimed at the wrong node.
    NodeId,
    /// The first frame was not a well-formed HELLO at all.
    Protocol,
}

impl RejectReason {
    fn encode(self) -> u32 {
        match self {
            RejectReason::Version => 1,
            RejectReason::ClusterShape => 2,
            RejectReason::NodeId => 3,
            RejectReason::Protocol => 4,
        }
    }

    fn decode(v: u32) -> Option<RejectReason> {
        match v {
            1 => Some(RejectReason::Version),
            2 => Some(RejectReason::ClusterShape),
            3 => Some(RejectReason::NodeId),
            4 => Some(RejectReason::Protocol),
            _ => None,
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Version => write!(f, "wire version mismatch"),
            RejectReason::ClusterShape => write!(f, "cluster shape mismatch"),
            RejectReason::NodeId => write!(f, "bad node id"),
            RejectReason::Protocol => write!(f, "not a HELLO"),
        }
    }
}

/// Seal a handshake-rejection frame. `src` is the rejecting node,
/// `detail` is reason-specific (e.g. the version the peer offered).
pub fn seal_reject(
    src: u32,
    reason: RejectReason,
    detail: u32,
    integrity: WireIntegrity,
) -> Bytes {
    let mut payload = [0u8; 8];
    payload[..4].copy_from_slice(&reason.encode().to_le_bytes());
    payload[4..].copy_from_slice(&detail.to_le_bytes());
    let head = FrameHead {
        kind: FrameKind::Reject,
        flags: 0,
        src,
        dest: 0,
        lane: 0,
        epoch: 0,
        seq: 0,
        payload_len: 8,
    };
    seal_frame(&head, &payload, integrity)
}

/// Verify a REJECT frame; returns (rejecting node, reason, detail).
pub fn open_reject(
    bytes: &[u8],
    integrity: WireIntegrity,
) -> Result<(u32, RejectReason, u32), FrameError> {
    let head = open_frame(bytes, FrameKind::Reject, integrity)?;
    if head.payload_len != 8 {
        return Err(FrameError::BadLength { expect: HEADER_BYTES + 12, have: bytes.len() });
    }
    let reason = RejectReason::decode(read_u32(bytes, HEADER_BYTES))
        .ok_or(FrameError::WrongKind { got: bytes[HEADER_BYTES] })?;
    Ok((head.src, reason, read_u32(bytes, HEADER_BYTES + 4)))
}

/// Seal a payload-free heartbeat frame (fixed size, no allocation —
/// beats are frequent). `seq` is the beat counter.
pub fn seal_heartbeat(
    src: u32,
    dest: u32,
    epoch: u32,
    seq: u64,
    integrity: WireIntegrity,
) -> [u8; ACK_FRAME_BYTES] {
    let head = FrameHead {
        kind: FrameKind::Heartbeat,
        flags: 0,
        src,
        dest,
        lane: 0,
        epoch,
        seq,
        payload_len: 0,
    };
    let mut out = [0u8; ACK_FRAME_BYTES];
    put_header(&mut ArrayWriter { buf: &mut out, at: 0 }, &head);
    let crc = match integrity {
        WireIntegrity::Crc32c => crc32c(&out[..HEADER_BYTES]),
        WireIntegrity::Off => 0,
    };
    out[HEADER_BYTES..].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Verify a heartbeat frame and return its header.
pub fn open_heartbeat(bytes: &[u8], integrity: WireIntegrity) -> Result<FrameHead, FrameError> {
    open_frame(bytes, FrameKind::Heartbeat, integrity)
}

/// Seal a control frame whose payload is op-specific `u64` words
/// (checkpoint shipping, replay forwarding, recovery).
pub fn seal_control(
    src: u32,
    dest: u32,
    epoch: u32,
    words: &[u64],
    integrity: WireIntegrity,
) -> Bytes {
    let mut payload = BytesMut::with_capacity(words.len() * 8);
    for &w in words {
        payload.put_u64_le(w);
    }
    let head = FrameHead {
        kind: FrameKind::Control,
        flags: 0,
        src,
        dest,
        lane: 0,
        epoch,
        seq: 0,
        payload_len: payload.len() as u32,
    };
    seal_frame(&head, &payload, integrity)
}

/// Verify a control frame and decode its word payload.
pub fn open_control(
    bytes: &[u8],
    integrity: WireIntegrity,
) -> Result<(FrameHead, Vec<u64>), FrameError> {
    let head = open_frame(bytes, FrameKind::Control, integrity)?;
    if head.payload_len % 8 != 0 {
        return Err(FrameError::BadLength {
            expect: HEADER_BYTES + (head.payload_len as usize / 8) * 8 + 4,
            have: bytes.len(),
        });
    }
    let words = bytes[HEADER_BYTES..HEADER_BYTES + head.payload_len as usize]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    Ok((head, words))
}

// ---------------------------------------------------------------------------
// The data plane's frame type.
// ---------------------------------------------------------------------------

/// One sealed data packet as it travels the fabric: the contiguous
/// frame bytes plus two out-of-band stamps. `dest` is the *routing*
/// stamp the fabric switches on — corruption injection may rewrite it
/// (a misroute), which is exactly why the receiver re-checks the
/// header's `dest` against its own id. `born` is telemetry metadata
/// (aggregation-open time for the latency histogram), not protocol
/// state; it never crosses a real wire and injection never touches it.
#[derive(Clone, Debug)]
pub struct DataFrame {
    /// Sending node (which link the frame leaves on). Out-of-band like
    /// `dest`; the receiver trusts only the verified header's `src`.
    pub src: u32,
    /// Fabric routing stamp (which ingress channel the frame lands in).
    pub dest: u32,
    /// When the aggregation buffer behind the payload was opened.
    pub born: Instant,
    /// The complete frame: header, payload, CRC trailer.
    pub bytes: Bytes,
}

impl DataFrame {
    /// Frame size on the wire.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True for a zero-byte frame (never produced by `seal`).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Verify the frame and decode it back into a [`Packet`]. Accepts
    /// any data-plane kind (DATA, GET, AM_CALL, AM_REPLY); the payload
    /// is a zero-copy slice of the frame bytes.
    pub fn open(&self, integrity: WireIntegrity) -> Result<Packet, FrameError> {
        let head = open_data_frame(&self.bytes, integrity)?;
        Ok(Packet {
            src: head.src,
            dest: head.dest,
            lane: head.lane,
            seq: head.seq,
            born: self.born,
            payload: self
                .bytes
                .slice(HEADER_BYTES..HEADER_BYTES + head.payload_len as usize),
        })
    }
}

impl Packet {
    /// Seal this packet into a wire frame, advertising its traffic
    /// class as the frame kind. Called once per packet at submit time;
    /// retransmissions clone the sealed frame (refcounted bytes), so
    /// the CRC is never recomputed. The aggregator keeps packets
    /// class-pure (runs split on class boundaries), so the first
    /// message's class speaks for the whole payload.
    pub fn seal(&self, epoch: u32, integrity: WireIntegrity) -> DataFrame {
        self.seal_in(epoch, integrity, None)
    }

    /// [`seal`](Self::seal) drawing the frame buffer from a
    /// packet-buffer arena (allocation-free in steady state).
    pub fn seal_in(
        &self,
        epoch: u32,
        integrity: WireIntegrity,
        pool: Option<&gravel_gq::BufferPool>,
    ) -> DataFrame {
        let kind = match self.class() {
            gravel_gq::TrafficClass::Get => FrameKind::Get,
            gravel_gq::TrafficClass::Reply => FrameKind::AmReply,
            gravel_gq::TrafficClass::AmCall => FrameKind::AmCall,
            gravel_gq::TrafficClass::Bulk => FrameKind::Data,
        };
        self.seal_kind_in(epoch, integrity, kind, pool)
    }

    /// Seal with an explicit frame kind (the class-derived [`seal`]
    /// is the normal path).
    pub fn seal_kind(&self, epoch: u32, integrity: WireIntegrity, kind: FrameKind) -> DataFrame {
        self.seal_kind_in(epoch, integrity, kind, None)
    }

    /// [`seal_kind`](Self::seal_kind) drawing the frame buffer from a
    /// packet-buffer arena (allocation-free in steady state).
    pub fn seal_kind_in(
        &self,
        epoch: u32,
        integrity: WireIntegrity,
        kind: FrameKind,
        pool: Option<&gravel_gq::BufferPool>,
    ) -> DataFrame {
        let head = FrameHead {
            kind,
            flags: 0,
            src: self.src,
            dest: self.dest,
            lane: self.lane,
            epoch,
            seq: self.seq,
            payload_len: self.payload.len() as u32,
        };
        DataFrame {
            src: self.src,
            dest: self.dest,
            born: self.born,
            bytes: seal_frame_in(&head, &self.payload, integrity, pool),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_vector() {
        // The canonical CRC-32C check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // Slice-by-8 path (>= 8 bytes) agrees with the bytewise path.
        let data: Vec<u8> = (0..255).collect();
        let bytewise = {
            let mut crc = !0u32;
            for &b in &data {
                crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xff) as usize];
            }
            !crc
        };
        assert_eq!(crc32c(&data), bytewise);
    }

    #[test]
    fn crc32c_hw_and_sw_agree_at_every_length() {
        // The dispatcher must be a pure strength reduction: both paths
        // compute the same polynomial at every alignment and remainder,
        // including lengths that cross the 3-lane kernel threshold and
        // its shift-combine step.
        let data: Vec<u8> = (0..8192u32).map(|i| (i.wrapping_mul(0x9E37) >> 3) as u8).collect();
        for len in (0..1024)
            .chain(3 * CRC_LANE_BYTES - 64..3 * CRC_LANE_BYTES + 320)
            .chain(448..832) // the vpclmulqdq dispatch threshold
        {
            assert_eq!(crc32c(&data[..len]), crc32c_sw(&data[..len]), "len {len}");
        }
        for len in (0..data.len()).step_by(97) {
            assert_eq!(crc32c(&data[..len]), crc32c_sw(&data[..len]), "len {len}");
        }
    }

    fn packet() -> Packet {
        let mut p = Packet::from_words(3, 5, &[1, 2, 3, 4, 5, 6, 7, 8]);
        p.lane = 2;
        p.seq = 99;
        p
    }

    #[test]
    fn data_frame_roundtrip() {
        let pkt = packet();
        let frame = pkt.seal(7, WireIntegrity::Crc32c);
        assert_eq!(frame.dest, 5);
        assert_eq!(frame.len(), FRAME_OVERHEAD + 64);
        let back = frame.open(WireIntegrity::Crc32c).expect("clean frame");
        assert_eq!(back, pkt);
        // The decoded payload borrows the frame's buffer (zero copy).
        assert_eq!(back.payload.as_ptr() as usize, frame.bytes.as_ptr() as usize + HEADER_BYTES);
    }

    #[test]
    fn integrity_off_stamps_zero_crc_and_skips_verify() {
        let pkt = packet();
        let frame = pkt.seal(0, WireIntegrity::Off);
        let tail = &frame.bytes[frame.len() - 4..];
        assert_eq!(tail, [0, 0, 0, 0]);
        assert_eq!(frame.open(WireIntegrity::Off).unwrap(), pkt);
        // A frame sealed without a CRC fails closed under verification.
        assert!(matches!(
            frame.open(WireIntegrity::Crc32c),
            Err(FrameError::BadCrc { .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let frame = packet().seal(1, WireIntegrity::Crc32c);
        for i in 0..frame.len() {
            let mut bad = frame.bytes.to_vec();
            bad[i] ^= 0x5a;
            let mangled = DataFrame { bytes: Bytes::from(bad), ..frame.clone() };
            assert!(
                mangled.open(WireIntegrity::Crc32c).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_classifies_as_truncated() {
        let frame = packet().seal(0, WireIntegrity::Crc32c);
        for cut in [0, 1, HEADER_BYTES - 1, HEADER_BYTES, frame.len() - 1] {
            let short = DataFrame { bytes: frame.bytes.slice(0..cut), ..frame.clone() };
            let err = short.open(WireIntegrity::Crc32c).unwrap_err();
            assert!(err.is_truncation(), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn oversized_frame_rejected() {
        let frame = packet().seal(0, WireIntegrity::Crc32c);
        let mut long = frame.bytes.to_vec();
        long.push(0xaa);
        let fat = DataFrame { bytes: Bytes::from(long), ..frame };
        assert!(matches!(
            fat.open(WireIntegrity::Crc32c),
            Err(FrameError::BadLength { .. })
        ));
    }

    #[test]
    fn garbage_bytes_fail_magic() {
        let junk = DataFrame {
            src: 0,
            dest: 1,
            born: Instant::now(),
            bytes: Bytes::from(vec![0x13u8; 64]),
        };
        assert!(matches!(
            junk.open(WireIntegrity::Crc32c),
            Err(FrameError::BadMagic { .. })
        ));
    }

    #[test]
    fn kind_confusion_is_rejected() {
        // A data frame handed to the ack plane (and vice versa) fails
        // the kind check even when its CRC is fine.
        let frame = packet().seal(0, WireIntegrity::Crc32c);
        assert!(matches!(
            open_ack(&frame.bytes, WireIntegrity::Crc32c),
            Err(FrameError::WrongKind { .. })
        ));
        let ack = seal_ack(1, 0, 2, 3, 41, WireIntegrity::Crc32c);
        assert!(matches!(
            open_frame(&ack, FrameKind::Data, WireIntegrity::Crc32c),
            Err(FrameError::WrongKind { .. })
        ));
    }

    #[test]
    fn ack_roundtrip_and_bitflip_detection() {
        let bytes = seal_ack(1, 0, 2, 9, 12345, WireIntegrity::Crc32c);
        let head = open_ack(&bytes, WireIntegrity::Crc32c).expect("clean ack");
        assert_eq!(
            (head.src, head.dest, head.lane, head.epoch, head.seq),
            (1, 0, 2, 9, 12345)
        );
        for i in 0..bytes.len() {
            let mut bad = bytes;
            bad[i] ^= 1;
            assert!(open_ack(&bad, WireIntegrity::Crc32c).is_err(), "byte {i}");
        }
    }

    #[test]
    fn hello_roundtrip_and_version_mismatch() {
        let hello = HelloInfo { node: 2, peer: 0, nodes: 4, lanes: 1, epoch: 7 };
        let bytes = seal_hello(&hello, WireIntegrity::Crc32c);
        assert_eq!(open_hello(&bytes, WireIntegrity::Crc32c).unwrap(), hello);
        // A HELLO from a build speaking a different wire version is
        // classified as BadVersion so the accept side can REJECT it.
        let mut alien = bytes.to_vec();
        alien[4] = 9;
        alien[5] = 0;
        let tail = alien.len() - 4;
        let crc = crc32c(&alien[..tail]);
        alien[tail..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            open_hello(&alien, WireIntegrity::Crc32c),
            Err(FrameError::BadVersion { got: 9 })
        ));
    }

    #[test]
    fn reject_roundtrip() {
        let bytes = seal_reject(3, RejectReason::Version, 9, WireIntegrity::Crc32c);
        let (src, reason, detail) = open_reject(&bytes, WireIntegrity::Crc32c).unwrap();
        assert_eq!((src, reason, detail), (3, RejectReason::Version, 9));
        for i in 0..bytes.len() {
            let mut bad = bytes.to_vec();
            bad[i] ^= 0x40;
            assert!(open_reject(&bad, WireIntegrity::Crc32c).is_err(), "byte {i}");
        }
    }

    #[test]
    fn heartbeat_roundtrip() {
        let bytes = seal_heartbeat(1, 3, 5, 77, WireIntegrity::Crc32c);
        let head = open_heartbeat(&bytes, WireIntegrity::Crc32c).unwrap();
        assert_eq!((head.src, head.dest, head.epoch, head.seq), (1, 3, 5, 77));
        // Heartbeats are not acks even though they share the layout.
        assert!(open_ack(&bytes, WireIntegrity::Crc32c).is_err());
    }

    #[test]
    fn control_roundtrip() {
        let words = [42u64, 7, u64::MAX, 0];
        let bytes = seal_control(0, 1, 3, &words, WireIntegrity::Crc32c);
        let (head, got) = open_control(&bytes, WireIntegrity::Crc32c).unwrap();
        assert_eq!((head.src, head.dest, head.epoch), (0, 1, 3));
        assert_eq!(got, words);
        let empty = seal_control(2, 3, 0, &[], WireIntegrity::Crc32c);
        let (_, got) = open_control(&empty, WireIntegrity::Crc32c).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn epoch_travels_in_the_header() {
        let frame = packet().seal(42, WireIntegrity::Crc32c);
        let head = open_frame(&frame.bytes, FrameKind::Data, WireIntegrity::Crc32c).unwrap();
        assert_eq!(head.epoch, 42);
    }
}
