//! Per-destination aggregation queues.
//!
//! The aggregator repacks GPU-initiated messages into one queue per
//! destination node and sends a queue "after \[it\] become\[s\] full or
//! exceed\[s\] a timeout" (paper §3.4). The paper's configuration (Table 3)
//! is 64 kB queues with a 125 µs timeout, three in flight per destination.
//! The queue size bounds the maximum network message and is the knob swept
//! by Figure 14; the timeout bounds the latency a sparse destination can
//! add, and is what keeps communication overlapped with computation
//! (Figure 15's kmeans discussion).

use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes, BytesMut};
use gravel_telemetry::{Counter, Registry};

/// Default per-node queue size (Table 3).
pub const DEFAULT_QUEUE_BYTES: usize = 64 * 1024;

/// Default flush timeout (Table 3).
pub const DEFAULT_TIMEOUT: Duration = Duration::from_micros(125);

/// A filled (or timed-out) per-node queue ready for network transmission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Sending node.
    pub src: u32,
    /// Destination node.
    pub dest: u32,
    /// Sending aggregator lane (slot) on `src`. Together with `src` it
    /// names the flow a sequence number belongs to, so multiple
    /// aggregator threads per node keep independent sequence spaces.
    pub lane: u32,
    /// Per-flow sequence number, stamped by the sender at transmit time
    /// (0 until then). The receiver applies packets of a flow in
    /// sequence order exactly once and acks cumulatively.
    pub seq: u64,
    /// When the aggregation buffer behind this packet was opened (first
    /// message buffered). The receiver's apply path turns `born.elapsed()`
    /// into the end-to-end aggregate→apply latency histogram; in-process
    /// nodes share a clock, so the difference is meaningful.
    pub born: Instant,
    /// Message words, little-endian, message-major.
    pub payload: Bytes,
}

impl Packet {
    /// Payload size in bytes (what Table 5's "average message size"
    /// measures).
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the packet carries no messages.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Decode the payload back into `u64` words.
    pub fn words(&self) -> Vec<u64> {
        self.payload.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect()
    }

    /// Build a packet from words (test/model helper).
    pub fn from_words(src: u32, dest: u32, words: &[u64]) -> Self {
        let mut buf = BytesMut::with_capacity(words.len() * 8);
        for &w in words {
            buf.put_u64_le(w);
        }
        Packet { src, dest, lane: 0, seq: 0, born: Instant::now(), payload: buf.freeze() }
    }
}

struct AggBuffer {
    buf: BytesMut,
    opened_at: Option<Instant>,
    messages: u64,
}

/// Aggregation statistics for one node (Table 5's inputs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AggStats {
    /// Packets flushed.
    pub packets: u64,
    /// Total payload bytes flushed.
    pub bytes: u64,
    /// Messages aggregated.
    pub messages: u64,
    /// Packets flushed because they filled.
    pub full_flushes: u64,
    /// Packets flushed because they timed out.
    pub timeout_flushes: u64,
}

/// Live counter handles behind [`AggStats`].
///
/// Detached by default (standalone queues always count); clusters build
/// them with [`AggCounters::bound`] so every aggregator slot of a node
/// adds into the same registry metrics — one increment per event, no
/// per-slot copies to drift.
#[derive(Clone, Debug)]
pub struct AggCounters {
    /// Packets flushed.
    pub packets: Counter,
    /// Total payload bytes flushed.
    pub bytes: Counter,
    /// Messages aggregated.
    pub messages: Counter,
    /// Packets flushed because they filled.
    pub full_flushes: Counter,
    /// Packets flushed because they timed out.
    pub timeout_flushes: Counter,
}

impl Default for AggCounters {
    fn default() -> Self {
        AggCounters {
            packets: Counter::detached(),
            bytes: Counter::detached(),
            messages: Counter::detached(),
            full_flushes: Counter::detached(),
            timeout_flushes: Counter::detached(),
        }
    }
}

impl AggCounters {
    /// Counters registered in `registry` under `{prefix}.agg.{field}`.
    pub fn bound(registry: &Registry, prefix: &str) -> Self {
        let name = |field: &str| format!("{prefix}.agg.{field}");
        AggCounters {
            packets: registry.counter(&name("packets")),
            bytes: registry.counter(&name("bytes")),
            messages: registry.counter(&name("messages")),
            full_flushes: registry.counter(&name("full_flushes")),
            timeout_flushes: registry.counter(&name("timeout_flushes")),
        }
    }

    /// Point-in-time [`AggStats`] view of the handles.
    pub fn snapshot(&self) -> AggStats {
        AggStats {
            packets: self.packets.get(),
            bytes: self.bytes.get(),
            messages: self.messages.get(),
            full_flushes: self.full_flushes.get(),
            timeout_flushes: self.timeout_flushes.get(),
        }
    }
}

impl AggStats {
    /// Average network-message (packet) size in bytes — Table 5's metric.
    pub fn avg_packet_bytes(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.bytes as f64 / self.packets as f64
    }
}

/// One node's set of per-destination aggregation queues.
///
/// ```
/// use gravel_pgas::NodeQueues;
/// use std::time::{Duration, Instant};
///
/// // 64-byte queues hold two 32-byte messages each.
/// let mut nq = NodeQueues::with_config(0, 4, 64, Duration::from_micros(125));
/// let now = Instant::now();
/// assert!(nq.push(2, &[1, 2, 3, 4], now).is_none()); // buffered
/// let pkt = nq.push(2, &[5, 6, 7, 8], now).expect("second message fills it");
/// assert_eq!(pkt.dest, 2);
/// assert_eq!(pkt.words(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// ```
pub struct NodeQueues {
    my_node: u32,
    nodes: usize,
    queue_bytes: usize,
    timeout: Duration,
    bufs: Vec<AggBuffer>,
    /// Aggregation counters (detached unless built via
    /// [`with_telemetry`](Self::with_telemetry)).
    counters: AggCounters,
}

impl NodeQueues {
    /// Queues for `nodes` destinations with the paper's defaults.
    pub fn new(my_node: u32, nodes: usize) -> Self {
        Self::with_config(my_node, nodes, DEFAULT_QUEUE_BYTES, DEFAULT_TIMEOUT)
    }

    /// Queues with explicit size and timeout (Figure 14 sweeps the size).
    pub fn with_config(my_node: u32, nodes: usize, queue_bytes: usize, timeout: Duration) -> Self {
        Self::with_telemetry(my_node, nodes, queue_bytes, timeout, AggCounters::default())
    }

    /// Queues whose flush statistics add into shared `counters` (all
    /// aggregator slots of a node pass clones of the same handles).
    pub fn with_telemetry(
        my_node: u32,
        nodes: usize,
        queue_bytes: usize,
        timeout: Duration,
        counters: AggCounters,
    ) -> Self {
        assert!(queue_bytes >= 32, "queue must hold at least one message");
        NodeQueues {
            my_node,
            nodes,
            queue_bytes,
            timeout,
            bufs: (0..nodes)
                .map(|_| AggBuffer { buf: BytesMut::new(), opened_at: None, messages: 0 })
                .collect(),
            counters,
        }
    }

    /// Configured per-queue capacity in bytes.
    pub fn queue_bytes(&self) -> usize {
        self.queue_bytes
    }

    /// Configured flush timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Point-in-time aggregation statistics.
    pub fn stats(&self) -> AggStats {
        self.counters.snapshot()
    }

    fn flush_dest(&mut self, dest: usize, timed_out: bool) -> Option<Packet> {
        let b = &mut self.bufs[dest];
        if b.buf.is_empty() {
            return None;
        }
        let payload = b.buf.split().freeze();
        let born = b.opened_at.take().unwrap_or_else(Instant::now);
        self.counters.packets.inc();
        self.counters.bytes.add(payload.len() as u64);
        self.counters.messages.add(b.messages);
        b.messages = 0;
        if timed_out {
            self.counters.timeout_flushes.inc();
        } else {
            self.counters.full_flushes.inc();
        }
        Some(Packet { src: self.my_node, dest: dest as u32, lane: 0, seq: 0, born, payload })
    }

    /// Append one message (as words) to destination `dest`'s queue.
    /// Returns a packet when the queue filled.
    pub fn push(&mut self, dest: usize, words: &[u64], now: Instant) -> Option<Packet> {
        assert!(dest < self.nodes, "destination out of range");
        let bytes = words.len() * 8;
        assert!(bytes <= self.queue_bytes, "message larger than queue");
        // Flush first if this message would overflow.
        let flushed = if self.bufs[dest].buf.len() + bytes > self.queue_bytes {
            self.flush_dest(dest, false)
        } else {
            None
        };
        let b = &mut self.bufs[dest];
        if b.buf.is_empty() {
            b.opened_at = Some(now);
        }
        for &w in words {
            b.buf.put_u64_le(w);
        }
        b.messages += 1;
        // Exactly-full queues flush immediately.
        if self.bufs[dest].buf.len() >= self.queue_bytes {
            debug_assert!(flushed.is_none(), "cannot fill twice in one push");
            return self.flush_dest(dest, false);
        }
        flushed
    }

    /// Flush every queue whose oldest message is older than the timeout.
    pub fn poll_timeouts(&mut self, now: Instant) -> Vec<Packet> {
        let expired: Vec<usize> = (0..self.nodes)
            .filter(|&d| {
                self.bufs[d]
                    .opened_at
                    .is_some_and(|t| now.duration_since(t) >= self.timeout)
            })
            .collect();
        expired.into_iter().filter_map(|d| self.flush_dest(d, true)).collect()
    }

    /// Flush everything (end of kernel / shutdown).
    pub fn flush_all(&mut self) -> Vec<Packet> {
        (0..self.nodes).filter_map(|d| self.flush_dest(d, false)).collect()
    }

    /// Bytes currently buffered for `dest`.
    pub fn pending_bytes(&self, dest: usize) -> usize {
        self.bufs[dest].buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(tag: u64) -> [u64; 4] {
        [tag, tag + 1, tag + 2, tag + 3]
    }

    #[test]
    fn push_fills_and_flushes_at_capacity() {
        // 128-byte queue holds 4 × 32-byte messages.
        let mut nq = NodeQueues::with_config(0, 2, 128, DEFAULT_TIMEOUT);
        let now = Instant::now();
        for i in 0..3 {
            assert!(nq.push(1, &words(i), now).is_none());
        }
        let pkt = nq.push(1, &words(3), now).expect("fourth message fills the queue");
        assert_eq!(pkt.dest, 1);
        assert_eq!(pkt.len(), 128);
        assert_eq!(pkt.words().len(), 16);
        assert_eq!(nq.pending_bytes(1), 0);
        assert_eq!(nq.stats().full_flushes, 1);
    }

    #[test]
    fn packet_words_roundtrip() {
        let pkt = Packet::from_words(3, 5, &[1, 2, 3]);
        assert_eq!(pkt.src, 3);
        assert_eq!(pkt.dest, 5);
        assert_eq!(pkt.words(), vec![1, 2, 3]);
        assert_eq!(pkt.len(), 24);
    }

    #[test]
    fn timeout_flushes_partial_queue() {
        let mut nq = NodeQueues::with_config(0, 2, 1024, Duration::from_millis(1));
        let t0 = Instant::now();
        nq.push(1, &words(0), t0);
        assert!(nq.poll_timeouts(t0).is_empty(), "not yet expired");
        let later = t0 + Duration::from_millis(2);
        let pkts = nq.poll_timeouts(later);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].len(), 32);
        assert_eq!(nq.stats().timeout_flushes, 1);
    }

    #[test]
    fn separate_destinations_do_not_mix() {
        let mut nq = NodeQueues::with_config(0, 3, 1024, DEFAULT_TIMEOUT);
        let now = Instant::now();
        nq.push(1, &words(10), now);
        nq.push(2, &words(20), now);
        let pkts = nq.flush_all();
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[0].dest, 1);
        assert_eq!(pkts[0].words()[0], 10);
        assert_eq!(pkts[1].dest, 2);
        assert_eq!(pkts[1].words()[0], 20);
    }

    #[test]
    fn flush_all_skips_empty_queues() {
        let mut nq = NodeQueues::new(0, 4);
        assert!(nq.flush_all().is_empty());
    }

    #[test]
    fn stats_track_average_packet_size() {
        let mut nq = NodeQueues::with_config(0, 2, 64, DEFAULT_TIMEOUT);
        let now = Instant::now();
        for i in 0..4 {
            nq.push(1, &words(i), now); // flushes every 2 messages
        }
        assert_eq!(nq.stats().packets, 2);
        assert!((nq.stats().avg_packet_bytes() - 64.0).abs() < 1e-9);
        assert_eq!(nq.stats().messages, 4);
    }

    #[test]
    fn oversized_message_rejected() {
        let mut nq = NodeQueues::with_config(0, 1, 32, DEFAULT_TIMEOUT);
        let big = vec![0u64; 5];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            nq.push(0, &big, Instant::now());
        }));
        assert!(r.is_err());
    }
}
