//! Per-destination aggregation queues.
//!
//! The aggregator repacks GPU-initiated messages into one queue per
//! destination node and sends a queue "after \[it\] become\[s\] full or
//! exceed\[s\] a timeout" (paper §3.4). The paper's configuration (Table 3)
//! is 64 kB queues with a 125 µs timeout, three in flight per destination.
//! The queue size bounds the maximum network message and is the knob swept
//! by Figure 14; the timeout bounds the latency a sparse destination can
//! add, and is what keeps communication overlapped with computation
//! (Figure 15's kmeans discussion).

use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes, BytesMut};
use gravel_gq::pool::{BufTicket, BufferPool};
use gravel_telemetry::{Counter, Registry};

/// Default per-node queue size (Table 3).
pub const DEFAULT_QUEUE_BYTES: usize = 64 * 1024;

/// Default flush timeout (Table 3).
pub const DEFAULT_TIMEOUT: Duration = Duration::from_micros(125);

/// Bounds for the adaptive flush timeout (see [`FlushPolicy::Adaptive`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveFlush {
    /// Effective timeout for a destination whose queue stays nearly
    /// empty at flush time (sparse traffic: flush fast, keep latency).
    pub min: Duration,
    /// Effective timeout for a destination whose queue flushes full
    /// (dense traffic: wait longer, keep packets big).
    pub max: Duration,
}

impl Default for AdaptiveFlush {
    fn default() -> Self {
        AdaptiveFlush {
            min: Duration::from_micros(25),
            max: Duration::from_micros(500),
        }
    }
}

impl AdaptiveFlush {
    /// Panic on nonsensical bounds (called by config validation).
    pub fn validate(&self) {
        assert!(!self.min.is_zero(), "adaptive flush min must be nonzero");
        assert!(self.max >= self.min, "adaptive flush needs min <= max");
    }
}

/// How a destination queue decides its flush timeout.
///
/// The paper uses one fixed timeout (Table 3: 125 µs) for every
/// destination. `Adaptive` instead tunes each destination within
/// `[min, max]` from an EWMA of how full its recent flushes were: a
/// destination that keeps flushing full packets earns a long timeout
/// (bigger aggregates), one that keeps timing out nearly empty converges
/// to the minimum (paying little latency for traffic that will not
/// aggregate anyway).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// One timeout for every destination.
    Fixed(Duration),
    /// Per-destination timeout tuned within the given bounds.
    Adaptive(AdaptiveFlush),
}

impl FlushPolicy {
    /// The timeout a fresh (no-history) destination starts with.
    fn initial_timeout(&self) -> Duration {
        match *self {
            FlushPolicy::Fixed(t) => t,
            // Start mid-range: the EWMA walks it toward the right bound
            // within a few flushes either way.
            FlushPolicy::Adaptive(a) => a.min + (a.max - a.min) / 2,
        }
    }
}

/// A filled (or timed-out) per-node queue ready for network transmission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Sending node.
    pub src: u32,
    /// Destination node.
    pub dest: u32,
    /// Sending aggregator lane (slot) on `src`. Together with `src` it
    /// names the flow a sequence number belongs to, so multiple
    /// aggregator threads per node keep independent sequence spaces.
    pub lane: u32,
    /// Per-flow sequence number, stamped by the sender at transmit time
    /// (0 until then). The receiver applies packets of a flow in
    /// sequence order exactly once and acks cumulatively.
    pub seq: u64,
    /// When the aggregation buffer behind this packet was opened (first
    /// message buffered). The receiver's apply path turns `born.elapsed()`
    /// into the end-to-end aggregate→apply latency histogram; in-process
    /// nodes share a clock, so the difference is meaningful.
    pub born: Instant,
    /// Message words, little-endian, message-major.
    pub payload: Bytes,
}

impl Packet {
    /// Payload size in bytes (what Table 5's "average message size"
    /// measures).
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the packet carries no messages.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Decode the payload back into `u64` words.
    ///
    /// Allocates a fresh `Vec`; the apply hot path iterates the payload
    /// in place via [`messages`](Self::messages) instead and keeps this
    /// for tests, the replay log, and the model code.
    pub fn words(&self) -> Vec<u64> {
        self.payload
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Number of whole messages in the payload.
    pub fn msg_count(&self) -> usize {
        self.payload.len() / gravel_gq::MSG_BYTES
    }

    /// Decode message `i`'s words straight out of the payload — no
    /// allocation, no bulk copy.
    pub fn msg_words(&self, i: usize) -> [u64; gravel_gq::MSG_ROWS] {
        let at = i * gravel_gq::MSG_BYTES;
        let b = &self.payload[at..at + gravel_gq::MSG_BYTES];
        std::array::from_fn(|row| u64::from_le_bytes(b[row * 8..row * 8 + 8].try_into().unwrap()))
    }

    /// Borrowing iterator over the packet's messages (word arrays),
    /// decoding each lazily from the payload. The receive path's
    /// zero-copy apply loop: nothing is allocated per message or per
    /// packet.
    pub fn messages(&self) -> impl Iterator<Item = [u64; gravel_gq::MSG_ROWS]> + '_ {
        (0..self.msg_count()).map(|i| self.msg_words(i))
    }

    /// Traffic class of the packet, decoded from the first message's
    /// command word. The aggregator splits runs on class boundaries, so
    /// every packet it emits is class-pure and the first message speaks
    /// for all of them. An empty (or garbage) payload classifies as
    /// BULK — the conservative band.
    pub fn class(&self) -> gravel_gq::TrafficClass {
        match self.payload.get(0..8) {
            Some(b) => gravel_gq::TrafficClass::of_command_word(u64::from_le_bytes(
                b.try_into().unwrap(),
            )),
            None => gravel_gq::TrafficClass::Bulk,
        }
    }

    /// Build a packet from words (test/model helper).
    pub fn from_words(src: u32, dest: u32, words: &[u64]) -> Self {
        let mut buf = BytesMut::with_capacity(words.len() * 8);
        for &w in words {
            buf.put_u64_le(w);
        }
        Packet {
            src,
            dest,
            lane: 0,
            seq: 0,
            born: Instant::now(),
            payload: buf.freeze(),
        }
    }
}

struct AggBuffer {
    buf: BytesMut,
    /// Pool claim on `buf`'s backing vector, when it came from the
    /// arena; redeemed at flush so the payload recycles.
    ticket: Option<BufTicket>,
    opened_at: Option<Instant>,
    messages: u64,
    /// EWMA of this destination's fill fraction at flush time (0..=1).
    /// Drives the effective timeout under [`FlushPolicy::Adaptive`]
    /// and, aggregated per lane, the lane governor's signal.
    fill_ewma: f64,
    /// This destination's current effective flush timeout.
    eff_timeout: Duration,
}

/// Aggregation statistics for one node (Table 5's inputs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AggStats {
    /// Packets flushed.
    pub packets: u64,
    /// Total payload bytes flushed.
    pub bytes: u64,
    /// Messages aggregated.
    pub messages: u64,
    /// Packets flushed because they filled.
    pub full_flushes: u64,
    /// Packets flushed because they timed out.
    pub timeout_flushes: u64,
}

/// Live counter handles behind [`AggStats`].
///
/// Detached by default (standalone queues always count); clusters build
/// them with [`AggCounters::bound`] so every aggregator slot of a node
/// adds into the same registry metrics — one increment per event, no
/// per-slot copies to drift.
#[derive(Clone, Debug)]
pub struct AggCounters {
    /// Packets flushed.
    pub packets: Counter,
    /// Total payload bytes flushed.
    pub bytes: Counter,
    /// Messages aggregated.
    pub messages: Counter,
    /// Packets flushed because they filled.
    pub full_flushes: Counter,
    /// Packets flushed because they timed out.
    pub timeout_flushes: Counter,
}

impl Default for AggCounters {
    fn default() -> Self {
        AggCounters {
            packets: Counter::detached(),
            bytes: Counter::detached(),
            messages: Counter::detached(),
            full_flushes: Counter::detached(),
            timeout_flushes: Counter::detached(),
        }
    }
}

impl AggCounters {
    /// Counters registered in `registry` under `{prefix}.agg.{field}`.
    pub fn bound(registry: &Registry, prefix: &str) -> Self {
        let name = |field: &str| format!("{prefix}.agg.{field}");
        AggCounters {
            packets: registry.counter(&name("packets")),
            bytes: registry.counter(&name("bytes")),
            messages: registry.counter(&name("messages")),
            full_flushes: registry.counter(&name("full_flushes")),
            timeout_flushes: registry.counter(&name("timeout_flushes")),
        }
    }

    /// Point-in-time [`AggStats`] view of the handles.
    pub fn snapshot(&self) -> AggStats {
        AggStats {
            packets: self.packets.get(),
            bytes: self.bytes.get(),
            messages: self.messages.get(),
            full_flushes: self.full_flushes.get(),
            timeout_flushes: self.timeout_flushes.get(),
        }
    }
}

impl AggStats {
    /// Average network-message (packet) size in bytes — Table 5's metric.
    pub fn avg_packet_bytes(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.bytes as f64 / self.packets as f64
    }
}

/// One node's set of per-destination aggregation queues.
///
/// ```
/// use gravel_pgas::NodeQueues;
/// use std::time::{Duration, Instant};
///
/// // 64-byte queues hold two 32-byte messages each.
/// let mut nq = NodeQueues::with_config(0, 4, 64, Duration::from_micros(125));
/// let now = Instant::now();
/// assert!(nq.push(2, &[1, 2, 3, 4], now).is_none()); // buffered
/// let pkt = nq.push(2, &[5, 6, 7, 8], now).expect("second message fills it");
/// assert_eq!(pkt.dest, 2);
/// assert_eq!(pkt.words(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// ```
pub struct NodeQueues {
    my_node: u32,
    nodes: usize,
    queue_bytes: usize,
    policy: FlushPolicy,
    bufs: Vec<AggBuffer>,
    /// Buffer arena payload buffers are drawn from and recycled to;
    /// `None` falls back to per-flush allocation.
    pool: Option<BufferPool>,
    /// Aggregation counters (detached unless built via
    /// [`with_telemetry`](Self::with_telemetry)).
    counters: AggCounters,
}

impl NodeQueues {
    /// Queues for `nodes` destinations with the paper's defaults.
    pub fn new(my_node: u32, nodes: usize) -> Self {
        Self::with_config(my_node, nodes, DEFAULT_QUEUE_BYTES, DEFAULT_TIMEOUT)
    }

    /// Queues with explicit size and a fixed timeout (Figure 14 sweeps
    /// the size).
    pub fn with_config(my_node: u32, nodes: usize, queue_bytes: usize, timeout: Duration) -> Self {
        Self::with_policy(
            my_node,
            nodes,
            queue_bytes,
            FlushPolicy::Fixed(timeout),
            AggCounters::default(),
        )
    }

    /// Queues whose flush statistics add into shared `counters` (all
    /// aggregator slots of a node pass clones of the same handles),
    /// with a fixed timeout. Kept source-compatible for existing
    /// callers; the runtime's adaptive mode goes through
    /// [`with_policy`](Self::with_policy).
    pub fn with_telemetry(
        my_node: u32,
        nodes: usize,
        queue_bytes: usize,
        timeout: Duration,
        counters: AggCounters,
    ) -> Self {
        Self::with_policy(
            my_node,
            nodes,
            queue_bytes,
            FlushPolicy::Fixed(timeout),
            counters,
        )
    }

    /// Queues with an explicit [`FlushPolicy`] and shared counters.
    pub fn with_policy(
        my_node: u32,
        nodes: usize,
        queue_bytes: usize,
        policy: FlushPolicy,
        counters: AggCounters,
    ) -> Self {
        assert!(queue_bytes >= 32, "queue must hold at least one message");
        if let FlushPolicy::Adaptive(a) = &policy {
            a.validate();
        }
        let initial = policy.initial_timeout();
        NodeQueues {
            my_node,
            nodes,
            queue_bytes,
            policy,
            bufs: (0..nodes)
                .map(|_| AggBuffer {
                    buf: BytesMut::new(),
                    ticket: None,
                    opened_at: None,
                    messages: 0,
                    fill_ewma: 0.5,
                    eff_timeout: initial,
                })
                .collect(),
            pool: None,
            counters,
        }
    }

    /// Draw flush payload buffers from `pool` (and recycle them there
    /// once the frames built on them drop) instead of allocating per
    /// flush. Builder-style so existing constructors stay untouched.
    pub fn with_pool(mut self, pool: BufferPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Configured per-queue capacity in bytes.
    pub fn queue_bytes(&self) -> usize {
        self.queue_bytes
    }

    /// Configured flush timeout: the fixed value, or the adaptive
    /// starting point.
    pub fn timeout(&self) -> Duration {
        self.policy.initial_timeout()
    }

    /// The flush policy in force.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Destination `dest`'s current effective flush timeout (equals the
    /// fixed timeout under [`FlushPolicy::Fixed`]).
    pub fn effective_timeout(&self, dest: usize) -> Duration {
        self.bufs[dest].eff_timeout
    }

    /// Point-in-time aggregation statistics.
    pub fn stats(&self) -> AggStats {
        self.counters.snapshot()
    }

    fn flush_dest(&mut self, dest: usize, timed_out: bool) -> Option<Packet> {
        let queue_bytes = self.queue_bytes;
        let policy = self.policy;
        let pool = self.pool.as_ref();
        let b = &mut self.bufs[dest];
        if b.buf.is_empty() {
            return None;
        }
        let payload = match pool {
            Some(pool) => {
                // Swap in a recycled buffer, seal the filled one into
                // its slab: the frozen payload is the pooled vector
                // itself — no allocation, no freeze memcpy — and it
                // returns to the arena when the last frame view drops.
                let (next, next_ticket) = pool.take(queue_bytes);
                let filled = std::mem::replace(&mut b.buf, BytesMut::from_vec(next));
                match b.ticket.replace(next_ticket) {
                    Some(t) => pool.seal(filled.into_vec(), t),
                    // First flush of this destination: the buffer
                    // predates pooling (warm-up alloc).
                    None => filled.freeze(),
                }
            }
            None => b.buf.split().freeze(),
        };
        let born = b.opened_at.take().unwrap_or_else(Instant::now);
        // Fill fraction of this flush feeds the destination's EWMA —
        // tracked under every policy (the lane governor reads it);
        // only the effective timeout is adaptive-gated.
        let fill = (payload.len() as f64 / queue_bytes as f64).min(1.0);
        b.fill_ewma = 0.75 * b.fill_ewma + 0.25 * fill;
        if let FlushPolicy::Adaptive(a) = policy {
            b.eff_timeout = a.min + (a.max - a.min).mul_f64(b.fill_ewma);
        }
        self.counters.packets.inc();
        self.counters.bytes.add(payload.len() as u64);
        self.counters.messages.add(b.messages);
        b.messages = 0;
        if timed_out {
            self.counters.timeout_flushes.inc();
        } else {
            self.counters.full_flushes.inc();
        }
        Some(Packet {
            src: self.my_node,
            dest: dest as u32,
            lane: 0,
            seq: 0,
            born,
            payload,
        })
    }

    /// Append one message (as words) to destination `dest`'s queue.
    /// Returns a packet when the queue filled.
    pub fn push(&mut self, dest: usize, words: &[u64], now: Instant) -> Option<Packet> {
        assert!(dest < self.nodes, "destination out of range");
        let bytes = words.len() * 8;
        assert!(bytes <= self.queue_bytes, "message larger than queue");
        // Flush first if this message would overflow.
        let flushed = if self.bufs[dest].buf.len() + bytes > self.queue_bytes {
            self.flush_dest(dest, false)
        } else {
            None
        };
        let b = &mut self.bufs[dest];
        if b.buf.is_empty() {
            b.opened_at = Some(now);
        }
        b.buf.put_u64_slice_le(words);
        b.messages += 1;
        // Exactly-full queues flush immediately.
        if self.bufs[dest].buf.len() >= self.queue_bytes {
            debug_assert!(flushed.is_none(), "cannot fill twice in one push");
            return self.flush_dest(dest, false);
        }
        flushed
    }

    /// Append a run of same-destination messages — `words` holds whole
    /// messages of `rows` words each, message-major. Semantically
    /// identical to pushing each message in order, but the per-message
    /// dispatch (bounds check, overflow branch, buffer lookup) is paid
    /// once per buffer-sized chunk instead of once per message. Packets
    /// flushed along the way are appended to `out` in flush order.
    pub fn push_run(
        &mut self,
        dest: usize,
        words: &[u64],
        rows: usize,
        now: Instant,
        out: &mut Vec<Packet>,
    ) {
        assert!(dest < self.nodes, "destination out of range");
        let msg_bytes = rows * 8;
        assert!(
            msg_bytes > 0 && msg_bytes <= self.queue_bytes,
            "message larger than queue"
        );
        debug_assert_eq!(words.len() % rows, 0, "partial message in run");
        let queue_bytes = self.queue_bytes;
        let mut rest = words;
        while !rest.is_empty() {
            let room = queue_bytes - self.bufs[dest].buf.len();
            let fit = (room / msg_bytes).min(rest.len() / rows);
            if fit == 0 {
                // Next message would overflow; flush and retry. Cannot
                // loop forever: a flushed buffer has room ≥ msg_bytes.
                if let Some(p) = self.flush_dest(dest, false) {
                    out.push(p);
                }
                continue;
            }
            let take = fit * rows;
            let b = &mut self.bufs[dest];
            if b.buf.is_empty() {
                b.opened_at = Some(now);
            }
            b.buf.put_u64_slice_le(&rest[..take]);
            b.messages += fit as u64;
            rest = &rest[take..];
            // Exactly-full queues flush immediately, same as `push`.
            if self.bufs[dest].buf.len() >= queue_bytes {
                if let Some(p) = self.flush_dest(dest, false) {
                    out.push(p);
                }
            }
        }
    }

    /// Flush every queue whose oldest message is older than its
    /// (destination-effective) timeout.
    pub fn poll_timeouts(&mut self, now: Instant) -> Vec<Packet> {
        let mut out = Vec::new();
        self.poll_timeouts_into(now, &mut out);
        out
    }

    /// Allocation-free [`poll_timeouts`](Self::poll_timeouts): flushed
    /// packets are appended to `out` (the aggregator reuses one
    /// scratch vector across batches, so the steady state allocates
    /// nothing here).
    pub fn poll_timeouts_into(&mut self, now: Instant, out: &mut Vec<Packet>) {
        for d in 0..self.nodes {
            let due = self.bufs[d]
                .opened_at
                .is_some_and(|t| now.duration_since(t) >= self.bufs[d].eff_timeout);
            if due {
                if let Some(p) = self.flush_dest(d, true) {
                    out.push(p);
                }
            }
        }
    }

    /// Time until the earliest pending timeout flush, if any destination
    /// has messages buffered. Zero means a flush is already due. Lets
    /// the aggregator bound how long it may park without delaying a
    /// timeout flush.
    pub fn next_deadline(&self, now: Instant) -> Option<Duration> {
        self.bufs
            .iter()
            .filter_map(|b| {
                let opened = b.opened_at?;
                Some(b.eff_timeout.saturating_sub(now.duration_since(opened)))
            })
            .min()
    }

    /// Flush everything (end of kernel / shutdown).
    pub fn flush_all(&mut self) -> Vec<Packet> {
        let mut out = Vec::new();
        self.flush_all_into(&mut out);
        out
    }

    /// Allocation-free [`flush_all`](Self::flush_all), appending to
    /// `out`.
    pub fn flush_all_into(&mut self, out: &mut Vec<Packet>) {
        for d in 0..self.nodes {
            if let Some(p) = self.flush_dest(d, false) {
                out.push(p);
            }
        }
    }

    /// Bytes currently buffered for `dest`.
    pub fn pending_bytes(&self, dest: usize) -> usize {
        self.bufs[dest].buf.len()
    }

    /// The lane governor's load signal: the *highest* per-destination
    /// fill EWMA across this queue set. Max (not mean) because one
    /// dense destination is enough to justify keeping a lane, while
    /// idle destinations (EWMA decaying from its 0.5 start) shouldn't
    /// dilute the signal. Destinations that never flushed report their
    /// neutral 0.5 start only if something is buffered — a completely
    /// untouched queue set reports 0.
    pub fn max_fill_ewma(&self) -> f64 {
        self.bufs
            .iter()
            .filter(|b| b.messages > 0 || b.fill_ewma != 0.5 || b.opened_at.is_some())
            .map(|b| b.fill_ewma)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(tag: u64) -> [u64; 4] {
        [tag, tag + 1, tag + 2, tag + 3]
    }

    #[test]
    fn push_fills_and_flushes_at_capacity() {
        // 128-byte queue holds 4 × 32-byte messages.
        let mut nq = NodeQueues::with_config(0, 2, 128, DEFAULT_TIMEOUT);
        let now = Instant::now();
        for i in 0..3 {
            assert!(nq.push(1, &words(i), now).is_none());
        }
        let pkt = nq
            .push(1, &words(3), now)
            .expect("fourth message fills the queue");
        assert_eq!(pkt.dest, 1);
        assert_eq!(pkt.len(), 128);
        assert_eq!(pkt.words().len(), 16);
        assert_eq!(nq.pending_bytes(1), 0);
        assert_eq!(nq.stats().full_flushes, 1);
    }

    #[test]
    fn push_run_matches_repeated_push() {
        // Runs of every length, against a queue whose capacity (104 B)
        // is deliberately NOT a multiple of the 32-byte message, so the
        // run straddles flush boundaries mid-chunk.
        for run_len in [1usize, 2, 3, 5, 8, 13, 40] {
            let mut by_one = NodeQueues::with_config(0, 2, 104, DEFAULT_TIMEOUT);
            let mut by_run = NodeQueues::with_config(0, 2, 104, DEFAULT_TIMEOUT);
            let now = Instant::now();
            let run: Vec<u64> = (0..run_len as u64).flat_map(|i| words(i * 10)).collect();

            let mut expect = Vec::new();
            for msg in run.chunks(4) {
                expect.extend(by_one.push(1, msg, now));
            }
            let mut got = Vec::new();
            by_run.push_run(1, &run, 4, now, &mut got);

            assert_eq!(got.len(), expect.len(), "run_len={run_len}");
            for (g, e) in got.iter().zip(&expect) {
                assert_eq!(g.words(), e.words(), "run_len={run_len}");
                assert_eq!(g.dest, e.dest);
            }
            assert_eq!(by_run.pending_bytes(1), by_one.pending_bytes(1));
            assert_eq!(by_run.stats().packets, by_one.stats().packets);
            assert_eq!(by_run.stats().messages, by_one.stats().messages);
            assert_eq!(by_run.stats().full_flushes, by_one.stats().full_flushes);
            // Residue must drain identically too.
            let tail_run: Vec<_> = by_run.flush_all().iter().map(|p| p.words()).collect();
            let tail_one: Vec<_> = by_one.flush_all().iter().map(|p| p.words()).collect();
            assert_eq!(tail_run, tail_one, "run_len={run_len}");
        }
    }

    #[test]
    fn packet_words_roundtrip() {
        let pkt = Packet::from_words(3, 5, &[1, 2, 3]);
        assert_eq!(pkt.src, 3);
        assert_eq!(pkt.dest, 5);
        assert_eq!(pkt.words(), vec![1, 2, 3]);
        assert_eq!(pkt.len(), 24);
    }

    #[test]
    fn timeout_flushes_partial_queue() {
        let mut nq = NodeQueues::with_config(0, 2, 1024, Duration::from_millis(1));
        let t0 = Instant::now();
        nq.push(1, &words(0), t0);
        assert!(nq.poll_timeouts(t0).is_empty(), "not yet expired");
        let later = t0 + Duration::from_millis(2);
        let pkts = nq.poll_timeouts(later);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].len(), 32);
        assert_eq!(nq.stats().timeout_flushes, 1);
    }

    #[test]
    fn separate_destinations_do_not_mix() {
        let mut nq = NodeQueues::with_config(0, 3, 1024, DEFAULT_TIMEOUT);
        let now = Instant::now();
        nq.push(1, &words(10), now);
        nq.push(2, &words(20), now);
        let pkts = nq.flush_all();
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[0].dest, 1);
        assert_eq!(pkts[0].words()[0], 10);
        assert_eq!(pkts[1].dest, 2);
        assert_eq!(pkts[1].words()[0], 20);
    }

    #[test]
    fn flush_all_skips_empty_queues() {
        let mut nq = NodeQueues::new(0, 4);
        assert!(nq.flush_all().is_empty());
    }

    #[test]
    fn stats_track_average_packet_size() {
        let mut nq = NodeQueues::with_config(0, 2, 64, DEFAULT_TIMEOUT);
        let now = Instant::now();
        for i in 0..4 {
            nq.push(1, &words(i), now); // flushes every 2 messages
        }
        assert_eq!(nq.stats().packets, 2);
        assert!((nq.stats().avg_packet_bytes() - 64.0).abs() < 1e-9);
        assert_eq!(nq.stats().messages, 4);
    }

    #[test]
    fn msg_words_matches_allocating_decode() {
        let mut all = Vec::new();
        for tag in 0..5 {
            all.extend_from_slice(&words(tag * 10));
        }
        let pkt = Packet::from_words(1, 2, &all);
        assert_eq!(pkt.msg_count(), 5);
        let w = pkt.words();
        for i in 0..pkt.msg_count() {
            assert_eq!(pkt.msg_words(i).as_slice(), &w[i * 4..i * 4 + 4]);
        }
        let via_iter: Vec<u64> = pkt.messages().flatten().collect();
        assert_eq!(via_iter, w);
    }

    #[test]
    fn adaptive_timeout_tracks_fill_fraction() {
        let a = AdaptiveFlush {
            min: Duration::from_micros(25),
            max: Duration::from_micros(500),
        };
        // 128-byte queues: 4 messages fill one.
        let mut nq =
            NodeQueues::with_policy(0, 2, 128, FlushPolicy::Adaptive(a), AggCounters::default());
        let mid = nq.effective_timeout(1);
        assert!(mid > a.min && mid < a.max, "starts mid-range: {mid:?}");
        // Repeated full flushes walk dest 1's timeout toward max.
        let now = Instant::now();
        for round in 0..12 {
            for i in 0..4 {
                nq.push(1, &words(round * 4 + i), now);
            }
        }
        let dense = nq.effective_timeout(1);
        assert!(
            dense > Duration::from_micros(400),
            "dense dest grows toward max: {dense:?}"
        );
        // Repeated near-empty timeout flushes walk a sparse destination's
        // timeout toward min (roomier queue so one message is ~3% fill).
        let mut sq =
            NodeQueues::with_policy(0, 2, 1024, FlushPolicy::Adaptive(a), AggCounters::default());
        for _ in 0..12 {
            sq.push(0, &words(0), now);
            let later = now + Duration::from_secs(1);
            assert_eq!(sq.poll_timeouts(later).len(), 1);
        }
        let sparse = sq.effective_timeout(0);
        assert!(
            sparse < Duration::from_micros(100),
            "sparse dest shrinks toward min: {sparse:?}"
        );
        assert!(
            nq.effective_timeout(1) > sparse,
            "destinations tune independently"
        );
    }

    #[test]
    fn fixed_policy_keeps_one_timeout_for_all() {
        let mut nq = NodeQueues::with_config(0, 2, 64, Duration::from_millis(3));
        let now = Instant::now();
        for i in 0..4 {
            nq.push(1, &words(i), now);
        }
        assert_eq!(nq.effective_timeout(0), Duration::from_millis(3));
        assert_eq!(nq.effective_timeout(1), Duration::from_millis(3));
    }

    #[test]
    fn next_deadline_reports_earliest_pending_flush() {
        let mut nq = NodeQueues::with_config(0, 3, 1024, Duration::from_millis(1));
        let t0 = Instant::now();
        assert_eq!(nq.next_deadline(t0), None, "nothing buffered");
        nq.push(1, &words(0), t0);
        let d = nq.next_deadline(t0).unwrap();
        assert!(
            d <= Duration::from_millis(1) && d > Duration::from_micros(500),
            "{d:?}"
        );
        assert_eq!(
            nq.next_deadline(t0 + Duration::from_millis(2)),
            Some(Duration::ZERO)
        );
    }

    #[test]
    fn oversized_message_rejected() {
        let mut nq = NodeQueues::with_config(0, 1, 32, DEFAULT_TIMEOUT);
        let big = vec![0u64; 5];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            nq.push(0, &big, Instant::now());
        }));
        assert!(r.is_err());
    }
}
