//! # gravel-pgas — partitioned-global-address-space substrate
//!
//! The memory and messaging substrate under the Gravel runtime:
//!
//! * [`SymmetricHeap`] — one node's slice of the PGAS array, with the
//!   atomic operations PUT/INC/active-message resolution needs.
//! * [`Partition`] — global-index → (owner node, local offset) mapping,
//!   block or cyclic.
//! * [`AmRegistry`] — destination-side active-message handlers.
//! * [`NodeQueues`] — the aggregator's per-destination queues (64 kB,
//!   125 µs timeout by default, paper Table 3) producing network
//!   [`Packet`]s.
//! * [`command`] — applying received messages as local memory operations.
//! * [`frame`] — the checksummed wire frame (CRC32C header + trailer)
//!   every packet and ack travels in.
//! * [`quarantine`] — the bounded dead-letter buffer for CRC-clean but
//!   semantically poisonous messages.

pub mod am;
pub mod command;
pub mod frame;
pub mod heap;
pub mod nodeq;
pub mod partition;
pub mod quarantine;
pub mod shard;

pub use am::{relax_min_handler, AmHandler, AmRegistry, AmReturningHandler};
pub use command::{apply, apply_words, Applied};
pub use frame::{
    crc32c, open_ack, open_control, open_data_frame, open_frame, open_heartbeat, open_hello,
    open_reject, seal_ack, seal_control, seal_frame, seal_frame_in, seal_heartbeat, seal_hello,
    seal_reject, DataFrame, FrameError, FrameHead, FrameKind, HelloInfo, RejectReason,
    WireIntegrity, ACK_FRAME_BYTES, FRAME_OVERHEAD, HEADER_BYTES,
};
pub use heap::SymmetricHeap;
pub use quarantine::{Quarantine, QuarantineReason, QuarantinedMessage};
pub use nodeq::{
    AdaptiveFlush, AggCounters, AggStats, FlushPolicy, NodeQueues, Packet, DEFAULT_QUEUE_BYTES,
    DEFAULT_TIMEOUT,
};
pub use partition::{Layout, Partition};
pub use shard::{Directory, FencedInstall, Route, ShardMap, ShardMove, DEFAULT_SHARDS};
