//! Global-index partitioning.
//!
//! Gravel's applications distribute an array (or vertex set) across nodes
//! and name elements by global index; the partition decides which node
//! owns an element and at which local symmetric-heap offset it lives. The
//! partition *is* the source of Table 5's remote-access frequencies —
//! e.g. GUPS's uniformly random updates touch a remote node with
//! probability `(n-1)/n` = 87.5 % at eight nodes.

use serde::{Deserialize, Serialize};

/// Partitioning strategy for a global index space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layout {
    /// Contiguous blocks: node 0 owns `[0, ceil)`, node 1 the next block…
    /// Preserves locality of neighbouring indices (used by the graph
    /// applications, whose generators emit locality-friendly ids).
    Block,
    /// Round-robin: element `i` lives on node `i % n`. Destroys locality;
    /// matches GUPS-style uniform scatter.
    Cyclic,
}

/// A partition of `total` global elements over `nodes` nodes.
///
/// ```
/// use gravel_pgas::{Partition, Layout};
///
/// let p = Partition::new(100, 4, Layout::Cyclic);
/// assert_eq!(p.owner(6), 2);
/// assert_eq!(p.local_offset(6), 1);
/// assert_eq!(p.global(2, 1), 6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    nodes: usize,
    total: usize,
    layout: Layout,
}

impl Partition {
    /// Create a partition; `nodes` must be positive.
    pub fn new(total: usize, nodes: usize, layout: Layout) -> Self {
        assert!(nodes > 0, "need at least one node");
        Partition { nodes, total, layout }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Global element count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Elements per block in [`Layout::Block`].
    fn block(&self) -> usize {
        self.total.div_ceil(self.nodes).max(1)
    }

    /// The node owning global element `g`.
    pub fn owner(&self, g: usize) -> usize {
        assert!(g < self.total, "global index {g} out of {}", self.total);
        match self.layout {
            Layout::Block => (g / self.block()).min(self.nodes - 1),
            Layout::Cyclic => g % self.nodes,
        }
    }

    /// `g`'s offset within its owner's local slice.
    pub fn local_offset(&self, g: usize) -> u64 {
        assert!(g < self.total, "global index {g} out of {}", self.total);
        match self.layout {
            Layout::Block => (g - self.owner(g) * self.block()) as u64,
            Layout::Cyclic => (g / self.nodes) as u64,
        }
    }

    /// Inverse of (`owner`, `local_offset`).
    pub fn global(&self, node: usize, local: u64) -> usize {
        match self.layout {
            Layout::Block => node * self.block() + local as usize,
            Layout::Cyclic => local as usize * self.nodes + node,
        }
    }

    /// Number of elements node `node` owns (the required local heap size).
    pub fn local_len(&self, node: usize) -> usize {
        assert!(node < self.nodes, "node id out of range");
        match self.layout {
            Layout::Block => {
                let b = self.block();
                let start = node * b;
                self.total.saturating_sub(start).min(b)
            }
            Layout::Cyclic => {
                let base = self.total / self.nodes;
                base + usize::from(node < self.total % self.nodes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_partition_examples() {
        let p = Partition::new(10, 4, Layout::Block); // blocks of 3
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(2), 0);
        assert_eq!(p.owner(3), 1);
        assert_eq!(p.owner(9), 3);
        assert_eq!(p.local_offset(4), 1);
        assert_eq!(p.local_len(0), 3);
        assert_eq!(p.local_len(3), 1);
    }

    #[test]
    fn cyclic_partition_examples() {
        let p = Partition::new(10, 4, Layout::Cyclic);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(5), 1);
        assert_eq!(p.local_offset(5), 1);
        assert_eq!(p.local_len(0), 3); // elements 0, 4, 8
        assert_eq!(p.local_len(3), 2); // elements 3, 7
    }

    #[test]
    fn roundtrip_owner_offset_global() {
        for layout in [Layout::Block, Layout::Cyclic] {
            for total in [1usize, 7, 16, 100] {
                for nodes in [1usize, 2, 3, 8] {
                    let p = Partition::new(total, nodes, layout);
                    for g in 0..total {
                        let node = p.owner(g);
                        let off = p.local_offset(g);
                        assert!(node < nodes);
                        assert!((off as usize) < p.local_len(node), "{layout:?} {total} {nodes} {g}");
                        assert_eq!(p.global(node, off), g, "{layout:?} {total} {nodes} {g}");
                    }
                    // Local lengths cover the space exactly.
                    let sum: usize = (0..nodes).map(|n| p.local_len(n)).sum();
                    assert_eq!(sum, total, "{layout:?} {total} {nodes}");
                }
            }
        }
    }

    #[test]
    fn gups_remote_fraction_at_8_nodes() {
        // Table 5: uniform random updates at 8 nodes are 87.5 % remote.
        let p = Partition::new(8000, 8, Layout::Cyclic);
        let me = 0usize;
        let remote = (0..8000).filter(|&g| p.owner(g) != me).count();
        assert_eq!(remote, 7000); // 7/8 of all indices
    }
}
