//! Message application.
//!
//! A node's network thread receives per-node queues, iterates their
//! messages, and "resolves \[each\] as a local memory operation" (paper §6).
//! This module is that resolution step, shared by the live runtime's
//! network thread and the simulated cluster's receive model.

use gravel_gq::{Command, Message};

use crate::am::AmRegistry;
use crate::heap::SymmetricHeap;
use crate::quarantine::QuarantineReason;

/// Outcome of applying one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Applied {
    /// Message executed against the heap.
    Done,
    /// A shutdown sentinel was seen; the caller should stop its loop.
    Shutdown,
    /// The message passed wire integrity but failed semantic validation
    /// (out-of-range address, unknown handler). The caller decides the
    /// policy — the live network thread diverts it to the node's
    /// [`Quarantine`](crate::Quarantine); it still counts as disposed
    /// for quiescence.
    Rejected(QuarantineReason),
}

/// Apply one decoded message to the local heap. Replying active-message
/// handlers emit follow-up messages through `reply`.
///
/// A message addressing beyond the heap is *rejected*, not applied: the
/// network thread must survive corrupted or misrouted traffic (handlers
/// receive the raw `addr` and do their own interpretation, so only
/// PUT/INC are bounds-checked here).
pub fn apply(
    msg: &Message,
    heap: &SymmetricHeap,
    ams: &AmRegistry,
    reply: &mut dyn FnMut(Message),
) -> Applied {
    let in_bounds = (msg.addr as usize) < heap.len();
    match msg.command {
        Command::Put => {
            if !in_bounds {
                return Applied::Rejected(QuarantineReason::OutOfRange);
            }
            heap.store(msg.addr, msg.value);
            Applied::Done
        }
        Command::Inc => {
            if !in_bounds {
                return Applied::Rejected(QuarantineReason::OutOfRange);
            }
            heap.fetch_add(msg.addr, msg.value);
            Applied::Done
        }
        Command::Active(id) => {
            if ams.invoke(id, heap, msg.addr, msg.value, reply) {
                Applied::Done
            } else {
                Applied::Rejected(QuarantineReason::UnknownHandler)
            }
        }
        Command::Shutdown => Applied::Shutdown,
    }
}

/// Apply a packed word stream of messages (message-major, 4 words each) to
/// the local heap. Returns the number of messages *disposed of* — applied
/// or rejected; a rejected message still counts, because quiescence
/// tracking needs every routed message accounted for exactly once.
/// Undecodable chunks are skipped without counting (this path also
/// replays checkpoint journals, which must never perturb the vital
/// counters). Stops early on a shutdown sentinel (reported via the
/// second tuple element). Replies from active-message handlers flow
/// through `reply`.
pub fn apply_words(
    words: &[u64],
    heap: &SymmetricHeap,
    ams: &AmRegistry,
    reply: &mut dyn FnMut(Message),
) -> (usize, bool) {
    let mut disposed = 0;
    for chunk in words.chunks_exact(gravel_gq::MSG_ROWS) {
        let Some(msg) = Message::decode([chunk[0], chunk[1], chunk[2], chunk[3]]) else {
            continue;
        };
        match apply(&msg, heap, ams, reply) {
            Applied::Done | Applied::Rejected(_) => disposed += 1,
            Applied::Shutdown => return (disposed, true),
        }
    }
    (disposed, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_inc() {
        let heap = SymmetricHeap::new(4);
        let ams = AmRegistry::new();
        assert_eq!(apply(&Message::put(0, 1, 9), &heap, &ams, &mut |_| {}), Applied::Done);
        assert_eq!(apply(&Message::inc(0, 1, 3), &heap, &ams, &mut |_| {}), Applied::Done);
        assert_eq!(heap.load(1), 12);
    }

    #[test]
    fn active_message_runs_handler() {
        let heap = SymmetricHeap::new(2);
        let mut ams = AmRegistry::new();
        let id = ams.register(Box::new(|h, a, v| h.store(a, v + 1)));
        assert_eq!(apply(&Message::active(0, id, 0, 41), &heap, &ams, &mut |_| {}), Applied::Done);
        assert_eq!(heap.load(0), 42);
    }

    #[test]
    fn unknown_handler_rejected() {
        let heap = SymmetricHeap::new(1);
        let ams = AmRegistry::new();
        assert_eq!(
            apply(&Message::active(0, 9, 0, 0), &heap, &ams, &mut |_| {}),
            Applied::Rejected(QuarantineReason::UnknownHandler)
        );
    }

    #[test]
    fn word_stream_application_stops_at_shutdown() {
        let heap = SymmetricHeap::new(4);
        let ams = AmRegistry::new();
        let mut words = Vec::new();
        words.extend(Message::inc(0, 0, 1).encode());
        words.extend(Message::shutdown().encode());
        words.extend(Message::inc(0, 0, 1).encode()); // after shutdown: ignored
        let (applied, shutdown) = apply_words(&words, &heap, &ams, &mut |_| {});
        assert_eq!(applied, 1);
        assert!(shutdown);
        assert_eq!(heap.load(0), 1);
    }

    #[test]
    fn out_of_range_addresses_are_quarantined_not_panicked() {
        // OOB addresses must not vanish silently: they land in the
        // quarantine with a counter, exactly as the network thread
        // routes them (ISSUE 5 satellite b).
        let heap = SymmetricHeap::new(2);
        let ams = AmRegistry::new();
        let q = crate::Quarantine::detached(16);
        for (i, msg) in [Message::put(0, 99, 1), Message::inc(0, 2, 1)].iter().enumerate() {
            match apply(msg, &heap, &ams, &mut |_| {}) {
                Applied::Rejected(reason) => {
                    assert_eq!(reason, QuarantineReason::OutOfRange);
                    q.push(crate::QuarantinedMessage {
                        src: 0,
                        lane: 0,
                        seq: 0,
                        index: i,
                        words: msg.encode(),
                        reason,
                    });
                }
                other => panic!("expected rejection, got {other:?}"),
            }
        }
        assert_eq!(q.total(), 2);
        assert_eq!(q.drain().len(), 2);
        assert_eq!(heap.snapshot(), vec![0, 0]);
    }

    #[test]
    fn malformed_words_skipped() {
        let heap = SymmetricHeap::new(1);
        let ams = AmRegistry::new();
        let words = [u64::MAX, 0, 0, 0];
        let (applied, shutdown) = apply_words(&words, &heap, &ams, &mut |_| {});
        assert_eq!(applied, 0);
        assert!(!shutdown);
    }
}
