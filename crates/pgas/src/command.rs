//! Message application.
//!
//! A node's network thread receives per-node queues, iterates their
//! messages, and "resolves \[each\] as a local memory operation" (paper §6).
//! This module is that resolution step, shared by the live runtime's
//! network thread and the simulated cluster's receive model.

use gravel_gq::{Command, Message};

use crate::am::AmRegistry;
use crate::heap::SymmetricHeap;
use crate::quarantine::QuarantineReason;

/// Outcome of applying one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Applied {
    /// Message executed against the heap.
    Done,
    /// A shutdown sentinel was seen; the caller should stop its loop.
    Shutdown,
    /// The message passed wire integrity but failed semantic validation
    /// (out-of-range address, unknown handler). The caller decides the
    /// policy — the live network thread diverts it to the node's
    /// [`Quarantine`](crate::Quarantine); it still counts as disposed
    /// for quiescence.
    Rejected(QuarantineReason),
}

/// Apply one decoded message to the local heap. Replying active-message
/// handlers, GETs, and value-returning AM calls emit follow-up messages
/// through `reply`; `src` is the verified sending node the replies are
/// addressed to (from the frame header, never from the payload).
///
/// A message addressing beyond the heap is *rejected*, not applied: the
/// network thread must survive corrupted or misrouted traffic (handlers
/// receive the raw `addr` and do their own interpretation, so only
/// PUT/INC/GET are bounds-checked here).
pub fn apply(
    msg: &Message,
    src: u32,
    heap: &SymmetricHeap,
    ams: &AmRegistry,
    reply: &mut dyn FnMut(Message),
) -> Applied {
    let in_bounds = (msg.addr as usize) < heap.len();
    match msg.command {
        Command::Put => {
            if !in_bounds {
                return Applied::Rejected(QuarantineReason::OutOfRange);
            }
            heap.store(msg.addr, msg.value);
            Applied::Done
        }
        Command::Inc => {
            if !in_bounds {
                return Applied::Rejected(QuarantineReason::OutOfRange);
            }
            heap.fetch_add(msg.addr, msg.value);
            Applied::Done
        }
        Command::Active(id) => {
            if ams.invoke(id, heap, msg.addr, msg.value, reply) {
                Applied::Done
            } else {
                Applied::Rejected(QuarantineReason::UnknownHandler)
            }
        }
        Command::Shutdown => Applied::Shutdown,
        Command::Get { .. } => {
            // One-sided read: serve the heap word and echo the request
            // token (carried in `value`) back to the sender. A GET of an
            // out-of-range address quarantines like a PUT would; the
            // requester's pending-reply entry then times out
            // deterministically instead of receiving garbage.
            if !in_bounds {
                return Applied::Rejected(QuarantineReason::OutOfRange);
            }
            reply(Message::reply(src, msg.value, heap.load(msg.addr)));
            Applied::Done
        }
        Command::Reply => {
            // Replies are consumed by the requester's network thread
            // (pending-reply table) *before* apply; one reaching this
            // point is a replay or a reply to a restarted node — a
            // harmless no-op against the heap.
            Applied::Done
        }
        Command::AmCall { handler, .. } => match ams.invoke_returning(handler, heap, msg.addr) {
            Some(v) => {
                reply(Message::reply(src, msg.value, v));
                Applied::Done
            }
            None => Applied::Rejected(QuarantineReason::UnknownHandler),
        },
    }
}

/// Apply a packed word stream of messages (message-major, 4 words each) to
/// the local heap. Returns the number of messages *disposed of* — applied
/// or rejected; a rejected message still counts, because quiescence
/// tracking needs every routed message accounted for exactly once.
/// Undecodable chunks are skipped without counting (this path also
/// replays checkpoint journals, which must never perturb the vital
/// counters). Stops early on a shutdown sentinel (reported via the
/// second tuple element). Replies from active-message handlers flow
/// through `reply`.
pub fn apply_words(
    words: &[u64],
    src: u32,
    heap: &SymmetricHeap,
    ams: &AmRegistry,
    reply: &mut dyn FnMut(Message),
) -> (usize, bool) {
    let mut disposed = 0;
    for chunk in words.chunks_exact(gravel_gq::MSG_ROWS) {
        let Some(msg) = Message::decode([chunk[0], chunk[1], chunk[2], chunk[3]]) else {
            continue;
        };
        match apply(&msg, src, heap, ams, reply) {
            Applied::Done | Applied::Rejected(_) => disposed += 1,
            Applied::Shutdown => return (disposed, true),
        }
    }
    (disposed, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_inc() {
        let heap = SymmetricHeap::new(4);
        let ams = AmRegistry::new();
        assert_eq!(apply(&Message::put(0, 1, 9), 0, &heap, &ams, &mut |_| {}), Applied::Done);
        assert_eq!(apply(&Message::inc(0, 1, 3), 0, &heap, &ams, &mut |_| {}), Applied::Done);
        assert_eq!(heap.load(1), 12);
    }

    #[test]
    fn active_message_runs_handler() {
        let heap = SymmetricHeap::new(2);
        let mut ams = AmRegistry::new();
        let id = ams.register(Box::new(|h, a, v| h.store(a, v + 1)));
        assert_eq!(apply(&Message::active(0, id, 0, 41), 0, &heap, &ams, &mut |_| {}), Applied::Done);
        assert_eq!(heap.load(0), 42);
    }

    #[test]
    fn unknown_handler_rejected() {
        let heap = SymmetricHeap::new(1);
        let ams = AmRegistry::new();
        assert_eq!(
            apply(&Message::active(0, 9, 0, 0), 0, &heap, &ams, &mut |_| {}),
            Applied::Rejected(QuarantineReason::UnknownHandler)
        );
    }

    #[test]
    fn word_stream_application_stops_at_shutdown() {
        let heap = SymmetricHeap::new(4);
        let ams = AmRegistry::new();
        let mut words = Vec::new();
        words.extend(Message::inc(0, 0, 1).encode());
        words.extend(Message::shutdown().encode());
        words.extend(Message::inc(0, 0, 1).encode()); // after shutdown: ignored
        let (applied, shutdown) = apply_words(&words, 0, &heap, &ams, &mut |_| {});
        assert_eq!(applied, 1);
        assert!(shutdown);
        assert_eq!(heap.load(0), 1);
    }

    #[test]
    fn out_of_range_addresses_are_quarantined_not_panicked() {
        // OOB addresses must not vanish silently: they land in the
        // quarantine with a counter, exactly as the network thread
        // routes them (ISSUE 5 satellite b).
        let heap = SymmetricHeap::new(2);
        let ams = AmRegistry::new();
        let q = crate::Quarantine::detached(16);
        for (i, msg) in [Message::put(0, 99, 1), Message::inc(0, 2, 1)].iter().enumerate() {
            match apply(msg, 0, &heap, &ams, &mut |_| {}) {
                Applied::Rejected(reason) => {
                    assert_eq!(reason, QuarantineReason::OutOfRange);
                    q.push(crate::QuarantinedMessage {
                        src: 0,
                        lane: 0,
                        seq: 0,
                        index: i,
                        words: msg.encode(),
                        reason,
                    });
                }
                other => panic!("expected rejection, got {other:?}"),
            }
        }
        assert_eq!(q.total(), 2);
        assert_eq!(q.drain().len(), 2);
        assert_eq!(heap.snapshot(), vec![0, 0]);
    }

    #[test]
    fn get_serves_heap_word_and_echoes_token() {
        let heap = SymmetricHeap::new(4);
        let ams = AmRegistry::new();
        heap.store(2, 0xfeed);
        let mut replies = Vec::new();
        assert_eq!(
            apply(&Message::get(1, 2, 777, 50), 9, &heap, &ams, &mut |m| replies.push(m)),
            Applied::Done
        );
        // Reply goes to the *frame* source (9), not the payload dest.
        assert_eq!(replies, vec![Message::reply(9, 777, 0xfeed)]);
    }

    #[test]
    fn get_out_of_range_is_rejected_without_reply() {
        let heap = SymmetricHeap::new(2);
        let ams = AmRegistry::new();
        let mut replies = Vec::new();
        assert_eq!(
            apply(&Message::get(1, 99, 1, 50), 0, &heap, &ams, &mut |m| replies.push(m)),
            Applied::Rejected(QuarantineReason::OutOfRange)
        );
        assert!(replies.is_empty());
    }

    #[test]
    fn am_call_replies_with_handler_result() {
        let heap = SymmetricHeap::new(2);
        let mut ams = AmRegistry::new();
        heap.store(0, 20);
        let id = ams.register_returning(Box::new(|h, a| h.load(a) * 2 + 2));
        let mut replies = Vec::new();
        assert_eq!(
            apply(&Message::am_call(1, id, 0, 55, 50), 3, &heap, &ams, &mut |m| replies.push(m)),
            Applied::Done
        );
        assert_eq!(replies, vec![Message::reply(3, 55, 42)]);
        // Unknown returning handler: rejected, no reply, requester times out.
        replies.clear();
        assert_eq!(
            apply(&Message::am_call(1, 9, 0, 55, 50), 3, &heap, &ams, &mut |m| replies.push(m)),
            Applied::Rejected(QuarantineReason::UnknownHandler)
        );
        assert!(replies.is_empty());
    }

    #[test]
    fn stray_reply_is_a_noop() {
        let heap = SymmetricHeap::new(1);
        let ams = AmRegistry::new();
        assert_eq!(
            apply(&Message::reply(0, 7, 123), 2, &heap, &ams, &mut |_| {}),
            Applied::Done
        );
        assert_eq!(heap.load(0), 0);
    }

    #[test]
    fn malformed_words_skipped() {
        let heap = SymmetricHeap::new(1);
        let ams = AmRegistry::new();
        let words = [u64::MAX, 0, 0, 0];
        let (applied, shutdown) = apply_words(&words, 0, &heap, &ams, &mut |_| {});
        assert_eq!(applied, 0);
        assert!(!shutdown);
    }
}
