//! Proof that the receive hot path decodes packets without allocating.
//!
//! The network thread used to call `Packet::words()` per packet, which
//! heap-allocates a `Vec<u64>` for every apply. The borrowing
//! `Packet::messages()` iterator replaces it; this test pins the
//! zero-allocation property with a counting global allocator so a
//! regression shows up as a test failure, not a profile artifact.
//!
//! Counting is gated on a thread-local flag so only the measured region
//! on the test thread is counted — the libtest harness allocates from
//! other threads concurrently and must not pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

std::thread_local! {
    static TRACK: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc {
    allocs: AtomicU64,
}

impl CountingAlloc {
    fn count(&self) {
        // `try_with` so allocations during TLS teardown don't panic.
        if TRACK.try_with(|t| t.get()).unwrap_or(false) {
            self.allocs.fetch_add(1, Ordering::Relaxed);
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.count();
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.count();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc {
    allocs: AtomicU64::new(0),
};

/// Run `f` with this thread's allocations counted; return how many there
/// were.
fn counted<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = GLOBAL.allocs.load(Ordering::SeqCst);
    TRACK.with(|t| t.set(true));
    let r = f();
    TRACK.with(|t| t.set(false));
    let after = GLOBAL.allocs.load(Ordering::SeqCst);
    (after - before, r)
}

#[test]
fn borrowing_iterator_does_not_allocate() {
    use gravel_gq::Message;
    use gravel_pgas::Packet;

    // Build the packet up front; only the decode loop is measured.
    let mut words = Vec::new();
    for i in 0..512u64 {
        words.extend_from_slice(&Message::inc((i % 7) as u32, i * 8, i).encode());
    }
    let pkt = Packet::from_words(3, 5, &words);
    let expect: u64 = words.iter().sum();

    let (allocs, sum) = counted(|| {
        let mut sum = 0u64;
        for _ in 0..100 {
            sum = 0;
            for msg in pkt.messages() {
                for w in msg {
                    sum = sum.wrapping_add(w);
                }
            }
        }
        sum
    });

    assert_eq!(sum, expect, "decode loop read every word");
    assert_eq!(allocs, 0, "messages() iteration must not allocate");

    // Sanity-check the counter actually counts: the allocating decode
    // trips it.
    let (allocs, via_vec) = counted(|| pkt.words().iter().sum::<u64>());
    assert_eq!(via_vec, expect);
    assert!(allocs > 0, "Packet::words() allocates, counter sees it");
}
