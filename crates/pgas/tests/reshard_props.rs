//! Property tests for the elastic shard directory's exactly-once
//! bounce ledger (DESIGN.md §16).
//!
//! The model is the node binary's protocol in miniature: senders hold
//! possibly-stale `ShardMap` snapshots and route INCs under them; the
//! receiver side applies a unit only if the *current* map says it owns
//! the address, and otherwise bounces it back (stale-routed NACK with
//! the new map attached). Map-version bumps — joins and leaves — are
//! interleaved arbitrarily with sends and deliveries. The properties:
//!
//! 1. Every increment applies exactly once, at whichever node owns the
//!    address at apply time — the cluster-wide per-address total equals
//!    the issued count, no loss, no double-apply.
//! 2. The ledger reconciles: `stale_routed == redelivered` once traffic
//!    drains (no sender ever dies in this model, so `dropped == 0`).
//! 3. Map versions only move forward, and routing always agrees with
//!    the installed map.

use std::collections::VecDeque;

use gravel_pgas::{Directory, ShardMap};
use proptest::prelude::*;
use proptest::prop_oneof;

const TABLE: usize = 64;
const NSHARDS: usize = 16;
const SENDERS: usize = 4;
/// Initial members; flips only ever touch ids ≥ 3, so the founding
/// members (like the real coordinator, node 0) never leave.
const FOUNDERS: [u32; 3] = [0, 1, 2];
const MAX_NODE: u32 = 8;

#[derive(Debug, Clone)]
enum Op {
    /// Sender issues `n` INCs to `addr`, routed under its snapshot.
    Send { sender: usize, addr: usize, n: u8 },
    /// Sender refreshes its snapshot to the current map.
    Refresh { sender: usize },
    /// Deliver up to `n` in-flight units.
    Deliver { n: u8 },
    /// Topology change: `who` joins, or leaves if already a member.
    Flip { who: u32 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0usize..SENDERS, 0usize..TABLE, 1u8..4)
            .prop_map(|(sender, addr, n)| Op::Send { sender, addr, n }),
        1 => (0usize..SENDERS).prop_map(|sender| Op::Refresh { sender }),
        3 => (1u8..8).prop_map(|n| Op::Deliver { n }),
        1 => (3u32..MAX_NODE).prop_map(|who| Op::Flip { who }),
    ]
}

/// One in-flight increment: who sent it, where it's addressed, and
/// which node the (possibly stale) snapshot routed it to.
#[derive(Debug, Clone, Copy)]
struct Unit {
    sender: usize,
    addr: usize,
    dest: u32,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn interleaved_reshards_deliver_every_inc_exactly_once(
        ops in prop::collection::vec(op(), 1..120),
    ) {
        let dir = Directory::elastic(TABLE, ShardMap::initial(&FOUNDERS, NSHARDS));
        let mut snapshots: Vec<_> =
            (0..SENDERS).map(|_| dir.current_map().unwrap()).collect();
        let mut heaps = vec![vec![0u64; TABLE]; MAX_NODE as usize];
        let mut net: VecDeque<Unit> = VecDeque::new();
        let mut expected = vec![0u64; TABLE];
        let mut stale_routed = 0u64;
        let mut redelivered = 0u64;
        let mut applied = 0u64;
        let mut last_version = dir.version();
        prop_assert_eq!(last_version, 1);

        let deliver_one = |net: &mut VecDeque<Unit>,
                               heaps: &mut Vec<Vec<u64>>,
                               snapshots: &mut Vec<std::sync::Arc<ShardMap>>,
                               stale: &mut u64,
                               redel: &mut u64,
                               applied: &mut u64| {
            let Some(u) = net.pop_front() else { return false };
            let current = dir.current_map().unwrap();
            if current.owner_of(u.addr as u64) == u.dest {
                // Elastic offsets are global indices: apply verbatim.
                heaps[u.dest as usize][u.addr] += 1;
                *applied += 1;
            } else {
                // Stale-routed: bounce to the sender with the new map
                // attached; the sender installs it and re-sends.
                *stale += 1;
                *redel += 1;
                snapshots[u.sender] = current.clone();
                net.push_back(Unit { dest: current.owner_of(u.addr as u64), ..u });
            }
            true
        };

        for o in ops {
            match o {
                Op::Send { sender, addr, n } => {
                    let dest = snapshots[sender].owner_of(addr as u64);
                    expected[addr] += n as u64;
                    for _ in 0..n {
                        net.push_back(Unit { sender, addr, dest });
                    }
                }
                Op::Refresh { sender } => {
                    snapshots[sender] = dir.current_map().unwrap();
                }
                Op::Deliver { n } => {
                    for _ in 0..n {
                        if !deliver_one(
                            &mut net, &mut heaps, &mut snapshots,
                            &mut stale_routed, &mut redelivered, &mut applied,
                        ) {
                            break;
                        }
                    }
                }
                Op::Flip { who } => {
                    let m = dir.current_map().unwrap();
                    let next = if m.is_member(who) {
                        m.rebalance_leave(who).map(|(n, _)| n)
                    } else {
                        m.rebalance_join(who).map(|(n, _)| n)
                    };
                    if let Some(next) = next {
                        let v = next.version;
                        prop_assert!(dir.install(next), "monotonic install");
                        prop_assert_eq!(dir.version(), v);
                        prop_assert!(v > last_version, "versions move forward");
                        last_version = v;
                    }
                }
            }
        }

        // Drain: no more topology changes, so every bounced unit
        // re-routes under the final map and must land.
        let mut guard = 0u32;
        while deliver_one(
            &mut net, &mut heaps, &mut snapshots,
            &mut stale_routed, &mut redelivered, &mut applied,
        ) {
            guard += 1;
            prop_assert!(guard < 1_000_000, "drain did not terminate");
        }

        // Exactly once: cluster-wide per-address totals match issuance.
        let issued: u64 = expected.iter().sum();
        prop_assert_eq!(applied, issued, "every unit applied exactly once");
        for (addr, &want) in expected.iter().enumerate() {
            let got: u64 = heaps.iter().map(|h| h[addr]).sum();
            prop_assert_eq!(got, want, "addr {} total", addr);
        }
        // Ledger reconciliation: every refused unit was re-delivered.
        prop_assert_eq!(stale_routed, redelivered);
        // Routing agrees with the installed map for every address.
        let fin = dir.current_map().unwrap();
        for g in 0..TABLE {
            prop_assert_eq!(dir.route(g).dest, fin.owner_of(g as u64));
            prop_assert_eq!(dir.route(g).offset, g as u64, "elastic offsets are global");
        }
    }
}
