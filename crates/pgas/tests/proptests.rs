//! Property tests for the PGAS substrate.

use std::time::{Duration, Instant};

use gravel_pgas::{
    apply_words, open_ack, open_control, open_frame, open_heartbeat, open_hello, open_reject,
    seal_control, seal_heartbeat, seal_hello, seal_reject, AmRegistry, DataFrame, FrameKind,
    HelloInfo, Layout, NodeQueues, Packet, Partition, RejectReason, SymmetricHeap, WireIntegrity,
    ACK_FRAME_BYTES,
};
use proptest::prelude::*;

/// Case count for the wire-fuzz properties below. The default keeps CI
/// fast; the nightly-style fuzz job raises it via `GRAVEL_FUZZ_CASES`.
fn fuzz_cases() -> u32 {
    std::env::var("GRAVEL_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// owner/local_offset/global round-trips and partitions cover the
    /// space exactly, for both layouts and arbitrary sizes.
    #[test]
    fn partition_roundtrip_and_coverage(
        total in 1usize..5000,
        nodes in 1usize..16,
        cyclic: bool,
    ) {
        let layout = if cyclic { Layout::Cyclic } else { Layout::Block };
        let p = Partition::new(total, nodes, layout);
        let mut seen = vec![0u32; total];
        for (g, count) in seen.iter_mut().enumerate() {
            let node = p.owner(g);
            prop_assert!(node < nodes);
            let off = p.local_offset(g);
            prop_assert!((off as usize) < p.local_len(node));
            prop_assert_eq!(p.global(node, off), g);
            *count += 1;
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
        let sum: usize = (0..nodes).map(|n| p.local_len(n)).sum();
        prop_assert_eq!(sum, total);
    }

    /// Aggregation conserves messages and bytes: whatever goes into the
    /// per-destination queues comes out in packets, exactly once, in
    /// order per destination.
    #[test]
    fn nodeq_conserves_messages(
        dests in prop::collection::vec(0usize..6, 1..300),
        queue_msgs in 1usize..16,
    ) {
        let queue_bytes = queue_msgs * 32;
        let mut nq = NodeQueues::with_config(0, 6, queue_bytes, Duration::from_secs(3600));
        let now = Instant::now();
        let mut packets = Vec::new();
        for (i, &d) in dests.iter().enumerate() {
            let words = [i as u64, d as u64, 0, 0];
            if let Some(p) = nq.push(d, &words, now) {
                packets.push(p);
            }
        }
        packets.extend(nq.flush_all());
        // Every message appears exactly once, tagged by its index.
        let mut tags: Vec<u64> = packets
            .iter()
            .flat_map(|p| p.words().chunks_exact(4).map(|c| c[0]).collect::<Vec<_>>())
            .collect();
        tags.sort_unstable();
        prop_assert_eq!(tags, (0..dests.len() as u64).collect::<Vec<_>>());
        // Per destination, arrival order is preserved.
        for d in 0..6u32 {
            let per_dest: Vec<u64> = packets
                .iter()
                .filter(|p| p.dest == d)
                .flat_map(|p| p.words().chunks_exact(4).map(|c| c[0]).collect::<Vec<_>>())
                .collect();
            prop_assert!(per_dest.windows(2).all(|w| w[0] < w[1]), "dest {}", d);
        }
        // No packet exceeds the queue size.
        for p in &packets {
            prop_assert!(p.len() <= queue_bytes);
        }
    }

    /// Applying an arbitrary word stream of valid INC messages yields the
    /// exact histogram.
    #[test]
    fn apply_words_is_exact(
        addrs in prop::collection::vec(0u64..32, 0..200),
    ) {
        let heap = SymmetricHeap::new(32);
        let ams = AmRegistry::new();
        let mut words = Vec::new();
        for &a in &addrs {
            words.extend(gravel_gq::Message::inc(0, a, 1).encode());
        }
        let (applied, shutdown) = apply_words(&words, 0, &heap, &ams, &mut |_| {});
        prop_assert_eq!(applied, addrs.len());
        prop_assert!(!shutdown);
        let mut expect = vec![0u64; 32];
        for &a in &addrs {
            expect[a as usize] += 1;
        }
        prop_assert_eq!(heap.snapshot(), expect);
    }

    /// Garbage words never panic the decoder; valid prefixes still apply.
    #[test]
    fn apply_words_tolerates_garbage(words in prop::collection::vec(any::<u64>(), 0..64)) {
        let heap = SymmetricHeap::new(4);
        let ams = AmRegistry::new();
        // Mask addresses into range so valid-looking messages don't go out
        // of bounds (bounds are the runtime's contract, not the codec's).
        let words: Vec<u64> = words
            .iter()
            .enumerate()
            .map(|(i, &w)| if i % 4 == 2 { w % 4 } else { w })
            .collect();
        let _ = apply_words(&words, 0, &heap, &ams, &mut |_| {});
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Flipping any single bit anywhere in a sealed data frame —
    /// header, payload, or CRC trailer — must make it fail to open.
    /// (CRC32C has Hamming distance ≥ 4 at these frame sizes, so a
    /// flip the structural checks miss is always caught by the CRC.)
    #[test]
    fn any_single_bit_flip_is_rejected(
        words in prop::collection::vec(any::<u64>(), 0..40),
        src in 0u32..8,
        dest in 0u32..8,
        seq in any::<u64>(),
        at in any::<usize>(),
        bit in 0u32..8,
    ) {
        let mut pkt = Packet::from_words(src, dest, &words);
        pkt.seq = seq;
        let frame = pkt.seal(0, WireIntegrity::Crc32c);
        prop_assert!(frame.open(WireIntegrity::Crc32c).is_ok());
        let mut mangled = frame.bytes.to_vec();
        let i = at % mangled.len();
        mangled[i] ^= 1 << bit;
        let bad = DataFrame {
            bytes: bytes::Bytes::from(mangled),
            ..frame
        };
        prop_assert!(bad.open(WireIntegrity::Crc32c).is_err());
    }

    /// Arbitrary bytes handed to the frame decoders — data, ack, with
    /// integrity on or off — never panic; they decode or they error.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(
        junk in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        for integrity in [WireIntegrity::Crc32c, WireIntegrity::Off] {
            let _ = open_frame(&junk, FrameKind::Data, integrity);
            let _ = open_frame(&junk, FrameKind::Ack, integrity);
            let _ = gravel_pgas::open_data_frame(&junk, integrity);
            let _ = open_ack(&junk, integrity);
            let frame = DataFrame {
                src: 0,
                dest: 0,
                born: Instant::now(),
                bytes: bytes::Bytes::from(junk.clone()),
            };
            if let Ok(pkt) = frame.open(integrity) {
                // If something structurally valid slipped through with
                // the CRC off, decoding its messages must not panic
                // either.
                for i in 0..pkt.msg_count() {
                    let _ = gravel_gq::Message::decode(pkt.msg_words(i));
                }
            }
        }
    }

    /// Request-reply frames round-trip: a class-pure packet of GET,
    /// REPLY, or AM_CALL messages seals to the matching frame kind,
    /// opens through the shared data-plane opener, and decodes back to
    /// the identical messages — and any single-bit flip is rejected.
    #[test]
    fn rpc_frame_kinds_roundtrip_and_reject_flips(
        which in 0u8..3,
        n in 1usize..32,
        addrs in prop::collection::vec(any::<u64>(), 32),
        tokens in prop::collection::vec(any::<u64>(), 32),
        deadline in any::<u16>(),
        handler in any::<u32>(),
        at in any::<usize>(),
        bit in 0u32..8,
    ) {
        let msgs: Vec<gravel_gq::Message> = (0..n)
            .map(|i| match which {
                0 => gravel_gq::Message::get(1, addrs[i], tokens[i], deadline),
                1 => gravel_gq::Message::reply(1, tokens[i], addrs[i]),
                _ => gravel_gq::Message::am_call(1, handler, addrs[i], tokens[i], deadline),
            })
            .collect();
        let words: Vec<u64> = msgs.iter().flat_map(|m| m.encode()).collect();
        let pkt = Packet::from_words(0, 1, &words);
        let frame = pkt.seal(0, WireIntegrity::Crc32c);
        // The frame kind advertises the class without decoding payload.
        let head = gravel_pgas::open_data_frame(&frame.bytes, WireIntegrity::Crc32c).unwrap();
        let expect_kind = match which {
            0 => FrameKind::Get,
            1 => FrameKind::AmReply,
            _ => FrameKind::AmCall,
        };
        prop_assert_eq!(head.kind, expect_kind);
        // A data-plane opener pinned to DATA must refuse it (kind
        // confusion is corruption).
        prop_assert!(open_frame(&frame.bytes, FrameKind::Data, WireIntegrity::Crc32c).is_err());
        // Payload round-trips bit-exact.
        let opened = frame.open(WireIntegrity::Crc32c).unwrap();
        for (i, m) in msgs.iter().enumerate() {
            prop_assert_eq!(gravel_gq::Message::decode(opened.msg_words(i)), Some(*m));
        }
        // Any single-bit flip fails verification.
        let mut mangled = frame.bytes.to_vec();
        let i = at % mangled.len();
        mangled[i] ^= 1 << bit;
        let bad = DataFrame { bytes: bytes::Bytes::from(mangled), ..frame };
        prop_assert!(bad.open(WireIntegrity::Crc32c).is_err());
    }

    /// Truncating a sealed frame at any boundary classifies as a
    /// truncation (or a length mismatch) — never a panic, never a
    /// successful open.
    #[test]
    fn truncations_never_open(
        words in prop::collection::vec(any::<u64>(), 1..40),
        cut in any::<usize>(),
    ) {
        let pkt = Packet::from_words(0, 1, &words);
        let frame = pkt.seal(0, WireIntegrity::Crc32c);
        let n = cut % frame.bytes.len(); // 0..len-1: strictly shorter
        let short = DataFrame {
            bytes: frame.bytes.slice(0..n),
            ..frame
        };
        prop_assert!(short.open(WireIntegrity::Crc32c).is_err());
        prop_assert!(short.open(WireIntegrity::Off).is_err());
    }

    /// Arbitrary bytes handed to the membership-frame decoders — HELLO,
    /// REJECT, heartbeat, control — never panic; they decode or error.
    /// These are the frames a fresh (possibly hostile) socket peer gets
    /// to send before any trust is established.
    #[test]
    fn arbitrary_bytes_never_panic_the_membership_decoders(
        junk in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        for integrity in [WireIntegrity::Crc32c, WireIntegrity::Off] {
            let _ = open_hello(&junk, integrity);
            let _ = open_reject(&junk, integrity);
            let _ = open_heartbeat(&junk, integrity);
            let _ = open_control(&junk, integrity);
        }
    }

    /// Flipping any single bit in a sealed HELLO, REJECT, heartbeat, or
    /// control frame makes it fail to open (handshake and membership
    /// frames always carry CRC32C, regardless of the data-plane
    /// integrity setting).
    #[test]
    fn membership_frame_bit_flips_are_rejected(
        node in 0u32..64,
        peer in 0u32..64,
        epoch in any::<u32>(),
        seq in any::<u64>(),
        words in prop::collection::vec(any::<u64>(), 0..24),
        which in 0u8..4,
        at in any::<usize>(),
        bit in 0u32..8,
    ) {
        let integrity = WireIntegrity::Crc32c;
        let reason = match which {
            0 => RejectReason::Version,
            1 => RejectReason::ClusterShape,
            _ => RejectReason::NodeId,
        };
        let sealed: Vec<u8> = match which {
            0 => seal_hello(
                &HelloInfo { node, peer, nodes: 4, lanes: 1, epoch },
                integrity,
            ).to_vec(),
            1 => seal_reject(node, reason, peer, integrity).to_vec(),
            2 => seal_heartbeat(node, peer, epoch, seq, integrity).to_vec(),
            _ => seal_control(node, peer, epoch, &words, integrity).to_vec(),
        };
        let opens = |b: &[u8]| match which {
            0 => open_hello(b, integrity).is_ok(),
            1 => open_reject(b, integrity).is_ok(),
            2 => open_heartbeat(b, integrity).is_ok(),
            _ => open_control(b, integrity).is_ok(),
        };
        prop_assert!(opens(&sealed));
        let mut mangled = sealed.clone();
        let i = at % mangled.len();
        mangled[i] ^= 1 << bit;
        prop_assert!(!opens(&mangled), "flip at byte {} bit {}", i, bit);
        // Truncation at any boundary must also fail, never panic.
        let cut = at % sealed.len();
        prop_assert!(!opens(&sealed[..cut]));
    }

    /// Ack frames reject every single-bit flip too.
    #[test]
    fn ack_bit_flips_are_rejected(
        src in any::<u32>(),
        dest in any::<u32>(),
        lane in any::<u32>(),
        cum in any::<u64>(),
        at in 0usize..ACK_FRAME_BYTES,
        bit in 0u32..8,
    ) {
        let mut sealed = gravel_pgas::seal_ack(src, dest, lane, 3, cum, WireIntegrity::Crc32c);
        prop_assert!(open_ack(&sealed, WireIntegrity::Crc32c).is_ok());
        sealed[at] ^= 1 << bit;
        prop_assert!(open_ack(&sealed, WireIntegrity::Crc32c).is_err());
    }
}
