//! # gravel-cluster — calibrated cluster models for GPU networking styles
//!
//! The paper evaluates Gravel on an eight-node InfiniBand cluster of AMD
//! APUs; this crate reproduces those multi-node experiments (Figures
//! 12-15, Table 5) **in simulation**: applications are characterised as
//! per-superstep communication traces ([`trace`]), and a pipeline model
//! ([`model`]) replays each trace under the paper's six execution styles
//! ([`styles`]) with a single documented calibration ([`calibration`]).
//!
//! The model captures the mechanisms the paper attributes its results to:
//! per-message network overhead amortized by aggregation, serialized
//! atomics splitting across per-node network threads, remote PUTs losing
//! GPU parallelism, coprocessor chunking starving the GPU and breaking
//! overlap, per-work-group packets being too small, and timeout-flush
//! latency on sparse supersteps.
//!
//! ```
//! use gravel_cluster::*;
//!
//! // A GUPS-shaped step: every node scatters uniformly.
//! let nodes = 8;
//! let mut t = WorkloadTrace::new("GUPS", nodes);
//! t.push_step(StepTrace {
//!     per_node: (0..nodes)
//!         .map(|_| NodeStep {
//!             gpu_ops: 0,
//!             routed: vec![1 << 14; nodes],
//!             class: OpClass::Atomic,
//!             local_pgas: 0,
//!         })
//!         .collect(),
//! });
//! let cal = Calibration::paper();
//! let gravel = simulate(&t, &cal, &Style::Gravel.params(&cal));
//! let mpl = simulate(&t, &cal, &Style::MsgPerLane.params(&cal));
//! assert!(mpl.total_ns > 10 * gravel.total_ns, "aggregation is the point");
//! assert!((t.remote_fraction() - 0.875).abs() < 1e-9);
//! ```

pub mod calibration;
pub mod des_check;
pub mod hierarchy;
pub mod model;
pub mod runner;
pub mod styles;
pub mod trace;

pub use calibration::Calibration;
pub use des_check::des_step_time;
pub use hierarchy::hierarchical_trace;
pub use model::{simulate, Packeting, RunResult, StyleParams, MIN_OCCUPANCY_WIS};
pub use runner::{
    geo_mean, network_stats, scaling_curve, style_comparison, NetworkStatsRow, ScalingCurve,
    ScalingPoint, StyleRow,
};
pub use styles::Style;
pub use trace::{NodeStep, OpClass, StepTrace, WorkloadTrace};
