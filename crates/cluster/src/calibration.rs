//! Model calibration (paper Table 3 + §4.3/§6 measurements).
//!
//! The cluster model's constants come from three sources:
//!
//! 1. **Published hardware parameters** (Table 3): 56 Gb/s InfiniBand
//!    (≈ 7 GB/s payload), 64 kB per-node queues, 125 µs flush timeout,
//!    three queues in flight, a 1 MB producer/consumer queue, one
//!    aggregator thread, a 2-core/4-thread 3.7 GHz CPU and an 8-CU GPU.
//! 2. **Published measurements**: the producer/consumer queue offloads
//!    32-byte messages at 7 GB/s (§4.3, Fig. 8), i.e. ~4.5 ns/message;
//!    the aggregator polls 65 % of the time at 8 nodes (§8.1).
//! 3. **Fitted constants** for per-operation CPU/GPU costs the paper does
//!    not state. These are chosen once, documented here, and *not* tuned
//!    per figure: a remote PUT is a decode + plain store on the network
//!    thread (~5 ns); serialized atomics cost more (~18 ns: decode +
//!    dependent RMW); MPI per-message software overhead ~6 µs (typical
//!    for the era's OpenMPI over IB verbs for eager messages).

use serde::{Deserialize, Serialize};

/// Cost constants for the cluster model. All times in nanoseconds of
/// virtual time, bandwidths in bytes/second.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Calibration {
    /// Link payload bandwidth (7 GB/s ≈ 56 Gb/s InfiniBand).
    pub link_bw: u64,
    /// NIC/wire per-packet overhead, ns (hardware framing, DMA setup).
    pub msg_overhead_ns: u64,
    /// CPU time per packet on each side (MPI send/recv software path,
    /// charged to the node's saturated CPU — §7.1), ns.
    pub cpu_per_packet_ns: u64,
    /// One-way wire latency, ns.
    pub wire_latency_ns: u64,
    /// GPU cost to offload one 32 B message into the queue, ns
    /// (≈ 32 B / 7 GB/s, §4.3).
    pub gpu_offload_ns: f64,
    /// GPU cost of one local data-parallel operation (a local PUT or one
    /// edge traversal's compute), ns. Fitted to the APU's memory system:
    /// random scatter/gather touches one DDR3 line per op, ~2.5 ns at
    /// 25.6 GB/s.
    pub gpu_op_ns: f64,
    /// Network-thread cost to decode + apply one PUT message, ns.
    pub apply_put_ns: f64,
    /// Network-thread cost to decode + apply one atomic (INC or active
    /// message), ns.
    pub apply_atomic_ns: f64,
    /// Aggregator cost to repack one message into a per-node queue, ns.
    pub agg_repack_ns: f64,
    /// Per-node aggregation queue size, bytes (Figure 14's knob).
    pub node_queue_bytes: usize,
    /// Aggregation flush timeout, ns.
    pub flush_timeout_ns: u64,
    /// Per-kernel-launch overhead, ns (coprocessor chunking pays this).
    pub kernel_launch_ns: u64,
    /// CPU-system per-op disadvantage vs the GPU (Figure 13). Fitted so
    /// that a CPU node spends ~72 ns per issued update (16 × the GPU's
    /// 4.5 ns offload path — the software-DSM per-op overhead of
    /// Grappa/UPC-class systems) against Gravel's 18 ns serialized
    /// apply, reproducing the paper's ~4× one-node gap on GUPS.
    pub cpu_dp_slowdown: f64,
    /// Application message payload bytes.
    pub msg_bytes: usize,
}

impl Calibration {
    /// The paper-matched calibration described in the module docs.
    pub fn paper() -> Self {
        Calibration {
            link_bw: 7_000_000_000,
            msg_overhead_ns: 1_000,
            cpu_per_packet_ns: 5_000,
            wire_latency_ns: 1_500,
            gpu_offload_ns: 4.5,
            gpu_op_ns: 2.5,
            apply_put_ns: 5.5,
            apply_atomic_ns: 18.0,
            agg_repack_ns: 3.0,
            node_queue_bytes: 64 * 1024,
            flush_timeout_ns: 125_000,
            kernel_launch_ns: 8_000,
            cpu_dp_slowdown: 16.0,
            msg_bytes: 32,
        }
    }

    /// Messages that fit one per-node queue.
    pub fn msgs_per_packet(&self) -> u64 {
        (self.node_queue_bytes / self.msg_bytes).max(1) as u64
    }

    /// Wire time for a packet of `bytes` (transfer + per-message
    /// overhead).
    pub fn packet_wire_ns(&self, bytes: u64) -> u64 {
        self.msg_overhead_ns + gravel_desim::transfer_time(bytes, self.link_bw)
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = Calibration::paper();
        assert_eq!(c.link_bw, 7_000_000_000);
        assert_eq!(c.node_queue_bytes, 64 * 1024);
        assert_eq!(c.flush_timeout_ns, 125_000);
        assert_eq!(c.msgs_per_packet(), 2048);
    }

    #[test]
    fn packet_wire_time_includes_overhead() {
        let c = Calibration::paper();
        // A 64 kB packet: ~9.4 µs transfer + 1 µs wire overhead.
        let t = c.packet_wire_ns(64 * 1024);
        assert!(t > 10_000 && t < 11_000, "got {t}");
        // A 32 B packet is overhead-dominated — the message-per-lane
        // pathology (the CPU side adds another 2 × 5 µs per packet).
        let t_small = c.packet_wire_ns(32);
        assert!(t_small >= 1_000);
    }

    #[test]
    fn amortization_factor_motivates_aggregation() {
        let c = Calibration::paper();
        // Bytes/ns for 64 kB vs 32 B packets differ by ~100×.
        let big = 64.0 * 1024.0 / c.packet_wire_ns(64 * 1024) as f64;
        let small = 32.0 / c.packet_wire_ns(32) as f64;
        assert!(big / small > 50.0, "aggregation gain {}", big / small);
    }
}
