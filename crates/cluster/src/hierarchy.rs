//! Hierarchical aggregation (paper §10, future work).
//!
//! The paper's evaluation stops at eight nodes and sketches the path to
//! larger systems: "Larger systems could be organized in a logical
//! hierarchy …, with multiple levels of aggregation. For example, a two
//! level hierarchy with each level doing a 16-node aggregation supports
//! 256 nodes with one indirect hop."
//!
//! Flat aggregation degrades as the cluster grows because each node
//! splits its traffic over `n-1` destination queues: per-queue fill rate
//! drops, the 125 µs timeout flushes ever-smaller packets, and per-packet
//! CPU cost swamps the node. A two-level hierarchy keeps the fan-out at
//! each level to `√n`-ish: messages are first aggregated per destination
//! *group* and shipped to a gateway inside that group, which re-aggregates
//! per final node. One extra hop buys packets that stay large.
//!
//! [`hierarchical_trace`] rewrites a trace into its two-phase equivalent
//! so the standard [`simulate`](crate::simulate) model prices it — both
//! phases pay real aggregation, packetization, wire, and CPU costs.

use crate::trace::{NodeStep, StepTrace, WorkloadTrace};

/// The gateway node that carries traffic from `src` into `dest_group`:
/// spread across the group by the sender's index so gateway load
/// balances.
pub fn gateway(src: usize, dest_group: usize, group_size: usize, nodes: usize) -> usize {
    (dest_group * group_size + src % group_size).min(nodes - 1)
}

/// Rewrite `trace` for two-level aggregation with groups of
/// `group_size`. Each original superstep becomes two: source →
/// destination-group gateway, then gateway → final node. Intra-group
/// messages skip the gateway.
pub fn hierarchical_trace(trace: &WorkloadTrace, group_size: usize) -> WorkloadTrace {
    assert!(group_size >= 2, "degenerate group");
    let n = trace.nodes;
    let mut out = WorkloadTrace::new(format!("{}+hier{}", trace.name, group_size), n);
    for step in &trace.steps {
        // Phase A: per-group aggregation at the source; intra-group
        // traffic goes straight to its destination.
        let mut phase_a: Vec<NodeStep> = step
            .per_node
            .iter()
            .map(|ns| NodeStep {
                gpu_ops: ns.gpu_ops,
                routed: vec![0; n],
                class: ns.class,
                local_pgas: ns.local_pgas,
            })
            .collect();
        // Phase B: gateways forward to final destinations.
        let mut phase_b: Vec<NodeStep> = (0..n)
            .map(|_| NodeStep { gpu_ops: 0, routed: vec![0; n], class: step.per_node[0].class, local_pgas: 0 })
            .collect();
        for (src, ns) in step.per_node.iter().enumerate() {
            let src_group = src / group_size;
            for (dest, &m) in ns.routed.iter().enumerate() {
                if m == 0 {
                    continue;
                }
                let dest_group = dest / group_size;
                if dest_group == src_group {
                    // One hop, as in the flat scheme.
                    phase_a[src].routed[dest] += m;
                } else {
                    let gw = gateway(src, dest_group, group_size, n);
                    phase_a[src].routed[gw] += m;
                    phase_b[gw].routed[dest] += m;
                    phase_b[gw].class = ns.class;
                }
            }
        }
        out.push_step(StepTrace { per_node: phase_a });
        out.push_step(StepTrace { per_node: phase_b });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Calibration;
    use crate::model::simulate;
    use crate::styles::Style;
    use crate::trace::OpClass;

    fn uniform(nodes: usize, total: u64) -> WorkloadTrace {
        let per = total / (nodes as u64 * nodes as u64);
        let mut t = WorkloadTrace::new("u", nodes);
        t.push_step(StepTrace {
            per_node: (0..nodes)
                .map(|_| NodeStep {
                    gpu_ops: 0,
                    routed: vec![per; nodes],
                    class: OpClass::Atomic,
                    local_pgas: 0,
                })
                .collect(),
        });
        t
    }

    #[test]
    fn rewrite_conserves_end_to_end_messages() {
        let t = uniform(32, 1 << 16);
        let h = hierarchical_trace(&t, 8);
        assert_eq!(h.steps.len(), 2);
        // Phase A carries everything once; phase B carries only the
        // inter-group share once more.
        let inter: u64 = (0..32)
            .flat_map(|s| (0..32).map(move |d| (s, d)))
            .filter(|(s, d)| s / 8 != d / 8)
            .map(|_| (1u64 << 16) / (32 * 32))
            .sum();
        let a: u64 = h.steps[0].per_node.iter().map(|n| n.routed_total()).sum();
        let b: u64 = h.steps[1].per_node.iter().map(|n| n.routed_total()).sum();
        assert_eq!(a, t.total_routed());
        assert_eq!(b, inter);
    }

    #[test]
    fn gateways_stay_inside_destination_group() {
        for src in 0..32 {
            for dg in 0..4 {
                let gw = gateway(src, dg, 8, 32);
                assert_eq!(gw / 8, dg, "gateway {gw} outside group {dg}");
            }
        }
    }

    #[test]
    fn hierarchy_wins_at_large_scale_loses_at_small() {
        let cal = Calibration::paper();
        let params = Style::Gravel.params(&cal);
        // At 8 nodes the extra hop is pure overhead.
        let t8 = uniform(8, 1 << 22);
        let flat8 = simulate(&t8, &cal, &params).total_ns;
        let hier8 = simulate(&hierarchical_trace(&t8, 4), &cal, &params).total_ns;
        assert!(hier8 >= flat8, "hier {hier8} vs flat {flat8} at 8 nodes");
        // At 128 nodes flat aggregation starves per-destination queues;
        // two-level wins.
        let t128 = uniform(128, 1 << 24);
        let flat128 = simulate(&t128, &cal, &params).total_ns;
        let hier128 = simulate(&hierarchical_trace(&t128, 16), &cal, &params).total_ns;
        assert!(
            hier128 < flat128,
            "hierarchy should win at 128 nodes: {hier128} vs {flat128}"
        );
    }
}
