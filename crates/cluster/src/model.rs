//! The cluster performance model.
//!
//! Replays a [`WorkloadTrace`] under one GPU networking style and returns
//! virtual execution time plus network statistics. The model treats each
//! superstep as a pipeline of stages —
//!
//! ```text
//! GPU (compute + offload) → aggregator CPU → NIC/link → destination
//! network thread (apply)
//! ```
//!
//! — whose completion time is the *maximum* of the stage times when the
//! style overlaps communication with computation (Gravel, message-per-
//! lane, coalesced APIs), or a chunk-wise software pipeline when it does
//! not (the coprocessor model, whose chunking both bounds GPU parallelism
//! and adds per-chunk kernel-launch overhead). Styles differ in their
//! *packeting* (what granularity messages hit the wire at), their GPU-side
//! overhead, and whether a CPU-side aggregator exists; those differences
//! are exactly the paper's §3 taxonomy.

use serde::Serialize;

use crate::calibration::Calibration;
use crate::trace::{OpClass, WorkloadTrace};

/// How messages are combined before hitting the wire.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Packeting {
    /// CPU-side aggregator packs per-destination queues of the calibrated
    /// size (Gravel; coalesced + GPU-wide aggregation).
    Aggregator,
    /// Messages combine only within one work-group (coalesced APIs):
    /// a packet per (work-group, destination).
    PerWorkGroup {
        /// Work-items per work-group.
        wg_size: u64,
    },
    /// Every application message is its own network message
    /// (message-per-lane).
    PerMessage,
}

/// Style-specific model parameters. Build them via [`crate::styles`].
#[derive(Clone, Debug)]
pub struct StyleParams {
    /// Display name (figure legends).
    pub name: &'static str,
    /// Wire granularity.
    pub packeting: Packeting,
    /// Whether communication overlaps computation within a superstep.
    pub overlap: bool,
    /// Coprocessor-style chunking: per-node queue bytes bound the
    /// work-items a kernel may launch.
    pub chunk_queue_bytes: Option<usize>,
    /// Override of the aggregation queue size (the coprocessor's "extra
    /// buffering" variant uses 1 MB queues instead of the calibrated
    /// 64 kB).
    pub queue_bytes_override: Option<usize>,
    /// Multiplier on GPU time (e.g. the coalesced counting sort).
    pub gpu_factor: f64,
    /// Multiplier on data-parallel compute (CPU-only systems).
    pub compute_slowdown: f64,
}

/// Work-items the GPU needs in flight to be fully utilized
/// (8 CUs × 4 SIMDs × 16 wavefronts × 64 lanes region, rounded to the
/// paper's observation that 64 kB queues starve the GPU).
pub const MIN_OCCUPANCY_WIS: u64 = 16 * 1024;

/// Result of replaying a trace under one style.
#[derive(Clone, Debug, Serialize)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Style name.
    pub style: &'static str,
    /// Nodes simulated.
    pub nodes: usize,
    /// Total virtual time, ns.
    pub total_ns: u64,
    /// Network packets sent (excluding loopback).
    pub packets: u64,
    /// Network payload bytes sent (excluding loopback).
    pub bytes: u64,
    /// Application messages routed (including loopback).
    pub messages: u64,
    /// Supersteps executed.
    pub steps: usize,
}

impl RunResult {
    /// Average network message (packet) size — Table 5's metric.
    pub fn avg_packet_bytes(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.bytes as f64 / self.packets as f64
        }
    }

    /// Operation throughput in operations/second given total ops.
    pub fn ops_per_sec(&self, total_ops: u64) -> f64 {
        gravel_desim::per_sec(total_ops, self.total_ns)
    }
}

fn apply_ns(cal: &Calibration, class: OpClass) -> f64 {
    match class {
        OpClass::Put => cal.apply_put_ns,
        OpClass::Atomic => cal.apply_atomic_ns,
    }
}

/// Packets and wire bytes for `msgs` messages from one node to one
/// destination under `params.packeting`. `total_ops` is the node's
/// work-items this step (for per-work-group packeting); `production_ns`
/// is how long the node takes to produce the step's messages, which sets
/// the per-destination fill rate and thereby how large a packet grows
/// before the flush timeout fires — the mechanism behind Table 5's
/// workload-dependent average message sizes.
fn packetize(
    params: &StyleParams,
    cal: &Calibration,
    msgs: u64,
    total_ops: u64,
    production_ns: f64,
) -> (u64, u64, bool) {
    if msgs == 0 {
        return (0, 0, false);
    }
    let bytes = msgs * cal.msg_bytes as u64;
    match params.packeting {
        Packeting::Aggregator => {
            let queue_bytes = params.queue_bytes_override.unwrap_or(cal.node_queue_bytes) as f64;
            if params.overlap {
                // Streaming aggregation: a queue flushes when full or
                // after the timeout, so its effective size is capped by
                // fill-rate × timeout.
                let rate = bytes as f64 / production_ns; // bytes per ns
                let eff = (rate * cal.flush_timeout_ns as f64)
                    .clamp(cal.msg_bytes as f64, queue_bytes);
                let packets = (bytes as f64 / eff).ceil() as u64;
                // The stream's final queue is (almost surely) partial, so
                // the step always ends with a timeout flush.
                (packets, bytes, true)
            } else {
                // Explicit sends of whole queues (coprocessor): only the
                // final queue is partial.
                let per = (queue_bytes as usize / cal.msg_bytes).max(1) as u64;
                let packets = msgs.div_ceil(per);
                (packets, bytes, !msgs.is_multiple_of(per))
            }
        }
        Packeting::PerWorkGroup { wg_size } => {
            // One packet per (work-group, destination); a work-group holds
            // wg_size work-items, each with ~1 op this step.
            let wgs = total_ops.div_ceil(wg_size).max(1);
            let packets = msgs.min(wgs);
            (packets, bytes, false)
        }
        Packeting::PerMessage => (msgs, bytes, false),
    }
}

/// Replay `trace` under `params` with calibration `cal`.
pub fn simulate(trace: &WorkloadTrace, cal: &Calibration, params: &StyleParams) -> RunResult {
    let n = trace.nodes;
    let mut total_ns = 0u64;
    let mut packets_total = 0u64;
    let mut bytes_total = 0u64;
    let mut msgs_total = 0u64;

    for step in &trace.steps {
        assert_eq!(step.per_node.len(), n, "trace width mismatch");
        let mut t_gpu = vec![0.0f64; n];
        let mut t_agg = vec![0.0f64; n];
        let mut t_cpu = vec![0.0f64; n];
        let mut t_link_out = vec![0.0f64; n];
        let mut any_partial = false;
        let mut chunks_max = 1u64;

        // Pass 1: GPU production and aggregator repack times (the wire
        // pass needs production rates to size timeout-flushed packets).
        for (src, ns) in step.per_node.iter().enumerate() {
            let routed = ns.routed_total();
            msgs_total += routed;
            let ops_total = ns.gpu_ops + routed;
            let mut gpu = ns.gpu_ops as f64 * cal.gpu_op_ns
                + routed as f64 * cal.gpu_offload_ns;
            gpu *= params.gpu_factor * params.compute_slowdown;
            // Coprocessor chunking: the per-node queue bounds concurrent
            // work-items, starving the GPU, and each chunk pays a launch.
            if let Some(qb) = params.chunk_queue_bytes {
                let chunk_wis = (qb / cal.msg_bytes).max(1) as u64;
                let chunks = ops_total.div_ceil(chunk_wis).max(1);
                let starvation =
                    (MIN_OCCUPANCY_WIS as f64 / chunk_wis as f64).max(1.0);
                gpu *= starvation;
                chunks_max = chunks_max.max(chunks);
            }
            t_gpu[src] = gpu;
            if params.packeting == Packeting::Aggregator {
                t_agg[src] = routed as f64 * cal.agg_repack_ns;
            }
        }

        // Pass 2: wire, per-packet CPU, and destination apply costs.
        // Loopback skips the wire but not the destination's network
        // thread.
        for (src, ns) in step.per_node.iter().enumerate() {
            let ops_total = ns.gpu_ops + ns.routed_total();
            let production_ns = t_gpu[src].max(t_agg[src]).max(1.0);
            for (dest, &m) in ns.routed.iter().enumerate() {
                if m == 0 {
                    continue;
                }
                t_cpu[dest] += m as f64 * apply_ns(cal, ns.class);
                if dest == src {
                    continue;
                }
                let (p, b, partial) =
                    packetize(params, cal, m, ops_total, production_ns);
                any_partial |= partial;
                packets_total += p;
                bytes_total += b;
                // MPI software cost lands on both CPUs; framing and
                // transfer occupy the sender's link.
                t_cpu[src] += p as f64 * cal.cpu_per_packet_ns as f64;
                t_cpu[dest] += p as f64 * cal.cpu_per_packet_ns as f64;
                t_link_out[src] += p as f64 * cal.msg_overhead_ns as f64
                    + b as f64 * 1e9 / cal.link_bw as f64;
                // Coalesced APIs are *synchronous* (GPUnet/GPUrdma-style):
                // each per-(work-group, destination) send blocks its
                // work-group for the round trip, stalling the GPU.
                if matches!(params.packeting, Packeting::PerWorkGroup { .. }) {
                    t_gpu[src] +=
                        p as f64 * (cal.wire_latency_ns + cal.msg_overhead_ns) as f64;
                }
            }
        }
        // The aggregator shares the node's saturated CPU with the network
        // thread and the MPI path (§7.1: helper threads do not help, "the
        // CPU is already saturated").
        for i in 0..n {
            t_cpu[i] += t_agg[i];
        }

        // Fixed per-step costs: a kernel launch and, when an aggregator
        // holds a partial packet at step end, the flush timeout.
        let mut tail = cal.kernel_launch_ns as f64 + cal.wire_latency_ns as f64;
        if any_partial {
            tail += cal.flush_timeout_ns as f64;
        }

        let step_ns = if params.overlap {
            // Streaming pipeline: the step finishes when the slowest stage
            // on the slowest node drains.
            let mut worst = 0.0f64;
            for i in 0..n {
                let node_t = t_gpu[i].max(t_cpu[i]).max(t_link_out[i]);
                worst = worst.max(node_t);
            }
            worst + tail
        } else {
            // Coprocessor software pipeline over chunks: per-chunk launch
            // overhead is serial; compute and communication overlap only
            // at chunk granularity, leaving one chunk's communication
            // exposed as pipeline drain.
            let compute: f64 = t_gpu.iter().fold(0.0, |a, &b| a.max(b));
            let comm: f64 = (0..n).map(|i| t_link_out[i] + t_cpu[i]).fold(0.0, f64::max);
            let drain = comm / chunks_max as f64;
            chunks_max as f64 * cal.kernel_launch_ns as f64
                + compute.max(comm)
                + drain
                + tail
        };
        total_ns += step_ns.ceil() as u64;
    }

    RunResult {
        workload: trace.name.clone(),
        style: params.name,
        nodes: n,
        total_ns,
        packets: packets_total,
        bytes: bytes_total,
        messages: msgs_total,
        steps: trace.steps.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{NodeStep, StepTrace};

    fn uniform_trace(nodes: usize, msgs_per_node: u64, class: OpClass) -> WorkloadTrace {
        let mut t = WorkloadTrace::new("t", nodes);
        let per_dest = msgs_per_node / nodes as u64;
        t.push_step(StepTrace {
            per_node: (0..nodes)
                .map(|_| NodeStep {
                    gpu_ops: 0,
                    routed: vec![per_dest; nodes],
                    class,
                    local_pgas: 0,
                })
                .collect(),
        });
        t
    }

    fn gravel_params() -> StyleParams {
        StyleParams {
            name: "gravel",
            packeting: Packeting::Aggregator,
            overlap: true,
            chunk_queue_bytes: None,
            queue_bytes_override: None,
            gpu_factor: 1.0,
            compute_slowdown: 1.0,
        }
    }

    #[test]
    fn atomic_workload_scales_by_splitting_the_network_thread() {
        // A GUPS-like trace: N× more nodes → same total updates spread
        // over N network threads.
        let cal = Calibration::paper();
        let total: u64 = 1 << 22;
        let t1 = uniform_trace(1, total, OpClass::Atomic);
        let t8 = uniform_trace(8, total / 8, OpClass::Atomic);
        let r1 = simulate(&t1, &cal, &gravel_params());
        let r8 = simulate(&t8, &cal, &gravel_params());
        let speedup = r1.total_ns as f64 / r8.total_ns as f64;
        assert!(speedup > 5.0 && speedup <= 8.5, "speedup {speedup}");
    }

    #[test]
    fn per_message_packeting_is_catastrophically_slower() {
        let cal = Calibration::paper();
        let t8 = uniform_trace(8, 1 << 18, OpClass::Atomic);
        let gravel = simulate(&t8, &cal, &gravel_params());
        let mut mpl = gravel_params();
        mpl.packeting = Packeting::PerMessage;
        mpl.name = "msg-per-lane";
        let r = simulate(&t8, &cal, &mpl);
        assert!(
            r.total_ns > 20 * gravel.total_ns,
            "msg-per-lane {} vs gravel {}",
            r.total_ns,
            gravel.total_ns
        );
        // Per-message packets are message-sized.
        assert!((r.avg_packet_bytes() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn aggregator_produces_large_packets() {
        let cal = Calibration::paper();
        let t = uniform_trace(8, 1 << 20, OpClass::Atomic);
        let r = simulate(&t, &cal, &gravel_params());
        // 2048 msgs/packet × 32 B = 64 kB full packets dominate.
        assert!(r.avg_packet_bytes() > 60_000.0, "avg {}", r.avg_packet_bytes());
    }

    #[test]
    fn coprocessor_pays_chunking_and_starvation() {
        let cal = Calibration::paper();
        let t = uniform_trace(8, 1 << 20, OpClass::Atomic);
        let gravel = simulate(&t, &cal, &gravel_params());
        let coproc = StyleParams {
            name: "coprocessor",
            packeting: Packeting::Aggregator,
            overlap: false,
            chunk_queue_bytes: Some(cal.node_queue_bytes),
            queue_bytes_override: None,
            gpu_factor: 1.0,
            compute_slowdown: 1.0,
        };
        let r = simulate(&t, &cal, &coproc);
        assert!(r.total_ns > gravel.total_ns, "coprocessor must lose: {} vs {}", r.total_ns, gravel.total_ns);
    }

    #[test]
    fn put_workloads_favor_local_execution() {
        // Same op count, but as local GPU ops vs remote PUTs: the remote
        // version is bottlenecked by the network thread.
        let cal = Calibration::paper();
        let nodes = 8;
        let ops: u64 = 1 << 20;
        let mut local = WorkloadTrace::new("local", nodes);
        local.push_step(StepTrace {
            per_node: (0..nodes).map(|_| NodeStep::compute_only(ops, nodes)).collect(),
        });
        let remote = uniform_trace(nodes, ops, OpClass::Put);
        let rl = simulate(&local, &cal, &gravel_params());
        let rr = simulate(&remote, &cal, &gravel_params());
        assert!(rl.total_ns < rr.total_ns, "{} vs {}", rl.total_ns, rr.total_ns);
    }

    #[test]
    fn many_small_steps_pay_timeout_latency() {
        // SSSP-1-like: the same messages spread over many supersteps run
        // much slower than in one step (latency-bound, Fig. 12).
        let cal = Calibration::paper();
        let nodes = 8;
        let msgs: u64 = 1 << 16;
        let one = uniform_trace(nodes, msgs, OpClass::Atomic);
        let mut many = WorkloadTrace::new("many", nodes);
        for _ in 0..256 {
            let per_dest = (msgs / 256) / nodes as u64;
            many.push_step(StepTrace {
                per_node: (0..nodes)
                    .map(|_| NodeStep {
                        gpu_ops: 0,
                        routed: vec![per_dest; nodes],
                        class: OpClass::Atomic,
                        local_pgas: 0,
                    })
                    .collect(),
            });
        }
        let r_one = simulate(&one, &cal, &gravel_params());
        let r_many = simulate(&many, &cal, &gravel_params());
        assert!(r_many.total_ns > 10 * r_one.total_ns, "{} vs {}", r_many.total_ns, r_one.total_ns);
        // And its packets are small (timeout flushes).
        assert!(r_many.avg_packet_bytes() < 2048.0);
    }
}
