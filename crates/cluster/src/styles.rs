//! The six execution styles of Figure 15, plus the CPU-system baseline
//! of Figure 13, expressed as [`StyleParams`] for the pipeline model.

use crate::calibration::Calibration;
use crate::model::{Packeting, StyleParams};

/// GPU-time multiplier for the coalesced-APIs counting sort and per-
/// destination API invocation (§3.3: 1.6× more code, scratchpad pressure,
/// degraded SIMT utilization).
pub const COALESCED_GPU_FACTOR: f64 = 1.6;

/// A GPU networking style (paper §3) or the CPU-system baseline (§7.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Style {
    /// Gravel: GPU-wide producer/consumer queue + CPU-side aggregator.
    Gravel,
    /// The coprocessor model with Gravel-sized (64 kB) per-node queues.
    Coprocessor,
    /// The coprocessor model with 1 MB per-node queues ("+ extra
    /// buffering", Fig. 15 bar 2).
    CoprocessorExtraBuffering,
    /// Message-per-lane: no aggregation at all.
    MsgPerLane,
    /// Coalesced APIs: aggregation within one work-group.
    Coalesced,
    /// Coalesced APIs + Gravel's GPU-wide (CPU-side) aggregation
    /// (Fig. 15 bar 5).
    CoalescedGravelAggregation,
    /// A Grappa/UPC-class CPU-only distributed system (Fig. 13).
    CpuSystem,
}

impl Style {
    /// All six bars of Figure 15, in the paper's order.
    pub fn fig15() -> [Style; 6] {
        [
            Style::Coprocessor,
            Style::CoprocessorExtraBuffering,
            Style::MsgPerLane,
            Style::Coalesced,
            Style::CoalescedGravelAggregation,
            Style::Gravel,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Style::Gravel => "Gravel",
            Style::Coprocessor => "coprocessor",
            Style::CoprocessorExtraBuffering => "coprocessor + extra buffering",
            Style::MsgPerLane => "msg-per-lane",
            Style::Coalesced => "coalesced APIs",
            Style::CoalescedGravelAggregation => "coalesced APIs + Gravel aggregation",
            Style::CpuSystem => "CPU system",
        }
    }

    /// Model parameters for this style.
    pub fn params(&self, cal: &Calibration) -> StyleParams {
        let base = StyleParams {
            name: self.name(),
            packeting: Packeting::Aggregator,
            overlap: true,
            chunk_queue_bytes: None,
            queue_bytes_override: None,
            gpu_factor: 1.0,
            compute_slowdown: 1.0,
        };
        match self {
            Style::Gravel => base,
            Style::Coprocessor => StyleParams {
                overlap: false,
                chunk_queue_bytes: Some(cal.node_queue_bytes),
                ..base
            },
            Style::CoprocessorExtraBuffering => StyleParams {
                overlap: false,
                chunk_queue_bytes: Some(1024 * 1024),
                queue_bytes_override: Some(1024 * 1024),
                ..base
            },
            Style::MsgPerLane => StyleParams { packeting: Packeting::PerMessage, ..base },
            Style::Coalesced => StyleParams {
                packeting: Packeting::PerWorkGroup { wg_size: 256 },
                gpu_factor: COALESCED_GPU_FACTOR,
                ..base
            },
            Style::CoalescedGravelAggregation => {
                StyleParams { gpu_factor: COALESCED_GPU_FACTOR, ..base }
            }
            Style::CpuSystem => StyleParams { compute_slowdown: cal.cpu_dp_slowdown, ..base },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::simulate;
    use crate::trace::{NodeStep, OpClass, StepTrace, WorkloadTrace};

    /// GUPS-like uniform-scatter trace.
    fn gups_trace(nodes: usize, updates: u64) -> WorkloadTrace {
        let mut t = WorkloadTrace::new("gups", nodes);
        let per_dest = updates / (nodes as u64 * nodes as u64);
        t.push_step(StepTrace {
            per_node: (0..nodes)
                .map(|_| NodeStep { gpu_ops: 0, routed: vec![per_dest; nodes], class: OpClass::Atomic, local_pgas: 0 })
                .collect(),
        });
        t
    }

    #[test]
    fn fig15_ordering_on_gups() {
        // The paper's headline ordering at 8 nodes:
        // Gravel ≈ coalesced+agg > coproc+buf > coproc > coalesced > mpl.
        let cal = Calibration::paper();
        let t = gups_trace(8, 1 << 24);
        let time = |s: Style| simulate(&t, &cal, &s.params(&cal)).total_ns;
        let gravel = time(Style::Gravel);
        let coagg = time(Style::CoalescedGravelAggregation);
        let coproc = time(Style::Coprocessor);
        let coproc_buf = time(Style::CoprocessorExtraBuffering);
        let coalesced = time(Style::Coalesced);
        let mpl = time(Style::MsgPerLane);
        assert!(gravel <= coagg, "gravel {gravel} vs coalesced+agg {coagg}");
        assert!(coagg < coproc, "coalesced+agg {coagg} vs coprocessor {coproc}");
        assert!(coproc_buf <= coproc, "extra buffering helps GUPS: {coproc_buf} vs {coproc}");
        assert!(coalesced < mpl, "WG aggregation beats none: {coalesced} vs {mpl}");
        assert!(gravel < coalesced, "GPU-wide beats per-WG: {gravel} vs {coalesced}");
        assert!(mpl > 10 * gravel, "msg-per-lane collapse: {mpl} vs {gravel}");
    }

    #[test]
    fn cpu_system_loses_at_one_node() {
        // Fig. 13: Gravel is significantly faster on one node, "where
        // aggregation and networking are irrelevant".
        let cal = Calibration::paper();
        let t = gups_trace(1, 1 << 22);
        let gravel = simulate(&t, &cal, &Style::Gravel.params(&cal)).total_ns;
        let cpu = simulate(&t, &cal, &Style::CpuSystem.params(&cal)).total_ns;
        let ratio = cpu as f64 / gravel as f64;
        assert!(ratio > 2.0 && ratio < 10.0, "one-node GPU advantage {ratio}");
    }

    #[test]
    fn style_names_are_distinct() {
        let mut names: Vec<_> = Style::fig15().iter().map(|s| s.name()).collect();
        names.push(Style::CpuSystem.name());
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
