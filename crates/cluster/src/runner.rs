//! Experiment orchestration: scaling sweeps, style comparisons, and
//! Table 5 statistics.

use serde::Serialize;

use crate::calibration::Calibration;
use crate::model::{simulate, RunResult};
use crate::styles::Style;
use crate::trace::WorkloadTrace;

/// A scalability curve for one workload (Figure 12's group of bars).
#[derive(Clone, Debug, Serialize)]
pub struct ScalingCurve {
    /// Workload name.
    pub workload: String,
    /// (nodes, total_ns, speedup-vs-1-node) rows.
    pub points: Vec<ScalingPoint>,
}

/// One point of a scaling curve.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ScalingPoint {
    /// Cluster size.
    pub nodes: usize,
    /// Virtual run time.
    pub total_ns: u64,
    /// Speedup relative to the 1-node run.
    pub speedup: f64,
}

/// Run `style` over traces generated for each cluster size by `gen`,
/// producing a Figure-12-style curve. `gen(nodes)` must return a trace of
/// the *same total problem* partitioned over `nodes` nodes.
pub fn scaling_curve(
    name: &str,
    style: Style,
    cal: &Calibration,
    sizes: &[usize],
    mut gen: impl FnMut(usize) -> WorkloadTrace,
) -> ScalingCurve {
    assert!(!sizes.is_empty(), "no cluster sizes");
    let mut points = Vec::with_capacity(sizes.len());
    let mut t1: Option<u64> = None;
    for &n in sizes {
        let trace = gen(n);
        assert_eq!(trace.nodes, n, "trace/size mismatch");
        let r = simulate(&trace, cal, &style.params(cal));
        let base = *t1.get_or_insert(r.total_ns);
        points.push(ScalingPoint {
            nodes: n,
            total_ns: r.total_ns,
            speedup: base as f64 / r.total_ns as f64,
        });
    }
    ScalingCurve { workload: name.to_string(), points }
}

/// One workload's row of Figure 15: speedup of each style over the
/// 1-node Gravel baseline at the given cluster size.
#[derive(Clone, Debug, Serialize)]
pub struct StyleRow {
    /// Workload name.
    pub workload: String,
    /// (style name, speedup) in [`Style::fig15`] order.
    pub speedups: Vec<(String, f64)>,
}

/// Compare all Figure 15 styles on one workload. `trace_n` is the trace
/// at the multi-node size, `trace_1` the same problem on one node.
pub fn style_comparison(
    name: &str,
    cal: &Calibration,
    trace_1: &WorkloadTrace,
    trace_n: &WorkloadTrace,
) -> StyleRow {
    let base = simulate(trace_1, cal, &Style::Gravel.params(cal)).total_ns;
    let speedups = Style::fig15()
        .iter()
        .map(|s| {
            let r = simulate(trace_n, cal, &s.params(cal));
            (s.name().to_string(), base as f64 / r.total_ns as f64)
        })
        .collect();
    StyleRow { workload: name.to_string(), speedups }
}

/// Table 5's per-workload row: remote access frequency and average
/// network message size under Gravel at `trace.nodes` nodes.
#[derive(Clone, Debug, Serialize)]
pub struct NetworkStatsRow {
    /// Workload name.
    pub workload: String,
    /// Fraction of PGAS operations hitting a remote node.
    pub remote_fraction: f64,
    /// Average aggregated packet size, bytes.
    pub avg_message_bytes: f64,
}

/// Compute the Table 5 row for a trace.
pub fn network_stats(cal: &Calibration, trace: &WorkloadTrace) -> NetworkStatsRow {
    let r: RunResult = simulate(trace, cal, &Style::Gravel.params(cal));
    NetworkStatsRow {
        workload: trace.name.clone(),
        remote_fraction: trace.remote_fraction(),
        avg_message_bytes: r.avg_packet_bytes(),
    }
}

/// Geometric mean of a set of positive values (the paper reports
/// geo-mean speedups).
pub fn geo_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "empty geo-mean");
    let log_sum: f64 = values.iter().map(|v| {
        assert!(*v > 0.0, "non-positive value in geo-mean");
        v.ln()
    }).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{NodeStep, OpClass, StepTrace};

    fn gups(nodes: usize, updates: u64) -> WorkloadTrace {
        let mut t = WorkloadTrace::new("gups", nodes);
        let per_dest = updates / (nodes as u64 * nodes as u64);
        t.push_step(StepTrace {
            per_node: (0..nodes)
                .map(|_| NodeStep { gpu_ops: 0, routed: vec![per_dest; nodes], class: OpClass::Atomic, local_pgas: 0 })
                .collect(),
        });
        t
    }

    #[test]
    fn scaling_curve_is_monotone_for_gups() {
        let cal = Calibration::paper();
        let curve =
            scaling_curve("gups", Style::Gravel, &cal, &[1, 2, 4, 8], |n| gups(n, 1 << 24));
        assert_eq!(curve.points.len(), 4);
        assert!((curve.points[0].speedup - 1.0).abs() < 1e-12);
        for w in curve.points.windows(2) {
            assert!(w[1].speedup > w[0].speedup, "{curve:?}");
        }
        let s8 = curve.points[3].speedup;
        assert!(s8 > 5.0 && s8 <= 8.5, "8-node GUPS speedup {s8}");
    }

    #[test]
    fn style_row_has_six_entries_with_gravel_best() {
        let cal = Calibration::paper();
        let row = style_comparison("gups", &cal, &gups(1, 1 << 22), &gups(8, 1 << 22));
        assert_eq!(row.speedups.len(), 6);
        let gravel = row.speedups.iter().find(|(n, _)| n == "Gravel").unwrap().1;
        for (name, s) in &row.speedups {
            assert!(gravel >= *s - 1e-9, "{name} beats Gravel: {s} vs {gravel}");
        }
    }

    #[test]
    fn network_stats_row() {
        let cal = Calibration::paper();
        let row = network_stats(&cal, &gups(8, 1 << 24));
        assert!((row.remote_fraction - 0.875).abs() < 1e-12);
        assert!(row.avg_message_bytes > 32_000.0, "{row:?}");
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geo_mean(&[5.3]) - 5.3).abs() < 1e-12);
    }
}
