//! Event-granular cross-validation of the pipeline model.
//!
//! [`crate::model::simulate`] prices a superstep as the max over pipeline
//! stages — an approximation that ignores transient queueing between
//! stages. This module re-simulates a superstep *packet by packet* on the
//! `gravel-desim` kernel: every packet is an event chain through the
//! sender's CPU, the sender's link, the wire, and the receiver's CPU,
//! each modelled as a FIFO [`Resource`]. The test suite asserts the two
//! models agree within a tolerance band on random traces, which is what
//! justifies using the fast analytic form for the figure sweeps.

use gravel_desim::{Resource, Sim, SimTime};

use crate::calibration::Calibration;
use crate::trace::{OpClass, StepTrace};

/// Per-node state for the event-granular run.
struct NodeState {
    /// The saturated CPU shared by aggregator, MPI path, and network
    /// thread.
    cpu: Resource,
    /// The NIC/link send engine.
    link: Resource,
}

/// World threaded through the DES.
struct World {
    nodes: Vec<NodeState>,
    finished_at: SimTime,
}

/// One packet's itinerary, precomputed before scheduling.
struct PacketPlan {
    src: usize,
    dest: usize,
    ready_at: SimTime,
    bytes: u64,
    msgs: u64,
    class: OpClass,
}

/// Event-granular simulation of one superstep under Gravel's style.
/// Returns the virtual completion time.
pub fn des_step_time(step: &StepTrace, cal: &Calibration) -> SimTime {
    // Events are 'static closures: move a copy of the calibration in.
    let cal = *cal;
    let n = step.per_node.len();
    let mut plans: Vec<PacketPlan> = Vec::new();

    for (src, ns) in step.per_node.iter().enumerate() {
        let routed = ns.routed_total();
        let production_ns = (ns.gpu_ops as f64 * cal.gpu_op_ns
            + routed as f64 * cal.gpu_offload_ns)
            .max(routed as f64 * cal.agg_repack_ns)
            .max(1.0);
        for (dest, &m) in ns.routed.iter().enumerate() {
            if m == 0 || dest == src {
                continue;
            }
            let bytes = m * cal.msg_bytes as u64;
            // Fill-rate-limited effective packet, as in the analytic
            // model, but each packet is scheduled at the moment its
            // share of production completes (or its timeout fires).
            let rate = bytes as f64 / production_ns;
            let eff = (rate * cal.flush_timeout_ns as f64)
                .clamp(cal.msg_bytes as f64, cal.node_queue_bytes as f64);
            let packets = (bytes as f64 / eff).ceil() as u64;
            for k in 0..packets {
                let pkt_bytes = (eff as u64).min(bytes - k * eff as u64);
                let fill_done = production_ns * ((k + 1) as f64 * eff / bytes as f64).min(1.0);
                let ready_at = if pkt_bytes < eff as u64 {
                    // Final partial packet waits for the flush timeout.
                    (fill_done + cal.flush_timeout_ns as f64) as SimTime
                } else {
                    fill_done as SimTime
                };
                plans.push(PacketPlan {
                    src,
                    dest,
                    ready_at,
                    bytes: pkt_bytes.max(cal.msg_bytes as u64),
                    msgs: (pkt_bytes / cal.msg_bytes as u64).max(1),
                    class: ns.class,
                });
            }
        }
    }

    let mut world = World {
        nodes: (0..n).map(|_| NodeState { cpu: Resource::new(), link: Resource::new() }).collect(),
        finished_at: 0,
    };

    // Local (loopback) applies and pure GPU time set a floor even with no
    // network traffic.
    for (src, ns) in step.per_node.iter().enumerate() {
        let gpu_end = (ns.gpu_ops as f64 * cal.gpu_op_ns
            + ns.routed_total() as f64 * cal.gpu_offload_ns) as SimTime;
        world.finished_at = world.finished_at.max(gpu_end);
        let apply = match ns.class {
            OpClass::Put => cal.apply_put_ns,
            OpClass::Atomic => cal.apply_atomic_ns,
        };
        let local_msgs = ns.routed.get(src).copied().unwrap_or(0);
        let (_, end) = world.nodes[src].cpu.acquire(0, (local_msgs as f64 * apply) as SimTime);
        world.finished_at = world.finished_at.max(end);
    }

    let mut sim: Sim<World> = Sim::new();
    for plan in plans {
        sim.schedule_at(plan.ready_at, move |w: &mut World, sim| {
            // Sender CPU (MPI send path + repack share).
            let send_cpu = plan.msgs as f64 * cal.agg_repack_ns
                + cal.cpu_per_packet_ns as f64;
            let (_, cpu_done) = w.nodes[plan.src].cpu.acquire(sim.now(), send_cpu as SimTime);
            // Link occupancy.
            let wire = cal.msg_overhead_ns
                + gravel_desim::transfer_time(plan.bytes, cal.link_bw);
            let (_, link_done) = w.nodes[plan.src].link.acquire(cpu_done, wire);
            let arrival = link_done + cal.wire_latency_ns;
            sim.schedule_at(arrival, move |w: &mut World, sim| {
                // Receiver CPU: MPI recv + message application.
                let apply = match plan.class {
                    OpClass::Put => cal.apply_put_ns,
                    OpClass::Atomic => cal.apply_atomic_ns,
                };
                let recv_cpu =
                    cal.cpu_per_packet_ns as f64 + plan.msgs as f64 * apply;
                let (_, done) = w.nodes[plan.dest].cpu.acquire(sim.now(), recv_cpu as SimTime);
                w.finished_at = w.finished_at.max(done);
            });
        });
    }
    sim.run(&mut world);
    world.finished_at + cal.kernel_launch_ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::simulate;
    use crate::styles::Style;
    use crate::trace::{NodeStep, WorkloadTrace};

    fn step(nodes: usize, per_dest: u64, gpu_ops: u64, class: OpClass) -> StepTrace {
        StepTrace {
            per_node: (0..nodes)
                .map(|_| NodeStep {
                    gpu_ops,
                    routed: vec![per_dest; nodes],
                    class,
                    local_pgas: 0,
                })
                .collect(),
        }
    }

    fn analytic(step_: &StepTrace, cal: &Calibration) -> u64 {
        let mut t = WorkloadTrace::new("x", step_.per_node.len());
        t.push_step(step_.clone());
        simulate(&t, cal, &Style::Gravel.params(cal)).total_ns
    }

    /// The analytic max-of-stages model and the event-granular DES must
    /// agree within a factor band across regimes (CPU-bound, GPU-bound,
    /// latency-bound).
    #[test]
    fn des_and_analytic_agree_across_regimes() {
        let cal = Calibration::paper();
        for (name, s) in [
            ("cpu-bound scatter", step(8, 1 << 17, 0, OpClass::Atomic)),
            ("gpu-bound", step(8, 1 << 10, 1 << 24, OpClass::Put)),
            ("latency-bound", step(8, 64, 1000, OpClass::Atomic)),
            ("put-heavy", step(4, 1 << 16, 1 << 20, OpClass::Put)),
        ] {
            let des = des_step_time(&s, &cal) as f64;
            let ana = analytic(&s, &cal) as f64;
            let ratio = des / ana;
            assert!(
                (0.4..=2.5).contains(&ratio),
                "{name}: des {des} vs analytic {ana} (ratio {ratio:.2})"
            );
        }
    }

    /// The DES respects obvious monotonicity: more messages, later finish.
    #[test]
    fn des_monotone_in_volume() {
        let cal = Calibration::paper();
        let a = des_step_time(&step(4, 1 << 12, 0, OpClass::Atomic), &cal);
        let b = des_step_time(&step(4, 1 << 16, 0, OpClass::Atomic), &cal);
        assert!(b > a, "{b} vs {a}");
    }

    /// Determinism: identical inputs, identical virtual times.
    #[test]
    fn des_is_deterministic() {
        let cal = Calibration::paper();
        let s = step(6, 12345, 999, OpClass::Atomic);
        assert_eq!(des_step_time(&s, &cal), des_step_time(&s, &cal));
    }

    /// A compute-only step costs GPU time plus the launch tail and uses
    /// no link at all.
    #[test]
    fn compute_only_floor() {
        let cal = Calibration::paper();
        let s = step(4, 0, 1 << 20, OpClass::Put);
        let t = des_step_time(&s, &cal);
        let gpu = (1u64 << 20) as f64 * cal.gpu_op_ns;
        assert!(t as f64 >= gpu, "{t} vs {gpu}");
        assert!((t as f64) < gpu * 1.5 + cal.kernel_launch_ns as f64 + 1.0);
    }
}
