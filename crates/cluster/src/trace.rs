//! Communication traces.
//!
//! The cluster model is *trace-driven*: an application is characterised
//! per superstep, per node, by how much data-parallel compute it does,
//! how many operations stay local, and how many messages it routes to
//! each destination (with which operation class). The `gravel-apps` crate
//! generates these traces by running the real (partitioned) algorithms;
//! the models in this crate replay them under each GPU networking style.

use serde::{Deserialize, Serialize};

/// Class of a routed operation — applied-cost differs (a PUT is a plain
/// store at the destination; atomics are serialized RMWs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpClass {
    /// PGAS store.
    #[default]
    Put,
    /// Atomic increment or active message (serialized at the network
    /// thread).
    Atomic,
}

/// One node's activity within one superstep.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NodeStep {
    /// Effective data-parallel operations executed locally on the GPU
    /// (local PUTs, per-edge compute, per-point distance math, ...).
    pub gpu_ops: u64,
    /// Messages routed through the aggregator, per destination node.
    /// `routed[self]` is legal and common: serialized local atomics.
    pub routed: Vec<u64>,
    /// Class of the routed operations this step (apps use one class per
    /// phase; mixed phases split into two steps).
    pub class: OpClass,
    /// How many of `gpu_ops` are *local PGAS accesses* (e.g. GPU-direct
    /// local PUTs) rather than pure compute. Only Table 5's
    /// remote-access-frequency accounting uses this; timing uses
    /// `gpu_ops`.
    pub local_pgas: u64,
}

impl NodeStep {
    /// A step with no routed traffic.
    pub fn compute_only(gpu_ops: u64, nodes: usize) -> Self {
        NodeStep { gpu_ops, routed: vec![0; nodes], class: OpClass::Put, local_pgas: 0 }
    }

    /// Total routed messages.
    pub fn routed_total(&self) -> u64 {
        self.routed.iter().sum()
    }
}

/// One superstep: all nodes run, then a global barrier.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StepTrace {
    /// Per-node activity, indexed by node id.
    pub per_node: Vec<NodeStep>,
}

/// A whole application run, characterised for `nodes` nodes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadTrace {
    /// Workload name (for reports).
    pub name: String,
    /// Cluster size the trace was generated for.
    pub nodes: usize,
    /// Supersteps in order.
    pub steps: Vec<StepTrace>,
}

impl WorkloadTrace {
    /// An empty trace.
    pub fn new(name: impl Into<String>, nodes: usize) -> Self {
        WorkloadTrace { name: name.into(), nodes, steps: Vec::new() }
    }

    /// Append a superstep; panics if its width disagrees with `nodes`.
    pub fn push_step(&mut self, step: StepTrace) {
        assert_eq!(step.per_node.len(), self.nodes, "step width mismatch");
        for ns in &step.per_node {
            assert_eq!(ns.routed.len(), self.nodes, "routed vector width mismatch");
        }
        self.steps.push(step);
    }

    /// Total messages routed (all steps, all nodes).
    pub fn total_routed(&self) -> u64 {
        self.steps.iter().flat_map(|s| &s.per_node).map(|n| n.routed_total()).sum()
    }

    /// Total local GPU operations.
    pub fn total_gpu_ops(&self) -> u64 {
        self.steps.iter().flat_map(|s| &s.per_node).map(|n| n.gpu_ops).sum()
    }

    /// Fraction of PGAS operations that target a remote node — Table 5's
    /// "remote access frequency". Local operations are `local_pgas`
    /// (GPU-direct accesses) plus `routed[self]` (serialized local
    /// atomics); pure compute in `gpu_ops` does not count.
    pub fn remote_fraction(&self) -> f64 {
        let mut remote = 0u64;
        let mut total = 0u64;
        for step in &self.steps {
            for (src, ns) in step.per_node.iter().enumerate() {
                total += ns.local_pgas;
                for (dest, &m) in ns.routed.iter().enumerate() {
                    total += m;
                    if dest != src {
                        remote += m;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            remote as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step2(a_routed: Vec<u64>, b_routed: Vec<u64>) -> StepTrace {
        StepTrace {
            per_node: vec![
                NodeStep { gpu_ops: 10, routed: a_routed, class: OpClass::Atomic, local_pgas: 10 },
                NodeStep { gpu_ops: 10, routed: b_routed, class: OpClass::Atomic, local_pgas: 10 },
            ],
        }
    }

    #[test]
    fn totals() {
        let mut t = WorkloadTrace::new("x", 2);
        t.push_step(step2(vec![1, 3], vec![2, 0]));
        t.push_step(step2(vec![0, 0], vec![0, 4]));
        assert_eq!(t.total_routed(), 10);
        assert_eq!(t.total_gpu_ops(), 40);
    }

    #[test]
    fn remote_fraction_counts_self_routed_as_local() {
        let mut t = WorkloadTrace::new("x", 2);
        // Node 0 routes 1 local (self) + 3 remote; node 1 routes 2 remote.
        // gpu_ops 20 local. total = 20 + 6 = 26, remote = 5.
        t.push_step(step2(vec![1, 3], vec![2, 0]));
        assert!((t.remote_fraction() - 5.0 / 26.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_has_zero_remote_fraction() {
        assert_eq!(WorkloadTrace::new("x", 4).remote_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "step width mismatch")]
    fn width_mismatch_rejected() {
        let mut t = WorkloadTrace::new("x", 3);
        t.push_step(step2(vec![1, 3], vec![2, 0]));
    }

    #[test]
    fn compute_only_step() {
        let ns = NodeStep::compute_only(100, 4);
        assert_eq!(ns.routed_total(), 0);
        assert_eq!(ns.gpu_ops, 100);
        assert_eq!(ns.routed.len(), 4);
    }
}
