//! Property tests for the cluster performance model: sanity laws that
//! must hold for *any* trace.

use gravel_cluster::{simulate, Calibration, NodeStep, OpClass, StepTrace, Style, WorkloadTrace};
use proptest::prelude::*;

/// Strategy: a random trace over `nodes` nodes.
fn arb_trace(max_nodes: usize) -> impl Strategy<Value = WorkloadTrace> {
    (1..=max_nodes, 1usize..6).prop_flat_map(|(nodes, steps)| {
        prop::collection::vec(
            prop::collection::vec(
                (0u64..5000, prop::collection::vec(0u64..2000, nodes), any::<bool>()),
                nodes,
            ),
            steps,
        )
        .prop_map(move |stepdata| {
            let mut t = WorkloadTrace::new("arb", nodes);
            for step in stepdata {
                t.push_step(StepTrace {
                    per_node: step
                        .into_iter()
                        .map(|(gpu_ops, routed, atomic)| NodeStep {
                            gpu_ops,
                            routed,
                            class: if atomic { OpClass::Atomic } else { OpClass::Put },
                            local_pgas: 0,
                        })
                        .collect(),
                });
            }
            t
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Time is positive and deterministic; message/byte accounting is
    /// conserved (bytes = 32 × cross-node messages).
    #[test]
    fn accounting_laws(trace in arb_trace(6)) {
        let cal = Calibration::paper();
        for style in Style::fig15() {
            let a = simulate(&trace, &cal, &style.params(&cal));
            let b = simulate(&trace, &cal, &style.params(&cal));
            prop_assert_eq!(a.total_ns, b.total_ns, "{} nondeterministic", style.name());
            prop_assert!(a.total_ns > 0 || trace.steps.is_empty());
            prop_assert_eq!(a.messages, trace.total_routed());
            // Wire bytes cover exactly the cross-node messages.
            let cross: u64 = trace
                .steps
                .iter()
                .flat_map(|s| s.per_node.iter().enumerate())
                .flat_map(|(src, ns)| {
                    ns.routed
                        .iter()
                        .enumerate()
                        .filter(move |(d, _)| *d != src)
                        .map(|(_, &m)| m)
                })
                .sum();
            prop_assert_eq!(a.bytes, cross * 32, "{}", style.name());
            // Packets never exceed messages, and exist iff bytes exist.
            prop_assert!(a.packets <= cross.max(1) * 2);
            prop_assert_eq!(a.packets == 0, a.bytes == 0);
        }
    }

    /// More traffic never makes a run faster (monotonicity in volume).
    #[test]
    fn monotone_in_traffic(
        base in arb_trace(4),
        extra in 1u64..100_000,
    ) {
        let cal = Calibration::paper();
        let mut bigger = base.clone();
        if let Some(step) = bigger.steps.first_mut() {
            if let Some(ns) = step.per_node.first_mut() {
                let last = ns.routed.len() - 1;
                ns.routed[last] += extra;
            }
        }
        let params = Style::Gravel.params(&cal);
        let a = simulate(&base, &cal, &params);
        let b = simulate(&bigger, &cal, &params);
        prop_assert!(b.total_ns >= a.total_ns, "{} vs {}", b.total_ns, a.total_ns);
    }

    /// Halving link bandwidth never speeds anything up.
    #[test]
    fn monotone_in_bandwidth(trace in arb_trace(4)) {
        let mut slow = Calibration::paper();
        slow.link_bw /= 4;
        let fast = Calibration::paper();
        let a = simulate(&trace, &fast, &Style::Gravel.params(&fast));
        let b = simulate(&trace, &slow, &Style::Gravel.params(&slow));
        prop_assert!(b.total_ns >= a.total_ns);
    }

    /// Average packet size never exceeds the configured queue size.
    #[test]
    fn packets_bounded_by_queue(trace in arb_trace(4)) {
        let cal = Calibration::paper();
        let r = simulate(&trace, &cal, &Style::Gravel.params(&cal));
        if r.packets > 0 {
            prop_assert!(r.avg_packet_bytes() <= cal.node_queue_bytes as f64 + 1e-9);
        }
    }
}
