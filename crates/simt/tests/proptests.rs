//! Property tests for the SIMT engine's core invariants.

use gravel_simt::{
    collectives, diverged_for, DivergedCosts, DivergedMode, Grid, LaneVec, Mask, SimtEngine,
    WgCtx,
};
use proptest::prelude::*;

/// Arbitrary mask over `lanes` lanes from a bit vector.
fn mask_from_bits(bits: &[bool]) -> Mask {
    Mask::from_fn(bits.len(), |l| bits[l])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reduce over active lanes equals the scalar fold over the same
    /// lanes, for arbitrary masks and values.
    #[test]
    fn reduce_matches_scalar_fold(
        vals in prop::collection::vec(0u64..1_000_000, 1..200),
        bits in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let lanes = vals.len().min(bits.len());
        let vals = LaneVec::from_vec(vals[..lanes].to_vec());
        let mask = mask_from_bits(&bits[..lanes]);
        let sum = collectives::reduce_sum(&vals, &mask);
        let expect: u64 = mask.iter().map(|l| vals.get(l)).sum();
        prop_assert_eq!(sum, expect);
        let max = collectives::reduce_max(&vals, &mask, 0);
        let expect_max = mask.iter().map(|l| vals.get(l)).max().unwrap_or(0);
        prop_assert_eq!(max, expect_max);
    }

    /// Exclusive prefix sum: every lane's value equals the sum of active
    /// predecessors; reconstructing the total from the last active lane
    /// matches the reduction.
    #[test]
    fn prefix_sum_is_exclusive_running_total(
        vals in prop::collection::vec(0u64..1000, 1..200),
        bits in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let lanes = vals.len().min(bits.len());
        let vals = LaneVec::from_vec(vals[..lanes].to_vec());
        let mask = mask_from_bits(&bits[..lanes]);
        let ps = collectives::exclusive_prefix_sum(&vals, &mask);
        let mut running = 0u64;
        for l in 0..lanes {
            prop_assert_eq!(ps.get(l), running, "lane {}", l);
            if mask.get(l) {
                running += vals.get(l);
            }
        }
        prop_assert_eq!(running, collectives::reduce_sum(&vals, &mask));
    }

    /// Counting sort groups every active lane exactly once, in
    /// destination order.
    #[test]
    fn counting_sort_is_a_permutation_of_active_lanes(
        dests in prop::collection::vec(0usize..8, 1..200),
        bits in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let lanes = dests.len().min(bits.len());
        let dv = LaneVec::from_vec(dests[..lanes].to_vec());
        let mask = mask_from_bits(&bits[..lanes]);
        let cs = collectives::counting_sort_by_dest(&dv, &mask, 8);
        // Exactly the active lanes appear.
        let mut sorted = cs.order.clone();
        sorted.sort_unstable();
        let active: Vec<usize> = mask.iter().collect();
        prop_assert_eq!(sorted, active);
        // Counts per destination match.
        let total: usize = cs.cnts.iter().sum();
        prop_assert_eq!(total, mask.count());
        // Order is grouped by destination, ascending.
        let mut off = 0;
        for (d, &cnt) in cs.dests.iter().zip(&cs.cnts) {
            for &lane in &cs.order[off..off + cnt] {
                prop_assert_eq!(dv.get(lane), *d);
            }
            off += cnt;
        }
    }

    /// Mask boolean algebra: and/or/and_not behave like sets.
    #[test]
    fn mask_boolean_algebra(
        a in prop::collection::vec(any::<bool>(), 1..200),
        b in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let lanes = a.len().min(b.len());
        let ma = mask_from_bits(&a[..lanes]);
        let mb = mask_from_bits(&b[..lanes]);
        prop_assert_eq!(ma.and(&mb).count() + ma.and_not(&mb).count(), ma.count());
        prop_assert_eq!(ma.or(&mb).count(), ma.count() + mb.count() - ma.and(&mb).count());
        for l in ma.and(&mb).iter() {
            prop_assert!(ma.get(l) && mb.get(l));
        }
    }

    /// Every diverged mode executes each lane exactly `trips[lane]` times.
    #[test]
    fn diverged_modes_agree_for_arbitrary_trip_counts(
        trips in prop::collection::vec(0u64..6, 8..64),
    ) {
        // Round lanes up to a wavefront multiple.
        let wg = trips.len().next_multiple_of(8);
        let mut trips = trips;
        trips.resize(wg, 0);
        let grid = Grid { wg_count: 1, wg_size: wg, wf_width: 8 };
        let reference: Vec<u64> = trips.clone();
        let mut results = Vec::new();
        for mode in [
            DivergedMode::SoftwarePredication,
            DivergedMode::WgReconvergence,
            DivergedMode::FineGrainBarrier,
        ] {
            let mut ctx = WgCtx::new(grid, 0);
            let tc = LaneVec::from_vec(trips.clone());
            let mut acc = vec![0u64; wg];
            diverged_for(&mut ctx, &tc, mode, DivergedCosts::default(), |ctx, _| {
                for l in ctx.active().clone().iter() {
                    acc[l] += 1;
                }
            });
            results.push(acc);
        }
        for r in &results {
            prop_assert_eq!(r, &reference);
        }
    }

    /// Dispatch with any CU count yields the same per-work-group outputs.
    #[test]
    fn dispatch_output_independent_of_cu_count(
        wgs in 1usize..12,
        cus in 1usize..5,
    ) {
        let grid = Grid { wg_count: wgs, wg_size: 16, wf_width: 8 };
        let (seq, _) = SimtEngine::with_cus(1).dispatch_map(grid, |ctx| ctx.wg_id() * 3 + 1);
        let (par, _) = SimtEngine::with_cus(cus).dispatch_map(grid, |ctx| ctx.wg_id() * 3 + 1);
        prop_assert_eq!(seq, par);
    }
}
