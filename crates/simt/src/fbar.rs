//! Fine-grain barriers (HSA `fbar`, paper §5.3).
//!
//! An [`FBar`] lets an arbitrary subset of a work-group's work-items
//! synchronize: lanes *join* the barrier, repeatedly *arrive* at it (one
//! arrival per loop iteration in Fig. 10c), and *leave* when their private
//! work is done. Collectives executed "on" the barrier involve exactly the
//! registered lanes, so wavefronts whose lanes have all left stop executing
//! — the property that distinguishes fbar execution (Fig. 11d) from
//! software predication and work-group-granularity reconvergence
//! (Fig. 11c).
//!
//! HSA's shipping `fbar` can only register whole wavefronts; the paper
//! argues future GPUs should allow per-work-item registration. This model
//! implements the per-work-item proposal (and can emulate the HSA
//! restriction via [`FBar::join_wavefront`]).

use crate::mask::Mask;

/// Errors from misusing the fbar protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FBarError {
    /// A lane joined twice without leaving.
    AlreadyJoined(usize),
    /// A lane arrived at or left a barrier it is not registered with.
    NotJoined(usize),
}

impl std::fmt::Display for FBarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FBarError::AlreadyJoined(l) => write!(f, "lane {l} already joined fbar"),
            FBarError::NotJoined(l) => write!(f, "lane {l} is not joined to fbar"),
        }
    }
}

impl std::error::Error for FBarError {}

/// A fine-grain barrier over a work-group's lanes.
#[derive(Debug, Clone)]
pub struct FBar {
    registered: Mask,
    arrivals: u64,
    ops: u64,
}

impl FBar {
    /// `initfbar`: create a barrier for a `wg_size`-lane work-group with
    /// no lanes registered.
    pub fn init(wg_size: usize) -> Self {
        FBar { registered: Mask::none(wg_size), arrivals: 0, ops: 1 }
    }

    /// `joinfbar` for one lane.
    pub fn join(&mut self, lane: usize) -> Result<(), FBarError> {
        if self.registered.get(lane) {
            return Err(FBarError::AlreadyJoined(lane));
        }
        self.registered.set(lane, true);
        self.ops += 1;
        Ok(())
    }

    /// `joinfbar` for every lane in `mask` (Fig. 10c line 16 joins all
    /// work-items at loop entry).
    pub fn join_mask(&mut self, mask: &Mask) -> Result<(), FBarError> {
        for lane in mask.iter() {
            self.join(lane)?;
        }
        Ok(())
    }

    /// HSA-restricted join: register a whole wavefront at once.
    pub fn join_wavefront(&mut self, wf: usize, wf_width: usize) -> Result<(), FBarError> {
        let lo = wf * wf_width;
        let hi = ((wf + 1) * wf_width).min(self.registered.lanes());
        for lane in lo..hi {
            self.join(lane)?;
        }
        Ok(())
    }

    /// `leavefbar`: a lane whose private work is done unregisters
    /// (Fig. 10c lines 19-20).
    pub fn leave(&mut self, lane: usize) -> Result<(), FBarError> {
        if !self.registered.get(lane) {
            return Err(FBarError::NotJoined(lane));
        }
        self.registered.set(lane, false);
        self.ops += 1;
        Ok(())
    }

    /// `waitfbar`: all registered lanes arrive and synchronize. In the
    /// lockstep interpreter this is a bookkeeping event; the value returned
    /// is the set of lanes that participated.
    pub fn arrive(&mut self) -> Mask {
        self.arrivals += 1;
        self.ops += 1;
        self.registered.clone()
    }

    /// Lanes currently registered.
    pub fn registered(&self) -> &Mask {
        &self.registered
    }

    /// Wavefronts that still have registered lanes — the wavefronts that
    /// must keep executing. Fully-drained wavefronts are *not* listed:
    /// this is the fbar advantage over WG-granularity control flow.
    pub fn live_wavefronts(&self, wf_width: usize) -> Vec<usize> {
        let wfs = self.registered.lanes().div_ceil(wf_width);
        (0..wfs).filter(|&wf| self.registered.wavefront_any(wf, wf_width)).collect()
    }

    /// True when no lane remains registered (the diverged loop is done).
    pub fn drained(&self) -> bool {
        self.registered.is_empty()
    }

    /// Number of barrier arrivals so far.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Total fbar operations (init/join/leave/arrive) for cost accounting.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_leave_lifecycle() {
        let mut fb = FBar::init(8);
        fb.join_mask(&Mask::all(8)).unwrap();
        assert_eq!(fb.registered().count(), 8);
        fb.leave(3).unwrap();
        assert_eq!(fb.registered().count(), 7);
        assert!(!fb.registered().get(3));
    }

    #[test]
    fn double_join_and_stray_leave_are_errors() {
        let mut fb = FBar::init(4);
        fb.join(1).unwrap();
        assert_eq!(fb.join(1), Err(FBarError::AlreadyJoined(1)));
        assert_eq!(fb.leave(2), Err(FBarError::NotJoined(2)));
    }

    #[test]
    fn drained_wavefronts_stop_executing() {
        // 2 wavefronts of 4 lanes; drain wavefront 1 entirely.
        let mut fb = FBar::init(8);
        fb.join_mask(&Mask::all(8)).unwrap();
        for lane in 4..8 {
            fb.leave(lane).unwrap();
        }
        assert_eq!(fb.live_wavefronts(4), vec![0]);
        assert!(!fb.drained());
        for lane in 0..4 {
            fb.leave(lane).unwrap();
        }
        assert!(fb.drained());
        assert!(fb.live_wavefronts(4).is_empty());
    }

    #[test]
    fn arrive_returns_participants_and_counts() {
        let mut fb = FBar::init(4);
        fb.join(0).unwrap();
        fb.join(2).unwrap();
        let participants = fb.arrive();
        assert_eq!(participants.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(fb.arrivals(), 1);
    }

    #[test]
    fn wavefront_granularity_join_matches_hsa_restriction() {
        let mut fb = FBar::init(8);
        fb.join_wavefront(1, 4).unwrap();
        assert_eq!(fb.registered().iter().collect::<Vec<_>>(), vec![4, 5, 6, 7]);
    }
}
