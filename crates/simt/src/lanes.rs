//! Per-lane value vectors.
//!
//! In a SIMT machine every "scalar" variable in the kernel source is
//! physically a vector register holding one value per lane. [`LaneVec`]
//! models such a register for a whole work-group: index `i` holds lane
//! `i`'s value. Operations come in masked variants so that inactive lanes
//! keep their previous contents, exactly as hardware predication leaves
//! masked-off vector elements untouched.

use crate::mask::Mask;

/// A per-lane register: one `T` per lane of a work-group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneVec<T> {
    vals: Vec<T>,
}

impl<T: Copy + Default> LaneVec<T> {
    /// A register with every lane holding `T::default()`.
    pub fn zeroed(lanes: usize) -> Self {
        LaneVec { vals: vec![T::default(); lanes] }
    }
}

impl<T: Copy> LaneVec<T> {
    /// A register with every lane holding `val`.
    pub fn splat(lanes: usize, val: T) -> Self {
        LaneVec { vals: vec![val; lanes] }
    }

    /// A register computed per lane (e.g. `from_fn(n, |l| l)` is `LANE_ID`).
    pub fn from_fn(lanes: usize, f: impl FnMut(usize) -> T) -> Self {
        LaneVec { vals: (0..lanes).map(f).collect() }
    }

    /// Wrap an existing per-lane vector.
    pub fn from_vec(vals: Vec<T>) -> Self {
        LaneVec { vals }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.vals.len()
    }

    /// Lane `lane`'s value.
    #[inline]
    pub fn get(&self, lane: usize) -> T {
        self.vals[lane]
    }

    /// Overwrite lane `lane`'s value (unmasked; prefer the masked ops in
    /// kernel code).
    #[inline]
    pub fn set(&mut self, lane: usize, val: T) {
        self.vals[lane] = val;
    }

    /// Raw per-lane slice.
    pub fn as_slice(&self) -> &[T] {
        &self.vals
    }

    /// Map each *active* lane through `f`; inactive lanes keep their value.
    pub fn map_masked(&self, mask: &Mask, mut f: impl FnMut(usize, T) -> T) -> LaneVec<T> {
        assert_eq!(self.lanes(), mask.lanes(), "register/mask width mismatch");
        LaneVec {
            vals: self
                .vals
                .iter()
                .enumerate()
                .map(|(lane, &v)| if mask.get(lane) { f(lane, v) } else { v })
                .collect(),
        }
    }

    /// Per-lane select: active lanes take `then_val`'s lane, inactive take
    /// `self`'s lane (the SIMT compilation of `x = cond ? a : x`).
    pub fn select(&self, mask: &Mask, then_vals: &LaneVec<T>) -> LaneVec<T> {
        assert_eq!(self.lanes(), then_vals.lanes(), "register width mismatch");
        LaneVec {
            vals: self
                .vals
                .iter()
                .enumerate()
                .map(|(lane, &v)| if mask.get(lane) { then_vals.get(lane) } else { v })
                .collect(),
        }
    }

    /// Write `val` into every active lane.
    pub fn store_masked(&mut self, mask: &Mask, val: T) {
        for lane in mask.iter() {
            self.vals[lane] = val;
        }
    }

    /// Iterate `(lane, value)` over active lanes.
    pub fn iter_masked<'a>(&'a self, mask: &'a Mask) -> impl Iterator<Item = (usize, T)> + 'a {
        mask.iter().map(move |lane| (lane, self.vals[lane]))
    }
}

impl<T: Copy> std::ops::Index<usize> for LaneVec<T> {
    type Output = T;
    fn index(&self, lane: usize) -> &T {
        &self.vals[lane]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_from_fn() {
        let s = LaneVec::splat(4, 7u32);
        assert_eq!(s.as_slice(), &[7, 7, 7, 7]);
        let ids = LaneVec::from_fn(4, |l| l as u32);
        assert_eq!(ids.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn map_masked_leaves_inactive_untouched() {
        let v = LaneVec::from_fn(6, |l| l as i64);
        let m = Mask::from_fn(6, |l| l % 2 == 1);
        let doubled = v.map_masked(&m, |_, x| x * 2);
        assert_eq!(doubled.as_slice(), &[0, 2, 2, 6, 4, 10]);
    }

    #[test]
    fn select_takes_then_side_on_active_lanes() {
        let v = LaneVec::splat(4, 0u8);
        let t = LaneVec::splat(4, 9u8);
        let m = Mask::from_fn(4, |l| l >= 2);
        assert_eq!(v.select(&m, &t).as_slice(), &[0, 0, 9, 9]);
    }

    #[test]
    fn store_masked_and_iter_masked() {
        let mut v = LaneVec::zeroed(5);
        let m = Mask::from_fn(5, |l| l == 1 || l == 4);
        v.store_masked(&m, 42u32);
        assert_eq!(v.as_slice(), &[0, 42, 0, 0, 42]);
        let pairs: Vec<_> = v.iter_masked(&m).collect();
        assert_eq!(pairs, vec![(1, 42), (4, 42)]);
    }

    #[test]
    #[should_panic(expected = "register/mask width mismatch")]
    fn width_mismatch_panics() {
        let v = LaneVec::splat(4, 0u8);
        let m = Mask::all(5);
        let _ = v.map_masked(&m, |_, x| x);
    }
}
