//! Kernel launch geometry.
//!
//! A [`Grid`] describes one kernel dispatch: how many work-groups, how many
//! work-items per work-group, and the wavefront width of the machine. The
//! paper's evaluation platform (Table 3) runs 64-wide wavefronts with
//! work-groups of up to four wavefronts (256 work-items), which are the
//! defaults here.

/// Wavefront width of AMD GCN GPUs (paper §2.1).
pub const DEFAULT_WF_WIDTH: usize = 64;

/// Default work-group size: four wavefronts (paper §4.3 "WGs have four
/// WFs").
pub const DEFAULT_WG_SIZE: usize = 4 * DEFAULT_WF_WIDTH;

/// Geometry of one kernel dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid {
    /// Number of work-groups in the dispatch.
    pub wg_count: usize,
    /// Work-items per work-group (must be a positive multiple of nothing —
    /// partial last wavefronts are allowed, matching OpenCL).
    pub wg_size: usize,
    /// Lanes per wavefront.
    pub wf_width: usize,
}

impl Grid {
    /// A grid of `wg_count` work-groups with the platform defaults
    /// (256-WI work-groups of 64-wide wavefronts).
    pub fn new(wg_count: usize) -> Self {
        Grid { wg_count, wg_size: DEFAULT_WG_SIZE, wf_width: DEFAULT_WF_WIDTH }
    }

    /// Grid sized so that `grid_width` work-items run in work-groups of
    /// `wg_size` (the paper's `GRID_WIDTH = len(B)` launches). The last
    /// work-group may be partial; kernels see that as inactive tail lanes.
    pub fn cover(grid_width: usize, wg_size: usize) -> Self {
        assert!(wg_size > 0, "work-group size must be positive");
        Grid {
            wg_count: grid_width.div_ceil(wg_size).max(1),
            wg_size,
            wf_width: DEFAULT_WF_WIDTH.min(wg_size),
        }
    }

    /// Override the wavefront width (used by the Fig. 6 work-group-size
    /// sweep, which compares 1-, 2- and 4-wavefront work-groups).
    pub fn with_wf_width(mut self, wf_width: usize) -> Self {
        assert!(wf_width > 0, "wavefront width must be positive");
        self.wf_width = wf_width;
        self
    }

    /// Total work-items in the dispatch.
    pub fn total_work_items(&self) -> usize {
        self.wg_count * self.wg_size
    }

    /// Wavefronts per work-group.
    pub fn wfs_per_wg(&self) -> usize {
        self.wg_size.div_ceil(self.wf_width)
    }

    /// First global work-item id of work-group `wg_id`.
    pub fn wg_base(&self, wg_id: usize) -> usize {
        wg_id * self.wg_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_platform() {
        let g = Grid::new(8);
        assert_eq!(g.wg_size, 256);
        assert_eq!(g.wf_width, 64);
        assert_eq!(g.wfs_per_wg(), 4);
        assert_eq!(g.total_work_items(), 2048);
    }

    #[test]
    fn cover_rounds_up() {
        let g = Grid::cover(1000, 256);
        assert_eq!(g.wg_count, 4);
        assert_eq!(g.total_work_items(), 1024);
        let g1 = Grid::cover(0, 256);
        assert_eq!(g1.wg_count, 1);
    }

    #[test]
    fn cover_with_narrow_wg_narrows_wavefront() {
        // A 32-wide work-group cannot have 64-wide wavefronts.
        let g = Grid::cover(64, 32);
        assert_eq!(g.wf_width, 32);
        assert_eq!(g.wfs_per_wg(), 1);
    }

    #[test]
    fn wg_base_strides_by_wg_size() {
        let g = Grid::new(4);
        assert_eq!(g.wg_base(0), 0);
        assert_eq!(g.wg_base(3), 768);
    }

    #[test]
    fn partial_last_wavefront_counted() {
        let g = Grid { wg_count: 1, wg_size: 100, wf_width: 64 };
        assert_eq!(g.wfs_per_wg(), 2);
    }
}
