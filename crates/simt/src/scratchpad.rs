//! Work-group scratchpad (local data share).
//!
//! Each compute unit has a programmer-managed scratchpad cache shared by the
//! work-groups resident on it (paper Fig. 1). Capacity is a first-class
//! constraint: the coalesced-APIs model's per-work-group counting sort
//! consumes 4 kB for a 256-lane work-group (§3.3), and `mer`'s heavy
//! scratchpad usage limits occupancy (§7.2). The model therefore tracks an
//! allocation high-water mark so occupancy effects can be derived.

/// Scratchpad capacity of one compute unit in bytes (64 kB, typical for
/// GCN-era AMD hardware).
pub const DEFAULT_CAPACITY: usize = 64 * 1024;

/// A bump-allocated, typed scratchpad for one work-group.
#[derive(Debug)]
pub struct Scratchpad {
    capacity: usize,
    allocated: usize,
    high_water: usize,
}

/// Error returned when a work-group requests more scratchpad than the
/// compute unit provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchpadOverflow {
    /// Bytes requested by the failing allocation.
    pub requested: usize,
    /// Bytes still available at the time of the request.
    pub available: usize,
}

impl std::fmt::Display for ScratchpadOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scratchpad overflow: requested {} B with {} B available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for ScratchpadOverflow {}

impl Scratchpad {
    /// A scratchpad with the default 64 kB capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A scratchpad with an explicit capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Scratchpad { capacity, allocated: 0, high_water: 0 }
    }

    /// Allocate a typed array of `len` elements, zero-initialised.
    pub fn alloc<T: Copy + Default>(&mut self, len: usize) -> Result<Vec<T>, ScratchpadOverflow> {
        let bytes = len * std::mem::size_of::<T>();
        if self.allocated + bytes > self.capacity {
            return Err(ScratchpadOverflow {
                requested: bytes,
                available: self.capacity - self.allocated,
            });
        }
        self.allocated += bytes;
        self.high_water = self.high_water.max(self.allocated);
        Ok(vec![T::default(); len])
    }

    /// Release `len` elements of `T` (kernel-scope bump free; work-groups
    /// free everything at kernel end, but divergence studies reuse space).
    pub fn free<T>(&mut self, len: usize) {
        let bytes = len * std::mem::size_of::<T>();
        self.allocated = self.allocated.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> usize {
        self.allocated
    }

    /// Maximum bytes ever allocated simultaneously.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many work-groups with this scratchpad footprint fit on one
    /// compute unit (occupancy limit; at least 1 footprint must fit).
    pub fn occupancy_limit(cu_capacity: usize, footprint: usize) -> usize {
        cu_capacity.checked_div(footprint).unwrap_or(usize::MAX)
    }
}

impl Default for Scratchpad {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_tracks_bytes_and_high_water() {
        let mut sp = Scratchpad::with_capacity(1024);
        let a: Vec<u64> = sp.alloc(64).unwrap(); // 512 B
        assert_eq!(a.len(), 64);
        assert_eq!(sp.allocated(), 512);
        sp.free::<u64>(64);
        assert_eq!(sp.allocated(), 0);
        assert_eq!(sp.high_water(), 512);
    }

    #[test]
    fn overflow_is_reported_not_panicked() {
        let mut sp = Scratchpad::with_capacity(100);
        let err = sp.alloc::<u64>(20).unwrap_err(); // 160 B > 100 B
        assert_eq!(err.requested, 160);
        assert_eq!(err.available, 100);
    }

    #[test]
    fn coalesced_api_footprint_matches_paper() {
        // §3.3: a 256-WI work-group uses 4 kB of scratchpad for the sort
        // (256 × 8 B pointers + 2 × node-count int arrays ≈ 4 kB with
        // NODE_COUNT = 8 … 256). Check the dominant term.
        let mut sp = Scratchpad::new();
        let _ptrs: Vec<i64> = sp.alloc(256).unwrap(); // 2 kB
        let _dests: Vec<i32> = sp.alloc(256).unwrap(); // 1 kB
        let _cnts: Vec<i32> = sp.alloc(256).unwrap(); // 1 kB
        assert_eq!(sp.allocated(), 4096);
    }

    #[test]
    fn occupancy_limit() {
        assert_eq!(Scratchpad::occupancy_limit(64 * 1024, 4096), 16);
        assert_eq!(Scratchpad::occupancy_limit(64 * 1024, 40 * 1024), 1);
        assert_eq!(Scratchpad::occupancy_limit(64 * 1024, 0), usize::MAX);
    }
}
