//! Work-group execution context.
//!
//! A [`WgCtx`] is what a kernel sees: lane ids, the active mask (with a
//! reconvergence stack for nested branches), cost counters, a scratchpad,
//! and the work-group-level collectives of §2.1/§4.1. Kernels are written
//! in an explicitly SIMT style — per-lane values live in
//! `LaneVec` registers and control flow is
//! expressed through mask-manipulating combinators — which makes the
//! engine's semantics identical to hardware predication.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::coalesce;
use crate::collectives::{self, CountingSort};
use crate::counters::Counters;
use crate::grid::Grid;
use crate::lanes::LaneVec;
use crate::mask::Mask;
use crate::scratchpad::Scratchpad;

/// Which wavefronts an instruction is charged to.
///
/// Hardware executing at wavefront granularity skips wavefronts whose lanes
/// are all inactive; software predication and work-group-granularity
/// reconvergence force every wavefront of the work-group to keep executing
/// (paper §5.3, Fig. 11c); fine-grain barriers let fully-drained wavefronts
/// leave (Fig. 11d).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecScope {
    /// Charge only wavefronts that have at least one active lane.
    ActiveWavefronts,
    /// Charge every wavefront of the work-group.
    WholeWorkGroup,
}

/// Execution context handed to kernels, one per work-group.
pub struct WgCtx {
    grid: Grid,
    wg_id: usize,
    mask_stack: Vec<Mask>,
    /// Dynamic event counters for this work-group.
    pub counters: Counters,
    /// Programmer-managed local data share.
    pub scratchpad: Scratchpad,
}

impl WgCtx {
    /// Context for work-group `wg_id` of `grid`, all lanes active.
    pub fn new(grid: Grid, wg_id: usize) -> Self {
        assert!(wg_id < grid.wg_count, "work-group id out of range");
        WgCtx {
            grid,
            wg_id,
            mask_stack: vec![Mask::all(grid.wg_size)],
            counters: Counters::default(),
            scratchpad: Scratchpad::new(),
        }
    }

    /// This work-group's id within the grid.
    pub fn wg_id(&self) -> usize {
        self.wg_id
    }

    /// Work-items per work-group.
    pub fn wg_size(&self) -> usize {
        self.grid.wg_size
    }

    /// Lanes per wavefront.
    pub fn wf_width(&self) -> usize {
        self.grid.wf_width
    }

    /// Wavefronts in this work-group.
    pub fn wf_count(&self) -> usize {
        self.grid.wfs_per_wg()
    }

    /// The launch geometry.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// `LANE_ID` register: each lane's index within the work-group.
    pub fn lane_ids(&self) -> LaneVec<usize> {
        LaneVec::from_fn(self.wg_size(), |l| l)
    }

    /// `GRID_ID` register: each lane's global work-item id.
    pub fn global_ids(&self) -> LaneVec<usize> {
        let base = self.grid.wg_base(self.wg_id);
        LaneVec::from_fn(self.wg_size(), move |l| base + l)
    }

    /// The current active mask.
    pub fn active(&self) -> &Mask {
        self.mask_stack.last().expect("mask stack never empty")
    }

    /// Number of currently active lanes.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    // ---- cost charging -------------------------------------------------

    /// Charge `instrs` wavefront instructions under `scope`.
    pub fn charge(&mut self, instrs: u64, scope: ExecScope) {
        let wfs = match scope {
            ExecScope::WholeWorkGroup => self.wf_count() as u64,
            ExecScope::ActiveWavefronts => {
                let m = self.active().clone();
                (0..self.wf_count()).filter(|&wf| m.wavefront_any(wf, self.wf_width())).count()
                    as u64
            }
        };
        self.counters.wf_issue_slots += instrs * wfs;
        self.counters.active_lane_slots += instrs * self.active_count() as u64;
    }

    /// Charge one coalesced memory instruction: each active lane accesses
    /// `bytes` at its address in `addrs`. Returns the number of cache-line
    /// transactions the coalescer issued.
    pub fn mem_access(&mut self, addrs: &LaneVec<u64>, bytes: usize) -> usize {
        let mask = self.active().clone();
        let tx = coalesce::wg_transactions(addrs.as_slice(), &mask, bytes, self.wf_width());
        self.counters.mem_transactions += tx as u64;
        self.counters.mem_accesses += mask.count() as u64;
        self.charge(1, ExecScope::ActiveWavefronts);
        tx
    }

    /// Execute a work-group barrier (charges every wavefront — all must
    /// arrive).
    pub fn wg_barrier(&mut self) {
        self.counters.barriers += 1;
        self.charge(1, ExecScope::WholeWorkGroup);
    }

    /// Perform a real shared-memory fetch-add, charging one atomic.
    /// This is how kernels synchronize with CPU threads through fine-grain
    /// shared virtual memory (§2.3).
    pub fn atomic_fetch_add(&mut self, target: &AtomicU64, add: u64) -> u64 {
        self.counters.atomics += 1;
        self.charge(1, ExecScope::ActiveWavefronts);
        target.fetch_add(add, Ordering::AcqRel)
    }

    /// Spin until `pred(load)` holds on `target`; charges one atomic per
    /// retry. Used by the queue's ticket protocol.
    pub fn atomic_wait(&mut self, target: &AtomicU64, pred: impl Fn(u64) -> bool) -> u64 {
        loop {
            let v = target.load(Ordering::Acquire);
            self.counters.atomics += 1;
            if pred(v) {
                return v;
            }
            std::hint::spin_loop();
        }
    }

    // ---- structured divergence ------------------------------------------

    /// SIMT `if`: run `then_body` with the active mask restricted to lanes
    /// where `cond` holds, then `else_body` with the complement. Either
    /// side is skipped entirely when its mask is empty (wavefront-level
    /// reconvergence would skip per wavefront; skipping per side is the
    /// work-group-synchronous upper bound and is what WG-level code must
    /// assume).
    pub fn if_else(
        &mut self,
        cond: &Mask,
        then_body: impl FnOnce(&mut WgCtx),
        else_body: impl FnOnce(&mut WgCtx),
    ) {
        let parent = self.active().clone();
        let then_mask = parent.and(cond);
        let else_mask = parent.and_not(cond);
        // Charge the branch instruction itself.
        self.charge(1, ExecScope::ActiveWavefronts);
        if !then_mask.is_empty() {
            self.mask_stack.push(then_mask);
            then_body(self);
            self.mask_stack.pop();
        }
        if !else_mask.is_empty() {
            self.mask_stack.push(else_mask);
            else_body(self);
            self.mask_stack.pop();
        }
    }

    /// SIMT `if` with no else side.
    pub fn if_then(&mut self, cond: &Mask, body: impl FnOnce(&mut WgCtx)) {
        self.if_else(cond, body, |_| {});
    }

    /// Run `body` with an explicit mask pushed (used by the diverged-loop
    /// executors, which compute iteration masks themselves).
    pub fn with_mask(&mut self, mask: Mask, body: impl FnOnce(&mut WgCtx)) {
        self.push_mask(mask);
        body(self);
        self.pop_mask();
    }

    /// Push an explicit active mask. Prefer [`with_mask`](Self::with_mask);
    /// the raw push/pop pair exists for wrapper contexts (e.g. the Gravel
    /// runtime's PGAS context) that cannot nest closures over `self`.
    /// Every push must be balanced by [`pop_mask`](Self::pop_mask).
    pub fn push_mask(&mut self, mask: Mask) {
        assert_eq!(mask.lanes(), self.wg_size(), "mask width mismatch");
        self.mask_stack.push(mask);
    }

    /// Pop the mask pushed by [`push_mask`](Self::push_mask).
    pub fn pop_mask(&mut self) {
        assert!(self.mask_stack.len() > 1, "cannot pop the base mask");
        self.mask_stack.pop();
    }

    // ---- work-group-level collectives (§4.1, §5.2) -----------------------

    fn charge_collective(&mut self) {
        // A log-depth tree network (Fig. 11a): one instruction + barrier
        // per level, executed by the whole work-group.
        let levels = usize::BITS - (self.wg_size().max(2) - 1).leading_zeros();
        self.counters.collectives += 1;
        self.counters.barriers += levels as u64;
        self.charge(levels as u64, ExecScope::WholeWorkGroup);
    }

    /// Reduce-to-max over active lanes; inactive lanes submit `identity`.
    pub fn reduce_max(&mut self, vals: &LaneVec<u64>, identity: u64) -> u64 {
        self.charge_collective();
        collectives::reduce_max(vals, self.active(), identity)
    }

    /// Reduce-to-sum over active lanes.
    pub fn reduce_sum(&mut self, vals: &LaneVec<u64>) -> u64 {
        self.charge_collective();
        collectives::reduce_sum(vals, self.active())
    }

    /// Exclusive prefix sum over active lanes (inactive submit 0).
    pub fn prefix_sum(&mut self, vals: &LaneVec<u64>) -> LaneVec<u64> {
        self.charge_collective();
        collectives::exclusive_prefix_sum(vals, self.active())
    }

    /// Elect the work-group leader: the highest active lane id
    /// (Fig. 5b line 5, `reduce_max(LANE_ID)`).
    pub fn elect_leader(&mut self) -> Option<usize> {
        self.charge_collective();
        self.active().leader()
    }

    /// Work-group counting sort by destination (§3.3). Allocates the
    /// scratchpad footprint the paper describes (ptrs + dests + cnts) and
    /// frees it before returning, so `scratchpad.high_water()` reflects
    /// the cost.
    pub fn counting_sort(
        &mut self,
        dests: &LaneVec<usize>,
        node_count: usize,
    ) -> Result<CountingSort, crate::scratchpad::ScratchpadOverflow> {
        let _ptrs: Vec<i64> = self.scratchpad.alloc(self.wg_size())?;
        let _d: Vec<i32> = self.scratchpad.alloc(node_count)?;
        let _c: Vec<i32> = self.scratchpad.alloc(node_count)?;
        // A counting sort is a few collectives' worth of work.
        self.charge_collective();
        self.charge_collective();
        let out = collectives::counting_sort_by_dest(dests, self.active(), node_count);
        self.scratchpad.free::<i64>(self.wg_size());
        self.scratchpad.free::<i32>(node_count);
        self.scratchpad.free::<i32>(node_count);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx4() -> WgCtx {
        // 1 work-group of 8 lanes, 4-wide wavefronts → 2 wavefronts.
        WgCtx::new(Grid { wg_count: 1, wg_size: 8, wf_width: 4 }, 0)
    }

    #[test]
    fn ids() {
        let g = Grid { wg_count: 3, wg_size: 8, wf_width: 4 };
        let ctx = WgCtx::new(g, 2);
        assert_eq!(ctx.lane_ids().as_slice()[7], 7);
        assert_eq!(ctx.global_ids().as_slice()[0], 16);
        assert_eq!(ctx.wf_count(), 2);
    }

    #[test]
    fn charge_whole_wg_vs_active_wavefronts() {
        let mut ctx = ctx4();
        // Restrict to lanes 0..3 (wavefront 0 only).
        let m = Mask::from_fn(8, |l| l < 4);
        ctx.with_mask(m, |ctx| {
            ctx.charge(1, ExecScope::ActiveWavefronts);
        });
        assert_eq!(ctx.counters.wf_issue_slots, 1); // only WF0 issued
        let mut ctx2 = ctx4();
        let m = Mask::from_fn(8, |l| l < 4);
        ctx2.with_mask(m, |ctx| {
            ctx.charge(1, ExecScope::WholeWorkGroup);
        });
        assert_eq!(ctx2.counters.wf_issue_slots, 2); // both WFs forced
    }

    #[test]
    fn if_else_partitions_lanes_and_restores_mask() {
        let mut ctx = ctx4();
        let cond = Mask::from_fn(8, |l| l % 2 == 0);
        let mut then_lanes = 0;
        let mut else_lanes = 0;
        ctx.if_else(
            &cond,
            |c| then_lanes = c.active_count(),
            |c| else_lanes = c.active_count(),
        );
        assert_eq!(then_lanes, 4);
        assert_eq!(else_lanes, 4);
        assert!(ctx.active().is_full());
    }

    #[test]
    fn empty_branch_side_is_skipped() {
        let mut ctx = ctx4();
        let cond = Mask::all(8);
        let mut else_ran = false;
        ctx.if_else(&cond, |_| {}, |_| else_ran = true);
        assert!(!else_ran);
    }

    #[test]
    fn nested_if_intersects_masks() {
        let mut ctx = ctx4();
        let outer = Mask::from_fn(8, |l| l < 6);
        let inner = Mask::from_fn(8, |l| l >= 4);
        let mut count = usize::MAX;
        ctx.if_then(&outer, |c| {
            c.if_then(&inner, |c2| count = c2.active_count());
        });
        assert_eq!(count, 2); // lanes 4, 5
    }

    #[test]
    fn collectives_charge_tree_cost() {
        let mut ctx = ctx4();
        let vals = LaneVec::splat(8, 1u64);
        assert_eq!(ctx.reduce_sum(&vals), 8);
        assert_eq!(ctx.counters.collectives, 1);
        // 8 lanes → 3 levels, charged to both wavefronts.
        assert_eq!(ctx.counters.barriers, 3);
        assert_eq!(ctx.counters.wf_issue_slots, 6);
    }

    #[test]
    fn leader_is_highest_active() {
        let mut ctx = ctx4();
        let m = Mask::from_fn(8, |l| l < 5);
        let mut leader = None;
        ctx.with_mask(m, |c| leader = c.elect_leader());
        assert_eq!(leader, Some(4));
    }

    #[test]
    fn atomics_are_real_and_counted() {
        let mut ctx = ctx4();
        let target = AtomicU64::new(10);
        assert_eq!(ctx.atomic_fetch_add(&target, 5), 10);
        assert_eq!(target.load(Ordering::Relaxed), 15);
        assert_eq!(ctx.counters.atomics, 1);
    }

    #[test]
    fn mem_access_counts_transactions() {
        let mut ctx = ctx4();
        // All lanes read consecutive u32s: 8 × 4 B = 32 B → 1 line,
        // but split across 2 wavefront ports → 1 line each (same line!).
        let addrs = LaneVec::from_fn(8, |l| (l * 4) as u64);
        let tx = ctx.mem_access(&addrs, 4);
        assert_eq!(tx, 2); // one transaction per wavefront port
        assert_eq!(ctx.counters.mem_accesses, 8);
    }

    #[test]
    fn counting_sort_frees_scratchpad() {
        let mut ctx = ctx4();
        let dests = LaneVec::from_fn(8, |l| l % 2);
        let cs = ctx.counting_sort(&dests, 2).unwrap();
        assert_eq!(cs.cnts, vec![4, 4]);
        assert_eq!(ctx.scratchpad.allocated(), 0);
        assert!(ctx.scratchpad.high_water() > 0);
    }
}
