//! Kernel dispatch engine.
//!
//! [`SimtEngine`] plays the role of the GPU's command processor plus its
//! compute units: a dispatch distributes the grid's work-groups across
//! `num_cus` worker threads (one thread per compute unit), each of which
//! interprets its work-groups in lockstep with a private [`WgCtx`]. Kernels
//! therefore run *concurrently* with host CPU threads and can synchronize
//! with them through real atomics — the fine-grain shared-virtual-memory
//! property (paper §2.3) that Gravel's producer/consumer queue relies on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::counters::Counters;
use crate::grid::Grid;
use crate::workgroup::WgCtx;

/// Number of compute units on the paper's APU (Table 3).
pub const DEFAULT_NUM_CUS: usize = 8;

/// The dispatch engine. Cheap to construct; holds only configuration.
#[derive(Clone, Debug)]
pub struct SimtEngine {
    num_cus: usize,
}

/// Aggregate result of one kernel dispatch.
#[derive(Clone, Copy, Debug, Default)]
pub struct DispatchResult {
    /// Counters merged across all work-groups.
    pub counters: Counters,
    /// Work-groups executed.
    pub wgs_run: usize,
}

impl SimtEngine {
    /// Engine with the default 8 compute units.
    pub fn new() -> Self {
        Self::with_cus(DEFAULT_NUM_CUS)
    }

    /// Engine with `num_cus` worker threads.
    pub fn with_cus(num_cus: usize) -> Self {
        assert!(num_cus > 0, "need at least one compute unit");
        SimtEngine { num_cus }
    }

    /// Number of compute units.
    pub fn num_cus(&self) -> usize {
        self.num_cus
    }

    /// Dispatch `kernel` over `grid`, one invocation per work-group, using
    /// up to `num_cus` threads. Returns merged counters.
    pub fn dispatch(&self, grid: Grid, kernel: impl Fn(&mut WgCtx) + Sync) -> DispatchResult {
        let results = self.dispatch_map(grid, |ctx| {
            kernel(ctx);
        });
        results.1
    }

    /// Dispatch and collect one `R` per work-group, in work-group order.
    pub fn dispatch_map<R: Send>(
        &self,
        grid: Grid,
        kernel: impl Fn(&mut WgCtx) -> R + Sync,
    ) -> (Vec<R>, DispatchResult) {
        assert!(grid.wg_count > 0, "empty grid");
        let next_wg = AtomicUsize::new(0);
        let outputs: Mutex<Vec<Option<R>>> = Mutex::new((0..grid.wg_count).map(|_| None).collect());
        let totals: Mutex<Counters> = Mutex::new(Counters::default());
        let workers = self.num_cus.min(grid.wg_count);

        std::thread::scope(|scope| {
            for _cu in 0..workers {
                scope.spawn(|| {
                    let mut local = Counters::default();
                    loop {
                        let wg_id = next_wg.fetch_add(1, Ordering::Relaxed);
                        if wg_id >= grid.wg_count {
                            break;
                        }
                        let mut ctx = WgCtx::new(grid, wg_id);
                        let out = kernel(&mut ctx);
                        local.merge(&ctx.counters);
                        outputs.lock().expect("output lock")[wg_id] = Some(out);
                    }
                    totals.lock().expect("counter lock").merge(&local);
                });
            }
        });

        let outs: Vec<R> = outputs
            .into_inner()
            .expect("output lock")
            .into_iter()
            .map(|o| o.expect("every work-group produced output"))
            .collect();
        let counters = totals.into_inner().expect("counter lock");
        (outs, DispatchResult { counters, wgs_run: grid.wg_count })
    }

    /// Deterministic single-threaded dispatch in work-group-id order.
    /// Useful for reproducible tests and trace generation.
    pub fn dispatch_seq<R>(
        &self,
        grid: Grid,
        mut kernel: impl FnMut(&mut WgCtx) -> R,
    ) -> (Vec<R>, DispatchResult) {
        assert!(grid.wg_count > 0, "empty grid");
        let mut outs = Vec::with_capacity(grid.wg_count);
        let mut counters = Counters::default();
        for wg_id in 0..grid.wg_count {
            let mut ctx = WgCtx::new(grid, wg_id);
            outs.push(kernel(&mut ctx));
            counters.merge(&ctx.counters);
        }
        (outs, DispatchResult { counters, wgs_run: grid.wg_count })
    }
}

impl Default for SimtEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn dispatch_runs_every_work_group_once() {
        let engine = SimtEngine::with_cus(4);
        let grid = Grid { wg_count: 37, wg_size: 8, wf_width: 4 };
        let hits = AtomicU64::new(0);
        let res = engine.dispatch(grid, |ctx| {
            hits.fetch_add(1, Ordering::Relaxed);
            ctx.charge(1, crate::workgroup::ExecScope::WholeWorkGroup);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 37);
        assert_eq!(res.wgs_run, 37);
        // 37 WGs × 2 WFs × 1 instruction.
        assert_eq!(res.counters.wf_issue_slots, 74);
    }

    #[test]
    fn dispatch_map_preserves_wg_order() {
        let engine = SimtEngine::with_cus(3);
        let grid = Grid { wg_count: 10, wg_size: 4, wf_width: 4 };
        let (outs, _) = engine.dispatch_map(grid, |ctx| ctx.wg_id() * 100);
        assert_eq!(outs, (0..10).map(|i| i * 100).collect::<Vec<_>>());
    }

    #[test]
    fn kernels_share_memory_with_host_via_atomics() {
        // Every work-item increments one shared counter: the total must be
        // exact — real atomics, real concurrency.
        let engine = SimtEngine::with_cus(4);
        let grid = Grid { wg_count: 16, wg_size: 64, wf_width: 64 };
        let shared = AtomicU64::new(0);
        engine.dispatch(grid, |ctx| {
            for _lane in ctx.active().clone().iter() {
                shared.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(shared.load(Ordering::Relaxed), 16 * 64);
    }

    #[test]
    fn seq_dispatch_is_deterministic() {
        let engine = SimtEngine::new();
        let grid = Grid { wg_count: 5, wg_size: 4, wf_width: 4 };
        let (a, ra) = engine.dispatch_seq(grid, |ctx| ctx.wg_id());
        let (b, rb) = engine.dispatch_seq(grid, |ctx| ctx.wg_id());
        assert_eq!(a, b);
        assert_eq!(ra.counters, rb.counters);
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_panics() {
        SimtEngine::new().dispatch(Grid { wg_count: 0, wg_size: 4, wf_width: 4 }, |_| {});
    }
}
