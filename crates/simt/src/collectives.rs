//! Work-group-level collective operations.
//!
//! These are the data-parallel primitives of paper §2.1 extended with the
//! *diverged* semantics of §5.2: active lanes submit their value, inactive
//! lanes submit a non-interfering identity (0 for sums, `MIN`/`MAX` for
//! min/max reductions), and the result is defined for the active lanes.
//!
//! The functions here are pure (no cost accounting); [`crate::workgroup`]
//! wraps them with issue-slot/barrier charging so kernels see both the
//! value semantics and the execution cost of a log-depth tree network
//! (paper Fig. 11a).

use crate::lanes::LaneVec;
use crate::mask::Mask;

/// Reduce the active lanes of `vals` with `op`, starting from `identity`.
///
/// `identity` must be non-interfering (`op(identity, x) == x`), which is
/// exactly the §5.2 requirement on the values inactive lanes submit.
pub fn reduce<T: Copy>(vals: &LaneVec<T>, mask: &Mask, identity: T, op: impl Fn(T, T) -> T) -> T {
    assert_eq!(vals.lanes(), mask.lanes(), "register/mask width mismatch");
    mask.iter().fold(identity, |acc, lane| op(acc, vals.get(lane)))
}

/// Maximum over active lanes (`identity` = `T::MIN` supplied by caller).
pub fn reduce_max<T: Copy + Ord>(vals: &LaneVec<T>, mask: &Mask, identity: T) -> T {
    reduce(vals, mask, identity, |a, b| a.max(b))
}

/// Sum over active lanes.
pub fn reduce_sum(vals: &LaneVec<u64>, mask: &Mask) -> u64 {
    reduce(vals, mask, 0, |a, b| a + b)
}

/// Exclusive prefix sum over the work-group, where inactive lanes
/// contribute 0. Every lane receives the running total of the *active*
/// lanes before it — this is the "local offset" computation of Fig. 5b
/// (`prefix_sum(1)`), where inactive lanes can make a lane's offset differ
/// from its lane id.
pub fn exclusive_prefix_sum(vals: &LaneVec<u64>, mask: &Mask) -> LaneVec<u64> {
    assert_eq!(vals.lanes(), mask.lanes(), "register/mask width mismatch");
    let mut out = LaneVec::zeroed(vals.lanes());
    let mut running = 0u64;
    for lane in 0..vals.lanes() {
        out.set(lane, running);
        if mask.get(lane) {
            running += vals.get(lane);
        }
    }
    out
}

/// Broadcast `leader`'s lane value to every lane.
pub fn broadcast<T: Copy>(vals: &LaneVec<T>, leader: usize) -> LaneVec<T> {
    LaneVec::splat(vals.lanes(), vals.get(leader))
}

/// Result of the work-group counting sort used by the coalesced-APIs model
/// (§3.3): messages grouped by destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountingSort {
    /// Destinations that received at least one message, ascending.
    pub dests: Vec<usize>,
    /// `cnts[i]` = number of messages for `dests[i]`.
    pub cnts: Vec<usize>,
    /// Lane ids permuted so that lanes targeting `dests[0]` come first,
    /// then `dests[1]`, etc. (stable within a destination). Only active
    /// lanes appear.
    pub order: Vec<usize>,
}

/// Counting sort of the active lanes by destination id (keys in
/// `[0, node_count)`). Inactive lanes submit the non-interfering key
/// `node_count` ("`INT_MAX`" in §5.2) and are dropped from the output.
pub fn counting_sort_by_dest(dests: &LaneVec<usize>, mask: &Mask, node_count: usize) -> CountingSort {
    assert_eq!(dests.lanes(), mask.lanes(), "register/mask width mismatch");
    let mut cnts = vec![0usize; node_count];
    for (_, d) in dests.iter_masked(mask) {
        assert!(d < node_count, "destination {d} out of range {node_count}");
        cnts[d] += 1;
    }
    // Exclusive prefix over the histogram gives each bucket's start.
    let mut starts = vec![0usize; node_count];
    let mut running = 0;
    for d in 0..node_count {
        starts[d] = running;
        running += cnts[d];
    }
    let mut order = vec![0usize; running];
    let mut cursor = starts.clone();
    for (lane, d) in dests.iter_masked(mask) {
        order[cursor[d]] = lane;
        cursor[d] += 1;
    }
    let (dests_out, cnts_out) = (0..node_count).filter(|&d| cnts[d] > 0).map(|d| (d, cnts[d])).unzip();
    CountingSort { dests: dests_out, cnts: cnts_out, order }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_matches_paper_example() {
        // §2.1: A = [2,1,0,5], reduce-to-sum = 8.
        let a = LaneVec::from_vec(vec![2u64, 1, 0, 5]);
        assert_eq!(reduce_sum(&a, &Mask::all(4)), 8);
    }

    #[test]
    fn prefix_sum_matches_paper_example() {
        // §2.1: prefix sum of [2,1,0,5] is [0,2,3,3].
        let a = LaneVec::from_vec(vec![2u64, 1, 0, 5]);
        let ps = exclusive_prefix_sum(&a, &Mask::all(4));
        assert_eq!(ps.as_slice(), &[0, 2, 3, 3]);
    }

    #[test]
    fn inactive_lanes_submit_non_interfering_values() {
        let a = LaneVec::from_vec(vec![100u64, 1, 100, 5]);
        let m = Mask::from_fn(4, |l| l % 2 == 1);
        assert_eq!(reduce_sum(&a, &m), 6);
        assert_eq!(reduce_max(&a, &m, 0), 5);
        let ps = exclusive_prefix_sum(&LaneVec::splat(4, 1u64), &m);
        // lanes 0,2 inactive: offsets count only active predecessors.
        assert_eq!(ps.as_slice(), &[0, 0, 1, 1]);
    }

    #[test]
    fn reduce_of_empty_mask_is_identity() {
        let a = LaneVec::from_vec(vec![4u64, 5, 6]);
        assert_eq!(reduce_sum(&a, &Mask::none(3)), 0);
        assert_eq!(reduce_max(&a, &Mask::none(3), u64::MIN), u64::MIN);
    }

    #[test]
    fn broadcast_splats_leader_value() {
        let a = LaneVec::from_vec(vec![7u32, 8, 9]);
        assert_eq!(broadcast(&a, 2).as_slice(), &[9, 9, 9]);
    }

    #[test]
    fn counting_sort_groups_by_destination() {
        // Lanes target nodes [2, 0, 2, 1, 0] — sorted: node0 lanes {1,4},
        // node1 lane {3}, node2 lanes {0,2}.
        let d = LaneVec::from_vec(vec![2usize, 0, 2, 1, 0]);
        let cs = counting_sort_by_dest(&d, &Mask::all(5), 3);
        assert_eq!(cs.dests, vec![0, 1, 2]);
        assert_eq!(cs.cnts, vec![2, 1, 2]);
        assert_eq!(cs.order, vec![1, 4, 3, 0, 2]);
    }

    #[test]
    fn counting_sort_skips_inactive_lanes() {
        let d = LaneVec::from_vec(vec![0usize, 1, 0, 1]);
        let m = Mask::from_fn(4, |l| l < 2);
        let cs = counting_sort_by_dest(&d, &m, 2);
        assert_eq!(cs.dests, vec![0, 1]);
        assert_eq!(cs.cnts, vec![1, 1]);
        assert_eq!(cs.order, vec![0, 1]);
    }

    #[test]
    fn counting_sort_all_same_destination() {
        let d = LaneVec::splat(8, 3usize);
        let cs = counting_sort_by_dest(&d, &Mask::all(8), 4);
        assert_eq!(cs.dests, vec![3]);
        assert_eq!(cs.cnts, vec![8]);
        assert_eq!(cs.order, (0..8).collect::<Vec<_>>());
    }
}
