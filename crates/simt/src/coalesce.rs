//! Memory-coalescer model.
//!
//! Each compute unit has a coalescer that inspects the addresses issued by
//! one wavefront-wide memory instruction and merges accesses falling in the
//! same cache line into a single transaction (paper §2.2, Figure 2b). The
//! engine does not simulate a cache hierarchy; it *counts* the transactions
//! a coalescer would issue so memory divergence is visible in the counters,
//! and Gravel's queue-slot layout (messages from adjacent lanes land in
//! adjacent columns, i.e. the same lines) can be compared quantitatively
//! against divergent layouts.

use crate::mask::Mask;

/// Cache-line size used by the coalescer, in bytes (64 B, matching the
/// AMD A10-7850K's L1D line).
pub const CACHE_LINE: usize = 64;

/// Count the cache-line transactions needed by one wavefront memory
/// instruction: the number of *distinct* lines covered by
/// `[addr, addr + access_bytes)` over the active lanes.
///
/// `addrs` holds each lane's byte address; lanes not set in `mask` do not
/// access memory.
pub fn transactions(addrs: &[u64], mask: &Mask, access_bytes: usize) -> usize {
    assert!(access_bytes > 0, "zero-sized access");
    let mut lines: Vec<u64> = Vec::with_capacity(mask.count() * 2);
    for lane in mask.iter() {
        let start = addrs[lane] / CACHE_LINE as u64;
        let end = (addrs[lane] + access_bytes as u64 - 1) / CACHE_LINE as u64;
        for line in start..=end {
            lines.push(line);
        }
    }
    lines.sort_unstable();
    lines.dedup();
    lines.len()
}

/// Transactions for a whole work-group access, evaluated per wavefront
/// (hardware coalescers operate on one wavefront's cache port at a time).
pub fn wg_transactions(addrs: &[u64], mask: &Mask, access_bytes: usize, wf_width: usize) -> usize {
    let wfs = mask.lanes().div_ceil(wf_width);
    (0..wfs)
        .map(|wf| {
            let view = mask.wavefront_view(wf, wf_width);
            if view.is_empty() {
                0
            } else {
                transactions(addrs, &view, access_bytes)
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_word_accesses_coalesce() {
        // 16 lanes × 4-byte accesses at consecutive addresses = 1 line.
        let addrs: Vec<u64> = (0..16).map(|l| l * 4).collect();
        assert_eq!(transactions(&addrs, &Mask::all(16), 4), 1);
    }

    #[test]
    fn fully_divergent_accesses_do_not_coalesce() {
        // Each lane hits its own line.
        let addrs: Vec<u64> = (0..16).map(|l| l * 4096).collect();
        assert_eq!(transactions(&addrs, &Mask::all(16), 4), 16);
    }

    #[test]
    fn inactive_lanes_issue_nothing() {
        let addrs: Vec<u64> = (0..16).map(|l| l * 4096).collect();
        let m = Mask::from_fn(16, |l| l < 4);
        assert_eq!(transactions(&addrs, &m, 4), 4);
        assert_eq!(transactions(&addrs, &Mask::none(16), 4), 0);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        // One lane, 8-byte access starting 4 bytes before a line boundary.
        let addrs = vec![CACHE_LINE as u64 - 4];
        assert_eq!(transactions(&addrs, &Mask::all(1), 8), 2);
    }

    #[test]
    fn wg_transactions_split_per_wavefront() {
        // 128 lanes all reading the SAME address: a single line per
        // wavefront port, so 2 transactions for 2 wavefronts.
        let addrs = vec![0u64; 128];
        assert_eq!(wg_transactions(&addrs, &Mask::all(128), 4, 64), 2);
    }

    #[test]
    fn duplicate_lines_within_wavefront_dedup() {
        // Lanes pair up on lines.
        let addrs: Vec<u64> = (0..8).map(|l| (l / 2) * CACHE_LINE as u64).collect();
        assert_eq!(transactions(&addrs, &Mask::all(8), 4), 4);
    }
}
