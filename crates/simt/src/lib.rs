//! # gravel-simt — a software SIMT (GPU) execution engine
//!
//! This crate is the GPU substrate of the Gravel reproduction. It models
//! the execution machinery that the paper's mechanisms are built from:
//!
//! * **Wavefronts and work-groups** — lanes execute in lockstep; a
//!   work-group is one or more wavefronts sharing a scratchpad and
//!   barriers ([`grid`], [`workgroup`]).
//! * **Predication and divergence** — control flow manipulates active-lane
//!   masks ([`mask`], [`lanes`]); divergent loops run under
//!   software predication, work-group-granularity reconvergence, or
//!   fine-grain barriers ([`divergence`], [`fbar`]).
//! * **Work-group-level collectives** — reduce, prefix-sum, broadcast,
//!   leader election and counting sort over *active* lanes with
//!   non-interfering identities for inactive lanes ([`collectives`]).
//! * **Cost instrumentation** — wavefront issue slots, SIMT utilization,
//!   atomics, barrier and coalescer transaction counts ([`counters`],
//!   [`coalesce`]).
//! * **Dispatch** — work-groups run concurrently on worker threads
//!   ("compute units") and synchronize with host threads through real
//!   atomics, modelling HSA fine-grain shared virtual memory
//!   ([`engine`]).
//!
//! Kernels are ordinary Rust closures written in an explicitly-SIMT style:
//!
//! ```
//! use gravel_simt::{Grid, SimtEngine, LaneVec};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let engine = SimtEngine::with_cus(2);
//! let grid = Grid { wg_count: 4, wg_size: 64, wf_width: 64 };
//! let total = AtomicU64::new(0);
//! engine.dispatch(grid, |ctx| {
//!     // Each work-group sums its global ids with one collective, and its
//!     // leader publishes the sum with a single atomic.
//!     let gids = LaneVec::from_fn(ctx.wg_size(), {
//!         let base = ctx.wg_id() * ctx.wg_size();
//!         move |l| (base + l) as u64
//!     });
//!     let sum = ctx.reduce_sum(&gids);
//!     total.fetch_add(sum, Ordering::Relaxed);
//! });
//! let n = (4 * 64) as u64;
//! assert_eq!(total.load(Ordering::Relaxed), n * (n - 1) / 2);
//! ```

pub mod coalesce;
pub mod collectives;
pub mod counters;
pub mod divergence;
pub mod engine;
pub mod fbar;
pub mod grid;
pub mod lanes;
pub mod mask;
pub mod scratchpad;
pub mod workgroup;

pub use coalesce::CACHE_LINE;
pub use counters::Counters;
pub use divergence::{diverged_for, DivergedCosts, DivergedMode};
pub use engine::{DispatchResult, SimtEngine, DEFAULT_NUM_CUS};
pub use fbar::FBar;
pub use grid::{Grid, DEFAULT_WF_WIDTH, DEFAULT_WG_SIZE};
pub use lanes::LaneVec;
pub use mask::Mask;
pub use scratchpad::Scratchpad;
pub use workgroup::{ExecScope, WgCtx};
