//! Dynamic execution counters.
//!
//! The paper's microbenchmarks report *dynamically profiled* event counts —
//! e.g. Figure 6 plots "atomic operations per work-item" next to queue
//! throughput. The engine charges events to a [`Counters`] block carried by
//! each work-group context; [`Counters::merge`] folds per-work-group blocks
//! into grid totals.
//!
//! The cost accounting follows the SIMT execution model:
//! * one *wavefront issue slot* is charged per wavefront per instruction,
//!   no matter how many of its lanes are active (`wf_issue_slots`), and the
//!   active-lane count is accumulated separately (`active_lane_slots`) so
//!   SIMT utilization = `active_lane_slots / (wf_issue_slots * wf_width)`;
//! * shared-memory atomics, barriers, and memory transactions (distinct
//!   cache lines touched by a wavefront access) are counted individually.

/// Event counters for a region of SIMT execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Wavefront-instruction issue slots (one per wavefront per instruction).
    pub wf_issue_slots: u64,
    /// Sum over issued instructions of the number of active lanes.
    pub active_lane_slots: u64,
    /// Shared-memory read-modify-write operations (fetch-add, CAS, ...).
    pub atomics: u64,
    /// Work-group barriers executed.
    pub barriers: u64,
    /// Cache-line transactions issued by the coalescer.
    pub mem_transactions: u64,
    /// Lane-level memory accesses presented to the coalescer.
    pub mem_accesses: u64,
    /// Work-group-level collective operations (reduce, prefix-sum, ...).
    pub collectives: u64,
    /// Messages offloaded to the network queue.
    pub messages: u64,
    /// Fine-grain-barrier join/leave/arrive events.
    pub fbar_ops: u64,
}

impl Counters {
    /// Fold `other` into `self` (grid aggregation).
    pub fn merge(&mut self, other: &Counters) {
        self.wf_issue_slots += other.wf_issue_slots;
        self.active_lane_slots += other.active_lane_slots;
        self.atomics += other.atomics;
        self.barriers += other.barriers;
        self.mem_transactions += other.mem_transactions;
        self.mem_accesses += other.mem_accesses;
        self.collectives += other.collectives;
        self.messages += other.messages;
        self.fbar_ops += other.fbar_ops;
    }

    /// Fraction of issued lane slots that held active lanes, in `[0, 1]`.
    /// This is the paper's "SIMT utilization" criterion.
    pub fn simt_utilization(&self, wf_width: usize) -> f64 {
        if self.wf_issue_slots == 0 {
            return 1.0;
        }
        self.active_lane_slots as f64 / (self.wf_issue_slots as f64 * wf_width as f64)
    }

    /// Atomic operations per offloaded message (Figure 6's right axis is
    /// this quantity with one message per work-item).
    pub fn atomics_per_message(&self) -> f64 {
        if self.messages == 0 {
            return 0.0;
        }
        self.atomics as f64 / self.messages as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_all_fields() {
        let mut a = Counters { wf_issue_slots: 1, active_lane_slots: 2, atomics: 3, ..Default::default() };
        let b = Counters {
            wf_issue_slots: 10,
            active_lane_slots: 20,
            atomics: 30,
            barriers: 1,
            mem_transactions: 2,
            mem_accesses: 3,
            collectives: 4,
            messages: 5,
            fbar_ops: 6,
        };
        a.merge(&b);
        assert_eq!(a.wf_issue_slots, 11);
        assert_eq!(a.active_lane_slots, 22);
        assert_eq!(a.atomics, 33);
        assert_eq!(a.barriers, 1);
        assert_eq!(a.mem_transactions, 2);
        assert_eq!(a.mem_accesses, 3);
        assert_eq!(a.collectives, 4);
        assert_eq!(a.messages, 5);
        assert_eq!(a.fbar_ops, 6);
    }

    #[test]
    fn utilization_full_when_all_lanes_active() {
        let c = Counters { wf_issue_slots: 10, active_lane_slots: 640, ..Default::default() };
        assert!((c.simt_utilization(64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_half_when_half_active() {
        let c = Counters { wf_issue_slots: 10, active_lane_slots: 320, ..Default::default() };
        assert!((c.simt_utilization(64) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_empty_region_is_one() {
        assert_eq!(Counters::default().simt_utilization(64), 1.0);
    }

    #[test]
    fn atomics_per_message() {
        let c = Counters { atomics: 4, messages: 256, ..Default::default() };
        assert!((c.atomics_per_message() - 4.0 / 256.0).abs() < 1e-12);
        assert_eq!(Counters::default().atomics_per_message(), 0.0);
    }
}
