//! Active-lane masks.
//!
//! A [`Mask`] records which lanes of a work-group are *active* (predicated
//! on) at a point in the control-flow graph. GPUs execute branches with
//! hardware predication: both sides of a branch run, with the lanes that did
//! not take the current side masked off. The software SIMT engine models the
//! same mechanism explicitly — every divergent construct manipulates a
//! `Mask`, and the cost counters charge a full wavefront issue slot whether
//! one lane or all lanes are active.
//!
//! Masks are stored as packed 64-bit words, one bit per lane, so a mask over
//! a 256-lane work-group occupies four words and per-wavefront views are
//! cheap sub-slices when the wavefront width is 64.

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// An active-lane mask over the lanes of a work-group (or wavefront).
#[derive(Clone, PartialEq, Eq)]
pub struct Mask {
    words: Vec<u64>,
    lanes: usize,
}

impl std::fmt::Debug for Mask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mask[{}](", self.lanes)?;
        for lane in 0..self.lanes {
            write!(f, "{}", u8::from(self.get(lane)))?;
        }
        write!(f, ")")
    }
}

impl Mask {
    /// A mask with all `lanes` lanes active.
    pub fn all(lanes: usize) -> Self {
        let mut m = Self::none(lanes);
        for lane in 0..lanes {
            m.set(lane, true);
        }
        m
    }

    /// A mask with all `lanes` lanes inactive.
    pub fn none(lanes: usize) -> Self {
        let words = lanes.div_ceil(WORD_BITS);
        Mask { words: vec![0; words], lanes }
    }

    /// Build a mask from a per-lane predicate.
    pub fn from_fn(lanes: usize, mut pred: impl FnMut(usize) -> bool) -> Self {
        let mut m = Self::none(lanes);
        for lane in 0..lanes {
            if pred(lane) {
                m.set(lane, true);
            }
        }
        m
    }

    /// Number of lanes the mask covers (active or not).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Whether `lane` is active.
    #[inline]
    pub fn get(&self, lane: usize) -> bool {
        debug_assert!(lane < self.lanes);
        self.words[lane / WORD_BITS] >> (lane % WORD_BITS) & 1 == 1
    }

    /// Set `lane` active (`true`) or inactive (`false`).
    #[inline]
    pub fn set(&mut self, lane: usize, active: bool) {
        debug_assert!(lane < self.lanes);
        let word = &mut self.words[lane / WORD_BITS];
        let bit = 1u64 << (lane % WORD_BITS);
        if active {
            *word |= bit;
        } else {
            *word &= !bit;
        }
    }

    /// Number of active lanes.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no lane is active.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True when every lane is active.
    pub fn is_full(&self) -> bool {
        self.count() == self.lanes
    }

    /// Lane id of the highest active lane, if any. Gravel elects this lane
    /// as the work-group *leader* (paper Fig. 5b: `reduce_max(LANE_ID)`).
    pub fn leader(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(wi * WORD_BITS + (WORD_BITS - 1 - w.leading_zeros() as usize));
            }
        }
        None
    }

    /// Iterator over active lane ids, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.lanes).filter(move |&lane| self.get(lane))
    }

    /// Lane-wise AND.
    pub fn and(&self, other: &Mask) -> Mask {
        assert_eq!(self.lanes, other.lanes, "mask width mismatch");
        Mask {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect(),
            lanes: self.lanes,
        }
    }

    /// Lane-wise OR.
    pub fn or(&self, other: &Mask) -> Mask {
        assert_eq!(self.lanes, other.lanes, "mask width mismatch");
        Mask {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a | b).collect(),
            lanes: self.lanes,
        }
    }

    /// Lanes active in `self` but not in `other` (the "else" side of a
    /// branch whose "then" side is `other`).
    pub fn and_not(&self, other: &Mask) -> Mask {
        assert_eq!(self.lanes, other.lanes, "mask width mismatch");
        Mask {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & !b).collect(),
            lanes: self.lanes,
        }
    }

    /// Active lanes restricted to one wavefront: lanes
    /// `[wf * wf_width, (wf + 1) * wf_width)`.
    pub fn wavefront_view(&self, wf: usize, wf_width: usize) -> Mask {
        let lo = wf * wf_width;
        let hi = ((wf + 1) * wf_width).min(self.lanes);
        Mask::from_fn(self.lanes, |lane| lane >= lo && lane < hi && self.get(lane))
    }

    /// Count of active lanes within one wavefront.
    pub fn wavefront_count(&self, wf: usize, wf_width: usize) -> usize {
        let lo = wf * wf_width;
        let hi = ((wf + 1) * wf_width).min(self.lanes);
        (lo..hi).filter(|&lane| self.get(lane)).count()
    }

    /// True when any lane of wavefront `wf` is active.
    pub fn wavefront_any(&self, wf: usize, wf_width: usize) -> bool {
        self.wavefront_count(wf, wf_width) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_none() {
        let a = Mask::all(100);
        assert_eq!(a.count(), 100);
        assert!(a.is_full());
        assert!(!a.is_empty());
        let n = Mask::none(100);
        assert_eq!(n.count(), 0);
        assert!(n.is_empty());
        assert!(!n.is_full());
    }

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut m = Mask::none(130);
        for lane in [0, 1, 63, 64, 65, 127, 128, 129] {
            m.set(lane, true);
            assert!(m.get(lane), "lane {lane}");
        }
        assert_eq!(m.count(), 8);
        m.set(64, false);
        assert!(!m.get(64));
        assert_eq!(m.count(), 7);
    }

    #[test]
    fn leader_is_highest_active_lane() {
        let mut m = Mask::none(256);
        assert_eq!(m.leader(), None);
        m.set(3, true);
        assert_eq!(m.leader(), Some(3));
        m.set(200, true);
        assert_eq!(m.leader(), Some(200));
        m.set(255, true);
        assert_eq!(m.leader(), Some(255));
    }

    #[test]
    fn boolean_ops() {
        let a = Mask::from_fn(10, |l| l % 2 == 0);
        let b = Mask::from_fn(10, |l| l < 5);
        assert_eq!(a.and(&b).count(), 3); // 0, 2, 4
        assert_eq!(a.or(&b).count(), 7); // 0..5 plus 6, 8
        assert_eq!(a.and_not(&b).count(), 2); // 6, 8
    }

    #[test]
    fn wavefront_views() {
        let m = Mask::from_fn(128, |l| l < 70);
        assert_eq!(m.wavefront_count(0, 64), 64);
        assert_eq!(m.wavefront_count(1, 64), 6);
        assert!(m.wavefront_any(1, 64));
        let wf1 = m.wavefront_view(1, 64);
        assert_eq!(wf1.count(), 6);
        assert!(!wf1.get(0));
        assert!(wf1.get(64));
    }

    #[test]
    fn iter_yields_active_ascending() {
        let m = Mask::from_fn(70, |l| l == 2 || l == 65);
        let lanes: Vec<_> = m.iter().collect();
        assert_eq!(lanes, vec![2, 65]);
    }

    #[test]
    fn wavefront_view_partial_last_wavefront() {
        // 100 lanes, wf width 64: second wavefront covers lanes 64..100.
        let m = Mask::all(100);
        assert_eq!(m.wavefront_count(1, 64), 36);
    }
}
