//! Diverged work-group-level loop execution (paper §5, §8.2).
//!
//! Irregular kernels loop over per-lane work lists of different lengths
//! (e.g. a vertex's edge list). Work-group-level operations inside such a
//! loop require *every* lane of the work-group to participate, so the loop
//! must be transformed. The paper evaluates three ways to run it:
//!
//! * [`DivergedMode::SoftwarePredication`] (Fig. 10b) — what Gravel ships
//!   on current GPUs. The trip count is `reduce_max` of the per-lane
//!   counts, inactive lanes keep executing with their work-group, and
//!   explicit predicate arithmetic selects active lanes each iteration.
//! * [`DivergedMode::WgReconvergence`] (§5.3) — a future GPU that tracks
//!   control flow at work-group granularity (thread-block-compaction-style
//!   reconvergence stack). No predication arithmetic, but fully-inactive
//!   wavefronts still execute (Fig. 11c).
//! * [`DivergedMode::FineGrainBarrier`] (Fig. 10c) — HSA-style `fbar`
//!   extended to arbitrary lane sets. Wavefronts whose lanes have all left
//!   stop executing (Fig. 11d), at the price of per-iteration barrier
//!   management.
//!
//! The executors do the *same* per-lane work (the body runs under the
//! iteration's active mask in every mode) but charge mode-specific
//! overhead, so both results and relative costs are comparable — this is
//! the §8.2 experiment's engine.

use crate::fbar::FBar;
use crate::lanes::LaneVec;
use crate::mask::Mask;
use crate::workgroup::{ExecScope, WgCtx};

/// How a diverged loop reaches work-group-level semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DivergedMode {
    /// Explicit software predication (current hardware; Gravel's default).
    SoftwarePredication,
    /// Work-group-granularity reconvergence (future hardware).
    WgReconvergence,
    /// Per-lane fine-grain barriers (future hardware; software-emulated
    /// cost by default, see [`DivergedCosts::fbar_emulated`]).
    FineGrainBarrier,
}

/// Per-iteration overhead charges for each mode, in wavefront instructions.
///
/// Defaults are calibrated to the paper's observations (§5.1, §8.2): the
/// software-predication transform adds predicate computation, zeroing of
/// operands, and a select per loop iteration; WG-granularity reconvergence
/// costs only the loop branch; an fbar costs the branch plus barrier
/// management, which is cheap in hardware but expensive when emulated in
/// software (the paper's 1.06× "lower bound").
#[derive(Clone, Copy, Debug)]
pub struct DivergedCosts {
    /// Extra instructions per iteration for software predication
    /// (predicate compute + operand select, Fig. 10b lines 7-11).
    pub predication_overhead: u64,
    /// Loop-control instructions per iteration common to every mode.
    pub loop_overhead: u64,
    /// Barrier-management instructions per iteration in fbar mode.
    pub fbar_overhead: u64,
}

impl DivergedCosts {
    /// Costs for software-emulated fbar (what the paper measured: high
    /// per-iteration overhead, 1.06× over predication on GUPS-mod).
    ///
    /// The constants are fitted once against §8.2's published speedups:
    /// the Fig. 10b predication transform issues ~8 extra instructions
    /// per loop iteration (trip-count compare, operand zeroing, selects,
    /// and plumbing the active flag through the network API), which
    /// reproduces the 1.28× gain of hardware WG-granularity control
    /// flow; emulating an fbar in software costs about the same per
    /// iteration (membership bookkeeping + arrive sequence), which is
    /// why the paper's measured fbar gain is only 1.06× and called a
    /// lower bound.
    pub fn fbar_emulated() -> Self {
        DivergedCosts { predication_overhead: 8, loop_overhead: 1, fbar_overhead: 8 }
    }

    /// Costs for native hardware fbar (the paper's argument for future
    /// GPUs: management folds into the barrier network).
    pub fn fbar_hardware() -> Self {
        DivergedCosts { predication_overhead: 8, loop_overhead: 1, fbar_overhead: 0 }
    }
}

impl Default for DivergedCosts {
    fn default() -> Self {
        Self::fbar_emulated()
    }
}

/// Execute `body` once per loop iteration with the iteration's active mask
/// pushed on `ctx`. `trip_counts[lane]` is the number of iterations lane
/// `lane` executes; lanes inactive in the enclosing mask execute none.
///
/// Returns the number of loop iterations the work-group executed.
///
/// ```
/// use gravel_simt::*;
///
/// let grid = Grid { wg_count: 1, wg_size: 8, wf_width: 4 };
/// let mut ctx = WgCtx::new(grid, 0);
/// let trips = LaneVec::from_vec(vec![3, 0, 1, 0, 0, 0, 0, 2]);
/// let mut per_lane = vec![0u64; 8];
/// let iters = diverged_for(
///     &mut ctx,
///     &trips,
///     DivergedMode::FineGrainBarrier,
///     DivergedCosts::default(),
///     |ctx, _i| {
///         for lane in ctx.active().clone().iter() {
///             per_lane[lane] += 1;
///         }
///     },
/// );
/// assert_eq!(iters, 3); // reduce-max of the trip counts
/// assert_eq!(per_lane, vec![3, 0, 1, 0, 0, 0, 0, 2]);
/// ```
pub fn diverged_for(
    ctx: &mut WgCtx,
    trip_counts: &LaneVec<u64>,
    mode: DivergedMode,
    costs: DivergedCosts,
    mut body: impl FnMut(&mut WgCtx, u64),
) -> u64 {
    assert_eq!(trip_counts.lanes(), ctx.wg_size(), "trip-count register width mismatch");
    let enclosing = ctx.active().clone();
    match mode {
        DivergedMode::SoftwarePredication | DivergedMode::WgReconvergence => {
            // Fig. 10b line 5: all lanes agree on the trip count.
            let loop_cnt = ctx.reduce_max(trip_counts, 0);
            for i in 0..loop_cnt {
                let overhead = match mode {
                    DivergedMode::SoftwarePredication => {
                        costs.loop_overhead + costs.predication_overhead
                    }
                    _ => costs.loop_overhead,
                };
                // Inactive lanes keep executing with their work-group:
                // charge the whole work-group (Fig. 11c).
                ctx.charge(overhead, ExecScope::WholeWorkGroup);
                let iter_mask =
                    enclosing.and(&Mask::from_fn(ctx.wg_size(), |l| i < trip_counts.get(l)));
                ctx.with_mask(iter_mask, |ctx| body(ctx, i));
            }
            loop_cnt
        }
        DivergedMode::FineGrainBarrier => {
            // Fig. 10c: all lanes join; a lane leaves after its last
            // iteration; drained wavefronts stop executing.
            let mut fb = FBar::init(ctx.wg_size());
            fb.join_mask(&enclosing).expect("initial fbar join");
            // Lanes with zero trips leave immediately (they never enter
            // the loop body).
            for lane in enclosing.iter() {
                if trip_counts.get(lane) == 0 {
                    fb.leave(lane).expect("zero-trip leave");
                }
            }
            let mut i = 0u64;
            while !fb.drained() {
                let participants = fb.arrive();
                // Only live wavefronts execute this iteration.
                ctx.with_mask(participants.clone(), |ctx| {
                    ctx.charge(costs.loop_overhead + costs.fbar_overhead, ExecScope::ActiveWavefronts);
                    body(ctx, i);
                });
                for lane in participants.iter() {
                    if i + 1 >= trip_counts.get(lane) {
                        fb.leave(lane).expect("post-iteration leave");
                    }
                }
                i += 1;
            }
            ctx.counters.fbar_ops += fb.ops();
            i
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    fn ctx() -> WgCtx {
        // 8 lanes, 4-wide wavefronts → 2 wavefronts.
        WgCtx::new(Grid { wg_count: 1, wg_size: 8, wf_width: 4 }, 0)
    }

    /// Sum per-lane contributions: every mode must produce identical
    /// results — only the cost differs.
    fn run_sum(mode: DivergedMode) -> (Vec<u64>, u64, crate::counters::Counters) {
        let mut c = ctx();
        let trips = LaneVec::from_vec(vec![2, 3, 3, 2, 0, 0, 0, 0]);
        let mut acc = vec![0u64; 8];
        let iters = diverged_for(&mut c, &trips, mode, DivergedCosts::default(), |ctx, _i| {
            let mask = ctx.active().clone();
            for lane in mask.iter() {
                acc[lane] += 1;
            }
        });
        (acc, iters, c.counters)
    }

    #[test]
    fn all_modes_produce_identical_results() {
        let (pred, i1, _) = run_sum(DivergedMode::SoftwarePredication);
        let (wg, i2, _) = run_sum(DivergedMode::WgReconvergence);
        let (fbar, i3, _) = run_sum(DivergedMode::FineGrainBarrier);
        assert_eq!(pred, vec![2, 3, 3, 2, 0, 0, 0, 0]);
        assert_eq!(pred, wg);
        assert_eq!(pred, fbar);
        assert_eq!(i1, 3);
        assert_eq!(i2, 3);
        assert_eq!(i3, 3);
    }

    #[test]
    fn predication_charges_more_than_wg_reconvergence() {
        let (_, _, pred) = run_sum(DivergedMode::SoftwarePredication);
        let (_, _, wg) = run_sum(DivergedMode::WgReconvergence);
        assert!(
            pred.wf_issue_slots > wg.wf_issue_slots,
            "predication {} should exceed wg-reconvergence {}",
            pred.wf_issue_slots,
            wg.wf_issue_slots
        );
    }

    #[test]
    fn fbar_skips_drained_wavefronts() {
        // Wavefront 1 (lanes 4-7) has zero trips: under fbar it never
        // executes the loop; under WG reconvergence it executes every
        // iteration.
        let (_, _, wg) = run_sum(DivergedMode::WgReconvergence);
        let (_, _, fbar) = run_sum(DivergedMode::FineGrainBarrier);
        // WG mode charges loop overhead to 2 wavefronts × 3 iters; fbar to
        // 1 wavefront × 3 iters (plus fbar overhead on that wavefront).
        let wg_loop_slots = wg.wf_issue_slots;
        let fbar_loop_slots = fbar.wf_issue_slots;
        assert!(
            fbar.fbar_ops > 0,
            "fbar ops must be accounted: {fbar:?}"
        );
        // fbar executes half the wavefront-iterations for loop control.
        assert!(fbar_loop_slots < wg_loop_slots + fbar.fbar_ops);
    }

    #[test]
    fn zero_trip_loop_executes_nothing() {
        let mut c = ctx();
        let trips = LaneVec::splat(8, 0u64);
        let mut ran = false;
        for mode in [
            DivergedMode::SoftwarePredication,
            DivergedMode::WgReconvergence,
            DivergedMode::FineGrainBarrier,
        ] {
            let iters =
                diverged_for(&mut c, &trips, mode, DivergedCosts::default(), |_, _| ran = true);
            assert_eq!(iters, 0);
        }
        assert!(!ran);
    }

    #[test]
    fn respects_enclosing_mask() {
        let mut c = ctx();
        let trips = LaneVec::splat(8, 2u64);
        let enclosing = Mask::from_fn(8, |l| l < 2);
        let mut acc = vec![0u64; 8];
        c.with_mask(enclosing, |c| {
            diverged_for(
                c,
                &trips,
                DivergedMode::FineGrainBarrier,
                DivergedCosts::default(),
                |ctx, _| {
                    for lane in ctx.active().clone().iter() {
                        acc[lane] += 1;
                    }
                },
            );
        });
        assert_eq!(acc, vec![2, 2, 0, 0, 0, 0, 0, 0]);
    }
}
