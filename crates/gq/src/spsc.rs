//! CPU-only single-producer/single-consumer queue (paper §4.3 baseline).
//!
//! A textbook bounded ring: one producer bumps a padded write index, one
//! consumer bumps a padded read index, and each slot's payload is padded to
//! cache-line granularity to avoid false sharing between the two threads.
//! That padding is the point of the comparison — sending an 8-byte message
//! reads/writes three cache lines (padded read index, padded write index,
//! padded payload), where Gravel's column layout spends half a byte of
//! overhead on the same message.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::pad::CachePad;
use crate::stats::QueueStats;

/// Bounded SPSC ring of fixed-size messages.
pub struct SpscQueue {
    /// Padded payloads, each `rows` words rounded up to whole cache lines.
    slots: Box<[CachePad<Box<[AtomicU64]>>]>,
    rows: usize,
    capacity: usize,
    write_idx: CachePad<AtomicU64>,
    read_idx: CachePad<AtomicU64>,
    closed: AtomicBool,
    /// Synchronization instrumentation.
    pub stats: QueueStats,
}

impl SpscQueue {
    /// Ring of `capacity` messages of `rows` words each.
    pub fn new(capacity: usize, rows: usize) -> Self {
        assert!(capacity >= 2 && rows >= 1, "degenerate ring");
        // Round each payload up to a whole number of cache lines, like the
        // padded CPU queues the paper measures.
        let padded_words = rows.div_ceil(8) * 8;
        SpscQueue {
            slots: (0..capacity)
                .map(|_| CachePad::new((0..padded_words).map(|_| AtomicU64::new(0)).collect()))
                .collect(),
            rows,
            capacity,
            write_idx: CachePad::new(AtomicU64::new(0)),
            read_idx: CachePad::new(AtomicU64::new(0)),
            closed: AtomicBool::new(false),
            stats: QueueStats::default(),
        }
    }

    /// Words per message.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Enqueue one message (blocking while full). Single producer only.
    pub fn produce(&self, words: &[u64]) {
        assert_eq!(words.len(), self.rows, "message width mismatch");
        let w = self.write_idx.load(Ordering::Relaxed);
        // Wait for space: ring full when write - read == capacity.
        let mut spins = 0u64;
        while w - self.read_idx.load(Ordering::Acquire) >= self.capacity as u64 {
            spins += 1;
            std::hint::spin_loop();
            if spins.is_multiple_of(1024) {
                std::thread::yield_now();
            }
        }
        if spins > 0 {
            self.stats.producer_spins.add(spins);
        }
        let slot = &self.slots[(w % self.capacity as u64) as usize];
        for (i, &word) in words.iter().enumerate() {
            slot[i].store(word, Ordering::Relaxed);
        }
        self.write_idx.store(w + 1, Ordering::Release);
        self.stats.messages_produced.add(1);
        self.stats.slots_produced.add(1);
    }

    /// Dequeue one message into `out` (appending `rows` words). Returns
    /// `false` when empty. Single consumer only.
    pub fn try_consume_into(&self, out: &mut Vec<u64>) -> bool {
        let r = self.read_idx.load(Ordering::Relaxed);
        if r >= self.write_idx.load(Ordering::Acquire) {
            self.stats.consumer_empty_polls.add(1);
            return false;
        }
        let slot = &self.slots[(r % self.capacity as u64) as usize];
        for i in 0..self.rows {
            out.push(slot[i].load(Ordering::Relaxed));
        }
        self.read_idx.store(r + 1, Ordering::Release);
        self.stats.consumer_hits.add(1);
        self.stats.messages_consumed.add(1);
        true
    }

    /// Blocking dequeue; `None` once closed and drained.
    pub fn consume_blocking(&self, out: &mut Vec<u64>) -> Option<()> {
        let mut spins = 0u64;
        loop {
            if self.try_consume_into(out) {
                return Some(());
            }
            if self.closed.load(Ordering::Acquire)
                && self.read_idx.load(Ordering::Relaxed) >= self.write_idx.load(Ordering::Acquire)
            {
                return None;
            }
            spins += 1;
            std::hint::spin_loop();
            if spins.is_multiple_of(256) {
                std::thread::yield_now();
            }
        }
    }

    /// Mark the queue closed (after the producer finishes).
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_roundtrip() {
        let q = SpscQueue::new(4, 2);
        q.produce(&[1, 2]);
        q.produce(&[3, 4]);
        let mut out = Vec::new();
        assert!(q.try_consume_into(&mut out));
        assert!(q.try_consume_into(&mut out));
        assert!(!q.try_consume_into(&mut out));
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn payload_is_cache_line_padded() {
        let q = SpscQueue::new(2, 1); // 8-byte message
        // One message's padded payload is a full line (8 words).
        assert_eq!(q.slots[0].len(), 8);
        let q4 = SpscQueue::new(2, 9); // 72-byte message → 2 lines
        assert_eq!(q4.slots[0].len(), 16);
    }

    #[test]
    fn producer_blocks_until_consumer_frees_space() {
        let q = Arc::new(SpscQueue::new(2, 1));
        let qp = q.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..100u64 {
                qp.produce(&[i]);
            }
            qp.close();
        });
        let mut out = Vec::new();
        while q.consume_blocking(&mut out).is_some() {}
        producer.join().unwrap();
        assert_eq!(out, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn close_then_drain() {
        let q = SpscQueue::new(4, 1);
        q.produce(&[9]);
        q.close();
        let mut out = Vec::new();
        assert_eq!(q.consume_blocking(&mut out), Some(()));
        assert_eq!(q.consume_blocking(&mut out), None);
        assert_eq!(out, vec![9]);
    }
}
