//! CPU-only multi-producer/multi-consumer queue (paper §4.3 baseline).
//!
//! Uses *the same* ticket-based synchronization algorithm as Gravel's
//! queue — global write/read index fetch-adds issue tickets, a per-slot
//! current-ticket counter and full bit hand slots between producers and
//! consumers. "The only difference is that each queue slot is organized to
//! be written by a single CPU thread": one message per slot, padded to
//! cache-line granularity. Synchronization therefore happens per *message*
//! rather than per work-group, which is exactly what Figure 8 charges it
//! for.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::pad::CachePad;
use crate::stats::QueueStats;

struct Cell {
    round: CachePad<AtomicU64>,
    full: AtomicBool,
    payload: Box<[AtomicU64]>,
}

/// Bounded MPMC ring of fixed-size, cache-line-padded messages.
pub struct MpmcQueue {
    cells: Box<[Cell]>,
    rows: usize,
    capacity: usize,
    write_idx: CachePad<AtomicU64>,
    read_idx: CachePad<AtomicU64>,
    closed: AtomicBool,
    /// Synchronization instrumentation.
    pub stats: QueueStats,
}

impl MpmcQueue {
    /// Ring of `capacity` messages of `rows` words each.
    pub fn new(capacity: usize, rows: usize) -> Self {
        assert!(capacity >= 2 && rows >= 1, "degenerate ring");
        let padded_words = rows.div_ceil(8) * 8;
        MpmcQueue {
            cells: (0..capacity)
                .map(|_| Cell {
                    round: CachePad::new(AtomicU64::new(0)),
                    full: AtomicBool::new(false),
                    payload: (0..padded_words).map(|_| AtomicU64::new(0)).collect(),
                })
                .collect(),
            rows,
            capacity,
            write_idx: CachePad::new(AtomicU64::new(0)),
            read_idx: CachePad::new(AtomicU64::new(0)),
            closed: AtomicBool::new(false),
            stats: QueueStats::default(),
        }
    }

    /// Words per message.
    pub fn rows(&self) -> usize {
        self.rows
    }

    fn cell_ring(&self, seq: u64) -> (&Cell, u64) {
        (&self.cells[(seq % self.capacity as u64) as usize], seq / self.capacity as u64)
    }

    /// Enqueue one message (blocking while its cell is still occupied).
    pub fn produce(&self, words: &[u64]) {
        assert_eq!(words.len(), self.rows, "message width mismatch");
        let seq = self.write_idx.fetch_add(1, Ordering::AcqRel);
        self.stats.producer_rmws.add(1);
        let (cell, round) = self.cell_ring(seq);
        let mut spins = 0u64;
        while cell.round.load(Ordering::Acquire) != round || cell.full.load(Ordering::Acquire) {
            spins += 1;
            std::hint::spin_loop();
            if spins.is_multiple_of(1024) {
                std::thread::yield_now();
            }
        }
        if spins > 0 {
            self.stats.producer_spins.add(spins);
        }
        for (i, &word) in words.iter().enumerate() {
            cell.payload[i].store(word, Ordering::Relaxed);
        }
        cell.full.store(true, Ordering::Release);
        self.stats.messages_produced.add(1);
        self.stats.slots_produced.add(1);
    }

    /// Try to dequeue one message into `out`. Returns `true` on success.
    pub fn try_consume_into(&self, out: &mut Vec<u64>) -> bool {
        loop {
            let seq = self.read_idx.load(Ordering::Acquire);
            let (cell, round) = self.cell_ring(seq);
            let ready =
                cell.round.load(Ordering::Acquire) == round && cell.full.load(Ordering::Acquire);
            if !ready {
                self.stats.consumer_empty_polls.add(1);
                return false;
            }
            if self
                .read_idx
                .compare_exchange(seq, seq + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                self.stats.consumer_rmws.add(1);
                continue;
            }
            self.stats.consumer_rmws.add(1);
            self.stats.consumer_hits.add(1);
            for i in 0..self.rows {
                out.push(cell.payload[i].load(Ordering::Relaxed));
            }
            cell.full.store(false, Ordering::Release);
            cell.round.store(round + 1, Ordering::Release);
            self.stats.messages_consumed.add(1);
            return true;
        }
    }

    /// Blocking dequeue; `None` once closed and drained.
    pub fn consume_blocking(&self, out: &mut Vec<u64>) -> Option<()> {
        let mut spins = 0u64;
        loop {
            if self.try_consume_into(out) {
                return Some(());
            }
            if self.closed.load(Ordering::Acquire)
                && self.read_idx.load(Ordering::Acquire) >= self.write_idx.load(Ordering::Acquire)
            {
                return None;
            }
            spins += 1;
            std::hint::spin_loop();
            if spins.is_multiple_of(256) {
                std::thread::yield_now();
            }
        }
    }

    /// Mark the queue closed (after all producers finish).
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = MpmcQueue::new(4, 2);
        q.produce(&[1, 2]);
        q.produce(&[3, 4]);
        let mut out = Vec::new();
        assert!(q.try_consume_into(&mut out));
        assert!(q.try_consume_into(&mut out));
        assert!(!q.try_consume_into(&mut out));
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn two_producers_two_consumers_exactly_once() {
        let q = Arc::new(MpmcQueue::new(8, 1));
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        q.produce(&[(p as u64) << 32 | i]);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while q.consume_blocking(&mut got).is_some() {}
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        assert_eq!(all.len(), 1000);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000, "duplicate or lost messages");
    }

    #[test]
    fn per_message_rmw_cost() {
        let q = MpmcQueue::new(16, 1);
        for i in 0..10 {
            q.produce(&[i]);
        }
        // One RMW per message — contrast with GravelQueue's one per WG.
        assert_eq!(q.stats.snapshot().producer_rmws, 10);
    }

    #[test]
    fn close_then_drain() {
        let q = MpmcQueue::new(4, 1);
        q.produce(&[5]);
        q.close();
        let mut out = Vec::new();
        assert_eq!(q.consume_blocking(&mut out), Some(()));
        assert_eq!(q.consume_blocking(&mut out), None);
        assert_eq!(out, vec![5]);
    }
}
