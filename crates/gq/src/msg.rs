//! Message representation.
//!
//! Gravel messages are tiny fixed-format records (paper §4.2): a command
//! word, a destination word, and argument words (address, value). A queue
//! slot stores one message per lane in a row-major 2-D array so that the
//! lanes of a work-group write adjacent columns of each row — the layout
//! that lets the GPU's coalescer merge a whole work-group's message writes
//! into few cache-line transactions, and the reason Gravel's queue carries
//! a half-byte of per-message overhead where padded CPU queues carry whole
//! cache lines.

/// Network commands a message can carry (paper §6: PUT, atomic increment,
/// and a primitive active-message API).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Command {
    /// PGAS store: write `value` to `addr` on `dest`.
    Put,
    /// PGAS atomic add: add `value` to `addr` on `dest`.
    Inc,
    /// Active message: run registered handler `value as u32` against
    /// `addr`/`value2` on `dest`. The handler index travels in the low
    /// half of the command word.
    Active(u32),
    /// Runtime control: tells a consumer to shut down. Never produced by
    /// application kernels.
    Shutdown,
}

impl Command {
    /// Encode to the slot's command word.
    pub fn encode(self) -> u64 {
        match self {
            Command::Put => 0,
            Command::Inc => 1,
            Command::Active(h) => 2 | ((h as u64) << 32),
            Command::Shutdown => 3,
        }
    }

    /// Decode from a command word.
    pub fn decode(word: u64) -> Option<Command> {
        match word & 0xffff_ffff {
            0 => Some(Command::Put),
            1 => Some(Command::Inc),
            2 => Some(Command::Active((word >> 32) as u32)),
            3 => Some(Command::Shutdown),
            _ => None,
        }
    }
}

/// Number of u64 rows per message in the default Gravel format:
/// command, destination, address, value.
pub const MSG_ROWS: usize = 4;

/// Bytes per message in the default format.
pub const MSG_BYTES: usize = MSG_ROWS * 8;

/// One Gravel message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Message {
    /// Operation to perform at the destination.
    pub command: Command,
    /// Destination node id.
    pub dest: u32,
    /// Target offset in the destination's symmetric heap (in elements).
    pub addr: u64,
    /// Operand (store value, increment amount, or active-message arg).
    pub value: u64,
}

impl Message {
    /// A PGAS store.
    pub fn put(dest: u32, addr: u64, value: u64) -> Self {
        Message { command: Command::Put, dest, addr, value }
    }

    /// A PGAS atomic increment by `value`.
    pub fn inc(dest: u32, addr: u64, value: u64) -> Self {
        Message { command: Command::Inc, dest, addr, value }
    }

    /// An active message for handler `handler`.
    pub fn active(dest: u32, handler: u32, addr: u64, value: u64) -> Self {
        Message { command: Command::Active(handler), dest, addr, value }
    }

    /// The consumer-shutdown sentinel.
    pub fn shutdown() -> Self {
        Message { command: Command::Shutdown, dest: 0, addr: 0, value: 0 }
    }

    /// Encode into 4 words (rows of the slot array).
    pub fn encode(&self) -> [u64; MSG_ROWS] {
        [self.command.encode(), self.dest as u64, self.addr, self.value]
    }

    /// Decode from 4 words.
    pub fn decode(words: [u64; MSG_ROWS]) -> Option<Message> {
        Some(Message {
            command: Command::decode(words[0])?,
            dest: words[1] as u32,
            addr: words[2],
            value: words[3],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrip() {
        for c in [Command::Put, Command::Inc, Command::Active(7), Command::Active(u32::MAX), Command::Shutdown] {
            assert_eq!(Command::decode(c.encode()), Some(c));
        }
    }

    #[test]
    fn unknown_command_decodes_to_none() {
        assert_eq!(Command::decode(99), None);
    }

    #[test]
    fn message_roundtrip() {
        let msgs = [
            Message::put(3, 0xdead_beef, 42),
            Message::inc(7, u64::MAX, 1),
            Message::active(0, 5, 10, 20),
            Message::shutdown(),
        ];
        for m in msgs {
            assert_eq!(Message::decode(m.encode()), Some(m));
        }
    }

    #[test]
    fn format_is_32_bytes() {
        assert_eq!(MSG_BYTES, 32); // the paper's Fig. 6 message size
    }
}
