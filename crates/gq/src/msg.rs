//! Message representation.
//!
//! Gravel messages are tiny fixed-format records (paper §4.2): a command
//! word, a destination word, and argument words (address, value). A queue
//! slot stores one message per lane in a row-major 2-D array so that the
//! lanes of a work-group write adjacent columns of each row — the layout
//! that lets the GPU's coalescer merge a whole work-group's message writes
//! into few cache-line transactions, and the reason Gravel's queue carries
//! a half-byte of per-message overhead where padded CPU queues carry whole
//! cache lines.

/// Network commands a message can carry (paper §6: PUT, atomic increment,
/// and a primitive active-message API), extended with the request-reply
/// traffic class (GET, value-returning active messages, replies).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Command {
    /// PGAS store: write `value` to `addr` on `dest`.
    Put,
    /// PGAS atomic add: add `value` to `addr` on `dest`.
    Inc,
    /// Active message: run registered handler `value as u32` against
    /// `addr`/`value2` on `dest`. The handler index travels in the low
    /// half of the command word.
    Active(u32),
    /// Runtime control: tells a consumer to shut down. Never produced by
    /// application kernels.
    Shutdown,
    /// One-sided read: load heap word `addr` on `dest` and reply with its
    /// value. `value` carries the request token the reply echoes back;
    /// `deadline_ms` is the requester's advisory timeout budget.
    Get {
        /// Requester timeout budget in milliseconds (advisory on the
        /// wire; the requester's pending-reply table enforces it).
        deadline_ms: u16,
    },
    /// A reply to a [`Get`](Command::Get) or [`AmCall`](Command::AmCall):
    /// `addr` carries the request token, `value` the result.
    Reply,
    /// Value-returning active message: run returning handler `handler`
    /// against `addr` on `dest` and reply with its result. `value`
    /// carries the request token.
    AmCall {
        /// Returning-handler index at the destination.
        handler: u32,
        /// Requester timeout budget in milliseconds (advisory).
        deadline_ms: u16,
    },
}

impl Command {
    /// Encode to the slot's command word.
    ///
    /// Layout for the request-reply opcodes (4..=6): bits 0..8 opcode,
    /// bits 8..16 reserved (must be zero), bits 16..32 `deadline_ms`,
    /// bits 32..64 handler id (`AmCall` only). The legacy opcodes keep
    /// their exact low-32 encodings.
    #[inline]
    pub fn encode(self) -> u64 {
        match self {
            Command::Put => 0,
            Command::Inc => 1,
            Command::Active(h) => 2 | ((h as u64) << 32),
            Command::Shutdown => 3,
            Command::Get { deadline_ms } => 4 | ((deadline_ms as u64) << 16),
            Command::Reply => 5,
            Command::AmCall { handler, deadline_ms } => {
                6 | ((deadline_ms as u64) << 16) | ((handler as u64) << 32)
            }
        }
    }

    /// Decode from a command word. Reserved bits that must be zero are
    /// validated here: a word with a known opcode but garbage in a
    /// reserved field decodes to `None` and quarantines at the receiver.
    ///
    /// `#[inline]` is load-bearing on this and the other codec helpers:
    /// they run once per 32-byte message in the receive apply loop, and
    /// this function is past the size where rustc exports it for
    /// cross-crate inlining on its own — an outlined call here costs
    /// ~25 % of GUPS pipeline throughput.
    #[inline]
    pub fn decode(word: u64) -> Option<Command> {
        let lo = word & 0xffff_ffff;
        match lo {
            0 => return Some(Command::Put),
            1 => return Some(Command::Inc),
            2 => return Some(Command::Active((word >> 32) as u32)),
            3 => return Some(Command::Shutdown),
            _ => {}
        }
        let reserved = (lo >> 8) & 0xff;
        let deadline_ms = (lo >> 16) as u16;
        match lo & 0xff {
            4 if reserved == 0 && word >> 32 == 0 => Some(Command::Get { deadline_ms }),
            5 if lo == 5 && word >> 32 == 0 => Some(Command::Reply),
            6 if reserved == 0 => Some(Command::AmCall {
                handler: (word >> 32) as u32,
                deadline_ms,
            }),
            _ => None,
        }
    }

    /// The traffic class this command travels in.
    #[inline]
    pub fn class(&self) -> TrafficClass {
        match self {
            Command::Get { .. } => TrafficClass::Get,
            Command::Reply => TrafficClass::Reply,
            Command::AmCall { .. } => TrafficClass::AmCall,
            _ => TrafficClass::Bulk,
        }
    }
}

/// QoS priority bands (SNIPPETS.md Snippet 3's rustg sketch): the
/// sender's per-flow credit pools. Small latency-sensitive GETs and
/// replies overtake bulk PUT runs because the BULK band's in-flight
/// credit is capped below the go-back-N window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Band {
    /// GETs and replies: smallest packets, drained first.
    Latency,
    /// Value-returning active-message calls.
    Normal,
    /// Fire-and-forget PUT/INC/AM streams.
    Bulk,
}

/// Number of priority bands.
pub const NUM_BANDS: usize = 3;

impl Band {
    /// Index into per-band credit arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Band::Latency => 0,
            Band::Normal => 1,
            Band::Bulk => 2,
        }
    }
}

/// The four traffic classes an aggregated packet can carry. Packets are
/// class-pure (the aggregator splits runs on class boundaries) so the
/// wire frame kind advertises the class and the sender can schedule
/// whole packets by priority.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// One-sided reads.
    Get,
    /// Replies to GETs and AM calls.
    Reply,
    /// Value-returning active-message calls.
    AmCall,
    /// Everything fire-and-forget (PUT, INC, plain AMs).
    Bulk,
}

/// Number of traffic classes.
pub const NUM_CLASSES: usize = 4;

impl TrafficClass {
    /// All classes in drain-priority order (highest first).
    pub const PRIORITY: [TrafficClass; NUM_CLASSES] = [
        TrafficClass::Get,
        TrafficClass::Reply,
        TrafficClass::AmCall,
        TrafficClass::Bulk,
    ];

    /// Index into per-class queue arrays (priority order).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            TrafficClass::Get => 0,
            TrafficClass::Reply => 1,
            TrafficClass::AmCall => 2,
            TrafficClass::Bulk => 3,
        }
    }

    /// The QoS band this class drains in.
    #[inline]
    pub fn band(self) -> Band {
        match self {
            TrafficClass::Get | TrafficClass::Reply => Band::Latency,
            TrafficClass::AmCall => Band::Normal,
            TrafficClass::Bulk => Band::Bulk,
        }
    }

    /// Cheap classifier from a raw command word (no full decode): used
    /// by the aggregator's run scan, one mask + compare per message.
    /// Invalid opcodes classify as `Bulk` and are rejected by the
    /// receiver's full decode.
    #[inline]
    pub fn of_command_word(word: u64) -> TrafficClass {
        match word & 0xff {
            4 => TrafficClass::Get,
            5 => TrafficClass::Reply,
            6 => TrafficClass::AmCall,
            _ => TrafficClass::Bulk,
        }
    }
}

/// Number of u64 rows per message in the default Gravel format:
/// command, destination, address, value.
pub const MSG_ROWS: usize = 4;

/// Bytes per message in the default format.
pub const MSG_BYTES: usize = MSG_ROWS * 8;

/// One Gravel message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Message {
    /// Operation to perform at the destination.
    pub command: Command,
    /// Destination node id.
    pub dest: u32,
    /// Target offset in the destination's symmetric heap (in elements).
    pub addr: u64,
    /// Operand (store value, increment amount, or active-message arg).
    pub value: u64,
}

impl Message {
    /// A PGAS store.
    pub fn put(dest: u32, addr: u64, value: u64) -> Self {
        Message { command: Command::Put, dest, addr, value }
    }

    /// A PGAS atomic increment by `value`.
    pub fn inc(dest: u32, addr: u64, value: u64) -> Self {
        Message { command: Command::Inc, dest, addr, value }
    }

    /// An active message for handler `handler`.
    pub fn active(dest: u32, handler: u32, addr: u64, value: u64) -> Self {
        Message { command: Command::Active(handler), dest, addr, value }
    }

    /// The consumer-shutdown sentinel.
    pub fn shutdown() -> Self {
        Message { command: Command::Shutdown, dest: 0, addr: 0, value: 0 }
    }

    /// A one-sided read of heap word `addr` on `dest`. `token` names the
    /// requester's pending-reply entry; the reply echoes it back.
    pub fn get(dest: u32, addr: u64, token: u64, deadline_ms: u16) -> Self {
        Message { command: Command::Get { deadline_ms }, dest, addr, value: token }
    }

    /// A reply carrying `value` back to requester `dest` for `token`.
    pub fn reply(dest: u32, token: u64, value: u64) -> Self {
        Message { command: Command::Reply, dest, addr: token, value }
    }

    /// A value-returning active-message call: run returning handler
    /// `handler` against `arg` on `dest`, replying to `token`.
    pub fn am_call(dest: u32, handler: u32, arg: u64, token: u64, deadline_ms: u16) -> Self {
        Message {
            command: Command::AmCall { handler, deadline_ms },
            dest,
            addr: arg,
            value: token,
        }
    }

    /// Encode into 4 words (rows of the slot array).
    #[inline]
    pub fn encode(&self) -> [u64; MSG_ROWS] {
        [self.command.encode(), self.dest as u64, self.addr, self.value]
    }

    /// Decode from 4 words.
    #[inline]
    pub fn decode(words: [u64; MSG_ROWS]) -> Option<Message> {
        Some(Message {
            command: Command::decode(words[0])?,
            dest: words[1] as u32,
            addr: words[2],
            value: words[3],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrip() {
        for c in [
            Command::Put,
            Command::Inc,
            Command::Active(7),
            Command::Active(u32::MAX),
            Command::Shutdown,
            Command::Get { deadline_ms: 0 },
            Command::Get { deadline_ms: u16::MAX },
            Command::Reply,
            Command::AmCall { handler: 0, deadline_ms: 250 },
            Command::AmCall { handler: u32::MAX, deadline_ms: u16::MAX },
        ] {
            assert_eq!(Command::decode(c.encode()), Some(c));
        }
    }

    #[test]
    fn unknown_command_decodes_to_none() {
        assert_eq!(Command::decode(99), None);
    }

    #[test]
    fn reserved_bits_must_be_zero() {
        // A known request-reply opcode with garbage in a reserved field
        // is rejected (the receiver quarantines it).
        assert_eq!(Command::decode(4 | (1 << 8)), None);
        assert_eq!(Command::decode(4 | (1 << 32)), None);
        assert_eq!(Command::decode(5 | (7 << 16)), None);
        assert_eq!(Command::decode(5 | (1 << 40)), None);
        assert_eq!(Command::decode(6 | (0xa5 << 8)), None);
    }

    #[test]
    fn classes_and_bands() {
        assert_eq!(Command::Put.class(), TrafficClass::Bulk);
        assert_eq!(Command::Get { deadline_ms: 1 }.class(), TrafficClass::Get);
        assert_eq!(Command::Reply.class(), TrafficClass::Reply);
        let am = Command::AmCall { handler: 2, deadline_ms: 1 };
        assert_eq!(am.class(), TrafficClass::AmCall);
        assert_eq!(TrafficClass::Get.band(), Band::Latency);
        assert_eq!(TrafficClass::Reply.band(), Band::Latency);
        assert_eq!(TrafficClass::AmCall.band(), Band::Normal);
        assert_eq!(TrafficClass::Bulk.band(), Band::Bulk);
        for c in TrafficClass::PRIORITY {
            assert_eq!(TrafficClass::of_command_word(Message {
                command: match c {
                    TrafficClass::Get => Command::Get { deadline_ms: 9 },
                    TrafficClass::Reply => Command::Reply,
                    TrafficClass::AmCall => Command::AmCall { handler: 3, deadline_ms: 9 },
                    TrafficClass::Bulk => Command::Put,
                },
                dest: 0,
                addr: 0,
                value: 0,
            }.encode()[0]), c);
        }
    }

    #[test]
    fn message_roundtrip() {
        let msgs = [
            Message::put(3, 0xdead_beef, 42),
            Message::inc(7, u64::MAX, 1),
            Message::active(0, 5, 10, 20),
            Message::shutdown(),
        ];
        for m in msgs {
            assert_eq!(Message::decode(m.encode()), Some(m));
        }
    }

    #[test]
    fn format_is_32_bytes() {
        assert_eq!(MSG_BYTES, 32); // the paper's Fig. 6 message size
    }
}
