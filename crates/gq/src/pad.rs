//! Cache-line padding.
//!
//! The CPU-only baseline queues pad their indices and payload slots to
//! cache-line granularity to avoid false sharing (paper §4.3). That padding
//! is precisely what makes them slow for small messages — an 8-byte message
//! through the SPSC queue touches three full cache lines — so the padding
//! is modelled faithfully rather than optimized away.

/// Wrap a value so it occupies (at least) one 64-byte cache line by itself.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePad<T>(pub T);

impl<T> CachePad<T> {
    /// Wrap `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePad(value)
    }
}

impl<T> std::ops::Deref for CachePad<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePad<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn padded_values_occupy_full_lines() {
        assert_eq!(std::mem::size_of::<CachePad<AtomicU64>>(), 64);
        assert_eq!(std::mem::align_of::<CachePad<AtomicU64>>(), 64);
        assert_eq!(std::mem::size_of::<CachePad<[u8; 65]>>(), 128);
    }

    #[test]
    fn adjacent_pads_do_not_share_lines() {
        let v: Vec<CachePad<AtomicU64>> = (0..4).map(|_| CachePad::new(AtomicU64::new(0))).collect();
        let a = &v[0] as *const _ as usize;
        let b = &v[1] as *const _ as usize;
        assert!(b - a >= 64);
    }

    #[test]
    fn deref_passthrough() {
        let p = CachePad::new(41u32);
        assert_eq!(*p + 1, 42);
    }
}
