//! Gravel's GPU-efficient producer/consumer queue (paper §4).
//!
//! The queue's slots are two-dimensional arrays holding one message per
//! *column*, so a work-group's lanes write adjacent words of each payload
//! row (coalescer-friendly, §4.2). Space is reserved at work-group
//! granularity: a leader work-item — elected with `reduce_max(LANE_ID)` —
//! performs a single `fetch_add` on the write index on behalf of the whole
//! work-group, and a prefix sum gives every active lane its column
//! (Fig. 5b). Slot handoff between the GPU and the aggregator uses the
//! paper's ticket protocol: a per-slot current-ticket counter `N` ("round"
//! here) plus a full/empty bit `F`. Tickets are issued by the global
//! `WriteIdx`/`ReadIdx` fetch-adds (the slot index and the ticket are two
//! views of the same reservation, which also makes ticket acquisition
//! race-free), producers wait for `N == ticket && !F`, consumers for
//! `N == ticket && F`, and the consumer releases the slot by clearing `F`
//! and incrementing `N` (Fig. 7 ①-⑤).
//!
//! The same structure with single-message slots and work-item-granularity
//! reservation ([`GravelQueue::wi_produce`]) is the paper's
//! "work-item-level synchronization" strawman (two orders of magnitude
//! slower, §4.1).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use gravel_simt::{LaneVec, WgCtx};
use gravel_telemetry::Tracer;

use crate::park::WaitCell;
use crate::stats::QueueStats;

/// Queue geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueConfig {
    /// Number of slots in the ring.
    pub slots: usize,
    /// Messages per slot (columns). Set to the work-group size for
    /// work-group-granularity production; 1 for work-item granularity.
    pub lane_width: usize,
    /// `u64` words per message (rows). 4 for the standard Gravel message.
    pub rows: usize,
}

impl QueueConfig {
    /// The paper's configuration (Table 3): a 1 MB producer/consumer
    /// queue of 256-message slots with 32-byte messages.
    pub fn gravel_default() -> Self {
        QueueConfig {
            slots: 128,
            lane_width: 256,
            rows: crate::msg::MSG_ROWS,
        }
    }

    /// Geometry for a total byte budget with the given slot shape.
    pub fn for_bytes(total_bytes: usize, lane_width: usize, rows: usize) -> Self {
        let slot_bytes = lane_width * rows * 8;
        QueueConfig {
            slots: (total_bytes / slot_bytes).max(2),
            lane_width,
            rows,
        }
    }

    /// Payload bytes per slot.
    pub fn slot_bytes(&self) -> usize {
        self.lane_width * self.rows * 8
    }

    /// Total payload capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.slots * self.slot_bytes()
    }
}

struct Slot {
    /// The slot's current ticket, `N` in Fig. 7.
    round: AtomicU64,
    /// The full/empty bit, `F` in Fig. 7.
    full: AtomicBool,
    /// Messages stored this round (≤ `lane_width`; divergence makes
    /// partially-filled slots common).
    count: AtomicU64,
    /// Row-major payload: `payload[row * lane_width + column]`.
    payload: Box<[AtomicU64]>,
}

impl Slot {
    fn new(cfg: &QueueConfig) -> Self {
        Slot {
            round: AtomicU64::new(0),
            full: AtomicBool::new(false),
            count: AtomicU64::new(0),
            payload: (0..cfg.lane_width * cfg.rows)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }
}

/// Result of a non-blocking consume attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Consumed {
    /// A slot was drained; `0` messages appended to the output buffer is
    /// impossible (empty work-groups never publish).
    Batch(usize),
    /// Nothing ready right now.
    Empty,
    /// The queue is closed and fully drained.
    Closed,
}

/// The Gravel producer/consumer queue.
pub struct GravelQueue {
    cfg: QueueConfig,
    slots: Box<[Slot]>,
    write_idx: AtomicU64,
    read_idx: AtomicU64,
    closed: AtomicBool,
    /// Consumers park here when the ring is empty; `publish`/`close`
    /// wake them (near-free when nobody is parked).
    waiter: WaitCell,
    /// Producers park here when the ring is full; consumers wake them
    /// after releasing slots (near-free when nobody is parked).
    prod_waiter: WaitCell,
    /// Synchronization instrumentation.
    pub stats: QueueStats,
    /// Span recorder for slot handoff (`gq.offload`); disabled by default.
    tracer: Tracer,
    /// Node id stamped on trace events (chrome `pid`).
    node: u32,
}

impl GravelQueue {
    /// Build a queue with the given geometry, detached stats, and no
    /// tracing — the standalone mode. Clusters use
    /// [`with_telemetry`](Self::with_telemetry).
    pub fn new(cfg: QueueConfig) -> Self {
        Self::with_telemetry(cfg, QueueStats::default(), Tracer::disabled(), 0)
    }

    /// Build a queue whose counters and spans feed a cluster's telemetry:
    /// `stats` from [`QueueStats::bound`], `tracer` from the node's
    /// `TelemetryConfig`, `node` stamped on every span.
    pub fn with_telemetry(cfg: QueueConfig, stats: QueueStats, tracer: Tracer, node: u32) -> Self {
        assert!(cfg.slots >= 2, "need at least two slots");
        assert!(
            cfg.lane_width >= 1 && cfg.rows >= 1,
            "degenerate slot shape"
        );
        GravelQueue {
            slots: (0..cfg.slots).map(|_| Slot::new(&cfg)).collect(),
            cfg,
            write_idx: AtomicU64::new(0),
            read_idx: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            waiter: WaitCell::new(),
            prod_waiter: WaitCell::new(),
            stats,
            tracer,
            node,
        }
    }

    /// The queue's geometry.
    pub fn config(&self) -> QueueConfig {
        self.cfg
    }

    fn slot_ring(&self, seq: u64) -> (&Slot, u64) {
        (
            &self.slots[(seq % self.slots.len() as u64) as usize],
            seq / self.slots.len() as u64,
        )
    }

    /// Wait until the producer owns the slot for `seq`: a short spin
    /// window (the consumer usually frees the wrapped slot within
    /// microseconds), then park on `prod_waiter` — consumers wake
    /// producers after every slot release, so a full ring does not cost
    /// a busy core. Spin iterations are counted in `producer_spins`.
    fn producer_wait(&self, seq: u64) -> &Slot {
        let (slot, round) = self.slot_ring(seq);
        let ready =
            || slot.round.load(Ordering::Acquire) == round && !slot.full.load(Ordering::Acquire);
        let mut spins = 0u64;
        while !ready() {
            spins += 1;
            std::hint::spin_loop();
            if spins.is_multiple_of(128) {
                // The timeout is a belt-and-braces bound (see WaitCell);
                // the release-side notify is the real wakeup.
                self.prod_waiter.park_timeout(Duration::from_micros(100), ready);
            }
        }
        if spins > 0 {
            self.stats.producer_spins.add(spins);
        }
        slot
    }

    fn publish(&self, slot: &Slot, count: usize) {
        slot.count.store(count as u64, Ordering::Relaxed);
        slot.full.store(true, Ordering::Release);
        self.stats.slots_produced.add(1);
        self.stats.messages_produced.add(count as u64);
        self.waiter.notify_all();
    }

    /// Is the next unconsumed slot ready to drain (or the queue closed)?
    fn has_ready(&self) -> bool {
        let seq = self.read_idx.load(Ordering::Acquire);
        let (slot, round) = self.slot_ring(seq);
        (slot.round.load(Ordering::Acquire) == round && slot.full.load(Ordering::Acquire))
            || self.closed.load(Ordering::Acquire)
    }

    /// Park the calling consumer for up to `timeout`, waking early on a
    /// slot publish or [`close`](Self::close). Returns `true` if the
    /// thread actually slept (the caller's spin-then-park telemetry).
    pub fn park_for_ready(&self, timeout: Duration) -> bool {
        self.waiter.park_timeout(timeout, || self.has_ready())
    }

    // ---- producers -------------------------------------------------------

    /// Offload one message per *active* lane with work-group-granularity
    /// synchronization (Fig. 5b): one `fetch_add` for the whole work-group,
    /// columns assigned by prefix sum, coalesced payload writes.
    ///
    /// `payload(lane, row)` supplies row `row` of lane `lane`'s message.
    /// Lanes inactive in `ctx`'s current mask send nothing; this is
    /// exactly the diverged work-group-level semantic of §5 — callers in
    /// divergent code wrap the call in
    /// [`diverged_for`](gravel_simt::diverged_for).
    pub fn wg_produce(&self, ctx: &mut WgCtx, payload: impl Fn(usize, usize) -> u64) {
        assert!(
            ctx.wg_size() <= self.cfg.lane_width,
            "work-group ({}) wider than queue slots ({})",
            ctx.wg_size(),
            self.cfg.lane_width
        );
        let mask = ctx.active().clone();
        let count = mask.count();
        if count == 0 {
            return;
        }
        // Spans the whole slot handoff: reservation fetch-add through the
        // full-bit publish.
        let _span = self.tracer.span("gq.offload", "offload", self.node);
        // Fig. 5b lines 4-6: elect the leader, compute per-lane columns.
        let ones = LaneVec::splat(ctx.wg_size(), 1u64);
        let my_off = ctx.prefix_sum(&ones);
        let leader = ctx.elect_leader().expect("non-empty mask has a leader");
        // Line 9: the leader reserves a slot for the whole work-group.
        let seq = ctx.atomic_fetch_add(&self.write_idx, 1);
        self.stats.producer_rmws.add(1);
        let slot = self.producer_wait(seq);
        // Line 10: broadcast the reservation to every lane (reduce-to-sum
        // of a register that is zero except at the leader).
        let qoff = LaneVec::from_fn(ctx.wg_size(), |l| if l == leader { seq } else { 0 });
        let seq_bcast = ctx.reduce_sum(&qoff);
        debug_assert_eq!(seq_bcast, seq);
        // Coalesced payload writes: row by row, adjacent lanes hit
        // adjacent words.
        let base = slot.payload.as_ptr() as u64;
        for row in 0..self.cfg.rows {
            let row_base = base + (row * self.cfg.lane_width * 8) as u64;
            let addrs = LaneVec::from_fn(ctx.wg_size(), |l| row_base + my_off.get(l) * 8);
            ctx.mem_access(&addrs, 8);
            for lane in mask.iter() {
                let col = my_off.get(lane) as usize;
                slot.payload[row * self.cfg.lane_width + col]
                    .store(payload(lane, row), Ordering::Relaxed);
            }
        }
        // Fig. 7 time ③: the leader sets the full bit.
        self.publish(slot, count);
        ctx.counters.messages += count as u64;
    }

    /// Offload one message per active lane with *work-item*-granularity
    /// synchronization (Fig. 5a): every lane performs its own `fetch_add`
    /// and owns a single-message slot. Requires `lane_width == 1`.
    pub fn wi_produce(&self, ctx: &mut WgCtx, payload: impl Fn(usize, usize) -> u64) {
        assert_eq!(
            self.cfg.lane_width, 1,
            "work-item queues use single-message slots"
        );
        let mask = ctx.active().clone();
        for lane in mask.iter() {
            // Divergent serialization: each lane's reservation is its own
            // wavefront instruction.
            let single = gravel_simt::Mask::from_fn(ctx.wg_size(), |l| l == lane);
            ctx.with_mask(single, |ctx| {
                let seq = ctx.atomic_fetch_add(&self.write_idx, 1);
                self.stats.producer_rmws.add(1);
                let slot = self.producer_wait(seq);
                let base = slot.payload.as_ptr() as u64;
                for row in 0..self.cfg.rows {
                    let addrs = LaneVec::splat(ctx.wg_size(), base + row as u64 * 8);
                    ctx.mem_access(&addrs, 8);
                    slot.payload[row].store(payload(lane, row), Ordering::Relaxed);
                }
                self.publish(slot, 1);
                ctx.counters.messages += 1;
            });
        }
    }

    /// CPU-side batch producer: enqueue `count` messages whose words are
    /// given message-major in `words` (`count * rows` words). Used by the
    /// CPU baselines and by host threads injecting control messages.
    pub fn produce_batch(&self, words: &[u64], count: usize) {
        assert!(
            count >= 1 && count <= self.cfg.lane_width,
            "batch of {count} exceeds slot"
        );
        assert_eq!(words.len(), count * self.cfg.rows, "word count mismatch");
        let seq = self.write_idx.fetch_add(1, Ordering::AcqRel);
        self.stats.producer_rmws.add(1);
        let slot = self.producer_wait(seq);
        for (m, msg) in words.chunks_exact(self.cfg.rows).enumerate() {
            for (row, &w) in msg.iter().enumerate() {
                slot.payload[row * self.cfg.lane_width + m].store(w, Ordering::Relaxed);
            }
        }
        self.publish(slot, count);
    }

    // ---- consumers -------------------------------------------------------

    /// Try to drain one slot. On success the slot's messages are appended
    /// to `out` *message-major* (each message's `rows` words contiguous)
    /// and `Consumed::Batch(count)` is returned.
    pub fn try_consume_into(&self, out: &mut Vec<u64>) -> Consumed {
        loop {
            let seq = self.read_idx.load(Ordering::Acquire);
            let (slot, round) = self.slot_ring(seq);
            let ready =
                slot.round.load(Ordering::Acquire) == round && slot.full.load(Ordering::Acquire);
            if !ready {
                self.stats.consumer_empty_polls.add(1);
                if self.closed.load(Ordering::Acquire)
                    && seq >= self.write_idx.load(Ordering::Acquire)
                {
                    return Consumed::Closed;
                }
                return Consumed::Empty;
            }
            // Claim the sequence number; a lost race means another
            // consumer took it — retry on the next one.
            if self
                .read_idx
                .compare_exchange(seq, seq + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                self.stats.consumer_rmws.add(1);
                continue;
            }
            self.stats.consumer_rmws.add(1);
            self.stats.consumer_hits.add(1);
            let count = slot.count.load(Ordering::Relaxed) as usize;
            out.reserve(count * self.cfg.rows);
            for m in 0..count {
                for row in 0..self.cfg.rows {
                    out.push(slot.payload[row * self.cfg.lane_width + m].load(Ordering::Relaxed));
                }
            }
            // Fig. 7 time ⑤: clear F, bump the current ticket.
            slot.full.store(false, Ordering::Release);
            slot.round.store(round + 1, Ordering::Release);
            self.prod_waiter.notify_all();
            self.stats.messages_consumed.add(count as u64);
            return Consumed::Batch(count);
        }
    }

    /// Drain up to `max_slots` *consecutive ready* slots with a single
    /// `read_idx` compare-exchange, appending their messages to `out`
    /// message-major. Returns `Consumed::Batch(total_messages)`.
    ///
    /// This is the consumer-side synchronization amortization mirroring
    /// the producer's work-group reservation: under load, one RMW claims
    /// many work-groups' worth of messages instead of one. Claimed slots
    /// are exclusively owned (later consumers CAS from `seq + k`), so
    /// they can be copied out and released without further contention.
    pub fn try_consume_batch(&self, out: &mut Vec<u64>, max_slots: usize) -> Consumed {
        let max = max_slots.max(1) as u64;
        loop {
            let seq = self.read_idx.load(Ordering::Acquire);
            // Count consecutive ready slots starting at `seq`. A slot one
            // full ring ahead can never look ready (its round is one too
            // low until we release the slot it wraps onto), so `k` is
            // implicitly bounded by the ring size.
            let mut k = 0u64;
            while k < max {
                let (slot, round) = self.slot_ring(seq + k);
                if slot.round.load(Ordering::Acquire) == round && slot.full.load(Ordering::Acquire)
                {
                    k += 1;
                } else {
                    break;
                }
            }
            if k == 0 {
                self.stats.consumer_empty_polls.add(1);
                if self.closed.load(Ordering::Acquire)
                    && seq >= self.write_idx.load(Ordering::Acquire)
                {
                    return Consumed::Closed;
                }
                return Consumed::Empty;
            }
            if self
                .read_idx
                .compare_exchange(seq, seq + k, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                self.stats.consumer_rmws.add(1);
                continue;
            }
            self.stats.consumer_rmws.add(1);
            self.stats.consumer_hits.add(k);
            let mut total = 0usize;
            for i in 0..k {
                let (slot, round) = self.slot_ring(seq + i);
                let count = slot.count.load(Ordering::Relaxed) as usize;
                out.reserve(count * self.cfg.rows);
                for m in 0..count {
                    for row in 0..self.cfg.rows {
                        out.push(
                            slot.payload[row * self.cfg.lane_width + m].load(Ordering::Relaxed),
                        );
                    }
                }
                slot.full.store(false, Ordering::Release);
                slot.round.store(round + 1, Ordering::Release);
                total += count;
            }
            self.prod_waiter.notify_all();
            self.stats.messages_consumed.add(total as u64);
            return Consumed::Batch(total);
        }
    }

    /// Drain one slot, blocking until one is ready. Returns `None` once
    /// the queue is closed and empty. Spins briefly, then parks on the
    /// queue's wait cell (woken by publishes and close).
    pub fn consume_blocking(&self, out: &mut Vec<u64>) -> Option<usize> {
        let mut spins = 0u64;
        loop {
            match self.try_consume_into(out) {
                Consumed::Batch(n) => return Some(n),
                Consumed::Closed => return None,
                Consumed::Empty => {
                    spins += 1;
                    std::hint::spin_loop();
                    if spins.is_multiple_of(256) {
                        self.park_for_ready(Duration::from_micros(100));
                    }
                }
            }
        }
    }

    /// Mark the queue closed. Call after all producers have finished;
    /// consumers drain the remaining slots and then observe
    /// [`Consumed::Closed`].
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.waiter.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Slots published but not yet consumed (approximate under
    /// concurrency).
    pub fn backlog(&self) -> u64 {
        self.write_idx
            .load(Ordering::Acquire)
            .saturating_sub(self.read_idx.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Message, MSG_ROWS};
    use gravel_simt::{Grid, Mask, SimtEngine};

    fn small_cfg() -> QueueConfig {
        QueueConfig {
            slots: 4,
            lane_width: 8,
            rows: MSG_ROWS,
        }
    }

    #[test]
    fn config_capacity_math() {
        let cfg = QueueConfig::gravel_default();
        assert_eq!(cfg.capacity_bytes(), 1024 * 1024); // Table 3: 1 MB
        let c2 = QueueConfig::for_bytes(64 * 1024, 256, 4);
        assert_eq!(c2.slots, 8);
    }

    #[test]
    fn wg_produce_then_consume_roundtrip() {
        let q = GravelQueue::new(small_cfg());
        let engine = SimtEngine::with_cus(1);
        let grid = Grid {
            wg_count: 1,
            wg_size: 8,
            wf_width: 4,
        };
        engine.dispatch(grid, |ctx| {
            let msgs: Vec<[u64; MSG_ROWS]> = (0..8)
                .map(|l| Message::put(1, l as u64, 100 + l as u64).encode())
                .collect();
            q.wg_produce(ctx, |lane, row| msgs[lane][row]);
        });
        let mut out = Vec::new();
        assert_eq!(q.try_consume_into(&mut out), Consumed::Batch(8));
        assert_eq!(out.len(), 8 * MSG_ROWS);
        for (l, chunk) in out.chunks_exact(MSG_ROWS).enumerate() {
            let m = Message::decode([chunk[0], chunk[1], chunk[2], chunk[3]]).unwrap();
            assert_eq!(m, Message::put(1, l as u64, 100 + l as u64));
        }
    }

    #[test]
    fn wg_produce_compacts_inactive_lanes() {
        let q = GravelQueue::new(small_cfg());
        let engine = SimtEngine::with_cus(1);
        let grid = Grid {
            wg_count: 1,
            wg_size: 8,
            wf_width: 4,
        };
        engine.dispatch(grid, |ctx| {
            let odd = Mask::from_fn(8, |l| l % 2 == 1);
            ctx.if_then(&odd, |ctx| {
                q.wg_produce(ctx, |lane, row| {
                    Message::inc(0, lane as u64, 1).encode()[row]
                });
            });
        });
        let mut out = Vec::new();
        assert_eq!(q.try_consume_into(&mut out), Consumed::Batch(4));
        let addrs: Vec<u64> = out.chunks_exact(MSG_ROWS).map(|c| c[2]).collect();
        assert_eq!(addrs, vec![1, 3, 5, 7]); // compacted, in lane order
    }

    #[test]
    fn empty_workgroup_publishes_nothing() {
        let q = GravelQueue::new(small_cfg());
        let engine = SimtEngine::with_cus(1);
        let grid = Grid {
            wg_count: 1,
            wg_size: 8,
            wf_width: 4,
        };
        engine.dispatch(grid, |ctx| {
            let none = Mask::none(8);
            ctx.with_mask(none, |ctx| {
                q.wg_produce(ctx, |_, _| 0);
            });
        });
        let mut out = Vec::new();
        assert_eq!(q.try_consume_into(&mut out), Consumed::Empty);
        assert_eq!(q.stats.snapshot().slots_produced, 0);
    }

    #[test]
    fn one_rmw_per_workgroup() {
        let q = GravelQueue::new(QueueConfig {
            slots: 64,
            lane_width: 8,
            rows: 4,
        });
        let engine = SimtEngine::with_cus(1);
        let grid = Grid {
            wg_count: 10,
            wg_size: 8,
            wf_width: 4,
        };
        engine.dispatch(grid, |ctx| {
            q.wg_produce(ctx, |_, _| 7);
        });
        let snap = q.stats.snapshot();
        assert_eq!(snap.producer_rmws, 10); // exactly one fetch-add per WG
        assert_eq!(snap.messages_produced, 80);
    }

    #[test]
    fn wi_produce_uses_one_rmw_per_message() {
        let q = GravelQueue::new(QueueConfig {
            slots: 128,
            lane_width: 1,
            rows: 4,
        });
        let engine = SimtEngine::with_cus(1);
        let grid = Grid {
            wg_count: 1,
            wg_size: 8,
            wf_width: 4,
        };
        engine.dispatch(grid, |ctx| {
            q.wi_produce(ctx, |lane, row| {
                Message::inc(0, lane as u64, 0).encode()[row]
            });
        });
        let snap = q.stats.snapshot();
        assert_eq!(snap.producer_rmws, 8);
        assert_eq!(snap.messages_produced, 8);
        // Each message sits in its own slot.
        let mut out = Vec::new();
        let mut seen = Vec::new();
        while let Consumed::Batch(n) = q.try_consume_into(&mut out) {
            assert_eq!(n, 1);
            seen.push(out[out.len() - 2]); // addr row
        }
        assert_eq!(seen, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn producer_backpressure_when_ring_wraps() {
        // 2-slot ring: the third batch must wait for a consume. Run the
        // producer in a thread; consume from here.
        let q = std::sync::Arc::new(GravelQueue::new(QueueConfig {
            slots: 2,
            lane_width: 2,
            rows: 1,
        }));
        let q2 = q.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..10u64 {
                q2.produce_batch(&[i, i + 100], 2);
            }
            q2.close();
        });
        let mut out = Vec::new();
        let mut batches = 0;
        while q.consume_blocking(&mut out).is_some() {
            batches += 1;
        }
        producer.join().unwrap();
        assert_eq!(batches, 10);
        assert_eq!(out.len(), 20);
        // First batch arrived in order.
        assert_eq!(&out[0..2], &[0, 100]);
    }

    #[test]
    fn close_drains_remaining_slots_first() {
        let q = GravelQueue::new(small_cfg());
        q.produce_batch(&[1, 2, 3, 4], 1);
        q.close();
        let mut out = Vec::new();
        assert_eq!(q.try_consume_into(&mut out), Consumed::Batch(1));
        assert_eq!(q.try_consume_into(&mut out), Consumed::Closed);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        use std::sync::Arc;
        let q = Arc::new(GravelQueue::new(QueueConfig {
            slots: 8,
            lane_width: 4,
            rows: 1,
        }));
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let tag = (p as u64) << 32 | i;
                        q.produce_batch(&[tag, tag, tag, tag], 4);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while q.consume_blocking(&mut got).is_some() {}
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        assert_eq!(all.len(), 3 * 200 * 4);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 3 * 200); // each tag appears exactly once (×4 dups collapsed)
    }

    #[test]
    fn batch_consume_claims_many_slots_with_one_rmw() {
        let q = GravelQueue::new(QueueConfig {
            slots: 8,
            lane_width: 2,
            rows: 1,
        });
        for i in 0..5u64 {
            q.produce_batch(&[i, i + 100], 2);
        }
        let before = q.stats.snapshot().consumer_rmws;
        let mut out = Vec::new();
        assert_eq!(
            q.try_consume_batch(&mut out, 4),
            Consumed::Batch(8),
            "4 slots × 2 msgs"
        );
        assert_eq!(
            q.stats.snapshot().consumer_rmws,
            before + 1,
            "one CAS for four slots"
        );
        assert_eq!(out, vec![0, 100, 1, 101, 2, 102, 3, 103]);
        assert_eq!(
            q.try_consume_batch(&mut out, 4),
            Consumed::Batch(2),
            "the leftover slot"
        );
        assert_eq!(q.try_consume_batch(&mut out, 4), Consumed::Empty);
        q.close();
        assert_eq!(q.try_consume_batch(&mut out, 4), Consumed::Closed);
    }

    #[test]
    fn batch_consume_survives_ring_wrap_and_concurrency() {
        use std::sync::Arc;
        let q = Arc::new(GravelQueue::new(QueueConfig {
            slots: 4,
            lane_width: 2,
            rows: 1,
        }));
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let tag = (p as u64) << 32 | i;
                        q.produce_batch(&[tag, tag], 2);
                    }
                })
            })
            .collect();
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match q.try_consume_batch(&mut got, 3) {
                        Consumed::Closed => return got,
                        Consumed::Empty => {
                            q.park_for_ready(Duration::from_micros(50));
                        }
                        Consumed::Batch(_) => {}
                    }
                }
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all = consumer.join().unwrap();
        assert_eq!(all.len(), 2 * 500 * 2);
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            2 * 500,
            "each tag exactly once (×2 dups collapsed)"
        );
    }

    #[test]
    fn park_for_ready_wakes_on_publish() {
        use std::sync::Arc;
        let q = Arc::new(GravelQueue::new(small_cfg()));
        let waiter = {
            let q = q.clone();
            std::thread::spawn(move || {
                let start = std::time::Instant::now();
                while !q.has_ready() {
                    q.park_for_ready(Duration::from_secs(10));
                }
                start.elapsed()
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        q.produce_batch(&[1, 2, 3, 4], 1);
        let waited = waiter.join().unwrap();
        assert!(
            waited < Duration::from_secs(5),
            "publish woke the parked consumer ({waited:?})"
        );
    }

    #[test]
    #[should_panic(expected = "wider than queue slots")]
    fn oversized_workgroup_panics() {
        let q = GravelQueue::new(QueueConfig {
            slots: 2,
            lane_width: 4,
            rows: 1,
        });
        let grid = Grid {
            wg_count: 1,
            wg_size: 8,
            wf_width: 4,
        };
        let mut ctx = gravel_simt::WgCtx::new(grid, 0);
        q.wg_produce(&mut ctx, |_, _| 0);
    }
}
